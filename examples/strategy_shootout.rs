//! All four schemes of the paper's evaluation (FedAvg, CMFL, APF, FedSU) on
//! the CNN/EMNIST-like workload — a miniature of Fig. 5 / Table I.
//!
//! ```text
//! cargo run --release --example strategy_shootout
//! ```

use fedsu_repro::metrics::Table;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rounds = 30;
    println!("Strategy shootout: CNN on the EMNIST stand-in, 8 clients, {rounds} rounds\n");

    let scenario = Scenario::new(ModelKind::Cnn)
        .clients(8)
        .rounds(rounds)
        .samples_per_class(40)
        .local_iters(6)
        .batch_size(16);

    let target = 0.5f32;
    let mut table = Table::new(&[
        "Scheme",
        "Best acc",
        &format!("Time to {target:.2} (s)"),
        "Rounds",
        "Sparsification",
    ]);

    for strategy in [StrategyKind::FedAvg, StrategyKind::Cmfl, StrategyKind::Apf, StrategyKind::FedSu] {
        let mut experiment = scenario.build(strategy)?;
        let result = experiment.run(None)?;
        let tta = result
            .time_to_accuracy(target)
            .map_or("never".to_string(), |t| format!("{t:.0}"));
        let rta = result
            .rounds_to_accuracy(target)
            .map_or("-".to_string(), |r| r.to_string());
        table.row(&[
            &result.strategy,
            &format!("{:.3}", result.best_accuracy()),
            &tta,
            &rta,
            &format!("{:.1}%", result.mean_sparsification() * 100.0),
        ]);
        eprintln!("finished {}", result.strategy);
    }

    println!("{table}");
    Ok(())
}
