//! Participant dynamicity (Sec. V): clients leave and join mid-training;
//! joiners download the model *plus* FedSU's replicated mask state and keep
//! making decisions consistent with everyone else.
//!
//! ```text
//! cargo run --release --example dynamic_clients
//! ```

use fedsu_repro::fl::experiment::AvailabilityFn;
use fedsu_repro::fl::RoundRecord;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Dynamic participation: 6 clients; client 5 joins at round 10,");
    println!("client 0 leaves for rounds 15-24, rejoins at 25.\n");

    // Build via the scenario, then rebuild the experiment with availability.
    let scenario = Scenario::new(ModelKind::Mlp).clients(6).rounds(40).samples_per_class(40);
    let availability: AvailabilityFn = Arc::new(|client, round| match client {
        5 => round >= 10,
        0 => !(15..25).contains(&round),
        _ => true,
    });

    let mut experiment = scenario.build_with_availability(StrategyKind::FedSu, Some(availability))?;
    let mut joins: Vec<(usize, u64)> = Vec::new();
    let mut hook = |r: &RoundRecord, _g: &[f32]| {
        if matches!(r.round, 10 | 25) {
            joins.push((r.round, r.bytes));
        }
    };
    let result = experiment.run(Some(&mut hook))?;

    println!("best accuracy: {:.3}", result.best_accuracy());
    println!("mean sparsification: {:.1}%", result.mean_sparsification() * 100.0);
    for (round, bytes) in joins {
        println!("round {round}: {bytes} bytes on the wire (includes the joiner's model + mask-state download)");
    }
    println!("\nparticipants per round:");
    let participants: Vec<String> = result.rounds.iter().map(|r| r.participants.to_string()).collect();
    println!("{}", participants.join(" "));
    Ok(())
}
