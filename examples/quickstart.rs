//! Quickstart: train a small model federatedly with FedSU and compare the
//! outcome against plain FedAvg.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use fedsu_repro::metrics::Table;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("FedSU quickstart: MLP on a synthetic 3-class task, 6 clients\n");

    let scenario = Scenario::new(ModelKind::Mlp).clients(6).rounds(40).samples_per_class(40);

    let mut table = Table::new(&[
        "Scheme",
        "Best acc",
        "Sim time (s)",
        "Mean sparsification",
        "Total MB",
    ]);

    for strategy in [StrategyKind::FedAvg, StrategyKind::FedSu] {
        let mut experiment = scenario.build(strategy)?;
        let result = experiment.run(None)?;
        let last_time = result.rounds.last().map_or(0.0, |r| r.sim_time_secs);
        table.row(&[
            &result.strategy,
            &format!("{:.3}", result.best_accuracy()),
            &format!("{last_time:.1}"),
            &format!("{:.1}%", result.mean_sparsification() * 100.0),
            &format!("{:.2}", result.total_bytes() as f64 / 1e6),
        ]);
    }

    println!("{table}");
    println!("FedSU should reach comparable accuracy with a substantial");
    println!("sparsification ratio (skipped synchronizations) and less time.");
    Ok(())
}
