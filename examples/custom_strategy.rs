//! Implementing your own synchronization strategy against the public
//! [`SyncStrategy`] trait — here, "lazy sync": every scalar is synchronized
//! only every `k`-th round (a strawman that shows the API surface, and why
//! unguided skipping is worse than FedSU's diagnosed+checked skipping).
//!
//! ```text
//! cargo run --release --example custom_strategy
//! ```

use fedsu_repro::fl::strategy::average_into;
use fedsu_repro::fl::{AggregateOutcome, SyncStrategy};
use fedsu_repro::metrics::Table;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};

/// Synchronizes scalar `j` only in rounds where `(round + j) % period == 0`;
/// unsynchronized scalars keep their previous global value (clients' local
/// drift on them is discarded at the next pull).
struct LazySync {
    period: usize,
}

impl SyncStrategy for LazySync {
    fn name(&self) -> &str {
        "lazy-sync"
    }

    fn prepare_uploads_into(
        &mut self,
        round: usize,
        locals: &[Vec<f32>],
        global: &[f32],
        out: &mut Vec<u64>,
    ) {
        let due = (0..global.len()).filter(|j| (round + j) % self.period == 0).count() as u64;
        out.clear();
        out.resize(locals.len(), due);
    }

    fn aggregate(
        &mut self,
        round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        _active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome {
        let mut averaged = global.to_vec();
        average_into(locals, selected, &mut averaged);
        let mut synced = 0;
        for (j, g) in global.iter_mut().enumerate() {
            if (round + j) % self.period == 0 {
                *g = averaged[j];
                synced += 1;
            }
        }
        AggregateOutcome { broadcast_scalars: synced, synced_scalars: synced, total_scalars: global.len() }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Custom strategy demo: unguided lazy sync vs FedSU\n");
    let scenario = Scenario::new(ModelKind::Mlp).clients(6).rounds(40).samples_per_class(40);

    let mut table = Table::new(&["Scheme", "Best acc", "Mean sparsification", "Total MB"]);

    // Both skip roughly the same volume; only one knows *what* to skip.
    let mut lazy = scenario.build_with(Box::new(LazySync { period: 2 }))?;
    let lazy_result = lazy.run(None)?;
    let mut fedsu = scenario.build(StrategyKind::FedSuCalibrated)?;
    let fedsu_result = fedsu.run(None)?;

    for r in [&lazy_result, &fedsu_result] {
        table.row(&[
            &r.strategy,
            &format!("{:.3}", r.best_accuracy()),
            &format!("{:.1}%", r.mean_sparsification() * 100.0),
            &format!("{:.2}", r.total_bytes() as f64 / 1e6),
        ]);
    }
    println!("{table}");
    println!("Lazy sync throws away whichever updates happen to fall in a skipped");
    println!("round; FedSU skips only parameters whose trajectories it can predict,");
    println!("and checks its predictions with error feedback.");
    Ok(())
}
