//! Sweeps the Dirichlet concentration α to show how data heterogeneity
//! affects FedSU's sparsification opportunity and accuracy (the paper fixes
//! α = 1; this explores the knob its footnote 3 discusses).
//!
//! ```text
//! cargo run --release --example noniid_sweep
//! ```

use fedsu_repro::metrics::Table;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Non-IID sweep: FedSU on the MLP task at various Dirichlet α\n");

    let mut table = Table::new(&["alpha", "Best acc", "Mean sparsification", "Final train loss"]);
    for alpha in [100.0, 10.0, 1.0, 0.3, 0.1] {
        let mut experiment = Scenario::new(ModelKind::Mlp)
            .clients(6)
            .rounds(35)
            .samples_per_class(40)
            .alpha(alpha)
            .build(StrategyKind::FedSu)?;
        let result = experiment.run(None)?;
        table.row(&[
            &format!("{alpha}"),
            &format!("{:.3}", result.best_accuracy()),
            &format!("{:.1}%", result.mean_sparsification() * 100.0),
            &format!("{:.3}", result.rounds.last().map_or(0.0, |r| r.train_loss)),
        ]);
        eprintln!("finished alpha={alpha}");
    }
    println!("{table}");
    println!("Lower α (more skew) generally reduces update stability and thus");
    println!("the linearity FedSU can exploit.");
    Ok(())
}
