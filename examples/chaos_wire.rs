//! FedAvg over a real (in-process) wire with injected faults: the chaos
//! bus drops, corrupts, duplicates, reorders and delays frames while the
//! reliable session protocol repairs the damage. The run prints one row
//! per fault plan with the emulator's `RoundRecord` columns next to the
//! session's `ReliabilityStats`, demonstrating the parity guarantee: the
//! model (and every model-derived column) is bit-identical across plans —
//! only the repair-cost columns move.
//!
//! ```text
//! cargo run --release --example chaos_wire
//! ```

use fedsu_repro::metrics::Table;
use fedsu_repro::netsim::{FaultConfig, FaultPlan};
use fedsu_repro::transport::{
    ChaosClient, ChaosServer, ChaosStats, ClientSession, LocalBus, Message, ReliabilityStats,
    ServerSession, SessionConfig, SparseValues,
};
use std::time::Duration;

const PARAMS: usize = 64;
const CLIENTS: usize = 4;
const ROUNDS: usize = 8;
const RECV_TIMEOUT: Duration = Duration::from_secs(20);
/// End-of-run grace, longer than the largest inter-retransmit gap
/// (`ack_timeout + backoff × max_retries`).
const LINGER: Duration = Duration::from_millis(250);

fn session_cfg() -> SessionConfig {
    SessionConfig {
        max_retries: 16,
        ack_timeout: Duration::from_millis(15),
        backoff: Duration::from_millis(5),
    }
}

/// Deterministic fake "local training": the same rule the transport
/// parity tests use, so the bit-for-bit claim is directly comparable.
fn local_update(round: usize, client: usize, j: usize) -> f32 {
    ((round * 31 + client * 7 + j) % 13) as f32 * 0.01 - 0.06
}

struct Outcome {
    global: Vec<f32>,
    bytes: u64,
    rel: ReliabilityStats,
    chaos: ChaosStats,
}

fn run(faults: &FaultConfig) -> Outcome {
    let (server, clients) = LocalBus::star(CLIENTS);
    let chaos_server = ChaosServer::new(server, FaultPlan::new(*faults));
    let mut srv = ServerSession::new(chaos_server, session_cfg());

    let handles: Vec<_> = clients
        .into_iter()
        .map(|endpoint| {
            let id = endpoint.id();
            let chaos = ChaosClient::new(endpoint, FaultPlan::new(*faults), id);
            std::thread::spawn(move || -> Result<(ReliabilityStats, ChaosStats), String> {
                let mut session = ClientSession::new(chaos, id as u32, session_cfg());
                for round in 0..ROUNDS {
                    session.begin_epoch(round as u32);
                    let trained = match session
                        .recv_reliable(RECV_TIMEOUT)
                        .map_err(|e| format!("client {id} recv: {e}"))?
                    {
                        Message::Model { values, .. } => values
                            .values
                            .iter()
                            .enumerate()
                            .map(|(j, v)| v + local_update(round, id, j))
                            .collect::<Vec<f32>>(),
                        other => return Err(format!("client {id}: unexpected {other:?}")),
                    };
                    session
                        .send_reliable(&Message::Update {
                            round: round as u32,
                            client: id as u32,
                            values: SparseValues::dense(trained),
                        })
                        .map_err(|e| format!("client {id} send: {e}"))?;
                }
                // TIME_WAIT: service the server's late retransmissions.
                session.linger(LINGER);
                Ok((session.stats(), session.link().stats()))
            })
        })
        .collect();

    let mut global = vec![0.0f32; PARAMS];
    let mut bytes = 0u64;
    for round in 0..ROUNDS {
        srv.begin_epoch(round as u32);
        let model =
            Message::Model { round: round as u32, values: SparseValues::dense(global.clone()) };
        let broadcast = u64::try_from(model.encode().len() * CLIENTS).unwrap_or(u64::MAX);
        bytes = bytes.saturating_add(broadcast);
        srv.broadcast_reliable(&model).expect("broadcast within the retry budget");
        let mut per_client: Vec<Option<Vec<f32>>> = vec![None; CLIENTS];
        while per_client.iter().any(Option::is_none) {
            let (from, msg) =
                srv.recv_reliable(RECV_TIMEOUT).expect("collection within the retry budget");
            bytes = bytes.saturating_add(u64::try_from(msg.encode().len()).unwrap_or(u64::MAX));
            match msg {
                Message::Update { values, .. } => per_client[from] = Some(values.values),
                other => panic!("server: unexpected {other:?}"),
            }
        }
        // Fixed fold order => bit-for-bit reproducible aggregation.
        let mut acc = vec![0.0f32; PARAMS];
        for update in per_client.into_iter().flatten() {
            for (a, v) in acc.iter_mut().zip(&update) {
                *a += v / CLIENTS as f32;
            }
        }
        global = acc;
    }

    while handles.iter().any(|h| !h.is_finished()) {
        srv.linger(Duration::from_millis(25));
    }
    let mut rel = srv.stats();
    let mut chaos = srv.link().stats();
    for h in handles {
        let (r, c) = h.join().expect("client thread").expect("client run");
        rel = rel.merged(&r);
        chaos = chaos.merged(&c);
    }
    Outcome { global, bytes, rel, chaos }
}

fn main() {
    println!(
        "FedAvg over the chaos wire: {CLIENTS} clients x {ROUNDS} rounds, {PARAMS} params\n"
    );
    let plans: [(&str, FaultConfig); 4] = [
        ("clean", FaultConfig::default()),
        (
            "lossy",
            FaultConfig {
                wire_drop_prob: 0.2,
                seed: 11,
                ..FaultConfig::default()
            },
        ),
        (
            "noisy",
            FaultConfig {
                wire_corrupt_prob: 0.15,
                wire_duplicate_prob: 0.1,
                seed: 12,
                ..FaultConfig::default()
            },
        ),
        (
            "hostile",
            FaultConfig {
                wire_drop_prob: 0.25,
                wire_corrupt_prob: 0.1,
                wire_duplicate_prob: 0.1,
                wire_reorder_prob: 0.1,
                wire_delay_prob: 0.05,
                seed: 13,
                ..FaultConfig::default()
            },
        ),
    ];

    // RoundRecord-style columns (bytes, participants) next to the wire's
    // repair columns (retransmitted bytes, drops, corruptions, dups).
    let mut table = Table::new(&[
        "Plan",
        "Model[0]",
        "Bytes",
        "Participants",
        "Retx bytes",
        "Dropped",
        "Corrupted",
        "Duplicated",
        "Delayed",
    ]);
    let mut reference: Option<Vec<u32>> = None;
    for (name, faults) in &plans {
        let outcome = run(faults);
        let bits: Vec<u32> = outcome.global.iter().map(|v| v.to_bits()).collect();
        match &reference {
            None => reference = Some(bits),
            Some(clean) => assert_eq!(
                &bits, clean,
                "plan {name} changed the model — the session protocol must hide wire faults"
            ),
        }
        table.row(&[
            name,
            &format!("{:+.6}", outcome.global[0]),
            &format!("{}", outcome.bytes),
            &format!("{}", CLIENTS * ROUNDS),
            &format!("{}", outcome.rel.retransmitted_bytes),
            &format!("{}", outcome.chaos.drops),
            &format!("{}", outcome.chaos.corruptions),
            &format!("{}", outcome.chaos.duplicates),
            &format!("{}", outcome.chaos.delays),
        ]);
        eprintln!("finished plan {name}");
    }
    println!("{table}");
    println!("Every plan produced a bit-identical model: payload columns match the");
    println!("emulator's RoundRecord accounting, and only the repair-cost columns");
    println!("(retransmitted bytes, chaos counters) respond to the wire faults.");
}
