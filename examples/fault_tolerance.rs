//! Sweeps client fault rates to show that the fault-tolerant round loop
//! keeps both FedAvg and FedSU converging under dropout and upload
//! corruption, and what the faults cost in accuracy and bytes.
//!
//! ```text
//! cargo run --release --example fault_tolerance
//! ```

use fedsu_repro::metrics::Table;
use fedsu_repro::netsim::FaultConfig;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("Fault-tolerance sweep: FedAvg vs FedSU on the MLP task\n");

    let mut table = Table::new(&[
        "Scheme",
        "Dropout",
        "Best acc",
        "Total MB",
        "Dropped",
        "Quarantined",
        "Rollbacks",
    ]);
    for strategy in [StrategyKind::FedAvg, StrategyKind::FedSuCalibrated] {
        for dropout in [0.0, 0.1, 0.2, 0.3] {
            let mut scenario = Scenario::new(ModelKind::Mlp)
                .clients(8)
                .rounds(25)
                .samples_per_class(40);
            if dropout > 0.0 {
                scenario = scenario.faults(FaultConfig {
                    dropout_prob: dropout,
                    corrupt_prob: 0.02,
                    ..FaultConfig::default()
                });
            }
            let mut experiment = scenario.build(strategy)?;
            let result = experiment.run(None)?;
            table.row(&[
                &result.strategy,
                &format!("{:.0}%", dropout * 100.0),
                &format!("{:.3}", result.best_accuracy()),
                &format!("{:.2}", result.total_bytes() as f64 / 1e6),
                &format!("{}", result.total_dropped()),
                &format!("{}", result.total_quarantined()),
                &format!("{}", result.total_rollbacks()),
            ]);
            eprintln!("finished {} at dropout={dropout}", result.strategy);
        }
    }
    println!("{table}");
    println!("Dropped counts mid-round dropouts, lost uploads and crashed clients;");
    println!("quarantined counts uploads rejected by the norm-outlier filter. The");
    println!("defenses keep every run finite — no round diverges or panics.");
    Ok(())
}
