//! # fedsu-repro
//!
//! Umbrella crate of the FedSU reproduction: re-exports every subsystem and
//! provides the [`scenario`] toolkit that examples, integration tests and
//! the benchmark harness share to assemble paper-shaped experiments in a
//! few lines.
//!
//! ```
//! use fedsu_repro::scenario::{Scenario, ModelKind, StrategyKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut experiment = Scenario::new(ModelKind::Mlp)
//!     .clients(4)
//!     .rounds(3)
//!     .build(StrategyKind::FedSu)?;
//! let result = experiment.run(None)?;
//! assert_eq!(result.rounds.len(), 3);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod scenario;

pub use fedsu_core as core;
pub use fedsu_data as data;
pub use fedsu_fl as fl;
pub use fedsu_metrics as metrics;
pub use fedsu_netsim as netsim;
pub use fedsu_nn as nn;
pub use fedsu_strategies as strategies;
pub use fedsu_tensor as tensor;
pub use fedsu_transport as transport;
