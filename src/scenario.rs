//! Paper-shaped experiment assembly.
//!
//! A [`Scenario`] bundles the choices the paper's evaluation varies — which
//! model/dataset pair, which synchronization strategy, how many clients and
//! rounds — and produces a ready-to-run [`Experiment`]. The compute-time
//! constant of each model is calibrated so the communication-to-computation
//! ratio matches what Table I of the paper implies for that model (see
//! EXPERIMENTS.md), which is what determines "who wins by how much" in the
//! time-domain results.

use fedsu_core::{FedSu, FedSuConfig};
use fedsu_data::SyntheticConfig;
use fedsu_fl::experiment::ModelFactory;
use fedsu_fl::{ClientConfig, DefenseConfig, Experiment, ExperimentConfig, SyncStrategy};
use fedsu_netsim::{ClusterConfig, FaultConfig, FaultPlan};
use fedsu_nn::models::{self, ModelPreset};
use fedsu_nn::Sequential;
use fedsu_strategies::{Apf, ApfConfig, Cmfl, CmflConfig, FedAvg, Qsgd, QsgdConfig, TopK, TopKConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// The architectures of the paper's evaluation plus a fast MLP for smoke
/// tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ModelKind {
    /// 2-conv CNN on the EMNIST stand-in (paper target accuracy 0.60).
    Cnn,
    /// ResNet-18 on the FMNIST stand-in (paper target accuracy 0.85).
    ResNet18,
    /// DenseNet on the CIFAR-10 stand-in (paper target accuracy 0.65).
    DenseNet,
    /// Small MLP on a low-dimensional task (not in the paper; fast CI).
    Mlp,
}

impl ModelKind {
    /// Display name used in records and tables.
    pub fn name(self) -> &'static str {
        match self {
            ModelKind::Cnn => "cnn",
            ModelKind::ResNet18 => "resnet18",
            ModelKind::DenseNet => "densenet",
            ModelKind::Mlp => "mlp",
        }
    }

    /// Compute-to-communication ratio `κ` implied by the paper's Table I
    /// for this model: per-round compute time = κ × (full-model two-way
    /// transfer time on the client link). Derivation in EXPERIMENTS.md.
    pub fn compute_ratio(self) -> f64 {
        match self {
            ModelKind::Cnn => 0.39,
            ModelKind::DenseNet => 0.96,
            ModelKind::ResNet18 => 1.62,
            ModelKind::Mlp => 0.5,
        }
    }

    /// Learning rate used for this model.
    ///
    /// The CNN keeps the paper's 0.01. The deep models' paper rates
    /// (ResNet 0.001, DenseNet 0.01) are tuned for BatchNorm networks
    /// trained for tens of thousands of SGD steps; with GroupNorm,
    /// laptop-scale widths and two orders of magnitude fewer steps they
    /// barely move the loss, so the quick profile uses rates calibrated to
    /// reach the same converge-then-plateau regime (EXPERIMENTS.md §0).
    pub fn learning_rate(self) -> f32 {
        match self {
            ModelKind::Cnn => 0.01,
            ModelKind::ResNet18 => 0.1,
            ModelKind::DenseNet => 0.05,
            ModelKind::Mlp => 0.05,
        }
    }

    fn dataset_config(self) -> SyntheticConfig {
        match self {
            ModelKind::Cnn => SyntheticConfig::emnist_like(),
            ModelKind::ResNet18 => SyntheticConfig::fmnist_like(),
            ModelKind::DenseNet => SyntheticConfig::cifar_like(),
            ModelKind::Mlp => SyntheticConfig::new(3, 1, 4, 4).noise_std(0.4),
        }
    }

    fn factory(self, preset: ModelPreset) -> ModelFactory {
        match self {
            ModelKind::Cnn => Arc::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                models::cnn(10, preset, &mut rng)
            }),
            ModelKind::ResNet18 => Arc::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                models::resnet18(1, 10, preset, &mut rng)
            }),
            ModelKind::DenseNet => Arc::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                models::densenet(3, 10, preset, &mut rng)
            }),
            ModelKind::Mlp => Arc::new(move |seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut m = Sequential::new("mlp");
                m.push(fedsu_nn::flatten::Flatten::new());
                m.push_boxed(Box::new(models::mlp(&[16, 16, 3], &mut rng)?));
                Ok(m)
            }),
        }
    }
}

/// The synchronization strategies under evaluation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StrategyKind {
    /// Full synchronization (FedAvg).
    FedAvg,
    /// CMFL with the paper's default relevance threshold 0.8.
    Cmfl,
    /// APF with the paper's default stability threshold 0.05.
    Apf,
    /// APF at the quick-profile operating point (stability 0.15): the
    /// laptop-scale emulation aggregates far fewer samples per round than
    /// the paper's 90-client × 50-iteration setup, so the mini-batch noise
    /// floor on the `|⟨u⟩|/⟨|u|⟩`-style ratios is higher and thresholds
    /// scale accordingly (calibration in EXPERIMENTS.md).
    ApfCalibrated,
    /// QSGD-style stochastic quantization (extension baseline; the
    /// quantization family of Sec. II-B).
    Qsgd,
    /// Top-K magnitude sparsification with residual feedback (extension
    /// baseline; the classic magnitude-based sparsifier).
    TopK,
    /// FedSU with the paper's defaults (`T_R = 0.01`, `T_S = 1.0`).
    FedSu,
    /// FedSU at the quick-profile operating point (`T_R = 0.1`,
    /// `T_S = 10`): the same noise-floor scaling as [`StrategyKind::ApfCalibrated`].
    FedSuCalibrated,
    /// FedSU with explicit thresholds (sensitivity sweeps).
    FedSuWith {
        /// Predictability threshold `T_R`.
        t_r: f64,
        /// Error-feedback threshold `T_S`.
        t_s: f64,
    },
    /// Ablation v1: diagnosis without feedback, fixed period.
    FedSuV1 {
        /// Fixed speculation length in rounds.
        period: u16,
    },
    /// Ablation v2: random entry, fixed period.
    FedSuV2 {
        /// Per-round entry probability.
        probability: f64,
        /// Fixed speculation length in rounds.
        period: u16,
    },
}

impl StrategyKind {
    /// Instantiates the strategy.
    pub fn build(self) -> Box<dyn SyncStrategy> {
        match self {
            StrategyKind::FedAvg => Box::new(FedAvg::new()),
            StrategyKind::Cmfl => Box::new(Cmfl::new(CmflConfig::default())),
            StrategyKind::Apf => Box::new(Apf::new(ApfConfig::default())),
            StrategyKind::ApfCalibrated => {
                Box::new(Apf::new(ApfConfig { stability_threshold: 0.15, ..ApfConfig::default() }))
            }
            StrategyKind::Qsgd => Box::new(Qsgd::new(QsgdConfig::default())),
            StrategyKind::TopK => Box::new(TopK::new(TopKConfig::default())),
            StrategyKind::FedSu => Box::new(FedSu::new(FedSuConfig::default())),
            StrategyKind::FedSuCalibrated => {
                Box::new(FedSu::new(FedSuConfig { t_r: 0.1, t_s: 10.0, ..FedSuConfig::default() }))
            }
            StrategyKind::FedSuWith { t_r, t_s } => {
                Box::new(FedSu::new(FedSuConfig { t_r, t_s, ..FedSuConfig::default() }))
            }
            StrategyKind::FedSuV1 { period } => {
                Box::new(FedSu::variant_v1(FedSuConfig::default(), period))
            }
            StrategyKind::FedSuV2 { probability, period } => {
                Box::new(FedSu::variant_v2(FedSuConfig::default(), probability, period))
            }
        }
    }

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            StrategyKind::FedAvg => "fedavg",
            StrategyKind::Cmfl => "cmfl",
            StrategyKind::Apf | StrategyKind::ApfCalibrated => "apf",
            StrategyKind::Qsgd => "qsgd",
            StrategyKind::TopK => "topk",
            StrategyKind::FedSu | StrategyKind::FedSuCalibrated | StrategyKind::FedSuWith { .. } => {
                "fedsu"
            }
            StrategyKind::FedSuV1 { .. } => "fedsu-v1",
            StrategyKind::FedSuV2 { .. } => "fedsu-v2",
        }
    }
}

/// Builder for a paper-shaped experiment.
#[derive(Debug, Clone)]
pub struct Scenario {
    model: ModelKind,
    preset: ModelPreset,
    n_clients: usize,
    rounds: usize,
    samples_per_class: usize,
    test_per_class: usize,
    batch_size: usize,
    local_iters: usize,
    alpha: f64,
    seed: u64,
    eval_every: usize,
    select_fraction: f64,
    schedule: fedsu_fl::LrSchedule,
    faults: FaultConfig,
    defense: Option<DefenseConfig>,
    kernel_threads: usize,
}

impl Scenario {
    /// Starts a scenario with quick-profile defaults for `model`.
    pub fn new(model: ModelKind) -> Self {
        Scenario {
            model,
            preset: ModelPreset::Small,
            n_clients: 8,
            rounds: 30,
            samples_per_class: 40,
            test_per_class: 20,
            batch_size: 16,
            local_iters: 6,
            alpha: 1.0,
            seed: 42,
            eval_every: 1,
            select_fraction: 0.7,
            schedule: fedsu_fl::LrSchedule::Constant,
            faults: FaultConfig::default(),
            defense: None,
            kernel_threads: 0,
        }
    }

    /// Sets the architecture preset.
    pub fn preset(mut self, preset: ModelPreset) -> Self {
        self.preset = preset;
        self
    }

    /// Sets the number of clients.
    pub fn clients(mut self, n: usize) -> Self {
        self.n_clients = n;
        self
    }

    /// Sets the number of rounds.
    pub fn rounds(mut self, rounds: usize) -> Self {
        self.rounds = rounds;
        self
    }

    /// Sets the training-set size per class.
    pub fn samples_per_class(mut self, n: usize) -> Self {
        self.samples_per_class = n;
        self
    }

    /// Sets the mini-batch size.
    pub fn batch_size(mut self, n: usize) -> Self {
        self.batch_size = n;
        self
    }

    /// Sets local SGD iterations per round (`F_s`).
    pub fn local_iters(mut self, n: usize) -> Self {
        self.local_iters = n;
        self
    }

    /// Sets the Dirichlet concentration α.
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Evaluate every `n` rounds.
    pub fn eval_every(mut self, n: usize) -> Self {
        self.eval_every = n;
        self
    }

    /// Sets the earliest-K selection fraction.
    pub fn select_fraction(mut self, f: f64) -> Self {
        self.select_fraction = f;
        self
    }

    /// Sets the learning-rate schedule (Theorem 1's Eq. 13 condition).
    pub fn schedule(mut self, schedule: fedsu_fl::LrSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Injects faults per the given configuration. Unless a defense is set
    /// explicitly via [`Scenario::defense`], any non-zero fault plan also
    /// turns on the default server-side defenses (a faulty fleet with no
    /// tolerance would just abort).
    pub fn faults(mut self, faults: FaultConfig) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the server-side fault-tolerance configuration explicitly.
    pub fn defense(mut self, defense: DefenseConfig) -> Self {
        self.defense = Some(defense);
        self
    }

    /// Sets the kernel-level thread budget for tensor matmuls (`0` = auto).
    /// A pure performance knob: parallel kernels are bit-identical to the
    /// serial ones, so results never depend on this value.
    pub fn kernel_threads(mut self, n: usize) -> Self {
        self.kernel_threads = n;
        self
    }

    /// The model kind.
    pub fn model(&self) -> ModelKind {
        self.model
    }

    /// Assembles the experiment configuration (shared by [`build`]).
    ///
    /// [`build`]: Scenario::build
    fn config(&self, param_count: usize) -> ExperimentConfig {
        let cluster = ClusterConfig::paper_like(self.n_clients);
        // Two-way full-model transfer time on the client link, from which
        // the compute constant is derived via the paper-calibrated ratio.
        let full_bytes =
            u64::try_from(param_count * 4).expect("model byte size fits in u64 on all targets");
        let comm = cluster.client_link.transfer_secs(full_bytes) * 2.0;
        ExperimentConfig {
            cluster,
            select_fraction: self.select_fraction,
            rounds: self.rounds,
            client: ClientConfig {
                batch_size: self.batch_size,
                local_iters: self.local_iters,
                lr: self.model.learning_rate(),
                weight_decay: 1e-3,
                schedule: self.schedule,
                clip_norm: None,
            },
            alpha: self.alpha,
            seed: self.seed,
            eval_every: self.eval_every,
            compute_secs: comm * self.model.compute_ratio(),
            model_name: self.model.name().to_string(),
            availability: None,
            faults: FaultPlan::new(self.faults),
            defense: self.defense.unwrap_or_else(|| {
                if self.faults.is_zero() {
                    DefenseConfig::default()
                } else {
                    DefenseConfig::on()
                }
            }),
            kernel_threads: self.kernel_threads,
        }
    }

    /// Builds the experiment for the given strategy.
    ///
    /// # Errors
    ///
    /// Propagates model/dataset construction errors.
    pub fn build(&self, strategy: StrategyKind) -> Result<Experiment, fedsu_fl::FlError> {
        self.build_with(strategy.build())
    }

    /// Builds the experiment with a participation rule (participant
    /// dynamicity, Sec. V).
    ///
    /// # Errors
    ///
    /// Propagates model/dataset construction errors.
    pub fn build_with_availability(
        &self,
        strategy: StrategyKind,
        availability: Option<fedsu_fl::experiment::AvailabilityFn>,
    ) -> Result<Experiment, fedsu_fl::FlError> {
        self.assemble(strategy.build(), availability)
    }

    /// Builds with an explicit (possibly pre-configured) strategy object.
    ///
    /// # Errors
    ///
    /// Propagates model/dataset construction errors.
    pub fn build_with(&self, strategy: Box<dyn SyncStrategy>) -> Result<Experiment, fedsu_fl::FlError> {
        self.assemble(strategy, None)
    }

    fn assemble(
        &self,
        strategy: Box<dyn SyncStrategy>,
        availability: Option<fedsu_fl::experiment::AvailabilityFn>,
    ) -> Result<Experiment, fedsu_fl::FlError> {
        let mut data_rng = StdRng::seed_from_u64(self.seed ^ 0xDA7A);
        let (train, test) = self
            .model
            .dataset_config()
            .samples_per_class(self.samples_per_class)
            .build_split(self.test_per_class, &mut data_rng);
        let factory = self.model.factory(self.preset);
        // Probe the parameter count for compute-time calibration.
        let probe = factory(self.seed)?;
        let param_count = fedsu_nn::flat::param_count(&probe);
        let mut config = self.config(param_count);
        config.availability = availability;
        Experiment::new(config, factory, Arc::new(train), Arc::new(test), strategy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_scenario_runs_all_strategies() {
        for strat in [StrategyKind::FedAvg, StrategyKind::Cmfl, StrategyKind::Apf, StrategyKind::FedSu] {
            let mut e = Scenario::new(ModelKind::Mlp)
                .clients(3)
                .rounds(3)
                .samples_per_class(12)
                .build(strat)
                .unwrap();
            let r = e.run(None).unwrap();
            assert_eq!(r.rounds.len(), 3, "{}", strat.name());
        }
    }

    #[test]
    fn strategy_names_match_records() {
        let mut e = Scenario::new(ModelKind::Mlp).clients(2).rounds(1).samples_per_class(8).build(StrategyKind::Apf).unwrap();
        let r = e.run(None).unwrap();
        assert_eq!(r.strategy, "apf");
        assert_eq!(r.model, "mlp");
    }

    #[test]
    fn compute_ratio_ordering_matches_paper() {
        // Table I: ResNet is compute-heaviest relative to its size; CNN is
        // communication-dominated.
        assert!(ModelKind::ResNet18.compute_ratio() > ModelKind::DenseNet.compute_ratio());
        assert!(ModelKind::DenseNet.compute_ratio() > ModelKind::Cnn.compute_ratio());
    }

    #[test]
    fn faulty_scenario_auto_enables_defenses_and_completes() {
        let mut e = Scenario::new(ModelKind::Mlp)
            .clients(4)
            .rounds(4)
            .samples_per_class(12)
            .faults(FaultConfig { dropout_prob: 0.3, ..FaultConfig::default() })
            .build(StrategyKind::FedAvg)
            .unwrap();
        let r = e.run(None).unwrap();
        assert_eq!(r.rounds.len(), 4);
    }

    #[test]
    fn variants_build() {
        assert_eq!(StrategyKind::FedSuV1 { period: 5 }.build().name(), "fedsu-v1");
        assert_eq!(StrategyKind::FedSuV2 { probability: 0.01, period: 5 }.build().name(), "fedsu-v2");
        assert_eq!(StrategyKind::FedSuWith { t_r: 0.1, t_s: 2.0 }.build().name(), "fedsu");
    }
}
