//! Emulation ↔ wire parity: the headline guarantee of the fault-tolerant
//! transport stack.
//!
//! Two legs compute per-round [`RoundRecord`]s for the same deterministic
//! FedAvg workload:
//!
//! * the **wire leg** actually runs it — threads, encoded frames, the
//!   reliable session protocol, optionally the chaos bus — and fills the
//!   records from observed traffic;
//! * the **analytic leg** computes the same quantities the way the
//!   `fedsu-fl` emulation does (payload-byte formulas, fixed-order
//!   aggregation), without any wire.
//!
//! Contract: under a zero-fault plan the two record streams are equal
//! bit-for-bit; under a lossy plan within the retry budget the wire leg
//! still completes every round with no lost or double-counted update, its
//! records still match (retransmission overhead is accounted separately,
//! at run granularity, because client-side retries are not attributable to
//! a round from the server), and the session layer's
//! `retransmitted_bytes` obeys the same `payload × (attempts − 1)` rule as
//! `fedsu_fl::retransmitted_bytes`.
//!
//! Byte accounting follows the emulation's semantics: *payload* (encoded
//! `Message`) bytes, not envelope framing or acks.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::fl::{retransmitted_bytes, RoundRecord, BYTES_PER_SCALAR};
use fedsu_repro::netsim::{FaultConfig, FaultPlan};
use fedsu_repro::transport::{
    ChaosClient, ChaosServer, ClientSession, LocalBus, Message, ReliabilityStats, ServerSession,
    SessionConfig, SparseValues,
};
use std::time::Duration;

const PARAMS: usize = 16;
const CLIENTS: usize = 3;
const ROUNDS: usize = 4;
const T: Duration = Duration::from_secs(20);
/// End-of-run grace: longer than the peer's largest inter-retransmit gap
/// (`ack_timeout + backoff × max_retries` = 95ms) so a lingering endpoint
/// outlives every late retransmission aimed at it.
const LINGER: Duration = Duration::from_millis(250);

fn session_cfg() -> SessionConfig {
    SessionConfig {
        max_retries: 16,
        ack_timeout: Duration::from_millis(15),
        backoff: Duration::from_millis(5),
    }
}

/// Deterministic fake "local training", shared with the transport suite.
fn local_update(round: usize, client: usize, j: usize) -> f32 {
    ((round * 31 + client * 7 + j) % 13) as f32 * 0.01 - 0.06
}

/// Mean |update − model| in fixed (client, param) order — a deterministic
/// stand-in for train loss that both legs can compute identically.
fn pseudo_loss(model: &[f32], updates: &[Vec<f32>]) -> f32 {
    let mut sum = 0.0f32;
    for update in updates {
        for (j, v) in update.iter().enumerate() {
            sum += (v - model[j]).abs();
        }
    }
    sum / (CLIENTS * PARAMS) as f32
}

fn record_of(round: usize, bytes: u64, loss: f32) -> RoundRecord {
    RoundRecord {
        round,
        duration_secs: 0.0,
        sim_time_secs: 0.0,
        accuracy: None,
        test_loss: None,
        train_loss: loss,
        sparsification_ratio: 0.0,
        bytes,
        participants: CLIENTS,
        dropped: 0,
        quarantined: 0,
        retransmitted_bytes: 0,
        rollbacks: 0,
    }
}

struct WireRun {
    records: Vec<RoundRecord>,
    global: Vec<f32>,
    server_rel: ReliabilityStats,
    clients_rel: ReliabilityStats,
    model_payload: u64,
    update_payload: u64,
}

/// The wire leg: sessioned FedAvg over (chaos-decorated) endpoints,
/// records filled from observed traffic.
fn wire_leg(faults: &FaultConfig) -> WireRun {
    let (server, clients) = LocalBus::star(CLIENTS);
    let chaos_server = ChaosServer::new(server, FaultPlan::new(*faults));
    let mut srv = ServerSession::new(chaos_server, session_cfg());

    let handles: Vec<_> = clients
        .into_iter()
        .map(|endpoint| {
            let id = endpoint.id();
            let chaos = ChaosClient::new(endpoint, FaultPlan::new(*faults), id);
            std::thread::spawn(move || {
                let mut session = ClientSession::new(chaos, id as u32, session_cfg());
                for round in 0..ROUNDS {
                    session.begin_epoch(round as u32);
                    let trained = match session.recv_reliable(T).unwrap() {
                        Message::Model { round: r, values } => {
                            assert_eq!(r as usize, round);
                            values
                                .values
                                .iter()
                                .enumerate()
                                .map(|(j, v)| v + local_update(round, id, j))
                                .collect::<Vec<f32>>()
                        }
                        other => panic!("client {id}: unexpected {other:?}"),
                    };
                    session
                        .send_reliable(&Message::Update {
                            round: round as u32,
                            client: id as u32,
                            values: SparseValues::dense(trained),
                        })
                        .unwrap();
                }
                // TIME_WAIT: service the server's late retransmissions
                // (its last ack to us may have been chaos-dropped).
                session.linger(LINGER);
                session.stats()
            })
        })
        .collect();

    let mut records = Vec::with_capacity(ROUNDS);
    let mut global = vec![0.0f32; PARAMS];
    let mut model_payload = 0u64;
    let mut update_payload = 0u64;
    for round in 0..ROUNDS {
        srv.begin_epoch(round as u32);
        let model =
            Message::Model { round: round as u32, values: SparseValues::dense(global.clone()) };
        model_payload = model.encode().len() as u64;
        srv.broadcast_reliable(&model).unwrap();

        let mut per_client: Vec<Option<Vec<f32>>> = vec![None; CLIENTS];
        let mut round_bytes = model_payload
            .checked_mul(CLIENTS as u64)
            .expect("round byte total fits in u64: payloads are model-sized");
        while per_client.iter().any(Option::is_none) {
            let (from, msg) = srv.recv_reliable(T).unwrap();
            // Payload bytes as they traveled: re-encoding the delivered
            // message reproduces the exact frame payload.
            update_payload = msg.encode().len() as u64;
            round_bytes = round_bytes
                .checked_add(update_payload)
                .expect("round byte total fits in u64: payloads are model-sized");
            match msg {
                Message::Update { round: r, client, values } => {
                    assert_eq!(r as usize, round, "stale-epoch rejection must gate rounds");
                    assert_eq!(client as usize, from);
                    assert!(per_client[from].is_none(), "dedup failed: client {from} twice");
                    per_client[from] = Some(values.values);
                }
                other => panic!("server: unexpected {other:?}"),
            }
        }
        let updates: Vec<Vec<f32>> =
            per_client.into_iter().map(|u| u.unwrap()).collect();
        let loss = pseudo_loss(&global, &updates);
        let mut acc = vec![0.0f32; PARAMS];
        for update in &updates {
            for (a, v) in acc.iter_mut().zip(update) {
                *a += v / CLIENTS as f32;
            }
        }
        global = acc;
        records.push(record_of(round, round_bytes, loss));
    }

    // Server-side TIME_WAIT: keep re-acking clients' late retransmissions
    // until every client thread has actually finished its run.
    while handles.iter().any(|h| !h.is_finished()) {
        srv.linger(Duration::from_millis(25));
    }
    let mut clients_rel = ReliabilityStats::default();
    for h in handles {
        clients_rel = clients_rel.merged(&h.join().unwrap());
    }
    WireRun { records, global, server_rel: srv.stats(), clients_rel, model_payload, update_payload }
}

/// The analytic leg: the same records computed the emulation's way — byte
/// formulas from scalar counts, fixed-order aggregation, no wire.
fn analytic_leg() -> (Vec<RoundRecord>, Vec<f32>) {
    // Message wire sizes (see fedsu-transport): Model = magic+ver+tag (4)
    // + round (4) + payload tag (1) + count (4) + scalars; Update adds a
    // client id (4). Scalars cost BYTES_PER_SCALAR, as the fl runtime
    // assumes.
    let scalar_bytes = BYTES_PER_SCALAR * PARAMS as u64;
    let model_payload = 4 + 4 + 1 + 4 + scalar_bytes;
    let update_payload = 4 + 4 + 4 + 1 + 4 + scalar_bytes;
    let mut records = Vec::with_capacity(ROUNDS);
    let mut global = vec![0.0f32; PARAMS];
    for round in 0..ROUNDS {
        let updates: Vec<Vec<f32>> = (0..CLIENTS)
            .map(|client| {
                global
                    .iter()
                    .enumerate()
                    .map(|(j, v)| v + local_update(round, client, j))
                    .collect()
            })
            .collect();
        let loss = pseudo_loss(&global, &updates);
        let mut acc = vec![0.0f32; PARAMS];
        for update in &updates {
            for (a, v) in acc.iter_mut().zip(update) {
                *a += v / CLIENTS as f32;
            }
        }
        global = acc;
        let bytes = (model_payload + update_payload) * CLIENTS as u64;
        records.push(record_of(round, bytes, loss));
    }
    (records, global)
}

#[test]
fn zero_fault_wire_records_match_the_emulation_bit_for_bit() {
    let wire = wire_leg(&FaultConfig::default());
    let (analytic_records, analytic_global) = analytic_leg();
    assert_eq!(wire.records, analytic_records, "records must agree field-for-field");
    assert_eq!(
        wire.global.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        analytic_global.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "the aggregated model must be bit-identical"
    );
    // The analytic byte formulas really are the measured payload sizes.
    assert_eq!(wire.model_payload, 4 + 4 + 1 + 4 + BYTES_PER_SCALAR * PARAMS as u64);
    assert_eq!(wire.update_payload, 4 + 4 + 4 + 1 + 4 + BYTES_PER_SCALAR * PARAMS as u64);
    // And a clean wire retransmits nothing, so the two accountings agree
    // on zero.
    let rel = wire.server_rel.merged(&wire.clients_rel);
    assert_eq!(rel.retransmits, 0);
    assert_eq!(rel.retransmitted_bytes, 0);
}

#[test]
fn lossy_wire_still_matches_and_retransmission_accounting_is_shared() {
    let clean = wire_leg(&FaultConfig::default());
    let lossy_cfg = FaultConfig {
        wire_drop_prob: 0.25,
        wire_corrupt_prob: 0.1,
        wire_duplicate_prob: 0.1,
        wire_reorder_prob: 0.08,
        wire_delay_prob: 0.05,
        seed: 0x9A21,
        ..FaultConfig::default()
    };
    let lossy = wire_leg(&lossy_cfg);

    // Exactly-once under faults: records and model identical to the clean
    // wire run (which test 1 pins to the emulation).
    assert_eq!(lossy.records, clean.records, "faults within budget must be invisible in records");
    assert_eq!(
        lossy.global.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        clean.global.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
    );

    // The plan really did damage, and the overhead accounting matches the
    // fl-side rule payload × (attempts − 1): every client data frame
    // carries the same update payload, every server data frame the same
    // model payload, so the session totals must be exact multiples.
    assert!(lossy.clients_rel.retransmits > 0, "p=0.25 drops must force retries");
    assert_eq!(
        lossy.clients_rel.retransmitted_bytes,
        lossy.clients_rel.retransmits * lossy.update_payload,
        "client retransmission accounting must count exact payload bytes"
    );
    assert_eq!(
        lossy.server_rel.retransmitted_bytes,
        lossy.server_rel.retransmits * lossy.model_payload,
        "server retransmission accounting must count exact payload bytes"
    );
    // Spot-check the shared formula itself: one payload retried to the
    // k-th attempt contributes payload × (k − 1), the same quantity
    // RoundRecord::retransmitted_bytes accumulates in the emulation.
    for attempts in 1..=4u32 {
        assert_eq!(
            retransmitted_bytes(lossy.update_payload, attempts),
            u64::from(attempts - 1) * lossy.update_payload
        );
    }
}

// ---------------------------------------------------------------------------
// QSGD quantized-frame parity: the tag-8 `QuantizedUpdate` frame carries one
// byte per scalar plus a per-chunk scale, so the bytes framed on the bus are
// exactly what a byte-accounting emulation would charge — and decoding +
// dequantizing on the server reproduces the in-process strategy's arithmetic
// bit-for-bit (same RNG draws, same `((scale·sign)·level)/s` chain, same
// mean-then-apply aggregation order).
// ---------------------------------------------------------------------------

use fedsu_repro::fl::SyncStrategy;
use fedsu_repro::strategies::{Qsgd, QsgdConfig};
use fedsu_repro::transport::QuantizedValues;

const QCFG: QsgdConfig = QsgdConfig { levels: 15, seed: 0xC0DE };

/// Deterministic per-round client drift; scalar 3 lands on `-0.0` to pin the
/// sign-bit encoding.
fn q_update(round: usize, j: usize) -> f32 {
    if j == 3 {
        -0.0
    } else {
        ((round * 17 + j * 5) % 11) as f32 * 0.03 - 0.15
    }
}

/// Emulated leg: the in-process `Qsgd` strategy (quantization inside
/// `aggregate`), recording the global after every round.
fn qsgd_emulated_globals() -> Vec<Vec<f32>> {
    let mut strat = Qsgd::new(QCFG);
    let mut global = vec![0.0f32; PARAMS];
    let mut globals = Vec::with_capacity(ROUNDS);
    let mut uploads = Vec::new();
    for round in 0..ROUNDS {
        let locals: Vec<Vec<f32>> =
            vec![global.iter().enumerate().map(|(j, g)| g + q_update(round, j)).collect()];
        strat.prepare_uploads_into(round, &locals, &global, &mut uploads);
        strat.aggregate(round, &locals, &[0], &[true], &mut global);
        globals.push(global.clone());
    }
    globals
}

/// Wire leg: the client quantizes to wire codes, frames them as
/// `Message::QuantizedUpdate`, and pushes them through the reliable session
/// over the (zero-fault) chaos bus; the server decodes, dequantizes, and
/// applies the same one-client mean chain the emulated aggregate uses.
fn qsgd_wire_leg() -> (Vec<Vec<f32>>, u64) {
    let (server, clients) = LocalBus::star(1);
    let faults = FaultConfig::default();
    let chaos_server = ChaosServer::new(server, FaultPlan::new(faults));
    let mut srv = ServerSession::new(chaos_server, session_cfg());

    let endpoint = clients.into_iter().next().unwrap();
    let chaos = ChaosClient::new(endpoint, FaultPlan::new(faults), 0);
    let handle = std::thread::spawn(move || {
        let mut session = ClientSession::new(chaos, 0, session_cfg());
        let mut encoder = Qsgd::new(QCFG);
        let mut codes = Vec::new();
        for round in 0..ROUNDS {
            session.begin_epoch(round as u32);
            let global = match session.recv_reliable(T).unwrap() {
                Message::Model { round: r, values } => {
                    assert_eq!(r as usize, round);
                    values.values
                }
                other => panic!("client: unexpected {other:?}"),
            };
            // Same expressions as the emulated leg: local = g + drift,
            // update = local - g (NOT just the drift — fp rounding differs).
            let local: Vec<f32> =
                global.iter().enumerate().map(|(j, g)| g + q_update(round, j)).collect();
            let update: Vec<f32> = local.iter().zip(&global).map(|(l, g)| l - g).collect();
            let scale = encoder.quantize_to_codes(&update, &mut codes).unwrap();
            session
                .send_reliable(&Message::QuantizedUpdate {
                    round: round as u32,
                    client: 0,
                    values: QuantizedValues::new(
                        QCFG.levels,
                        PARAMS as u32,
                        vec![scale],
                        codes.clone(),
                    ),
                })
                .unwrap();
        }
        session.linger(LINGER);
    });

    let mut globals = Vec::with_capacity(ROUNDS);
    let mut global = vec![0.0f32; PARAMS];
    let mut quantized_payload = 0u64;
    let mut deq = Vec::new();
    for round in 0..ROUNDS {
        srv.begin_epoch(round as u32);
        srv.broadcast_reliable(&Message::Model {
            round: round as u32,
            values: SparseValues::dense(global.clone()),
        })
        .unwrap();
        let (from, msg) = srv.recv_reliable(T).unwrap();
        assert_eq!(from, 0);
        quantized_payload = msg.encode().len() as u64;
        match msg {
            Message::QuantizedUpdate { round: r, client: 0, values } => {
                assert_eq!(r as usize, round);
                assert_eq!(values.levels, QCFG.levels);
                assert_eq!(values.scales.len(), 1);
                Qsgd::dequantize_codes_into(values.levels, values.scales[0], &values.codes, &mut deq);
                // One selected client: mean_q = 0 + 1·q, then global += mean_q
                // (the exact chain `aggregate` runs; `0 + 1·(-0.0)` is `+0.0`,
                // so the intermediate matters for bit-parity).
                for (g, &d) in global.iter_mut().zip(&deq) {
                    let mean = 0.0f32 + 1.0 * d;
                    *g += mean;
                }
            }
            other => panic!("server: unexpected {other:?}"),
        }
        globals.push(global.clone());
    }
    while !handle.is_finished() {
        srv.linger(Duration::from_millis(25));
    }
    handle.join().unwrap();
    (globals, quantized_payload)
}

#[test]
fn qsgd_codes_on_the_bus_reproduce_the_emulated_strategy_bit_for_bit() {
    let (wire, payload) = qsgd_wire_leg();
    let emulated = qsgd_emulated_globals();
    assert_eq!(wire.len(), emulated.len());
    for (round, (w, e)) in wire.iter().zip(&emulated).enumerate() {
        for (j, (a, b)) in w.iter().zip(e).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "round {round} scalar {j}: wire {a} vs emulated {b}"
            );
        }
    }
    // Byte accounting: the framed payload is exactly header(4) + ids(8) +
    // levels/chunk_len/scale-count(12) + one scale(4) + code count(4) + one
    // code byte per scalar — and is smaller than the dense f32 frame.
    assert_eq!(payload as usize, 4 + 8 + 12 + 4 + 4 + PARAMS);
    let dense =
        Message::Update { round: 0, client: 0, values: SparseValues::dense(vec![0.0; PARAMS]) };
    assert!((payload as usize) < dense.encode().len());
}
