//! Property-based tests of the FedSU manager's invariants under random
//! client dynamics.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::core::{FedSu, FedSuConfig, JoinState};
use fedsu_repro::fl::SyncStrategy;
use proptest::prelude::*;

/// Drives `rounds` of random-ish dynamics over `n` scalars and `clients`
/// clients and returns the manager plus the final global vector.
fn drive(
    n: usize,
    clients: usize,
    rounds: usize,
    cfg: FedSuConfig,
    update_of: impl Fn(usize, usize, usize) -> f32, // (round, client, param) -> local update
) -> (FedSu, Vec<f32>) {
    let mut f = FedSu::new(cfg);
    let mut global = vec![0.0f32; n];
    let selected: Vec<usize> = (0..clients).collect();
    let active = vec![true; clients];
    for round in 0..rounds {
        let locals: Vec<Vec<f32>> = (0..clients)
            .map(|c| (0..n).map(|j| global[j] + update_of(round, c, j)).collect())
            .collect();
        f.prepare_uploads(round, &locals, &global);
        let out = f.aggregate(round, &locals, &selected, &active, &mut global);
        // Conservation: synced + skipped-but-unchecked scalars == total.
        assert!(out.synced_scalars <= out.total_scalars);
        assert_eq!(out.total_scalars, n);
    }
    (f, global)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn global_stays_finite_under_random_dynamics(seed in 0u64..500, n in 1usize..8, clients in 1usize..4) {
        let cfg = FedSuConfig { t_r: 0.3, t_s: 5.0, ..FedSuConfig::default() };
        let (f, global) = drive(n, clients, 30, cfg, |r, c, j| {
            // Pseudo-random but deterministic updates.
            let x = (seed as f32 + r as f32 * 1.3 + c as f32 * 0.7 + j as f32 * 2.1).sin();
            x * 0.05
        });
        prop_assert!(global.iter().all(|v| v.is_finite()));
        // Skip fractions are valid probabilities.
        if let Some(sf) = f.skip_fractions() {
            prop_assert!(sf.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }

    #[test]
    fn uploads_equal_unpredictable_plus_checks(seed in 0u64..500, n in 1usize..10) {
        let cfg = FedSuConfig { t_r: 0.3, t_s: 10.0, ..FedSuConfig::default() };
        let mut f = FedSu::new(cfg);
        let mut global = vec![0.0f32; n];
        for round in 0..25 {
            let slope = 0.01 + (seed % 7) as f32 * 0.001;
            let locals: Vec<Vec<f32>> = (0..2)
                .map(|_| (0..n).map(|j| global[j] - slope * (1.0 + j as f32 * 0.1)).collect())
                .collect();
            let ups = f.prepare_uploads(round, &locals, &global);
            // Replicated state: all clients upload the same volume.
            prop_assert!(ups.windows(2).all(|w| w[0] == w[1]));
            let unpredictable = f.predictable_mask().iter().filter(|&&p| !p).count() as u64;
            prop_assert!(ups[0] >= unpredictable, "uploads {} < unpredictable {}", ups[0], unpredictable);
            prop_assert!(ups[0] <= n as u64);
            f.aggregate(round, &locals, &[0, 1], &[true, true], &mut global);
        }
    }

    #[test]
    fn speculative_value_follows_slope_exactly(slope in -0.1f32..0.1) {
        prop_assume!(slope.abs() > 1e-4);
        let cfg = FedSuConfig { t_r: 0.3, t_s: 1e9, ..FedSuConfig::default() };
        let mut f = FedSu::new(cfg);
        let mut global = vec![0.0f32];
        let mut round = 0;
        // Promote with a constant slope.
        while !f.predictable_mask().first().copied().unwrap_or(false) {
            let locals = vec![vec![global[0] + slope]];
            f.prepare_uploads(round, &locals, &global);
            f.aggregate(round, &locals, &[0], &[true], &mut global);
            round += 1;
            prop_assert!(round < 12);
        }
        // While speculative, the global value moves by exactly `slope` each
        // round regardless of what the clients report.
        for k in 0..8 {
            let before = global[0];
            let locals = vec![vec![before + slope * 3.0]]; // hostile local
            f.prepare_uploads(round + k, &locals, &global);
            f.aggregate(round + k, &locals, &[0], &[true], &mut global);
            if f.predictable_mask()[0] {
                prop_assert!((global[0] - (before + slope)).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn join_state_roundtrips_after_random_history(seed in 0u64..500, n in 1usize..12) {
        let cfg = FedSuConfig { t_r: 0.25, ..FedSuConfig::default() };
        let (f, _) = drive(n, 2, 20, cfg, |r, c, j| {
            ((seed + r as u64 * 31 + c as u64 * 17 + j as u64 * 7) % 100) as f32 / 1000.0 - 0.05
        });
        if let Some(bytes) = f.join_state() {
            let state = JoinState::from_bytes(&bytes).unwrap();
            prop_assert_eq!(state.len(), n);
            prop_assert_eq!(state.to_bytes(), bytes);
        }
    }

    #[test]
    fn enters_and_exits_balance_with_mask(seed in 0u64..500) {
        let cfg = FedSuConfig { t_r: 0.3, t_s: 2.0, ..FedSuConfig::default() };
        let (f, _) = drive(4, 2, 40, cfg, |r, _c, j| {
            // Mix of linear phases and regime switches.
            if (r / 10 + j) % 2 == 0 { -0.02 } else { ((seed as f32 + r as f32) * 0.9).sin() * 0.05 }
        });
        let active = f.predictable_mask().iter().filter(|&&p| p).count() as u64;
        prop_assert_eq!(f.total_enters() - f.total_exits(), active);
    }
}

#[test]
fn oscillation_ratio_reported_in_unit_interval() {
    let cfg = FedSuConfig { t_r: 0.3, ..FedSuConfig::default() };
    let (f, _) = drive(5, 2, 30, cfg, |r, c, j| ((r * 7 + c * 3 + j) % 11) as f32 * 0.01 - 0.05);
    for j in 0..5 {
        let r = f.oscillation_ratio(j);
        assert!((0.0..=1.0).contains(&r), "ratio {r}");
    }
}
