//! The runtime invariant guards (`FEDSU_CHECK_INVARIANTS`) must be pure
//! observers: arming them may abort on violation but must never perturb the
//! emulation. A zero-fault run with every guard armed has to reproduce the
//! legacy `RoundRecord`s bit-for-bit.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::fl::ExperimentResult;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};
use fedsu_repro::tensor::invariant;

fn run(strategy: StrategyKind) -> ExperimentResult {
    let mut e = Scenario::new(ModelKind::Mlp)
        .clients(5)
        .rounds(12)
        .samples_per_class(20)
        .seed(11)
        .build(strategy)
        .unwrap();
    e.run(None).unwrap()
}

/// One test, not several: the invariant switch is process-global, so the
/// armed/unarmed phases must run in a fixed order rather than race across
/// test threads (other tests in this binary never touch the switch).
#[test]
fn armed_guards_reproduce_zero_fault_records_bit_for_bit() {
    for strategy in [
        StrategyKind::FedAvg,
        StrategyKind::FedSuCalibrated,
        StrategyKind::FedSuV1 { period: 4 },
    ] {
        invariant::set_enabled(false);
        let baseline = run(strategy);

        invariant::set_enabled(true);
        let guarded = run(strategy);
        invariant::set_enabled(false);

        // Strict equality, not approximate: RoundRecord derives PartialEq
        // over its f32/f64 fields, so this compares every bit of every
        // record — durations, losses, byte counts, mask statistics.
        assert_eq!(
            baseline, guarded,
            "{strategy:?}: arming FEDSU_CHECK_INVARIANTS changed the records"
        );
    }
}
