//! Communication-accounting invariants across strategies: conservation of
//! scalars, byte arithmetic, and sparsification-ratio bounds.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::fl::RoundRecord;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};

fn run(strategy: StrategyKind) -> Vec<RoundRecord> {
    let mut e = Scenario::new(ModelKind::Mlp)
        .clients(5)
        .rounds(25)
        .samples_per_class(30)
        .seed(3)
        .build(strategy)
        .unwrap();
    e.run(None).unwrap().rounds
}

#[test]
fn sparsification_ratio_is_bounded_for_every_strategy() {
    for strategy in [
        StrategyKind::FedAvg,
        StrategyKind::Cmfl,
        StrategyKind::ApfCalibrated,
        StrategyKind::FedSuCalibrated,
        StrategyKind::FedSuV1 { period: 4 },
        StrategyKind::FedSuV2 { probability: 0.02, period: 4 },
    ] {
        for r in run(strategy) {
            assert!(
                (0.0..=1.0).contains(&r.sparsification_ratio),
                "{strategy:?} round {} ratio {}",
                r.round,
                r.sparsification_ratio
            );
        }
    }
}

#[test]
fn fedavg_never_sparsifies() {
    for r in run(StrategyKind::FedAvg) {
        assert_eq!(r.sparsification_ratio, 0.0);
    }
}

#[test]
fn bytes_are_positive_and_track_sparsification() {
    let fedavg = run(StrategyKind::FedAvg);
    let fedsu = run(StrategyKind::FedSuCalibrated);
    for (a, s) in fedavg.iter().zip(&fedsu) {
        assert!(a.bytes > 0);
        // A round that skips synchronization moves no more bytes than the
        // full-sync round (strictly fewer when the ratio is positive).
        if s.sparsification_ratio > 0.0 {
            assert!(s.bytes < a.bytes, "round {}: {} vs {}", s.round, s.bytes, a.bytes);
        }
    }
}

#[test]
fn sim_time_is_strictly_increasing() {
    for strategy in [StrategyKind::FedAvg, StrategyKind::FedSuCalibrated] {
        let rounds = run(strategy);
        let mut last = 0.0;
        for r in rounds {
            assert!(r.sim_time_secs > last);
            last = r.sim_time_secs;
            assert!(r.duration_secs > 0.0);
        }
    }
}

#[test]
fn participants_respect_selection_fraction() {
    // 5 clients at 70% -> round(3.5) = 4 participants every round.
    for r in run(StrategyKind::FedAvg) {
        assert_eq!(r.participants, 4);
    }
}

#[test]
fn train_loss_is_finite_and_eventually_decreases() {
    let rounds = run(StrategyKind::FedSuCalibrated);
    assert!(rounds.iter().all(|r| r.train_loss.is_finite()));
    let first = rounds.first().unwrap().train_loss;
    let last = rounds.last().unwrap().train_loss;
    assert!(last < first, "train loss {first} -> {last}");
}
