//! Cross-validation of the paper's central claim (Sec. IV-A): the cheap
//! second-order oscillation ratio agrees with the expensive least-squares
//! linearity test it replaces, both on constructed trajectories and on real
//! FL parameter trajectories.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::core::diagnosis::OscillationDiagnostic;
use fedsu_repro::metrics::{linear_fit, TrajectoryRecorder};
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};

#[test]
fn oscillation_ratio_ranks_like_r_squared_on_constructed_series() {
    // Build trajectories with graded curvature; the two diagnostics must
    // rank them the same way (more curvature = less linear).
    let horizon = 40;
    let curvatures = [0.0f32, 1e-4, 5e-4, 2e-3];
    let mut ratios = Vec::new();
    let mut r2s = Vec::new();
    for &c in &curvatures {
        let series: Vec<f32> = (0..horizon).map(|k| {
            let k = k as f32;
            -0.01 * k + c * k * k
        }).collect();
        let mut diag = OscillationDiagnostic::new(1, 0.9);
        for v in &series {
            diag.observe_params(&[*v]);
        }
        ratios.push(diag.ratio(0));
        r2s.push(linear_fit(&series).unwrap().r_squared);
    }
    // Oscillation ratio increases with curvature. (R² is *not* monotone in
    // curvature — a steep parabola is still monotone, so a line fits it
    // decently — which is exactly why the second-order test is the better
    // linearity detector.)
    for w in ratios.windows(2) {
        assert!(w[1] >= w[0], "ratios not monotone: {ratios:?}");
    }
    // Both diagnostics agree on the clear-cut cases: the straight line is
    // the most linear under either metric.
    assert!(ratios[0] < 0.01, "line should diagnose linear: {ratios:?}");
    assert!(r2s[0] >= r2s.iter().fold(0.0, |m, &v| f64::max(m, v)) - 1e-9);
    assert!(ratios.last().unwrap() > &0.9, "strong curvature should diagnose non-linear");
}

#[test]
fn speculative_parameters_have_more_linear_trajectories() {
    // Run FedSU on the MLP task while recording every parameter's
    // trajectory under the hood; parameters FedSU kept speculative longest
    // must have (on average) straighter trajectories than the ones it never
    // trusted.
    let mut experiment = Scenario::new(ModelKind::Mlp)
        .clients(6)
        .rounds(40)
        .samples_per_class(40)
        .seed(21)
        .build(StrategyKind::FedSuCalibrated)
        .unwrap();
    let n = experiment.param_count();
    let mut recorder = TrajectoryRecorder::new(&(0..n).collect::<Vec<_>>());
    let mut hook =
        |_r: &fedsu_repro::fl::RoundRecord, g: &[f32]| recorder.observe(g);
    experiment.run(Some(&mut hook)).unwrap();
    let skips = experiment.strategy().skip_fractions().unwrap();

    // Split parameters into most- and least-speculative quartiles.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| skips[b].total_cmp(&skips[a]));
    let q = (n / 4).max(1);
    let mean_r2 = |idx: &[usize]| -> f64 {
        let mut sum = 0.0;
        let mut count = 0usize;
        for &j in idx {
            if let Some(fit) = linear_fit(recorder.trajectory(j)) {
                sum += fit.r_squared;
                count += 1;
            }
        }
        sum / count.max(1) as f64
    };
    let speculative = mean_r2(&order[..q]);
    let regular = mean_r2(&order[n - q..]);
    assert!(
        speculative >= regular,
        "speculative params should be more linear: {speculative:.3} vs {regular:.3}"
    );
}
