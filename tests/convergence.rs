//! End-to-end convergence tests: every synchronization scheme trains the
//! synthetic task to high accuracy, and the paper's headline orderings hold
//! (FedSU sparsifies more than APF without losing accuracy).

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};

fn scenario() -> Scenario {
    Scenario::new(ModelKind::Mlp).clients(6).rounds(30).samples_per_class(40).seed(7)
}

#[test]
fn all_strategies_converge_on_the_synthetic_task() {
    for strategy in [
        StrategyKind::FedAvg,
        StrategyKind::Cmfl,
        StrategyKind::ApfCalibrated,
        StrategyKind::FedSuCalibrated,
    ] {
        let mut experiment = scenario().build(strategy).unwrap();
        let result = experiment.run(None).unwrap();
        assert!(
            result.best_accuracy() > 0.8,
            "{} only reached {:.3}",
            result.strategy,
            result.best_accuracy()
        );
    }
}

#[test]
fn fedsu_accuracy_matches_fedavg_within_tolerance() {
    let mut fedavg = scenario().build(StrategyKind::FedAvg).unwrap();
    let ra = fedavg.run(None).unwrap();
    let mut fedsu = scenario().build(StrategyKind::FedSuCalibrated).unwrap();
    let rs = fedsu.run(None).unwrap();
    // The paper's central claim: sparsification without accuracy loss.
    assert!(
        rs.best_accuracy() >= ra.best_accuracy() - 0.05,
        "fedsu {:.3} vs fedavg {:.3}",
        rs.best_accuracy(),
        ra.best_accuracy()
    );
}

#[test]
fn fedsu_sparsifies_more_than_apf() {
    // Longer horizon so both mechanisms get past their warmup.
    let scen = Scenario::new(ModelKind::Mlp).clients(6).rounds(60).samples_per_class(40).seed(7);
    let mut apf = scen.build(StrategyKind::ApfCalibrated).unwrap();
    let ra = apf.run(None).unwrap();
    let mut fedsu = scen.build(StrategyKind::FedSuCalibrated).unwrap();
    let rs = fedsu.run(None).unwrap();
    assert!(
        rs.mean_sparsification() > ra.mean_sparsification(),
        "fedsu {:.3} vs apf {:.3}",
        rs.mean_sparsification(),
        ra.mean_sparsification()
    );
    assert!(rs.mean_sparsification() > 0.02, "fedsu should skip a nontrivial share");
}

#[test]
fn fedsu_moves_fewer_bytes_than_fedavg() {
    let mut fedavg = scenario().build(StrategyKind::FedAvg).unwrap();
    let ra = fedavg.run(None).unwrap();
    let mut fedsu = scenario().build(StrategyKind::FedSuCalibrated).unwrap();
    let rs = fedsu.run(None).unwrap();
    assert!(
        rs.total_bytes() < ra.total_bytes(),
        "fedsu {} vs fedavg {}",
        rs.total_bytes(),
        ra.total_bytes()
    );
}

#[test]
fn fedsu_finishes_in_less_simulated_time() {
    let mut fedavg = scenario().build(StrategyKind::FedAvg).unwrap();
    let ra = fedavg.run(None).unwrap();
    let mut fedsu = scenario().build(StrategyKind::FedSuCalibrated).unwrap();
    let rs = fedsu.run(None).unwrap();
    let ta = ra.rounds.last().unwrap().sim_time_secs;
    let ts = rs.rounds.last().unwrap().sim_time_secs;
    assert!(ts <= ta, "fedsu sim time {ts:.1}s vs fedavg {ta:.1}s");
}

#[test]
fn identical_seeds_reproduce_identical_runs() {
    let mut a = scenario().build(StrategyKind::FedSuCalibrated).unwrap();
    let ra = a.run(None).unwrap();
    let mut b = scenario().build(StrategyKind::FedSuCalibrated).unwrap();
    let rb = b.run(None).unwrap();
    assert_eq!(ra.rounds, rb.rounds);
}

#[test]
fn different_seeds_differ() {
    let mut a = scenario().build(StrategyKind::FedAvg).unwrap();
    let ra = a.run(None).unwrap();
    let mut b = scenario().seed(8).build(StrategyKind::FedAvg).unwrap();
    let rb = b.run(None).unwrap();
    assert_ne!(ra.rounds, rb.rounds);
}

#[test]
fn higher_skew_does_not_break_fedsu() {
    // Strong non-IID (alpha = 0.1): accuracy may dip, but the run must stay
    // finite and the error feedback must keep the model trainable.
    let mut e = scenario().alpha(0.1).build(StrategyKind::FedSuCalibrated).unwrap();
    let r = e.run(None).unwrap();
    assert!(r.best_accuracy() > 0.5, "got {:.3}", r.best_accuracy());
}
