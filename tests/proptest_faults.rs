//! Property-based tests of the fault-tolerant round loop: for random fault
//! plans the experiment must complete, keep the global model finite, keep
//! simulated time strictly monotone, and stay fully deterministic.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::fl::DefenseConfig;
use fedsu_repro::netsim::FaultConfig;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};
use proptest::prelude::*;

const ROUNDS: usize = 6;

fn run_faulty(faults: FaultConfig) -> (fedsu_repro::fl::ExperimentResult, bool) {
    let mut saw_nonfinite = false;
    let mut experiment = Scenario::new(ModelKind::Mlp)
        .clients(5)
        .rounds(ROUNDS)
        .samples_per_class(12)
        .seed(3)
        .faults(faults)
        .defense(DefenseConfig::on())
        .build(StrategyKind::FedSuCalibrated)
        .unwrap();
    let mut hook = |_record: &fedsu_repro::fl::RoundRecord, global: &[f32]| {
        if !global.iter().all(|v| v.is_finite()) {
            saw_nonfinite = true;
        }
    };
    let result = experiment.run(Some(&mut hook)).unwrap();
    (result, saw_nonfinite)
}

fn fault_config_strategy() -> impl Strategy<Value = FaultConfig> {
    (
        0.0f64..0.35,
        0.0f64..0.3,
        0.0f64..0.1,
        0.0f64..0.3,
        0.0f64..0.1,
        0u64..1000,
    )
        .prop_map(|(dropout, loss, corrupt, slowdown, crash, seed)| FaultConfig {
            dropout_prob: dropout,
            upload_loss_prob: loss,
            corrupt_prob: corrupt,
            slowdown_prob: slowdown,
            crash_prob: crash,
            seed,
            ..FaultConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn random_fault_plans_never_break_the_run(faults in fault_config_strategy()) {
        let (result, saw_nonfinite) = run_faulty(faults);

        // The run completes every round and the global model stays finite.
        prop_assert_eq!(result.rounds.len(), ROUNDS);
        prop_assert!(!saw_nonfinite, "global model went non-finite mid-run");
        prop_assert!(result.rounds.iter().all(|r| r.train_loss.is_finite()));

        // Simulated time is strictly monotone: every round costs time, even
        // barren ones (they are charged the lost-round penalty).
        let mut prev = 0.0;
        for r in &result.rounds {
            prop_assert!(
                r.sim_time_secs > prev,
                "sim time not strictly monotone at round {}: {} <= {}",
                r.round,
                r.sim_time_secs,
                prev
            );
            prev = r.sim_time_secs;
        }
    }

    #[test]
    fn same_fault_plan_is_deterministic(faults in fault_config_strategy()) {
        let (a, _) = run_faulty(faults);
        let (b, _) = run_faulty(faults);
        prop_assert_eq!(a.rounds, b.rounds);
    }
}
