//! Failure injection: divergence detection, degenerate cluster shapes, and
//! hostile strategy behaviour.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::fl::strategy::average_into;
use fedsu_repro::fl::{AggregateOutcome, FlError, SyncStrategy};
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};

/// A strategy that corrupts the global model with NaNs after a few rounds.
struct Saboteur {
    after: usize,
}

impl SyncStrategy for Saboteur {
    fn name(&self) -> &str {
        "saboteur"
    }
    fn prepare_uploads(&mut self, _round: usize, locals: &[Vec<f32>], _global: &[f32]) -> Vec<u64> {
        locals.iter().map(|l| l.len() as u64).collect()
    }
    fn aggregate(
        &mut self,
        round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        _active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome {
        average_into(locals, selected, global);
        if round >= self.after {
            global[0] = f32::NAN;
        }
        AggregateOutcome {
            broadcast_scalars: global.len(),
            synced_scalars: global.len(),
            total_scalars: global.len(),
        }
    }
}

fn scenario() -> Scenario {
    Scenario::new(ModelKind::Mlp).clients(3).rounds(10).samples_per_class(20).seed(5)
}

#[test]
fn nan_in_global_is_reported_as_divergence() {
    let mut e = scenario().build_with(Box::new(Saboteur { after: 4 })).unwrap();
    match e.run(None) {
        Err(FlError::Diverged { round }) => assert_eq!(round, 4),
        other => panic!("expected divergence, got {other:?}"),
    }
}

#[test]
fn single_client_cluster_works() {
    let mut e = Scenario::new(ModelKind::Mlp)
        .clients(1)
        .rounds(8)
        .samples_per_class(30)
        .select_fraction(1.0)
        .build(StrategyKind::FedSuCalibrated)
        .unwrap();
    let r = e.run(None).unwrap();
    assert_eq!(r.rounds.len(), 8);
    assert!(r.rounds.iter().all(|x| x.participants == 1));
}

#[test]
fn full_participation_fraction_works() {
    let mut e = scenario().select_fraction(1.0).build(StrategyKind::FedAvg).unwrap();
    let r = e.run(None).unwrap();
    assert!(r.rounds.iter().all(|x| x.participants == 3));
}

#[test]
fn minimal_participation_fraction_works() {
    let mut e = scenario().select_fraction(0.01).build(StrategyKind::FedSuCalibrated).unwrap();
    let r = e.run(None).unwrap();
    assert!(r.rounds.iter().all(|x| x.participants == 1));
}

#[test]
fn huge_learning_rate_diverges_cleanly() {
    // lr far above stability: the runtime must report divergence (or a
    // non-finite loss) instead of panicking or looping forever.
    use fedsu_repro::fl::{ClientConfig, Experiment, ExperimentConfig};
    use fedsu_repro::netsim::ClusterConfig;
    use fedsu_repro::strategies::FedAvg;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    let mut rng = StdRng::seed_from_u64(0);
    let (train, test) = fedsu_repro::data::SyntheticConfig::new(3, 1, 4, 4)
        .samples_per_class(20)
        .build_split(5, &mut rng);
    let factory: fedsu_repro::fl::experiment::ModelFactory = Arc::new(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = fedsu_repro::nn::Sequential::new("m");
        m.push(fedsu_repro::nn::flatten::Flatten::new());
        m.push_boxed(Box::new(fedsu_repro::nn::models::mlp(&[16, 8, 3], &mut rng)?));
        Ok(m)
    });
    let config = ExperimentConfig {
        cluster: ClusterConfig::paper_like(3),
        select_fraction: 1.0,
        rounds: 50,
        client: ClientConfig {
            batch_size: 4,
            local_iters: 5,
            lr: 1e4,
            weight_decay: 0.0,
            schedule: fedsu_repro::fl::LrSchedule::Constant,
            clip_norm: None,
        },
        alpha: 1.0,
        seed: 0,
        eval_every: 10,
        compute_secs: 1.0,
        model_name: "mlp".to_string(),
        availability: None,
        faults: fedsu_repro::netsim::FaultPlan::none(),
        defense: fedsu_repro::fl::DefenseConfig::default(),
        kernel_threads: 0,
    };
    let mut e = Experiment::new(config, factory, Arc::new(train), Arc::new(test), Box::new(FedAvg::new())).unwrap();
    assert!(matches!(e.run(None), Err(FlError::Diverged { .. })));
}

#[test]
fn strategy_contract_violation_is_detected() {
    struct ShortUploads;
    impl SyncStrategy for ShortUploads {
        fn name(&self) -> &str {
            "short"
        }
        fn prepare_uploads(&mut self, _round: usize, _locals: &[Vec<f32>], _global: &[f32]) -> Vec<u64> {
            vec![0] // wrong length: one entry for many clients
        }
        fn aggregate(
            &mut self,
            _round: usize,
            locals: &[Vec<f32>],
            selected: &[usize],
            _active: &[bool],
            global: &mut [f32],
        ) -> AggregateOutcome {
            average_into(locals, selected, global);
            AggregateOutcome { broadcast_scalars: 0, synced_scalars: 0, total_scalars: global.len() }
        }
    }
    let mut e = scenario().build_with(Box::new(ShortUploads)).unwrap();
    assert!(matches!(e.run(None), Err(FlError::StrategyContract(_))));
}

// ---------------------------------------------------------------------------
// Fault-injection acceptance: the hardened round loop keeps both FedAvg and
// FedSU converging under the issue's target fault mix.
// ---------------------------------------------------------------------------

fn faulty_scenario(strategy: StrategyKind) -> (f32, f32, usize) {
    use fedsu_repro::netsim::FaultConfig;

    let build = |faults: Option<FaultConfig>| {
        let mut s =
            Scenario::new(ModelKind::Mlp).clients(16).rounds(20).samples_per_class(40).seed(7);
        if let Some(f) = faults {
            s = s.faults(f);
        }
        s.build(strategy).unwrap()
    };

    let clean = build(None).run(None).unwrap();
    let faulty = build(Some(FaultConfig {
        dropout_prob: 0.15,
        upload_loss_prob: 0.05,
        corrupt_prob: 0.02,
        ..FaultConfig::default()
    }))
    .run(None)
    .unwrap();

    assert_eq!(faulty.rounds.len(), 20, "faulty run must complete every round");
    let injected = faulty.total_dropped() + faulty.total_quarantined();
    (clean.best_accuracy(), faulty.best_accuracy(), injected)
}

#[test]
fn fedavg_survives_dropout_and_corruption() {
    let (clean, faulty, injected) = faulty_scenario(StrategyKind::FedAvg);
    assert!(injected > 0, "fault plan must actually fire");
    assert!(
        (clean - faulty).abs() <= 0.05,
        "FedAvg accuracy drifted too far under faults: clean {clean:.3} vs faulty {faulty:.3}"
    );
}

#[test]
fn fedsu_survives_dropout_and_corruption() {
    let (clean, faulty, injected) = faulty_scenario(StrategyKind::FedSuCalibrated);
    assert!(injected > 0, "fault plan must actually fire");
    assert!(
        (clean - faulty).abs() <= 0.05,
        "FedSU accuracy drifted too far under faults: clean {clean:.3} vs faulty {faulty:.3}"
    );
}

#[test]
fn zero_fault_plan_reproduces_fault_free_records() {
    use fedsu_repro::netsim::FaultConfig;

    let baseline = scenario().build(StrategyKind::FedSuCalibrated).unwrap().run(None).unwrap();
    let zeroed = scenario()
        .faults(FaultConfig { seed: 0x5EED, ..FaultConfig::default() })
        .build(StrategyKind::FedSuCalibrated)
        .unwrap()
        .run(None)
        .unwrap();
    // A fault plan whose probabilities are all zero must be bit-for-bit
    // indistinguishable from no fault plan at all.
    assert_eq!(baseline.rounds, zeroed.rounds);
}
