//! Participant dynamicity end-to-end (Sec. V): clients joining and leaving
//! mid-run, join-state downloads, and mask consistency for joiners.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::core::{FedSu, FedSuConfig, JoinState};
use fedsu_repro::fl::experiment::AvailabilityFn;
use fedsu_repro::fl::SyncStrategy;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};
use std::sync::Arc;

fn scenario() -> Scenario {
    Scenario::new(ModelKind::Mlp).clients(5).rounds(25).samples_per_class(30).seed(11)
}

#[test]
fn run_survives_clients_leaving_and_joining() {
    let availability: AvailabilityFn = Arc::new(|client, round| match client {
        4 => round >= 8,            // joins late
        0 => !(10..15).contains(&round), // leaves temporarily
        _ => true,
    });
    let mut e = scenario()
        .build_with_availability(StrategyKind::FedSuCalibrated, Some(availability))
        .unwrap();
    let r = e.run(None).unwrap();
    assert!(r.best_accuracy() > 0.7, "got {:.3}", r.best_accuracy());
    // Fewer participants before the late joiner arrives.
    assert!(r.rounds[0].participants < r.rounds[20].participants + 2);
}

#[test]
fn joining_round_pays_for_model_and_mask_state() {
    // All clients steady vs one client joining at round 12: the join round
    // must carry at least the full-model catch-up download.
    let steady = {
        let mut e = scenario().build(StrategyKind::FedSuCalibrated).unwrap();
        e.run(None).unwrap()
    };
    let availability: AvailabilityFn = Arc::new(|client, round| client != 4 || round >= 12);
    let dynamic = {
        let mut e = scenario()
            .build_with_availability(StrategyKind::FedSuCalibrated, Some(availability))
            .unwrap();
        e.run(None).unwrap()
    };
    // Compare the join round's download-heavy traffic against the same
    // round in the steady run: the joiner's full-model + mask download must
    // make it at least as heavy even though earlier rounds were lighter.
    assert!(
        dynamic.rounds[12].bytes + 1 >= steady.rounds[12].bytes,
        "join round bytes {} vs steady {}",
        dynamic.rounds[12].bytes,
        steady.rounds[12].bytes
    );
}

#[test]
fn join_state_transfers_the_replicated_manager_state() {
    // Drive a donor manager, snapshot, restore into a joiner, and verify
    // the two make identical masks and upload decisions from then on.
    let mut donor = FedSu::new(FedSuConfig { t_r: 0.2, t_s: 10.0, ..FedSuConfig::default() });
    let mut global = vec![0.0f32; 6];
    for round in 0..12 {
        let locals: Vec<Vec<f32>> = (0..3)
            .map(|c| {
                global
                    .iter()
                    .enumerate()
                    .map(|(j, g)| g - 0.01 * (j as f32 + 1.0) + 0.0001 * c as f32)
                    .collect()
            })
            .collect();
        donor.prepare_uploads(round, &locals, &global);
        donor.aggregate(round, &locals, &[0, 1, 2], &[true; 3], &mut global);
    }
    let bytes = donor.join_state().expect("donor has state");
    let snapshot = JoinState::from_bytes(&bytes).unwrap();

    let mut joiner = FedSu::new(FedSuConfig { t_r: 0.2, t_s: 10.0, ..FedSuConfig::default() });
    joiner.apply_join_state(&snapshot);
    assert_eq!(joiner.predictable_mask(), donor.predictable_mask());

    // Same future input -> same upload decision.
    let locals = vec![global.clone(); 3];
    let d = donor.prepare_uploads(12, &locals, &global);
    let j = joiner.prepare_uploads(12, &locals, &global);
    assert_eq!(d, j);
}

#[test]
fn join_state_size_is_proportional_to_model() {
    let mut f = FedSu::new(FedSuConfig::default());
    let mut global = vec![0.0f32; 100];
    let locals = vec![global.clone(); 2];
    f.prepare_uploads(0, &locals, &global);
    f.aggregate(0, &locals, &[0, 1], &[true, true], &mut global);
    let bytes = f.join_state().unwrap();
    // 16-byte header + 13 mask bytes + 100 * 22 payload bytes.
    assert_eq!(bytes.len(), 16 + 13 + 100 * 22);
}
