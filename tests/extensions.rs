//! Integration tests for the extension features: QSGD/Top-K baselines,
//! learning-rate schedules, gradient clipping, and bandwidth traces.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::fl::LrSchedule;
use fedsu_repro::netsim::BandwidthTrace;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};

fn scenario() -> Scenario {
    Scenario::new(ModelKind::Mlp).clients(5).rounds(30).samples_per_class(40).seed(13)
}

#[test]
fn qsgd_converges_with_compressed_uploads() {
    let mut fedavg = scenario().build(StrategyKind::FedAvg).unwrap();
    let ra = fedavg.run(None).unwrap();
    let mut qsgd = scenario().build(StrategyKind::Qsgd).unwrap();
    let rq = qsgd.run(None).unwrap();
    assert!(rq.best_accuracy() > 0.75, "qsgd reached {:.3}", rq.best_accuracy());
    // 5-bit payloads: strictly fewer bytes than full FedAvg.
    assert!(rq.total_bytes() < ra.total_bytes());
    // Quantization's compression is fixed (the paper's "limited ceiling"):
    // sparsification ratio ~ 1 - 5/32 every round.
    for r in &rq.rounds {
        assert!((r.sparsification_ratio - (1.0 - 5.0 / 32.0)).abs() < 0.05);
    }
}

#[test]
fn topk_converges_and_sparsifies() {
    let mut topk = scenario().build(StrategyKind::TopK).unwrap();
    let rt = topk.run(None).unwrap();
    assert!(rt.best_accuracy() > 0.75, "topk reached {:.3}", rt.best_accuracy());
    assert!(rt.mean_sparsification() > 0.3);
}

#[test]
fn inv_sqrt_schedule_still_converges() {
    let mut e = scenario()
        .schedule(LrSchedule::InvSqrt)
        .build(StrategyKind::FedSuCalibrated)
        .unwrap();
    let r = e.run(None).unwrap();
    assert!(r.best_accuracy() > 0.7, "got {:.3}", r.best_accuracy());
}

#[test]
fn step_schedule_still_converges() {
    let mut e = scenario()
        .schedule(LrSchedule::Step { every: 10, gamma: 0.5 })
        .build(StrategyKind::FedAvg)
        .unwrap();
    let r = e.run(None).unwrap();
    assert!(r.best_accuracy() > 0.7, "got {:.3}", r.best_accuracy());
}

#[test]
fn bandwidth_jitter_changes_timing_but_not_learning() {
    use fedsu_repro::fl::Experiment;

    let build = |trace: BandwidthTrace| -> Experiment {
        // The scenario toolkit doesn't expose traces, so construct the
        // experiment directly from its parts.
        let factory: fedsu_repro::fl::experiment::ModelFactory = {
            use fedsu_repro::nn::{models, Sequential};
            use rand::rngs::StdRng;
            use rand::SeedableRng;
            std::sync::Arc::new(|seed| {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut m = Sequential::new("mlp");
                m.push(fedsu_repro::nn::flatten::Flatten::new());
                m.push_boxed(Box::new(models::mlp(&[16, 16, 3], &mut rng)?));
                Ok(m)
            })
        };
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(13 ^ 0xDA7A);
        let (train, test) = fedsu_repro::data::SyntheticConfig::new(3, 1, 4, 4)
            .noise_std(0.4)
            .samples_per_class(40)
            .build_split(20, &mut rng);
        let mut cluster = fedsu_repro::netsim::ClusterConfig::paper_like(5);
        cluster.bandwidth_trace = trace;
        let config = fedsu_repro::fl::ExperimentConfig {
            cluster,
            select_fraction: 0.7,
            rounds: 12,
            client: fedsu_repro::fl::ClientConfig {
                batch_size: 16,
                local_iters: 6,
                lr: 0.05,
                weight_decay: 1e-3,
                schedule: LrSchedule::Constant,
                clip_norm: None,
            },
            alpha: 1.0,
            seed: 13,
            eval_every: 1,
            compute_secs: 1.0,
            model_name: "mlp".to_string(),
            availability: None,
            faults: fedsu_repro::netsim::FaultPlan::none(),
            defense: fedsu_repro::fl::DefenseConfig::default(),
            kernel_threads: 0,
        };
        Experiment::new(
            config,
            factory,
            std::sync::Arc::new(train),
            std::sync::Arc::new(test),
            Box::new(fedsu_repro::strategies::FedAvg::new()),
        )
        .unwrap()
    };

    let steady = build(BandwidthTrace::Constant).run(None).unwrap();
    let jittery = build(BandwidthTrace::Jitter { spread: 0.5 }).run(None).unwrap();
    // Learning dynamics are identical (same seeds, same aggregation)...
    for (a, b) in steady.rounds.iter().zip(&jittery.rounds) {
        assert_eq!(a.accuracy, b.accuracy);
    }
    // ...but the emulated timings differ.
    let ta: f64 = steady.rounds.iter().map(|r| r.duration_secs).sum();
    let tb: f64 = jittery.rounds.iter().map(|r| r.duration_secs).sum();
    assert!((ta - tb).abs() > 1e-9, "traces must affect timing");
}

#[test]
fn gradient_clipping_keeps_aggressive_lr_stable() {
    use fedsu_repro::fl::{ClientConfig, Experiment, ExperimentConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    let factory: fedsu_repro::fl::experiment::ModelFactory = Arc::new(|seed| {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = fedsu_repro::nn::Sequential::new("m");
        m.push(fedsu_repro::nn::flatten::Flatten::new());
        m.push_boxed(Box::new(fedsu_repro::nn::models::mlp(&[16, 8, 3], &mut rng)?));
        Ok(m)
    });
    let mut rng = StdRng::seed_from_u64(0);
    let (train, test) = fedsu_repro::data::SyntheticConfig::new(3, 1, 4, 4)
        .samples_per_class(20)
        .build_split(5, &mut rng);
    let config = |clip: Option<f32>| ExperimentConfig {
        cluster: fedsu_repro::netsim::ClusterConfig::paper_like(3),
        select_fraction: 1.0,
        rounds: 30,
        client: ClientConfig {
            batch_size: 4,
            local_iters: 5,
            lr: 50.0, // wildly unstable without clipping
            weight_decay: 0.0,
            schedule: LrSchedule::Constant,
            clip_norm: clip,
        },
        alpha: 1.0,
        seed: 0,
        eval_every: 10,
        compute_secs: 1.0,
        model_name: "mlp".to_string(),
        availability: None,
        faults: fedsu_repro::netsim::FaultPlan::none(),
        defense: fedsu_repro::fl::DefenseConfig::default(),
        kernel_threads: 0,
    };
    // Without clipping this lr diverges (checked in failure_injection.rs
    // with an even larger lr); with tight clipping it must stay finite.
    let mut clipped = Experiment::new(
        config(Some(0.01)),
        factory,
        Arc::new(train),
        Arc::new(test),
        Box::new(fedsu_repro::strategies::FedAvg::new()),
    )
    .unwrap();
    let r = clipped.run(None).unwrap();
    assert!(r.rounds.iter().all(|x| x.train_loss.is_finite()));
}
