//! Wall-clock probe for tiny-preset round costs (run manually).

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]
// This probe's whole purpose is to measure real wall time; the
// disallowed-methods ban on Instant::now protects sim code, not this file.
#![allow(clippy::disallowed_methods)]

use fedsu_repro::nn::models::ModelPreset;
use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};
use std::time::Instant;

#[test]
#[ignore = "calibration probe, run manually"]
fn probe_tiny_round_cost() {
    for (model, preset) in [
        (ModelKind::DenseNet, ModelPreset::Tiny),
        (ModelKind::ResNet18, ModelPreset::Small),
        (ModelKind::Cnn, ModelPreset::Small),
    ] {
        let mut e = Scenario::new(model)
            .preset(preset)
            .clients(8)
            .rounds(3)
            .build(StrategyKind::FedAvg)
            .unwrap();
        let start = Instant::now();
        e.run(None).unwrap();
        println!("{model:?}/{preset:?}: {:.2}s/round", start.elapsed().as_secs_f64() / 3.0);
    }
}
