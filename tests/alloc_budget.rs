//! Counting-allocator cross-validation of `crates/xtask/alloc-budget.toml`.
//!
//! The static allocation-flow rules say *where* the round loop allocates;
//! the `[runtime]` ceilings in the budget say *how much* it is allowed to.
//! This test runs a small sweep with the counting `#[global_allocator]`
//! armed (`--features alloc-stats`) and asserts that every steady round —
//! all rounds after the first, which still pays one-time warm-up costs —
//! stays within the checked-in ceilings. A hot-path copy regression (say,
//! reintroducing the per-round global `.to_vec()` or the per-retransmission
//! frame re-encode) blows the allocs ceiling long before it shows up in a
//! wall-clock benchmark.
//!
//! Without the `alloc-stats` feature the allocator is the plain `System`
//! and the counters never move; the test then only checks the plumbing
//! (round log covers every round) and skips the ceiling assertions.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_repro::scenario::{ModelKind, Scenario, StrategyKind};
use fedsu_repro::tensor::alloc_stats;

const ROUNDS: usize = 6;

/// Minimal `[runtime]` reader for `crates/xtask/alloc-budget.toml`: this
/// test binary must not depend on the xtask crate, and the section is two
/// `key = integer` lines.
fn read_ceilings() -> (u64, u64) {
    // Compile-time manifest dir under cargo; cwd (the package root under
    // `cargo test`) otherwise.
    let root = option_env!("CARGO_MANIFEST_DIR").unwrap_or(".");
    let path = format!("{root}/crates/xtask/alloc-budget.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{path}: alloc budget must be checked in: {e}"));
    let field = |key: &str| -> u64 {
        text.lines()
            .find_map(|l| l.trim().strip_prefix(key))
            .and_then(|rest| rest.trim().strip_prefix('='))
            .and_then(|v| v.trim().parse().ok())
            .unwrap_or_else(|| panic!("{path}: missing/invalid `{key}` in [runtime]"))
    };
    (field("max_round_allocs"), field("max_round_bytes"))
}

/// One test, not several: the alloc-stats switch and the process counters
/// are global, so phases must run in a fixed order, and kernel threads are
/// pinned to one so worker-pool bookkeeping never bleeds into round deltas.
#[test]
fn steady_rounds_stay_within_the_checked_in_budget() {
    let (max_allocs, max_bytes) = read_ceilings();
    fedsu_repro::tensor::set_kernel_threads(1);
    alloc_stats::set_enabled(true);

    let mut e = Scenario::new(ModelKind::Mlp)
        .clients(4)
        .rounds(ROUNDS)
        .samples_per_class(16)
        .seed(7)
        .build(StrategyKind::FedSuCalibrated)
        .unwrap();
    let result = e.run(None).unwrap();
    alloc_stats::set_enabled(false);

    assert_eq!(result.rounds.len(), ROUNDS, "sweep must complete every round");
    let rounds = alloc_stats::rounds();
    assert_eq!(rounds.len(), ROUNDS, "round log must cover every round: {rounds:?}");
    for (i, r) in rounds.iter().enumerate() {
        assert_eq!(r.round, i, "round log must be in round order");
    }

    if !alloc_stats::counting_compiled() {
        // Plain System allocator: the deltas are all zero by construction;
        // the ceilings are meaningless without the counting feature.
        assert!(rounds.iter().all(|r| r.allocs == 0 && r.bytes == 0));
        eprintln!("alloc_budget: skipping ceiling assertions (alloc-stats feature off)");
        return;
    }

    // Round 0 pays one-time warm-up (lazy buffers reaching their final
    // capacity, checkpoint init); every later round is steady state and
    // must fit the budget.
    for r in rounds.iter().skip(1) {
        assert!(
            r.allocs <= max_allocs,
            "round {} made {} allocations, budget allows {max_allocs} \
             (crates/xtask/alloc-budget.toml [runtime]); a hot-path copy \
             crept back in",
            r.round,
            r.allocs
        );
        assert!(
            r.bytes <= max_bytes,
            "round {} requested {} bytes, budget allows {max_bytes} \
             (crates/xtask/alloc-budget.toml [runtime])",
            r.round,
            r.bytes
        );
    }

    // The scratch-buffer reuse in the round loop means steady-state traffic
    // must not trend upward: the last steady round may not allocate more
    // than double the first steady round (generous — catches only genuine
    // per-round leaks, not jitter from eval rounds).
    let first = &rounds[1];
    let last = &rounds[ROUNDS - 1];
    assert!(
        last.allocs <= first.allocs.saturating_mul(2),
        "per-round allocation count is trending upward: {first:?} -> {last:?}"
    );
}
