//! Round-time model with the paper's earliest-K participation rule.

use crate::Cluster;

/// Timing outcome of one emulated round.
#[derive(Debug, Clone, PartialEq)]
pub struct RoundOutcomeTiming {
    /// Wall-clock duration of the round in emulated seconds (when the K-th
    /// earliest client returned).
    pub duration_secs: f64,
    /// Ids of the clients whose updates the server aggregates this round,
    /// in ascending id order.
    pub selected: Vec<usize>,
    /// Every client's individual finish time (seconds since round start).
    pub finish_secs: Vec<f64>,
}

/// Per-client fault penalties applied to one round's finish times by
/// [`RoundTimer::round_faulty`].
#[derive(Debug, Clone, Copy)]
pub struct FaultPenalties<'a> {
    /// Multiplies client `i`'s whole finish time (transient slowdown).
    pub time_factor: &'a [f64],
    /// Seconds added after the factor (retry backoff).
    pub extra_secs: &'a [f64],
}

/// Computes per-round timings for a cluster under the paper's
/// "aggregate the earliest fraction" rule (Sec. VI-A uses 70%).
#[derive(Debug, Clone)]
pub struct RoundTimer {
    cluster: Cluster,
    select_fraction: f64,
}

impl RoundTimer {
    /// Creates a timer selecting the earliest `select_fraction` of clients
    /// each round.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < select_fraction <= 1`.
    pub fn new(cluster: &Cluster, select_fraction: f64) -> Self {
        assert!(
            select_fraction > 0.0 && select_fraction <= 1.0,
            "select fraction must be in (0, 1]"
        );
        RoundTimer { cluster: cluster.clone(), select_fraction }
    }

    /// Number of clients aggregated per round.
    pub fn selected_count(&self) -> usize {
        ((self.cluster.n_clients() as f64 * self.select_fraction).round() as usize)
            .clamp(1, self.cluster.n_clients())
    }

    /// Computes one round's timing.
    ///
    /// `compute_secs[i]` is client `i`'s nominal local-training time this
    /// round (before the heterogeneity factor), and `upload_bytes` /
    /// `download_bytes` its communication volumes.
    ///
    /// # Panics
    ///
    /// Panics if the slices don't cover every client.
    pub fn round(
        &self,
        compute_secs: &[f64],
        upload_bytes: &[u64],
        download_bytes: &[u64],
    ) -> RoundOutcomeTiming {
        let active = vec![true; self.cluster.n_clients()];
        self.round_with_active(compute_secs, upload_bytes, download_bytes, &active)
    }

    /// Like [`RoundTimer::round`], but only clients flagged in `active`
    /// participate; the earliest fraction is taken of the *active* set
    /// (participant dynamicity — clients that left are never selected).
    ///
    /// # Panics
    ///
    /// Panics if the slices don't cover every client or no client is active.
    pub fn round_with_active(
        &self,
        compute_secs: &[f64],
        upload_bytes: &[u64],
        download_bytes: &[u64],
        active: &[bool],
    ) -> RoundOutcomeTiming {
        self.round_at(0, compute_secs, upload_bytes, download_bytes, active)
    }

    /// Like [`RoundTimer::round_with_active`], applying the cluster's
    /// bandwidth trace at the given round index.
    ///
    /// # Panics
    ///
    /// Panics if the slices don't cover every client or no client is active.
    pub fn round_at(
        &self,
        round: usize,
        compute_secs: &[f64],
        upload_bytes: &[u64],
        download_bytes: &[u64],
        active: &[bool],
    ) -> RoundOutcomeTiming {
        let n = self.cluster.n_clients();
        let (ones, zeros) = (vec![1.0; n], vec![0.0; n]);
        self.round_faulty(
            round,
            compute_secs,
            upload_bytes,
            download_bytes,
            active,
            FaultPenalties { time_factor: &ones, extra_secs: &zeros },
        )
    }

    /// Like [`RoundTimer::round_at`], with per-client [`FaultPenalties`]
    /// applied to each finish time.
    ///
    /// With all factors `1.0` and all extras `0.0` this is bit-for-bit
    /// identical to [`RoundTimer::round_at`] (`x * 1.0 + 0.0 == x` exactly
    /// for the non-negative finish times produced here).
    ///
    /// # Panics
    ///
    /// Panics if the slices don't cover every client or no client is active.
    pub fn round_faulty(
        &self,
        round: usize,
        compute_secs: &[f64],
        upload_bytes: &[u64],
        download_bytes: &[u64],
        active: &[bool],
        penalties: FaultPenalties<'_>,
    ) -> RoundOutcomeTiming {
        let FaultPenalties { time_factor, extra_secs } = penalties;
        let n = self.cluster.n_clients();
        assert_eq!(compute_secs.len(), n, "compute_secs must cover all clients");
        assert_eq!(upload_bytes.len(), n, "upload_bytes must cover all clients");
        assert_eq!(download_bytes.len(), n, "download_bytes must cover all clients");
        assert_eq!(active.len(), n, "active mask must cover all clients");
        assert_eq!(time_factor.len(), n, "time_factor must cover all clients");
        assert_eq!(extra_secs.len(), n, "extra_secs must cover all clients");

        let finish: Vec<f64> = active
            .iter()
            .zip(download_bytes)
            .zip(upload_bytes)
            .zip(compute_secs)
            .zip(time_factor)
            .zip(extra_secs)
            .enumerate()
            .map(|(i, (((((&is_active, &down_bytes), &up_bytes), &compute), &factor), &extra))| {
                if !is_active {
                    return f64::INFINITY;
                }
                let link = self.cluster.client_link_at(i, round);
                let down = if down_bytes == 0 { 0.0 } else { link.transfer_secs(down_bytes) };
                let up = if up_bytes == 0 { 0.0 } else { link.transfer_secs(up_bytes) };
                (down + compute * self.cluster.speed_factor(i) + up) * factor + extra
            })
            .collect();

        let n_active = active.iter().filter(|&&a| a).count();
        assert!(n_active > 0, "at least one client must be active");
        let k = ((n_active as f64 * self.select_fraction).round() as usize).clamp(1, n_active);
        let mut order: Vec<usize> =
            active.iter().enumerate().filter_map(|(i, &a)| a.then_some(i)).collect();
        // Inactive clients never enter `order`, so every lookup below is in
        // range; the INFINITY fallbacks keep the sort total regardless.
        let at = |i: usize| finish.get(i).copied().unwrap_or(f64::INFINITY);
        order.sort_by(|&a, &b| at(a).total_cmp(&at(b)));
        let mut selected: Vec<usize> = order.iter().copied().take(k).collect();
        selected.sort_unstable();
        let duration = order.get(k - 1).copied().map_or(f64::INFINITY, at);
        RoundOutcomeTiming { duration_secs: duration, selected, finish_secs: finish }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ClusterConfig, Link};

    fn homogeneous(n: usize) -> Cluster {
        let mut cfg = ClusterConfig::paper_like(n);
        cfg.compute_sigma = 0.0;
        cfg.client_link = Link { bandwidth_mbps: 8.0, latency_ms: 0.0 };
        Cluster::build(&cfg, 0)
    }

    #[test]
    fn selects_fraction_of_clients() {
        let c = homogeneous(10);
        let t = RoundTimer::new(&c, 0.7);
        assert_eq!(t.selected_count(), 7);
        let o = t.round(&vec![1.0; 10], &vec![0; 10], &vec![0; 10]);
        assert_eq!(o.selected.len(), 7);
    }

    #[test]
    fn duration_is_kth_finish_time() {
        let c = homogeneous(4);
        let t = RoundTimer::new(&c, 0.5);
        // Finish times 1, 2, 3, 4 via compute.
        let o = t.round(&[1.0, 2.0, 3.0, 4.0], &[0; 4], &[0; 4]);
        assert_eq!(o.selected, vec![0, 1]);
        assert!((o.duration_secs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn communication_adds_time() {
        let c = homogeneous(2);
        let t = RoundTimer::new(&c, 1.0);
        // 8 Mbps = 1 MB/s: 1 MB up adds 1 s.
        let with = t.round(&[1.0, 1.0], &[1_000_000, 0], &[0, 0]);
        assert!((with.finish_secs[0] - 2.0).abs() < 1e-6);
        assert!((with.finish_secs[1] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn zero_byte_transfers_cost_nothing() {
        // A fully-sparsified client pays no latency either: nothing is sent.
        let mut cfg = ClusterConfig::paper_like(1);
        cfg.compute_sigma = 0.0;
        cfg.client_link = Link { bandwidth_mbps: 8.0, latency_ms: 500.0 };
        let c = Cluster::build(&cfg, 0);
        let t = RoundTimer::new(&c, 1.0);
        let o = t.round(&[1.0], &[0], &[0]);
        assert!((o.finish_secs[0] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn slow_clients_are_excluded() {
        let c = homogeneous(3);
        let t = RoundTimer::new(&c, 0.67);
        let o = t.round(&[1.0, 100.0, 2.0], &[0; 3], &[0; 3]);
        assert_eq!(o.selected, vec![0, 2]);
        assert!((o.duration_secs - 2.0).abs() < 1e-9);
    }

    #[test]
    fn full_participation_waits_for_stragglers() {
        let c = homogeneous(3);
        let t = RoundTimer::new(&c, 1.0);
        let o = t.round(&[1.0, 100.0, 2.0], &[0; 3], &[0; 3]);
        assert_eq!(o.selected.len(), 3);
        assert!((o.duration_secs - 100.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "select fraction")]
    fn bad_fraction_panics() {
        RoundTimer::new(&homogeneous(2), 0.0);
    }

    #[test]
    fn at_least_one_client_selected() {
        let c = homogeneous(2);
        let t = RoundTimer::new(&c, 0.01);
        assert_eq!(t.selected_count(), 1);
    }
}

#[cfg(test)]
mod active_tests {
    use super::*;
    use crate::{ClusterConfig, Link};

    fn homogeneous(n: usize) -> Cluster {
        let mut cfg = ClusterConfig::paper_like(n);
        cfg.compute_sigma = 0.0;
        cfg.client_link = Link { bandwidth_mbps: 8.0, latency_ms: 0.0 };
        Cluster::build(&cfg, 0)
    }

    #[test]
    fn inactive_clients_are_never_selected() {
        let c = homogeneous(4);
        let t = RoundTimer::new(&c, 1.0);
        let o = t.round_with_active(&[1.0; 4], &[0; 4], &[0; 4], &[true, false, true, false]);
        assert_eq!(o.selected, vec![0, 2]);
        assert!(o.finish_secs[1].is_infinite());
    }

    #[test]
    fn fraction_applies_to_active_count() {
        let c = homogeneous(10);
        let t = RoundTimer::new(&c, 0.5);
        let mut active = vec![true; 10];
        for a in active.iter_mut().take(6) {
            *a = false;
        }
        // 4 active, 50% -> 2 selected.
        let o = t.round_with_active(&[1.0; 10], &[0; 10], &[0; 10], &active);
        assert_eq!(o.selected.len(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one client must be active")]
    fn all_inactive_panics() {
        let c = homogeneous(2);
        let t = RoundTimer::new(&c, 1.0);
        t.round_with_active(&[1.0; 2], &[0; 2], &[0; 2], &[false, false]);
    }
}

#[cfg(test)]
mod faulty_tests {
    use super::*;
    use crate::{ClusterConfig, Link};

    fn homogeneous(n: usize) -> Cluster {
        let mut cfg = ClusterConfig::paper_like(n);
        cfg.compute_sigma = 0.0;
        cfg.client_link = Link { bandwidth_mbps: 8.0, latency_ms: 0.0 };
        Cluster::build(&cfg, 0)
    }

    #[test]
    fn unit_penalties_match_round_at_exactly() {
        let c = Cluster::build(&ClusterConfig::paper_like(6), 7);
        let t = RoundTimer::new(&c, 0.7);
        let compute = [1.0, 2.5, 0.3, 4.0, 1.1, 0.9];
        let up = [10_000u64, 0, 5_000, 20_000, 1, 999];
        let down = [7_000u64; 6];
        let active = [true, true, false, true, true, true];
        for round in [0usize, 3, 17] {
            let legacy = t.round_at(round, &compute, &up, &down, &active);
            let faulty = t.round_faulty(
                round,
                &compute,
                &up,
                &down,
                &active,
                FaultPenalties { time_factor: &[1.0; 6], extra_secs: &[0.0; 6] },
            );
            assert_eq!(legacy, faulty);
        }
    }

    #[test]
    fn slowdown_factor_multiplies_finish_time() {
        let c = homogeneous(2);
        let t = RoundTimer::new(&c, 1.0);
        let o = t.round_faulty(
            0,
            &[1.0, 1.0],
            &[0; 2],
            &[0; 2],
            &[true; 2],
            FaultPenalties { time_factor: &[4.0, 1.0], extra_secs: &[0.0; 2] },
        );
        assert!((o.finish_secs[0] - 4.0).abs() < 1e-9);
        assert!((o.finish_secs[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn extra_seconds_are_added_after_the_factor() {
        let c = homogeneous(2);
        let t = RoundTimer::new(&c, 0.5);
        // Client 0: 1 s * 2 + 5 s backoff = 7 s; client 1: 1 s. Earliest-1 picks 1.
        let o = t.round_faulty(
            0,
            &[1.0, 1.0],
            &[0; 2],
            &[0; 2],
            &[true; 2],
            FaultPenalties { time_factor: &[2.0, 1.0], extra_secs: &[5.0, 0.0] },
        );
        assert!((o.finish_secs[0] - 7.0).abs() < 1e-9);
        assert_eq!(o.selected, vec![1]);
        assert!((o.duration_secs - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inactive_clients_stay_infinite_under_penalties() {
        let c = homogeneous(2);
        let t = RoundTimer::new(&c, 1.0);
        let o = t.round_faulty(
            0,
            &[1.0; 2],
            &[0; 2],
            &[0; 2],
            &[true, false],
            FaultPenalties { time_factor: &[3.0, 3.0], extra_secs: &[1.0, 1.0] },
        );
        assert!(o.finish_secs[1].is_infinite());
        assert_eq!(o.selected, vec![0]);
    }
}
