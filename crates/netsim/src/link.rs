//! Point-to-point link model.

use serde::{Deserialize, Serialize};

/// A network link with fixed bandwidth and one-way latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Bandwidth in megabits per second.
    pub bandwidth_mbps: f64,
    /// One-way latency in milliseconds.
    pub latency_ms: f64,
}

impl Link {
    /// The paper's emulated client link: 13.7 Mbps (FedScale's average
    /// mobile network condition) with a typical WAN latency.
    pub fn fedscale_client() -> Self {
        Link { bandwidth_mbps: 13.7, latency_ms: 50.0 }
    }

    /// The paper's server link: 10 Gbps datacenter NIC.
    pub fn datacenter_server() -> Self {
        Link { bandwidth_mbps: 10_000.0, latency_ms: 1.0 }
    }

    /// Seconds to transfer `bytes` over this link (latency + serialization).
    ///
    /// Zero bytes still pay the latency (a control message), except that a
    /// fully-skipped transfer should be modelled by not calling this at all.
    pub fn transfer_secs(&self, bytes: u64) -> f64 {
        self.latency_ms / 1e3 + (bytes as f64 * 8.0) / (self.bandwidth_mbps * 1e6)
    }
}

impl Default for Link {
    fn default() -> Self {
        Link::fedscale_client()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_with_bytes() {
        let l = Link { bandwidth_mbps: 8.0, latency_ms: 0.0 };
        // 8 Mbps = 1 MB/s; 2 MB takes 2 s.
        assert!((l.transfer_secs(2_000_000) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_applies_to_small_messages() {
        let l = Link { bandwidth_mbps: 1000.0, latency_ms: 100.0 };
        assert!(l.transfer_secs(0) >= 0.1);
    }

    #[test]
    fn paper_links_are_asymmetric() {
        assert!(Link::datacenter_server().transfer_secs(1_000_000) < Link::fedscale_client().transfer_secs(1_000_000));
    }

    #[test]
    fn fedscale_default() {
        assert_eq!(Link::default(), Link::fedscale_client());
        assert!((Link::fedscale_client().bandwidth_mbps - 13.7).abs() < f64::EPSILON);
    }
}
