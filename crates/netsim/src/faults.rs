//! Deterministic fault injection.
//!
//! The paper's dynamicity protocol (Sec. V) and time-to-accuracy claims
//! (Table 1) are about surviving a messy fleet — clients that join late,
//! drop mid-round, or return garbage. A [`FaultPlan`] decides, per
//! `(client, round)`, whether that client suffers one of five fault kinds:
//!
//! * **mid-round dropout** — the client trains but its upload never arrives;
//! * **upload loss** — a transmission attempt is lost and must be retried;
//! * **upload corruption** — NaN/outlier scalars appear in the payload;
//! * **transient slowdown** — compute and link time are multiplied;
//! * **crash with rejoin** — the client disappears for a fixed number of
//!   rounds and then rejoins through the dynamicity catch-up path.
//!
//! Every decision is a pure function of `(seed, kind, client, round)` via a
//! splitmix64-style hash, so fault schedules are reproducible bit-for-bit
//! regardless of query order, and a zero-probability plan is exactly the
//! clean path.

use serde::{Deserialize, Serialize};

const SALT_DROPOUT: u64 = 0xD509;
const SALT_LOSS: u64 = 0x1055;
const SALT_CORRUPT: u64 = 0xC0BB;
const SALT_SLOWDOWN: u64 = 0x510D;
const SALT_CRASH: u64 = 0xCBA5;
const SALT_POSITION: u64 = 0xB05;
const SALT_SIGN: u64 = 0x516;
const SALT_WIRE_DROP: u64 = 0xD20F;
const SALT_WIRE_CORRUPT: u64 = 0xF11F;
const SALT_WIRE_DUP: u64 = 0xD0BF;
const SALT_WIRE_REORDER: u64 = 0x2E02;
const SALT_WIRE_DELAY: u64 = 0xDE1A;
const SALT_WIRE_BIT: u64 = 0xB17;

/// splitmix64 finalizer: a cheap, well-mixed 64-bit hash step.
fn mix(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Probabilities and shape parameters of the injected faults. All
/// probabilities default to zero (the clean path).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Per-(client, round) probability of a mid-round dropout: the client
    /// trains, but its upload never reaches the server.
    pub dropout_prob: f64,
    /// Per-transmission-attempt probability that an upload is lost and must
    /// be retransmitted.
    pub upload_loss_prob: f64,
    /// Per-(client, round) probability that an upload arrives corrupted
    /// (NaN and outlier scalars injected into the payload).
    pub corrupt_prob: f64,
    /// Per-(client, round) probability of a transient slowdown.
    pub slowdown_prob: f64,
    /// Multiplier applied to the slowed client's compute and link time.
    pub slowdown_factor: f64,
    /// Per-round probability that a client crashes.
    pub crash_prob: f64,
    /// Rounds a crashed client stays away before rejoining (and paying the
    /// dynamicity catch-up download).
    pub crash_down_rounds: usize,
    /// Per-frame probability that the wire silently drops an outbound frame
    /// (data or ack). Consumed by the transport chaos bus; the emulation
    /// models the same loss analytically via [`FaultConfig::upload_loss_prob`].
    #[serde(default)]
    pub wire_drop_prob: f64,
    /// Per-frame probability that a delivered frame arrives bit-corrupted
    /// (the session layer's checksum must reject it).
    #[serde(default)]
    pub wire_corrupt_prob: f64,
    /// Per-frame probability that a frame is delivered twice (the session
    /// layer's dedup must drop the copy).
    #[serde(default)]
    pub wire_duplicate_prob: f64,
    /// Per-frame probability that a frame is held back one slot and
    /// delivered after the next frame on the same link (adjacent reorder).
    #[serde(default)]
    pub wire_reorder_prob: f64,
    /// Per-frame probability that a frame is delayed
    /// [`FaultConfig::wire_delay_depth`] subsequent sends before delivery.
    #[serde(default)]
    pub wire_delay_prob: f64,
    /// How many subsequent sends on the same link a delayed frame waits
    /// before it is released (clamped to at least 1 when a delay fires).
    #[serde(default = "default_wire_delay_depth")]
    pub wire_delay_depth: usize,
    /// Seed of the fault schedule, independent of the experiment's master
    /// seed so fault sweeps hold the learning problem fixed.
    pub seed: u64,
}

/// Serde default for [`FaultConfig::wire_delay_depth`], matching
/// [`FaultConfig::default`].
fn default_wire_delay_depth() -> usize {
    2
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            dropout_prob: 0.0,
            upload_loss_prob: 0.0,
            corrupt_prob: 0.0,
            slowdown_prob: 0.0,
            slowdown_factor: 4.0,
            crash_prob: 0.0,
            crash_down_rounds: 3,
            wire_drop_prob: 0.0,
            wire_corrupt_prob: 0.0,
            wire_duplicate_prob: 0.0,
            wire_reorder_prob: 0.0,
            wire_delay_prob: 0.0,
            wire_delay_depth: default_wire_delay_depth(),
            seed: 0xFA17,
        }
    }
}

impl FaultConfig {
    /// Whether every fault probability — emulation-level *and* wire-level —
    /// is zero (the clean path). Honest about the wire knobs so zero-fault
    /// fast paths stay exact: a config that injects anything anywhere is
    /// never treated as clean.
    pub fn is_zero(&self) -> bool {
        self.dropout_prob == 0.0
            && self.upload_loss_prob == 0.0
            && self.corrupt_prob == 0.0
            && self.slowdown_prob == 0.0
            && self.crash_prob == 0.0
            && self.wire_is_zero()
    }

    /// Whether every wire-level fault probability is zero (the chaos bus is
    /// a transparent pass-through).
    pub fn wire_is_zero(&self) -> bool {
        self.wire_drop_prob == 0.0
            && self.wire_corrupt_prob == 0.0
            && self.wire_duplicate_prob == 0.0
            && self.wire_reorder_prob == 0.0
            && self.wire_delay_prob == 0.0
    }
}

/// Identity of one wire-level fault decision: a frame on a directed link,
/// in a session epoch, with a sequence number and a retransmission attempt.
///
/// Keying decisions on the *attempt* is what makes retransmission
/// effective under a deterministic plan: the retry of a dropped frame is a
/// different key and rolls fresh fault decisions, exactly like
/// [`FaultPlan::upload_attempts`] rolls per attempt on the emulation side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireFrame {
    /// Directed-link identity (the chaos bus folds client id, direction and
    /// frame kind into this).
    pub link: u64,
    /// Session epoch (the round the frame belongs to).
    pub epoch: u64,
    /// Sequence number within the epoch.
    pub seq: u64,
    /// Transmission attempt, 0-based (0 = first send).
    pub attempt: u64,
}

/// A realized, deterministic fault schedule (see the module docs).
///
/// Cheap to clone; every query is a pure hash of `(seed, kind, client,
/// round)`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    config: FaultConfig,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// A plan realizing `config`.
    pub fn new(config: FaultConfig) -> Self {
        FaultPlan { config }
    }

    /// The zero-fault plan: injects nothing, reproducing clean runs
    /// bit-for-bit.
    pub fn none() -> Self {
        FaultPlan { config: FaultConfig::default() }
    }

    /// The underlying configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Whether this plan injects nothing.
    pub fn is_zero(&self) -> bool {
        self.config.is_zero()
    }

    /// Uniform value in `[0, 1)` for one `(kind, client, round, extra)`
    /// decision.
    fn unit(&self, salt: u64, client: usize, round: usize, extra: u64) -> f64 {
        let mut h = mix(self.config.seed ^ salt);
        h = mix(h ^ client as u64);
        h = mix(h ^ round as u64);
        h = mix(h ^ extra);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether `client` drops out mid-round at `round` (trains, but its
    /// upload never arrives).
    pub fn dropout(&self, client: usize, round: usize) -> bool {
        self.config.dropout_prob > 0.0
            && self.unit(SALT_DROPOUT, client, round, 0) < self.config.dropout_prob
    }

    /// Whether `client`'s upload at `round` arrives corrupted.
    pub fn corrupts(&self, client: usize, round: usize) -> bool {
        self.config.corrupt_prob > 0.0
            && self.unit(SALT_CORRUPT, client, round, 0) < self.config.corrupt_prob
    }

    /// Injects NaN and outlier scalars into an upload payload in place
    /// (call only when [`FaultPlan::corrupts`] is true; harmless otherwise).
    pub fn corrupt_upload(&self, client: usize, round: usize, values: &mut [f32]) {
        if values.is_empty() {
            return;
        }
        let n = values.len();
        // Corrupt a deterministic ~1/64 slice of the payload, at least one
        // scalar: half NaN (detectable), half finite outliers (only caught
        // by norm validation).
        let k = (n / 64).max(1);
        for m in 0..k {
            let mut h = mix(self.config.seed ^ SALT_POSITION);
            h = mix(h ^ client as u64);
            h = mix(h ^ round as u64);
            h = mix(h ^ m as u64);
            let idx = (h % n as u64) as usize;
            if let Some(v) = values.get_mut(idx) {
                if m % 2 == 0 {
                    *v = f32::NAN;
                } else {
                    let sign = if mix(h ^ SALT_SIGN) & 1 == 0 { 1.0 } else { -1.0 };
                    *v = sign * 1.0e8;
                }
            }
        }
    }

    /// Time multiplier for `client` at `round` (1.0 = nominal; the
    /// configured factor during a transient slowdown).
    pub fn slowdown(&self, client: usize, round: usize) -> f64 {
        if self.config.slowdown_prob > 0.0
            && self.unit(SALT_SLOWDOWN, client, round, 0) < self.config.slowdown_prob
        {
            self.config.slowdown_factor.max(1.0)
        } else {
            1.0
        }
    }

    /// Number of transmissions needed for `client`'s upload at `round` to
    /// get through, given up to `max_retries` retransmissions after the
    /// first attempt. `None` means every attempt was lost and the upload
    /// never arrived.
    pub fn upload_attempts(&self, client: usize, round: usize, max_retries: u32) -> Option<u32> {
        if self.config.upload_loss_prob <= 0.0 {
            return Some(1);
        }
        for attempt in 0..=max_retries {
            if self.unit(SALT_LOSS, client, round, u64::from(attempt))
                >= self.config.upload_loss_prob
            {
                return Some(attempt + 1);
            }
        }
        None
    }

    /// Whether `client` crashed at exactly `round` (the start of a
    /// down-window).
    fn crash_event(&self, client: usize, round: usize) -> bool {
        self.config.crash_prob > 0.0
            && self.unit(SALT_CRASH, client, round, 0) < self.config.crash_prob
    }

    /// Whether `client` is down at `round` because of a crash in the
    /// preceding `crash_down_rounds` window. A client that was down at
    /// `round - 1` but not at `round` has rejoined and pays the dynamicity
    /// catch-up download.
    pub fn crashed(&self, client: usize, round: usize) -> bool {
        if self.config.crash_prob <= 0.0 {
            return false;
        }
        let window = self.config.crash_down_rounds.max(1);
        (0..window).any(|back| round >= back && self.crash_event(client, round - back))
    }

    /// Whether this plan's wire-level knobs inject nothing (the chaos bus
    /// may take its transparent fast path).
    pub fn wire_is_zero(&self) -> bool {
        self.config.wire_is_zero()
    }

    /// Uniform value in `[0, 1)` for one wire-frame decision.
    fn wire_unit(&self, salt: u64, frame: &WireFrame) -> f64 {
        let mut h = mix(self.config.seed ^ salt);
        h = mix(h ^ frame.link);
        h = mix(h ^ frame.epoch);
        h = mix(h ^ frame.seq);
        h = mix(h ^ frame.attempt);
        (h >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Whether the wire silently drops `frame`.
    pub fn wire_drops(&self, frame: &WireFrame) -> bool {
        self.config.wire_drop_prob > 0.0
            && self.wire_unit(SALT_WIRE_DROP, frame) < self.config.wire_drop_prob
    }

    /// Whether `frame` arrives bit-corrupted (apply with
    /// [`FaultPlan::corrupt_frame`]).
    pub fn wire_corrupts(&self, frame: &WireFrame) -> bool {
        self.config.wire_corrupt_prob > 0.0
            && self.wire_unit(SALT_WIRE_CORRUPT, frame) < self.config.wire_corrupt_prob
    }

    /// Whether `frame` is delivered twice.
    pub fn wire_duplicates(&self, frame: &WireFrame) -> bool {
        self.config.wire_duplicate_prob > 0.0
            && self.wire_unit(SALT_WIRE_DUP, frame) < self.config.wire_duplicate_prob
    }

    /// Whether `frame` is held back one slot (delivered after the next
    /// frame on the same link).
    pub fn wire_reorders(&self, frame: &WireFrame) -> bool {
        self.config.wire_reorder_prob > 0.0
            && self.wire_unit(SALT_WIRE_REORDER, frame) < self.config.wire_reorder_prob
    }

    /// How many subsequent sends on the same link `frame` is delayed for
    /// (`0` = delivered immediately; a fired delay is at least 1 slot).
    pub fn wire_delay(&self, frame: &WireFrame) -> usize {
        if self.config.wire_delay_prob > 0.0
            && self.wire_unit(SALT_WIRE_DELAY, frame) < self.config.wire_delay_prob
        {
            self.config.wire_delay_depth.max(1)
        } else {
            0
        }
    }

    /// Flips deterministic bits of a frame payload in place: roughly one
    /// flipped bit per 64 bytes, always at least one on a non-empty frame.
    /// Call only when [`FaultPlan::wire_corrupts`] is true; harmless (but
    /// still mutating) otherwise.
    pub fn corrupt_frame(&self, frame: &WireFrame, bytes: &mut [u8]) {
        if bytes.is_empty() {
            return;
        }
        let n = bytes.len();
        let flips = (n / 64).max(1);
        for m in 0..flips {
            let mut h = mix(self.config.seed ^ SALT_WIRE_BIT);
            h = mix(h ^ frame.link);
            h = mix(h ^ frame.epoch);
            h = mix(h ^ frame.seq);
            h = mix(h ^ frame.attempt);
            h = mix(h ^ m as u64);
            let idx = (h % n as u64) as usize;
            let bit = ((h >> 17) % 8) as u8;
            if let Some(b) = bytes.get_mut(idx) {
                *b ^= 1 << bit;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan(config: FaultConfig) -> FaultPlan {
        FaultPlan::new(config)
    }

    #[test]
    fn zero_plan_injects_nothing() {
        let p = FaultPlan::none();
        assert!(p.is_zero());
        for c in 0..8 {
            for r in 0..64 {
                assert!(!p.dropout(c, r));
                assert!(!p.corrupts(c, r));
                assert!(!p.crashed(c, r));
                assert_eq!(p.slowdown(c, r), 1.0);
                assert_eq!(p.upload_attempts(c, r, 3), Some(1));
            }
        }
    }

    #[test]
    fn decisions_are_deterministic_and_seed_sensitive() {
        let a = plan(FaultConfig { dropout_prob: 0.3, ..FaultConfig::default() });
        let b = plan(FaultConfig { dropout_prob: 0.3, ..FaultConfig::default() });
        let c = plan(FaultConfig { dropout_prob: 0.3, seed: 99, ..FaultConfig::default() });
        let hits = |p: &FaultPlan| -> Vec<bool> {
            (0..200).map(|r| p.dropout(r % 7, r)).collect()
        };
        assert_eq!(hits(&a), hits(&b));
        assert_ne!(hits(&a), hits(&c), "different seeds should differ");
    }

    #[test]
    fn dropout_rate_tracks_probability() {
        let p = plan(FaultConfig { dropout_prob: 0.25, ..FaultConfig::default() });
        let n = 4000;
        let hits = (0..n).filter(|&r| p.dropout(r % 16, r / 16)).count();
        let rate = hits as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.05, "empirical rate {rate}");
    }

    #[test]
    fn corruption_injects_nan_and_outliers() {
        let p = plan(FaultConfig { corrupt_prob: 1.0, ..FaultConfig::default() });
        let mut values = vec![0.5f32; 256];
        p.corrupt_upload(0, 0, &mut values);
        assert!(values.iter().any(|v| v.is_nan()), "expected a NaN scalar");
        assert!(
            values.iter().any(|v| v.is_finite() && v.abs() > 1.0e6),
            "expected a finite outlier"
        );
        // Idempotent / deterministic.
        let mut again = vec![0.5f32; 256];
        p.corrupt_upload(0, 0, &mut again);
        let pattern =
            |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(pattern(&values), pattern(&again));
        // Tiny payloads still get at least one corrupted scalar.
        let mut one = vec![0.5f32];
        p.corrupt_upload(3, 9, &mut one);
        assert!(!one[0].is_finite() || one[0].abs() > 1.0e6);
        p.corrupt_upload(0, 0, &mut []);
    }

    #[test]
    fn upload_attempts_respect_retry_budget() {
        let p = plan(FaultConfig { upload_loss_prob: 0.5, ..FaultConfig::default() });
        let mut exhausted = 0;
        let mut total_attempts = 0u64;
        for r in 0..500 {
            match p.upload_attempts(r % 8, r, 2) {
                Some(a) => {
                    assert!((1..=3).contains(&a));
                    total_attempts += u64::from(a);
                }
                None => exhausted += 1,
            }
        }
        // With loss 0.5 and 2 retries, ~1/8 of uploads exhaust the budget.
        assert!(exhausted > 10, "some uploads should exhaust retries");
        assert!(total_attempts > 500, "some uploads should need retries");
    }

    #[test]
    fn crash_windows_last_and_end() {
        let p = plan(FaultConfig {
            crash_prob: 0.05,
            crash_down_rounds: 4,
            ..FaultConfig::default()
        });
        // Find a crash event and check the down-window shape.
        let mut checked = false;
        'outer: for c in 0..8 {
            for r in 0..200 {
                if p.crash_event(c, r) {
                    for k in 0..4 {
                        assert!(p.crashed(c, r + k), "down within the window");
                    }
                    checked = true;
                    break 'outer;
                }
            }
        }
        assert!(checked, "expected at least one crash event");
        // Crashes are rare enough that most rounds are up.
        let up = (0..400).filter(|&r| !p.crashed(r % 8, r / 8)).count();
        assert!(up > 200, "client should be up most of the time, up {up}");
    }

    #[test]
    fn slowdown_multiplies_or_is_one() {
        let p = plan(FaultConfig {
            slowdown_prob: 0.5,
            slowdown_factor: 3.0,
            ..FaultConfig::default()
        });
        let factors: Vec<f64> = (0..200).map(|r| p.slowdown(r % 4, r)).collect();
        assert!(factors.iter().any(|&f| f == 3.0));
        assert!(factors.iter().any(|&f| f == 1.0));
        assert!(factors.iter().all(|&f| f == 1.0 || f == 3.0));
    }

    #[test]
    fn config_roundtrips_through_plan() {
        let cfg = FaultConfig { dropout_prob: 0.1, seed: 7, ..FaultConfig::default() };
        let p = FaultPlan::new(cfg);
        assert_eq!(*p.config(), cfg);
        assert!(!p.is_zero());
    }

    fn frame(link: u64, epoch: u64, seq: u64, attempt: u64) -> WireFrame {
        WireFrame { link, epoch, seq, attempt }
    }

    #[test]
    fn zero_plan_wire_knobs_inject_nothing() {
        let p = FaultPlan::none();
        assert!(p.wire_is_zero());
        for s in 0..200 {
            let f = frame(s % 5, s % 7, s, s % 3);
            assert!(!p.wire_drops(&f));
            assert!(!p.wire_corrupts(&f));
            assert!(!p.wire_duplicates(&f));
            assert!(!p.wire_reorders(&f));
            assert_eq!(p.wire_delay(&f), 0);
        }
    }

    #[test]
    fn wire_knobs_make_is_zero_honest() {
        for tweak in [
            |c: &mut FaultConfig| c.wire_drop_prob = 0.1,
            |c: &mut FaultConfig| c.wire_corrupt_prob = 0.1,
            |c: &mut FaultConfig| c.wire_duplicate_prob = 0.1,
            |c: &mut FaultConfig| c.wire_reorder_prob = 0.1,
            |c: &mut FaultConfig| c.wire_delay_prob = 0.1,
        ] {
            let mut cfg = FaultConfig::default();
            assert!(cfg.is_zero() && cfg.wire_is_zero());
            tweak(&mut cfg);
            assert!(!cfg.is_zero(), "a wire knob must make the config non-clean");
            assert!(!cfg.wire_is_zero());
        }
        // Emulation-level knobs alone leave the wire clean.
        let cfg = FaultConfig { dropout_prob: 0.5, ..FaultConfig::default() };
        assert!(!cfg.is_zero());
        assert!(cfg.wire_is_zero());
    }

    #[test]
    fn wire_decisions_are_deterministic_and_attempt_keyed() {
        let p = plan(FaultConfig { wire_drop_prob: 0.5, ..FaultConfig::default() });
        let q = plan(FaultConfig { wire_drop_prob: 0.5, ..FaultConfig::default() });
        let hits = |p: &FaultPlan| -> Vec<bool> {
            (0..400).map(|s| p.wire_drops(&frame(s % 4, s % 9, s, 0))).collect()
        };
        assert_eq!(hits(&p), hits(&q), "same plan, same schedule");
        // Attempts roll fresh decisions: some frame dropped on attempt 0
        // must pass on a later attempt (this is what makes retries work).
        let recovered = (0..400).any(|s| {
            let f0 = frame(1, 2, s, 0);
            let f1 = frame(1, 2, s, 1);
            p.wire_drops(&f0) && !p.wire_drops(&f1)
        });
        assert!(recovered, "a retry should survive where the first attempt dropped");
    }

    #[test]
    fn wire_rates_track_probabilities() {
        let p = plan(FaultConfig {
            wire_drop_prob: 0.25,
            wire_duplicate_prob: 0.25,
            ..FaultConfig::default()
        });
        let n = 4000u64;
        let drops = (0..n).filter(|&s| p.wire_drops(&frame(s % 8, 0, s, 0))).count();
        let dups = (0..n).filter(|&s| p.wire_duplicates(&frame(s % 8, 0, s, 0))).count();
        for (name, hits) in [("drop", drops), ("dup", dups)] {
            let rate = hits as f64 / n as f64;
            assert!((rate - 0.25).abs() < 0.05, "empirical {name} rate {rate}");
        }
    }

    #[test]
    fn corrupt_frame_flips_bits_deterministically() {
        let p = plan(FaultConfig { wire_corrupt_prob: 1.0, ..FaultConfig::default() });
        let f = frame(3, 1, 7, 0);
        let clean = vec![0xA5u8; 256];
        let mut a = clean.clone();
        p.corrupt_frame(&f, &mut a);
        assert_ne!(a, clean, "corruption must change the payload");
        let mut b = clean.clone();
        p.corrupt_frame(&f, &mut b);
        assert_eq!(a, b, "corruption is deterministic per frame");
        // A different attempt corrupts differently.
        let mut c = clean.clone();
        p.corrupt_frame(&frame(3, 1, 7, 1), &mut c);
        assert_ne!(a, c, "attempt must be part of the corruption key");
        // Tiny and empty payloads are safe.
        let mut one = vec![0u8];
        p.corrupt_frame(&f, &mut one);
        assert_ne!(one[0], 0);
        p.corrupt_frame(&f, &mut []);
    }

    #[test]
    fn wire_delay_respects_depth_and_reorder_is_one_slot() {
        let p = plan(FaultConfig {
            wire_delay_prob: 0.5,
            wire_delay_depth: 3,
            ..FaultConfig::default()
        });
        let delays: Vec<usize> = (0..200).map(|s| p.wire_delay(&frame(0, 0, s, 0))).collect();
        assert!(delays.iter().any(|&d| d == 3));
        assert!(delays.iter().any(|&d| d == 0));
        assert!(delays.iter().all(|&d| d == 0 || d == 3));
        // Depth 0 clamps to 1 when a delay fires.
        let p = plan(FaultConfig {
            wire_delay_prob: 1.0,
            wire_delay_depth: 0,
            ..FaultConfig::default()
        });
        assert!((0..50).all(|s| p.wire_delay(&frame(0, 0, s, 0)) == 1));
    }
}
