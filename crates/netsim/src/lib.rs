//! # fedsu-netsim
//!
//! A deterministic stand-in for the paper's 128-node EC2 testbed
//! (`c6i.large` clients throttled to 13.7 Mbps with wondershaper, one
//! `c5a.8xlarge` server on a 10 Gbps link — Sec. VI-A).
//!
//! The paper's headline metrics — per-round time, total time-to-accuracy —
//! are functions of per-round communication volume and compute time. This
//! crate models exactly those quantities:
//!
//! * a [`Link`] turns bytes into seconds (`latency + bytes·8 / bandwidth`);
//! * a [`Cluster`] assigns every client a lognormal compute-speed factor
//!   (device heterogeneity);
//! * [`RoundTimer`] computes each client's finish time
//!   (`download + compute + upload`) and implements the paper's
//!   participation rule: the server proceeds once the earliest 70% of
//!   clients have returned.
//!
//! ```
//! use fedsu_netsim::{Cluster, ClusterConfig, RoundTimer};
//!
//! let cluster = Cluster::build(&ClusterConfig::paper_like(8), 42);
//! let timer = RoundTimer::new(&cluster, 0.7);
//! let outcome = timer.round(&vec![1.0; 8], &vec![1_000_000; 8], &vec![1_000_000; 8]);
//! assert_eq!(outcome.selected.len(), 6); // round(70% of 8)
//! assert!(outcome.duration_secs > 0.0);
//! ```

#![warn(missing_docs)]

mod cluster;
mod faults;
mod link;
mod round;
mod trace;

pub use cluster::{Cluster, ClusterConfig};
pub use faults::{FaultConfig, FaultPlan, WireFrame};
pub use link::Link;
pub use round::{FaultPenalties, RoundOutcomeTiming, RoundTimer};
pub use trace::BandwidthTrace;
