//! Emulated cluster: per-client links and compute heterogeneity.

use crate::{BandwidthTrace, Link};
use rand::rngs::StdRng;
use rand::SeedableRng;
use rand_distr::{Distribution, LogNormal};
use serde::{Deserialize, Serialize};

/// Static description of an emulated FL cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterConfig {
    /// Number of FL clients.
    pub n_clients: usize,
    /// Link between each client and the server.
    pub client_link: Link,
    /// The server's own link (aggregation-side serialization).
    pub server_link: Link,
    /// Sigma of the lognormal compute-speed factor across clients
    /// (0 = homogeneous devices).
    pub compute_sigma: f64,
    /// Per-round bandwidth variation (the paper's throttled links are
    /// constant; traces model mobile-network dynamics).
    pub bandwidth_trace: BandwidthTrace,
}

impl ClusterConfig {
    /// Mirrors the paper's testbed shape at a configurable client count:
    /// FedScale-average client links, datacenter server, modest device
    /// heterogeneity.
    pub fn paper_like(n_clients: usize) -> Self {
        ClusterConfig {
            n_clients,
            client_link: Link::fedscale_client(),
            server_link: Link::datacenter_server(),
            compute_sigma: 0.25,
            bandwidth_trace: BandwidthTrace::Constant,
        }
    }
}

/// A realized cluster: the config plus each client's sampled compute factor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    config: ClusterConfig,
    speed_factors: Vec<f64>,
}

impl Cluster {
    /// Samples per-client compute-speed factors deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `config.n_clients == 0`.
    pub fn build(config: &ClusterConfig, seed: u64) -> Self {
        assert!(config.n_clients > 0, "cluster needs at least one client");
        let mut rng = StdRng::seed_from_u64(seed);
        let factors = if config.compute_sigma > 0.0 {
            // A positive sigma always yields a valid distribution; a rejected
            // one degrades to homogeneous devices instead of aborting a run.
            LogNormal::new(0.0, config.compute_sigma).map_or_else(
                |_| vec![1.0; config.n_clients],
                |dist| (0..config.n_clients).map(|_| dist.sample(&mut rng)).collect(),
            )
        } else {
            vec![1.0; config.n_clients]
        };
        Cluster { config: config.clone(), speed_factors: factors }
    }

    /// Number of clients.
    pub fn n_clients(&self) -> usize {
        self.config.n_clients
    }

    /// Client `i`'s compute-speed multiplier (1.0 = nominal device). An
    /// out-of-range `i` reads as a nominal device.
    pub fn speed_factor(&self, i: usize) -> f64 {
        self.speed_factors.get(i).copied().unwrap_or(1.0)
    }

    /// The client-side link.
    pub fn client_link(&self) -> Link {
        self.config.client_link
    }

    /// Client `i`'s effective link at `round`, with the bandwidth trace
    /// applied.
    pub fn client_link_at(&self, client: usize, round: usize) -> Link {
        let mut link = self.config.client_link;
        link.bandwidth_mbps *= self.config.bandwidth_trace.factor(client, round);
        link
    }

    /// The server-side link.
    pub fn server_link(&self) -> Link {
        self.config.server_link
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let cfg = ClusterConfig::paper_like(16);
        let a = Cluster::build(&cfg, 1);
        let b = Cluster::build(&cfg, 1);
        assert_eq!(a, b);
        let c = Cluster::build(&cfg, 2);
        assert_ne!(a, c);
    }

    #[test]
    fn zero_sigma_is_homogeneous() {
        let mut cfg = ClusterConfig::paper_like(4);
        cfg.compute_sigma = 0.0;
        let c = Cluster::build(&cfg, 0);
        for i in 0..4 {
            assert_eq!(c.speed_factor(i), 1.0);
        }
    }

    #[test]
    fn factors_are_positive_and_spread() {
        let c = Cluster::build(&ClusterConfig::paper_like(64), 7);
        let mut min = f64::MAX;
        let mut max = f64::MIN;
        for i in 0..64 {
            let f = c.speed_factor(i);
            assert!(f > 0.0);
            min = min.min(f);
            max = max.max(f);
        }
        assert!(max > min, "heterogeneous factors expected");
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_cluster_panics() {
        let mut cfg = ClusterConfig::paper_like(1);
        cfg.n_clients = 0;
        Cluster::build(&cfg, 0);
    }
}
