//! Time-varying bandwidth traces.
//!
//! The paper throttles links to FedScale's *average* mobile bandwidth; real
//! mobile links fluctuate. These traces scale a client's bandwidth per
//! round so experiments can test sensitivity to network dynamics.

use serde::{Deserialize, Serialize};

/// A deterministic per-(client, round) bandwidth multiplier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum BandwidthTrace {
    /// No variation (the paper's wondershaper setting).
    #[default]
    Constant,
    /// Sinusoidal diurnal-style variation around 1.0.
    Sinusoidal {
        /// Peak deviation from 1.0 (0 < amplitude < 1).
        amplitude: f64,
        /// Rounds per full cycle.
        period: usize,
    },
    /// Deterministic pseudo-random fluctuation in `[1-spread, 1+spread]`,
    /// decorrelated across clients.
    Jitter {
        /// Half-width of the fluctuation band (0 < spread < 1).
        spread: f64,
    },
}

impl BandwidthTrace {
    /// The bandwidth multiplier for `client` at `round` (always positive).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range parameters.
    pub fn factor(&self, client: usize, round: usize) -> f64 {
        match *self {
            BandwidthTrace::Constant => 1.0,
            BandwidthTrace::Sinusoidal { amplitude, period } => {
                assert!((0.0..1.0).contains(&amplitude), "amplitude must be in [0, 1)");
                assert!(period > 0, "period must be positive");
                // Phase-shift per client so peaks don't align.
                let phase = client as f64 * 0.7;
                1.0 + amplitude * ((round as f64 / period as f64) * std::f64::consts::TAU + phase).sin()
            }
            BandwidthTrace::Jitter { spread } => {
                assert!((0.0..1.0).contains(&spread), "spread must be in [0, 1)");
                // SplitMix64-style hash of (client, round) -> [0, 1).
                let mut z = (client as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(round as u64);
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^= z >> 31;
                let u = (z >> 11) as f64 / (1u64 << 53) as f64;
                1.0 - spread + 2.0 * spread * u
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_one() {
        assert_eq!(BandwidthTrace::Constant.factor(3, 17), 1.0);
    }

    #[test]
    fn sinusoid_stays_in_band_and_cycles() {
        let t = BandwidthTrace::Sinusoidal { amplitude: 0.3, period: 10 };
        for round in 0..50 {
            let f = t.factor(0, round);
            assert!((0.7..=1.3).contains(&f), "factor {f}");
        }
        // Periodicity.
        assert!((t.factor(0, 3) - t.factor(0, 13)).abs() < 1e-9);
        // Clients are phase-shifted.
        assert_ne!(t.factor(0, 0), t.factor(1, 0));
    }

    #[test]
    fn jitter_is_deterministic_bounded_and_decorrelated() {
        let t = BandwidthTrace::Jitter { spread: 0.4 };
        let mut values = Vec::new();
        for round in 0..100 {
            let f = t.factor(2, round);
            assert!((0.6..=1.4).contains(&f), "factor {f}");
            assert_eq!(f, t.factor(2, round), "deterministic");
            values.push(f);
        }
        // Not constant.
        assert!(values.windows(2).any(|w| (w[0] - w[1]).abs() > 1e-6));
        // Mean near 1 (unbiased).
        let mean: f64 = values.iter().sum::<f64>() / values.len() as f64;
        assert!((mean - 1.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "amplitude")]
    fn bad_amplitude_panics() {
        BandwidthTrace::Sinusoidal { amplitude: 1.0, period: 5 }.factor(0, 0);
    }

    #[test]
    #[should_panic(expected = "spread")]
    fn bad_spread_panics() {
        BandwidthTrace::Jitter { spread: 1.5 }.factor(0, 0);
    }
}
