//! Property-based tests for the network/time emulator.

use fedsu_netsim::{Cluster, ClusterConfig, Link, RoundTimer};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn transfer_time_is_monotone_in_bytes(bw in 1.0f64..1000.0, lat in 0.0f64..100.0,
                                          a in 0u64..10_000_000, b in 0u64..10_000_000) {
        let link = Link { bandwidth_mbps: bw, latency_ms: lat };
        prop_assume!(a <= b);
        prop_assert!(link.transfer_secs(a) <= link.transfer_secs(b));
        prop_assert!(link.transfer_secs(a) >= lat / 1e3);
    }

    #[test]
    fn round_duration_covers_selected_and_only_selected(seed in 0u64..500, n in 1usize..16,
                                                        frac in 0.05f64..1.0) {
        let cfg = ClusterConfig::paper_like(n);
        let cluster = Cluster::build(&cfg, seed);
        let timer = RoundTimer::new(&cluster, frac);
        let compute: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.3).collect();
        let bytes = vec![100_000u64; n];
        let outcome = timer.round(&compute, &bytes, &bytes);

        // Selected count within [1, n] and matches the configured fraction.
        let k = outcome.selected.len();
        prop_assert!(k >= 1 && k <= n);
        prop_assert_eq!(k, ((n as f64 * frac).round() as usize).clamp(1, n));
        // Every selected client finished no later than the round duration;
        // every unselected client finished no earlier.
        for i in 0..n {
            if outcome.selected.contains(&i) {
                prop_assert!(outcome.finish_secs[i] <= outcome.duration_secs + 1e-9);
            } else {
                prop_assert!(outcome.finish_secs[i] >= outcome.duration_secs - 1e-9);
            }
        }
        // Selected ids are sorted and unique.
        prop_assert!(outcome.selected.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn more_bytes_never_shorten_the_round(seed in 0u64..500, n in 2usize..10) {
        let cfg = ClusterConfig::paper_like(n);
        let cluster = Cluster::build(&cfg, seed);
        let timer = RoundTimer::new(&cluster, 0.7);
        let compute = vec![2.0; n];
        let small = timer.round(&compute, &vec![1_000; n], &vec![1_000; n]);
        let large = timer.round(&compute, &vec![10_000_000; n], &vec![10_000_000; n]);
        prop_assert!(large.duration_secs >= small.duration_secs);
    }

    #[test]
    fn cluster_factors_are_deterministic_and_positive(seed in 0u64..1000, n in 1usize..32) {
        let cfg = ClusterConfig::paper_like(n);
        let a = Cluster::build(&cfg, seed);
        let b = Cluster::build(&cfg, seed);
        for i in 0..n {
            prop_assert!(a.speed_factor(i) > 0.0);
            prop_assert_eq!(a.speed_factor(i), b.speed_factor(i));
        }
    }
}
