//! Model zoo: the three architectures of the FedSU paper's evaluation
//! (2-conv CNN, ResNet-18, DenseNet) plus a small MLP used in tests and
//! examples.
//!
//! Each architecture comes in width presets: [`ModelPreset::Small`] is the
//! laptop-scale configuration used by the default benchmark profile, while
//! [`ModelPreset::Paper`] approximates the original channel widths (see
//! DESIGN.md §3 on the scaling substitution).

use crate::activation::Relu;
use crate::blocks::{DenseLayer, ResidualBlock, Transition};
use crate::conv2d::Conv2d;
use crate::dense::Dense;
use crate::flatten::Flatten;
use crate::groupnorm::GroupNorm;
use crate::pool::{GlobalAvgPool, MaxPool2d};
use crate::sequential::Sequential;
use crate::{NnError, Result};
use rand::Rng;

/// Width/depth preset for the convolutional architectures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ModelPreset {
    /// Tiny configuration for unit tests (fastest).
    Tiny,
    /// Laptop-scale configuration used by the default experiment profile.
    #[default]
    Small,
    /// Channel widths approximating the architectures the paper trains.
    Paper,
}

fn groups_for(channels: usize) -> usize {
    if channels % 4 == 0 {
        4
    } else if channels % 2 == 0 {
        2
    } else {
        1
    }
}

/// A plain MLP: `dims[0] -> dims[1] -> ... -> dims.last()` with ReLU between
/// layers. Useful for fast tests and the quickstart example.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] when fewer than two dims are given.
pub fn mlp<R: Rng + ?Sized>(dims: &[usize], rng: &mut R) -> Result<Sequential> {
    if dims.len() < 2 {
        return Err(NnError::BadConfig("mlp needs at least input and output dims".to_string()));
    }
    let mut net = Sequential::with_capacity("mlp", 2 * dims.len());
    for i in 0..dims.len() - 1 {
        net.push(Dense::new(dims[i], dims[i + 1], rng)?);
        if i + 2 < dims.len() {
            net.push(Relu::new());
        }
    }
    Ok(net)
}

/// The paper's EMNIST CNN: two 5×5 convolutions with max-pooling followed by
/// two fully-connected layers (Sec. VI-A).
///
/// Input: `[batch, 1, 28, 28]`. The preset scales channel/hidden widths.
///
/// # Errors
///
/// Propagates layer construction errors.
pub fn cnn<R: Rng + ?Sized>(classes: usize, preset: ModelPreset, rng: &mut R) -> Result<Sequential> {
    let (c1, c2, hidden) = match preset {
        ModelPreset::Tiny => (2, 4, 16),
        ModelPreset::Small => (6, 12, 64),
        ModelPreset::Paper => (32, 64, 512),
    };
    let mut net = Sequential::new("cnn");
    net.push(Conv2d::new(1, c1, 5, 1, 2, rng)?);
    net.push(Relu::new());
    net.push(MaxPool2d::new(2)); // 28 -> 14
    net.push(Conv2d::new(c1, c2, 5, 1, 2, rng)?);
    net.push(Relu::new());
    net.push(MaxPool2d::new(2)); // 14 -> 7
    net.push(Flatten::new());
    net.push(Dense::new(c2 * 7 * 7, hidden, rng)?);
    net.push(Relu::new());
    net.push(Dense::new(hidden, classes, rng)?);
    Ok(net)
}

/// ResNet-18-style residual network over `[batch, in_channels, 28, 28]`
/// inputs (the paper trains ResNet-18 on FMNIST).
///
/// Four stages of two basic blocks each, with stride-2 downsampling at the
/// start of stages 2–4, GroupNorm in place of BatchNorm (DESIGN.md §3),
/// global average pooling, and a final classifier.
///
/// # Errors
///
/// Propagates layer construction errors.
pub fn resnet18<R: Rng + ?Sized>(
    in_channels: usize,
    classes: usize,
    preset: ModelPreset,
    rng: &mut R,
) -> Result<Sequential> {
    let w = match preset {
        ModelPreset::Tiny => 2,
        ModelPreset::Small => 4,
        ModelPreset::Paper => 64,
    };
    let mut net = Sequential::with_capacity("resnet18", 13);
    net.push(Conv2d::new(in_channels, w, 3, 1, 1, rng)?);
    net.push(GroupNorm::new(w, groups_for(w))?);
    net.push(Relu::new());
    let widths = [w, 2 * w, 4 * w, 8 * w];
    let mut in_c = w;
    for (stage, &out_c) in widths.iter().enumerate() {
        let stride = if stage == 0 { 1 } else { 2 };
        net.push(ResidualBlock::new(in_c, out_c, stride, groups_for(out_c), rng)?);
        net.push(ResidualBlock::new(out_c, out_c, 1, groups_for(out_c), rng)?);
        in_c = out_c;
    }
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(8 * w, classes, rng)?);
    Ok(net)
}

/// DenseNet-style densely-connected network over
/// `[batch, in_channels, 32, 32]` inputs (the paper trains DenseNet-121 on
/// CIFAR-10).
///
/// A stride-2 stem (DenseNet-121's own stem downsamples 4×) followed by
/// three dense blocks separated by transitions that halve channels and
/// spatial dims, then GroupNorm + ReLU + global average pooling and a
/// classifier. The early downsampling also keeps the final 4×4 global
/// average pool informative at laptop-scale widths.
///
/// # Errors
///
/// Propagates layer construction errors.
pub fn densenet<R: Rng + ?Sized>(
    in_channels: usize,
    classes: usize,
    preset: ModelPreset,
    rng: &mut R,
) -> Result<Sequential> {
    let (growth, layers_per_block) = match preset {
        ModelPreset::Tiny => (6, 2),
        ModelPreset::Small => (8, 3),
        ModelPreset::Paper => (32, 6),
    };
    let mut net = Sequential::with_capacity("densenet", 3 * layers_per_block + 7);
    let mut channels = 2 * growth;
    net.push(Conv2d::new(in_channels, channels, 3, 2, 1, rng)?); // 32 -> 16
    for block in 0..3 {
        for _ in 0..layers_per_block {
            net.push(DenseLayer::new(channels, growth, groups_for(channels), rng)?);
            channels += growth;
        }
        if block < 2 {
            let out = channels / 2;
            net.push(Transition::new(channels, out, groups_for(channels), rng)?);
            channels = out;
        }
    }
    net.push(GroupNorm::new(channels, groups_for(channels))?);
    net.push(Relu::new());
    net.push(GlobalAvgPool::new());
    net.push(Dense::new(channels, classes, rng)?);
    Ok(net)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flat::param_count;
    use crate::layer::Layer;
    use crate::loss::softmax_cross_entropy;
    use fedsu_tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = mlp(&[4, 8, 3], &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 4], -1.0, 1.0, &mut rng);
        let y = m.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 3]);
        assert!(mlp(&[4], &mut rng).is_err());
    }

    #[test]
    fn cnn_forward_backward_runs() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = cnn(10, ModelPreset::Tiny, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 1, 28, 28], -1.0, 1.0, &mut rng);
        let y = m.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        let (_, grad) = softmax_cross_entropy(&y, &[3, 7]).unwrap();
        let dx = m.backward(&grad).unwrap();
        assert_eq!(dx.shape(), x.shape());
        assert!(!dx.has_non_finite());
    }

    #[test]
    fn resnet_forward_backward_runs() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut m = resnet18(1, 10, ModelPreset::Tiny, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 1, 28, 28], -1.0, 1.0, &mut rng);
        let y = m.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        let (_, grad) = softmax_cross_entropy(&y, &[0, 9]).unwrap();
        let dx = m.backward(&grad).unwrap();
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn densenet_forward_backward_runs() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = densenet(3, 10, ModelPreset::Tiny, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 3, 32, 32], -1.0, 1.0, &mut rng);
        let y = m.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 10]);
        let (_, grad) = softmax_cross_entropy(&y, &[1, 2]).unwrap();
        let dx = m.backward(&grad).unwrap();
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn presets_scale_parameter_counts() {
        let mut rng = StdRng::seed_from_u64(4);
        let tiny = cnn(10, ModelPreset::Tiny, &mut rng).unwrap();
        let small = cnn(10, ModelPreset::Small, &mut rng).unwrap();
        assert!(param_count(&small) > param_count(&tiny));
    }

    #[test]
    fn models_are_deterministic_given_seed() {
        let a = cnn(10, ModelPreset::Tiny, &mut StdRng::seed_from_u64(5)).unwrap();
        let b = cnn(10, ModelPreset::Tiny, &mut StdRng::seed_from_u64(5)).unwrap();
        assert_eq!(crate::flat::flatten_params(&a), crate::flat::flatten_params(&b));
    }

    #[test]
    fn one_sgd_step_reduces_loss_on_fixed_batch() {
        use crate::optim::Sgd;
        let mut rng = StdRng::seed_from_u64(6);
        let mut m = mlp(&[4, 16, 3], &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[8, 4], -1.0, 1.0, &mut rng);
        let labels = [0usize, 1, 2, 0, 1, 2, 0, 1];
        let mut opt = Sgd::new(0.5);
        let y0 = m.forward(&x, true).unwrap();
        let (l0, g) = softmax_cross_entropy(&y0, &labels).unwrap();
        m.backward(&g).unwrap();
        opt.step(&mut m).unwrap();
        let y1 = m.forward(&x, false).unwrap();
        let (l1, _) = softmax_cross_entropy(&y1, &labels).unwrap();
        assert!(l1 < l0, "loss should decrease: {l0} -> {l1}");
    }
}
