//! Group normalization (Wu & He, 2018).
//!
//! GroupNorm is used where the original architectures use BatchNorm: it is
//! batch-size independent and has no cross-client running statistics, which
//! makes it the standard normalization choice in federated-learning research
//! (see DESIGN.md §3 for the substitution note).

use crate::layer::{Layer, Param};
use crate::{NnError, Result};
use fedsu_tensor::{pool, Tensor};

const EPS: f32 = 1e-5;

struct Cache {
    input: Tensor,
    mean: Vec<f32>,    // per (sample, group)
    inv_std: Vec<f32>, // per (sample, group)
}

/// Group normalization over `NCHW` inputs with learnable per-channel
/// `gamma`/`beta`.
pub struct GroupNorm {
    gamma: Param,
    beta: Param,
    channels: usize,
    groups: usize,
    cache: Option<Cache>,
}

impl std::fmt::Debug for GroupNorm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupNorm")
            .field("channels", &self.channels)
            .field("groups", &self.groups)
            .finish()
    }
}

impl GroupNorm {
    /// Creates a GroupNorm layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when `groups` does not divide
    /// `channels` or either is zero.
    pub fn new(channels: usize, groups: usize) -> Result<Self> {
        if channels == 0 || groups == 0 || channels % groups != 0 {
            return Err(NnError::BadConfig(format!(
                "groupnorm needs groups | channels, got {groups} groups for {channels} channels"
            )));
        }
        Ok(GroupNorm {
            gamma: Param::new(Tensor::ones(&[channels])),
            beta: Param::new(Tensor::zeros(&[channels])),
            channels,
            groups,
            cache: None,
        })
    }
}

impl Layer for GroupNorm {
    fn name(&self) -> &str {
        "groupnorm"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if input.rank() != 4 || input.shape()[1] != self.channels {
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("[batch, {}, h, w]", self.channels),
                input.shape(),
            ));
        }
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let cpg = c / self.groups; // channels per group
        let group_size = cpg * h * w;
        let plane = h * w;
        let data = input.data();
        let mut out_t = pool::pooled_zeros(input.shape());
        let out = out_t.data_mut();
        let mut means = pool::take_f32_buf(n * self.groups);
        let mut inv_stds = pool::take_f32_buf(n * self.groups);

        for s in 0..n {
            for g in 0..self.groups {
                let start = s * c * plane + g * cpg * plane;
                let slice = &data[start..start + group_size];
                let mean = slice.iter().sum::<f32>() / group_size as f32;
                let var = slice.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / group_size as f32;
                let inv_std = 1.0 / (var + EPS).sqrt();
                means[s * self.groups + g] = mean;
                inv_stds[s * self.groups + g] = inv_std;
                for ci in 0..cpg {
                    let ch = g * cpg + ci;
                    let gam = self.gamma.value.data()[ch];
                    let bet = self.beta.value.data()[ch];
                    let off = start + ci * plane;
                    for i in 0..plane {
                        out[off + i] = (data[off + i] - mean) * inv_std * gam + bet;
                    }
                }
            }
        }
        if train {
            let mut cached = pool::pooled_like(input);
            cached.data_mut().copy_from_slice(data);
            self.cache = Some(Cache { input: cached, mean: means, inv_std: inv_stds });
        } else {
            pool::give_f32_buf(means);
            pool::give_f32_buf(inv_stds);
        }
        Ok(out_t)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        let input = &cache.input;
        if grad_output.shape() != input.shape() {
            let err = NnError::new_bad_input(
                self.name(),
                format_args!("grad {:?}", input.shape()),
                grad_output.shape(),
            );
            let Cache { input, mean, inv_std } = cache;
            pool::recycle(input);
            pool::give_f32_buf(mean);
            pool::give_f32_buf(inv_std);
            return Err(err);
        }
        let (n, c, h, w) = (input.shape()[0], input.shape()[1], input.shape()[2], input.shape()[3]);
        let cpg = c / self.groups;
        let plane = h * w;
        let group_size = (cpg * plane) as f32;
        let xd = input.data();
        let gd = grad_output.data();
        let mut grad_in_t = pool::pooled_zeros(input.shape());
        let grad_in = grad_in_t.data_mut();

        for s in 0..n {
            for g in 0..self.groups {
                let mean = cache.mean[s * self.groups + g];
                let inv_std = cache.inv_std[s * self.groups + g];
                let start = s * c * plane + g * cpg * plane;

                // First pass: accumulate the two group-level sums of the
                // standard normalization backward formula, plus per-channel
                // gamma/beta gradients.
                let mut sum_dxhat = 0.0f32;
                let mut sum_dxhat_xhat = 0.0f32;
                for ci in 0..cpg {
                    let ch = g * cpg + ci;
                    let gam = self.gamma.value.data()[ch];
                    let off = start + ci * plane;
                    let mut dgamma = 0.0f32;
                    let mut dbeta = 0.0f32;
                    for i in 0..plane {
                        let xhat = (xd[off + i] - mean) * inv_std;
                        let dy = gd[off + i];
                        dgamma += dy * xhat;
                        dbeta += dy;
                        let dxhat = dy * gam;
                        sum_dxhat += dxhat;
                        sum_dxhat_xhat += dxhat * xhat;
                    }
                    self.gamma.grad.data_mut()[ch] += dgamma;
                    self.beta.grad.data_mut()[ch] += dbeta;
                }

                // Second pass: dx = inv_std * (dxhat - mean(dxhat) - xhat * mean(dxhat*xhat))
                for ci in 0..cpg {
                    let ch = g * cpg + ci;
                    let gam = self.gamma.value.data()[ch];
                    let off = start + ci * plane;
                    for i in 0..plane {
                        let xhat = (xd[off + i] - mean) * inv_std;
                        let dxhat = gd[off + i] * gam;
                        grad_in[off + i] =
                            inv_std * (dxhat - sum_dxhat / group_size - xhat * sum_dxhat_xhat / group_size);
                    }
                }
            }
        }
        let Cache { input, mean, inv_std } = cache;
        pool::recycle(input);
        pool::give_f32_buf(mean);
        pool::give_f32_buf(inv_std);
        Ok(grad_in_t)
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.gamma);
        f(&self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn forward_normalizes_each_group() {
        let mut gn = GroupNorm::new(2, 2).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 2, 2]).unwrap();
        let y = gn.forward(&x, true).unwrap();
        // Each group (channel here) should be ~zero-mean, unit-variance.
        for ch in 0..2 {
            let s = &y.data()[ch * 4..(ch + 1) * 4];
            let mean: f32 = s.iter().sum::<f32>() / 4.0;
            let var: f32 = s.iter().map(|v| (v - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "var {var}");
        }
    }

    #[test]
    fn gamma_beta_affect_output() {
        let mut gn = GroupNorm::new(1, 1).unwrap();
        gn.gamma.value.fill(2.0);
        gn.beta.value.fill(1.0);
        let x = Tensor::from_vec(vec![0.0, 1.0, 2.0, 3.0], &[1, 1, 2, 2]).unwrap();
        let y = gn.forward(&x, true).unwrap();
        let mean: f32 = y.data().iter().sum::<f32>() / 4.0;
        assert!((mean - 1.0).abs() < 1e-5); // beta shifts the mean
    }

    #[test]
    fn invalid_groups_rejected() {
        assert!(GroupNorm::new(6, 4).is_err());
        assert!(GroupNorm::new(0, 1).is_err());
        assert!(GroupNorm::new(4, 0).is_err());
    }

    #[test]
    fn finite_difference_gradient_check() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut gn = GroupNorm::new(4, 2).unwrap();
        for v in gn.gamma.value.data_mut() {
            *v = rng.gen_range(0.5..1.5);
        }
        let x = Tensor::rand_uniform(&[2, 4, 3, 3], -1.0, 1.0, &mut rng);

        // Loss = weighted sum of outputs (weights make the check non-trivial).
        let wts: Vec<f32> = (0..x.len()).map(|i| ((i as f32) * 0.13).sin()).collect();
        let loss = |gn: &mut GroupNorm, x: &Tensor| -> f32 {
            let y = gn.forward(x, true).unwrap();
            y.data().iter().zip(&wts).map(|(a, b)| a * b).sum()
        };

        let y = gn.forward(&x, true).unwrap();
        let dy = Tensor::from_vec(wts.clone(), y.shape()).unwrap();
        let dx = gn.backward(&dy).unwrap();
        let dgamma = gn.gamma.grad.clone();

        let eps = 1e-2f32;
        let mut x2 = x.clone();
        for idx in [0usize, 17, 40, 65] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp = loss(&mut gn, &x2);
            x2.data_mut()[idx] = orig - eps;
            let lm = loss(&mut gn, &x2);
            x2.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let got = dx.data()[idx];
            assert!(
                (numeric - got).abs() < 0.02 * (1.0 + got.abs()),
                "input idx {idx}: numeric {numeric} vs analytic {got}"
            );
        }
        for ch in 0..4 {
            let orig = gn.gamma.value.data()[ch];
            gn.gamma.value.data_mut()[ch] = orig + eps;
            let lp = loss(&mut gn, &x);
            gn.gamma.value.data_mut()[ch] = orig - eps;
            let lm = loss(&mut gn, &x);
            gn.gamma.value.data_mut()[ch] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let got = dgamma.data()[ch];
            assert!(
                (numeric - got).abs() < 0.02 * (1.0 + got.abs()),
                "gamma {ch}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut gn = GroupNorm::new(2, 1).unwrap();
        assert!(gn.backward(&Tensor::ones(&[1, 2, 1, 1])).is_err());
    }
}
