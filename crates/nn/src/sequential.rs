//! Sequential container.

use crate::layer::{Layer, Param};
use crate::Result;
use fedsu_tensor::{pool, Tensor};

/// A container running child layers in order; the workhorse model type.
///
/// ```
/// use fedsu_nn::{Sequential, Layer};
/// use fedsu_nn::activation::Relu;
/// use fedsu_tensor::Tensor;
///
/// # fn main() -> Result<(), fedsu_nn::NnError> {
/// let mut net = Sequential::new("demo");
/// net.push(Relu::new());
/// let y = net.forward(&Tensor::from_slice(&[-1.0, 2.0]).reshape(&[1, 2])?, false)?;
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// # Ok(())
/// # }
/// ```
pub struct Sequential {
    name: String,
    layers: Vec<Box<dyn Layer>>,
}

impl std::fmt::Debug for Sequential {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Sequential")
            .field("name", &self.name)
            .field("layers", &self.layers.iter().map(|l| l.name().to_string()).collect::<Vec<_>>())
            .finish()
    }
}

impl Sequential {
    /// Creates an empty container with the given display name.
    pub fn new(name: impl Into<String>) -> Self {
        Sequential { name: name.into(), layers: Vec::new() }
    }

    /// Creates an empty container with room for `layers` children, so model
    /// builders that push in a loop never regrow the layer list.
    pub fn with_capacity(name: impl Into<String>, layers: usize) -> Self {
        Sequential { name: name.into(), layers: Vec::with_capacity(layers) }
    }

    /// Appends a layer.
    pub fn push<L: Layer + 'static>(&mut self, layer: L) -> &mut Self {
        self.layers.push(Box::new(layer));
        self
    }

    /// Appends an already-boxed layer.
    pub fn push_boxed(&mut self, layer: Box<dyn Layer>) -> &mut Self {
        self.layers.push(layer);
        self
    }

    /// Number of child layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the container has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Total number of scalar parameters (recursively).
    pub fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

impl Layer for Sequential {
    fn name(&self) -> &str {
        &self.name
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut layers = self.layers.iter_mut();
        let Some(first) = layers.next() else {
            let mut out = pool::pooled_like(input);
            out.data_mut().copy_from_slice(input.data());
            return Ok(out);
        };
        let mut x = first.forward(input, train)?;
        for layer in layers {
            let next = layer.forward(&x, train)?;
            // The intermediate activation is dead once the next layer has
            // consumed it; hand its storage back to the pool.
            pool::recycle(std::mem::replace(&mut x, next));
        }
        Ok(x)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut layers = self.layers.iter_mut().rev();
        let Some(first) = layers.next() else {
            let mut out = pool::pooled_like(grad_output);
            out.data_mut().copy_from_slice(grad_output.data());
            return Ok(out);
        };
        let mut g = first.backward(grad_output)?;
        for layer in layers {
            let next = layer.backward(&g)?;
            pool::recycle(std::mem::replace(&mut g, next));
        }
        Ok(g)
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params_mut(f);
        }
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        for layer in &self.layers {
            layer.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::activation::Relu;
    use crate::dense::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_sequential_is_identity() {
        let mut s = Sequential::new("empty");
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(s.forward(&x, true).unwrap().data(), x.data());
        assert_eq!(s.backward(&x).unwrap().data(), x.data());
        assert!(s.is_empty());
    }

    #[test]
    fn composes_layers_in_order() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Sequential::new("mlp");
        s.push(Dense::new(2, 4, &mut rng).unwrap());
        s.push(Relu::new());
        s.push(Dense::new(4, 3, &mut rng).unwrap());
        assert_eq!(s.len(), 3);
        let x = Tensor::rand_uniform(&[5, 2], -1.0, 1.0, &mut rng);
        let y = s.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[5, 3]);
        let dx = s.backward(&Tensor::ones(&[5, 3])).unwrap();
        assert_eq!(dx.shape(), &[5, 2]);
    }

    #[test]
    fn param_count_sums_children() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Sequential::new("mlp");
        s.push(Dense::new(2, 4, &mut rng).unwrap()); // 8 + 4
        s.push(Dense::new(4, 3, &mut rng).unwrap()); // 12 + 3
        assert_eq!(s.num_params(), 27);
    }

    #[test]
    fn visit_order_is_stable() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Sequential::new("mlp");
        s.push(Dense::new(2, 4, &mut rng).unwrap());
        s.push(Dense::new(4, 3, &mut rng).unwrap());
        let mut lens = Vec::new();
        s.visit_params(&mut |p| lens.push(p.len()));
        assert_eq!(lens, vec![8, 4, 12, 3]);
    }
}
