//! Pooling layers: max pooling, average pooling, and global average pooling.

use crate::layer::Layer;
use crate::{NnError, Result};
use fedsu_tensor::{pool, Tensor};

fn check_nchw(input: &Tensor, layer: &str) -> Result<(usize, usize, usize, usize)> {
    if input.rank() != 4 {
        return Err(NnError::new_bad_input(
            layer,
            format_args!("[batch, c, h, w]"),
            input.shape(),
        ));
    }
    let s = input.shape();
    Ok((s[0], s[1], s[2], s[3]))
}

/// Checks out a pool-backed copy of `shape` so steady rounds reuse the
/// same small vector instead of re-allocating it every forward pass.
fn cache_shape(shape: &[usize]) -> Vec<usize> {
    let mut cached = pool::take_usize_buf(shape.len());
    cached.copy_from_slice(shape);
    cached
}

/// Non-overlapping max pooling with square window `k` and stride `k`.
///
/// Input spatial dims must be divisible by `k`.
#[derive(Debug)]
pub struct MaxPool2d {
    k: usize,
    cached: Option<(Vec<usize>, Vec<usize>)>, // (input shape, argmax flat indices)
}

impl MaxPool2d {
    /// Creates a max-pool layer with window and stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        MaxPool2d { k, cached: None }
    }
}

impl Layer for MaxPool2d {
    fn name(&self) -> &str {
        "maxpool2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let (n, c, h, w) = check_nchw(input, self.name())?;
        if h % self.k != 0 || w % self.k != 0 {
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("spatial dims divisible by {}", self.k),
                input.shape(),
            ));
        }
        let (oh, ow) = (h / self.k, w / self.k);
        let mut out = pool::pooled_zeros(&[n, c, oh, ow]);
        let mut arg = pool::take_usize_buf(n * c * oh * ow);
        let data = input.data();
        let od = out.data_mut();
        for img in 0..n * c {
            let base = img * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = 0usize;
                    for dy in 0..self.k {
                        for dx in 0..self.k {
                            let idx = base + (oy * self.k + dy) * w + ox * self.k + dx;
                            if data[idx] > best {
                                best = data[idx];
                                best_idx = idx;
                            }
                        }
                    }
                    let o = img * oh * ow + oy * ow + ox;
                    od[o] = best;
                    arg[o] = best_idx;
                }
            }
        }
        if train {
            self.cached = Some((cache_shape(input.shape()), arg));
        } else {
            pool::give_usize_buf(arg);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (in_shape, arg) = self
            .cached
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        if grad_output.len() != arg.len() {
            let expected = arg.len();
            pool::give_usize_buf(arg);
            pool::give_usize_buf(in_shape);
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("grad with {expected} elements"),
                grad_output.shape(),
            ));
        }
        let mut grad_in = pool::pooled_zeros(&in_shape);
        let gd = grad_in.data_mut();
        for (g, &idx) in grad_output.data().iter().zip(&arg) {
            gd[idx] += g;
        }
        pool::give_usize_buf(arg);
        pool::give_usize_buf(in_shape);
        Ok(grad_in)
    }
}

/// Non-overlapping average pooling with square window `k` and stride `k`.
#[derive(Debug)]
pub struct AvgPool2d {
    k: usize,
    cached_shape: Option<Vec<usize>>,
}

impl AvgPool2d {
    /// Creates an average-pool layer with window and stride `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "pool window must be positive");
        AvgPool2d { k, cached_shape: None }
    }
}

impl Layer for AvgPool2d {
    fn name(&self) -> &str {
        "avgpool2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let (n, c, h, w) = check_nchw(input, self.name())?;
        if h % self.k != 0 || w % self.k != 0 {
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("spatial dims divisible by {}", self.k),
                input.shape(),
            ));
        }
        let (oh, ow) = (h / self.k, w / self.k);
        let inv = 1.0 / (self.k * self.k) as f32;
        let mut out = pool::pooled_zeros(&[n, c, oh, ow]);
        let data = input.data();
        let od = out.data_mut();
        for img in 0..n * c {
            let base = img * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for dy in 0..self.k {
                        for dx in 0..self.k {
                            acc += data[base + (oy * self.k + dy) * w + ox * self.k + dx];
                        }
                    }
                    od[img * oh * ow + oy * ow + ox] = acc * inv;
                }
            }
        }
        if train {
            self.cached_shape = Some(cache_shape(input.shape()));
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let in_shape = self
            .cached_shape
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        let (h, w) = (in_shape[2], in_shape[3]);
        let (oh, ow) = (h / self.k, w / self.k);
        let inv = 1.0 / (self.k * self.k) as f32;
        let gd = grad_output.data();
        let images = in_shape[0] * in_shape[1];
        if gd.len() != images * oh * ow {
            pool::give_usize_buf(in_shape);
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("grad with {} elements", images * oh * ow),
                grad_output.shape(),
            ));
        }
        let mut grad_in = pool::pooled_zeros(&in_shape);
        let gi = grad_in.data_mut();
        for img in 0..images {
            let base = img * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = gd[img * oh * ow + oy * ow + ox] * inv;
                    for dy in 0..self.k {
                        for dx in 0..self.k {
                            gi[base + (oy * self.k + dy) * w + ox * self.k + dx] += g;
                        }
                    }
                }
            }
        }
        pool::give_usize_buf(in_shape);
        Ok(grad_in)
    }
}

/// Global average pooling: `[n, c, h, w] -> [n, c]`.
#[derive(Debug, Default)]
pub struct GlobalAvgPool {
    cached_shape: Option<Vec<usize>>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_shape: None }
    }
}

impl Layer for GlobalAvgPool {
    fn name(&self) -> &str {
        "globalavgpool"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let (n, c, h, w) = check_nchw(input, self.name())?;
        let plane = h * w;
        let inv = 1.0 / plane as f32;
        let mut out = pool::pooled_zeros(&[n, c]);
        let od = out.data_mut();
        for img in 0..n * c {
            od[img] = input.data()[img * plane..(img + 1) * plane].iter().sum::<f32>() * inv;
        }
        if train {
            self.cached_shape = Some(cache_shape(input.shape()));
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let in_shape = self
            .cached_shape
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        let plane = in_shape[2] * in_shape[3];
        let inv = 1.0 / plane as f32;
        let images = in_shape[0] * in_shape[1];
        if grad_output.len() != images {
            pool::give_usize_buf(in_shape);
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("grad with {images} elements"),
                grad_output.shape(),
            ));
        }
        let mut grad_in = pool::pooled_zeros(&in_shape);
        let gi = grad_in.data_mut();
        for img in 0..images {
            let g = grad_output.data()[img] * inv;
            for v in &mut gi[img * plane..(img + 1) * plane] {
                *v = g;
            }
        }
        pool::give_usize_buf(in_shape);
        Ok(grad_in)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maxpool_forward_known() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0, 9.0, 10.0, 11.0, 12.0, 13.0, 14.0, 15.0, 16.0], &[1, 1, 4, 4]).unwrap();
        let y = p.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 1, 2, 2]);
        assert_eq!(y.data(), &[6.0, 8.0, 14.0, 16.0]);
    }

    #[test]
    fn maxpool_backward_routes_to_argmax() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        p.forward(&x, true).unwrap();
        let dx = p.backward(&Tensor::from_vec(vec![5.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(dx.data(), &[0.0, 0.0, 0.0, 5.0]);
    }

    #[test]
    fn maxpool_rejects_indivisible_dims() {
        let mut p = MaxPool2d::new(2);
        let x = Tensor::zeros(&[1, 1, 3, 4]);
        assert!(p.forward(&x, true).is_err());
    }

    #[test]
    fn avgpool_forward_and_backward() {
        let mut p = AvgPool2d::new(2);
        let x = Tensor::from_vec(vec![1.0, 3.0, 5.0, 7.0], &[1, 1, 2, 2]).unwrap();
        let y = p.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[4.0]);
        let dx = p.backward(&Tensor::from_vec(vec![8.0], &[1, 1, 1, 1]).unwrap()).unwrap();
        assert_eq!(dx.data(), &[2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn global_avg_pool_roundtrip() {
        let mut p = GlobalAvgPool::new();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 10.0, 20.0, 30.0, 40.0], &[1, 2, 2, 2]).unwrap();
        let y = p.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 2]);
        assert_eq!(y.data(), &[2.5, 25.0]);
        let dx = p.backward(&Tensor::from_vec(vec![4.0, 8.0], &[1, 2]).unwrap()).unwrap();
        assert_eq!(dx.data(), &[1.0, 1.0, 1.0, 1.0, 2.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut p = MaxPool2d::new(2);
        assert!(p.backward(&Tensor::ones(&[1, 1, 1, 1])).is_err());
        let mut a = AvgPool2d::new(2);
        assert!(a.backward(&Tensor::ones(&[1, 1, 1, 1])).is_err());
        let mut g = GlobalAvgPool::new();
        assert!(g.backward(&Tensor::ones(&[1, 1])).is_err());
    }

    #[test]
    fn maxpool_gradient_is_conservative() {
        // Sum of routed gradient equals sum of incoming gradient.
        let mut p = MaxPool2d::new(2);
        let x = Tensor::from_vec((0..16).map(|v| (v as f32 * 0.7).sin()).collect(), &[1, 1, 4, 4]).unwrap();
        p.forward(&x, true).unwrap();
        let dy = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let dx = p.backward(&dy).unwrap();
        assert!((dx.sum() - dy.sum()).abs() < 1e-6);
    }
}
