use fedsu_tensor::TensorError;
use std::fmt;

/// Errors produced by network construction, forward, or backward passes.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor operation failed.
    Tensor(TensorError),
    /// A layer received an input of unexpected shape.
    BadInput {
        /// Layer that rejected the input.
        layer: String,
        /// What the layer expected, human-readable.
        expected: String,
        /// The shape it actually received.
        actual: Vec<usize>,
    },
    /// `backward` was called without a preceding `forward`.
    MissingForward {
        /// Layer that was asked to run backward.
        layer: String,
    },
    /// A network description was invalid (e.g. zero layers or channels).
    BadConfig(String),
    /// Label out of range for the classifier output.
    BadLabel {
        /// The offending label.
        label: usize,
        /// Number of classes the model predicts.
        classes: usize,
    },
}

impl NnError {
    /// Cold constructor for [`NnError::BadInput`]: hot call sites pass
    /// `format_args!` so the owned strings are only materialized when the
    /// error actually fires.
    pub fn new_bad_input(layer: &str, expected: fmt::Arguments<'_>, actual: &[usize]) -> NnError {
        NnError::BadInput {
            layer: layer.to_string(),
            expected: expected.to_string(),
            actual: actual.to_vec(),
        }
    }

    /// Cold constructor for [`NnError::MissingForward`].
    pub fn new_missing_forward(layer: &str) -> NnError {
        NnError::MissingForward { layer: layer.to_string() }
    }

    /// Cold constructor for [`NnError::BadConfig`].
    pub fn new_bad_config(msg: fmt::Arguments<'_>) -> NnError {
        NnError::BadConfig(msg.to_string())
    }
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::BadInput { layer, expected, actual } => {
                write!(f, "layer `{layer}` expected {expected}, got shape {actual:?}")
            }
            NnError::MissingForward { layer } => {
                write!(f, "backward called on `{layer}` before forward")
            }
            NnError::BadConfig(msg) => write!(f, "bad network config: {msg}"),
            NnError::BadLabel { label, classes } => {
                write!(f, "label {label} out of range for {classes} classes")
            }
        }
    }
}

impl std::error::Error for NnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_tensor_error_with_source() {
        use std::error::Error;
        let e: NnError = TensorError::InvalidArgument("x".into()).into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("tensor error"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<NnError>();
    }
}
