//! Inverted dropout.

use crate::layer::Layer;
use crate::{NnError, Result};
use fedsu_tensor::{pool, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Inverted dropout: during training each element is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so inference
/// needs no rescaling and is the identity.
#[derive(Debug)]
pub struct Dropout {
    p: f32,
    rng: StdRng,
    mask: Option<Vec<f32>>,
    /// Retired mask allocation, reused by the next forward pass.
    spare: Vec<f32>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`, seeded for
    /// reproducibility.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn new(p: f32, seed: u64) -> Self {
        assert!((0.0..1.0).contains(&p), "drop probability must be in [0, 1)");
        Dropout { p, rng: StdRng::seed_from_u64(seed), mask: None, spare: Vec::new() }
    }
}

impl Layer for Dropout {
    fn name(&self) -> &str {
        "dropout"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if !train || self.p == 0.0 {
            self.mask = None;
            let mut out = pool::pooled_like(input);
            out.data_mut().copy_from_slice(input.data());
            return Ok(out);
        }
        let keep = 1.0 - self.p;
        let scale = 1.0 / keep;
        let rng = &mut self.rng;
        let mut mask = std::mem::take(&mut self.spare);
        mask.clear();
        mask.extend((0..input.len()).map(|_| if rng.gen::<f32>() < keep { scale } else { 0.0 }));
        let mut out = pool::pooled_like(input);
        for ((o, &v), &m) in out.data_mut().iter_mut().zip(input.data()).zip(&mask) {
            *o = v * m;
        }
        self.mask = Some(mask);
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .mask
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        if mask.len() != grad_output.len() {
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("grad with {} elements", mask.len()),
                grad_output.shape(),
            ));
        }
        let mut out = pool::pooled_like(grad_output);
        for ((o, &g), &m) in out.data_mut().iter_mut().zip(grad_output.data()).zip(&mask) {
            *o = g * m;
        }
        self.spare = mask;
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_is_identity() {
        let mut d = Dropout::new(0.5, 0);
        let x = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        assert_eq!(d.forward(&x, false).unwrap().data(), x.data());
    }

    #[test]
    fn training_zeroes_roughly_p_fraction() {
        let mut d = Dropout::new(0.3, 1);
        let x = Tensor::ones(&[10_000]);
        let y = d.forward(&x, true).unwrap();
        let zeros = y.data().iter().filter(|&&v| v == 0.0).count();
        let frac = zeros as f32 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.03, "dropped {frac}");
        // Survivors are scaled to preserve the expectation.
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 2);
        let x = Tensor::ones(&[100]);
        let y = d.forward(&x, true).unwrap();
        let dx = d.backward(&Tensor::ones(&[100])).unwrap();
        // Gradient is zero exactly where the activation was dropped.
        for (o, g) in y.data().iter().zip(dx.data()) {
            assert_eq!(*o == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn zero_probability_never_drops() {
        let mut d = Dropout::new(0.0, 3);
        let x = Tensor::ones(&[64]);
        assert_eq!(d.forward(&x, true).unwrap().data(), x.data());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut d = Dropout::new(0.5, 4);
        assert!(d.backward(&Tensor::ones(&[1])).is_err());
    }

    #[test]
    #[should_panic(expected = "drop probability")]
    fn invalid_probability_panics() {
        Dropout::new(1.0, 0);
    }
}
