//! Stochastic gradient descent with optional weight decay and momentum.

use crate::layer::Layer;
use crate::Result;
use fedsu_tensor::{simd, Tensor};

/// Allocates one zeroed state tensor per parameter. Cold path: optimizers
/// call this once, on their first step.
fn init_state(model: &dyn Layer, state: &mut Vec<Tensor>) {
    model.visit_params(&mut |p| state.push(Tensor::zeros(p.value.shape())));
}

/// SGD optimizer matching the paper's training setup (plain SGD with weight
/// decay; momentum available but off by default).
///
/// The optimizer zeroes each parameter's gradient after applying it.
#[derive(Debug)]
pub struct Sgd {
    lr: f32,
    weight_decay: f32,
    momentum: f32,
    velocity: Vec<Tensor>,
}

impl Sgd {
    /// Creates an SGD optimizer with the given learning rate, no weight
    /// decay, and no momentum.
    pub fn new(lr: f32) -> Self {
        Sgd { lr, weight_decay: 0.0, momentum: 0.0, velocity: Vec::new() }
    }

    /// Sets L2 weight decay (the paper uses `1e-3`).
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets classical momentum.
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate (for decay schedules).
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one update step to every parameter of `model`, then zeroes
    /// the gradients.
    ///
    /// # Errors
    ///
    /// Currently infallible for well-formed models; the `Result` return
    /// keeps the signature stable if validation is added.
    pub fn step(&mut self, model: &mut dyn Layer) -> Result<()> {
        let lr = self.lr;
        let wd = self.weight_decay;
        let mu = self.momentum;
        if mu == 0.0 {
            model.visit_params_mut(&mut |p| {
                simd::sgd_step(p.value.data_mut(), p.grad.data_mut(), lr, wd);
            });
        } else {
            // Lazily size the velocity buffers on first use.
            if self.velocity.is_empty() {
                init_state(model, &mut self.velocity);
            }
            let mut velocity = self.velocity.iter_mut();
            model.visit_params_mut(&mut |p| {
                let Some(vel) = velocity.next() else {
                    return;
                };
                simd::sgd_momentum_step(
                    p.value.data_mut(),
                    p.grad.data_mut(),
                    vel.data_mut(),
                    lr,
                    wd,
                    mu,
                );
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unit_dense() -> Dense {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(1, 1, &mut rng).unwrap();
        d.visit_params_mut(&mut |p| p.value.fill(1.0));
        d
    }

    #[test]
    fn plain_sgd_applies_gradient_and_zeroes_it() {
        let mut d = unit_dense();
        d.visit_params_mut(&mut |p| p.grad.fill(2.0));
        Sgd::new(0.1).step(&mut d).unwrap();
        d.visit_params(&mut |p| {
            assert!((p.value.data()[0] - 0.8).abs() < 1e-6);
            assert_eq!(p.grad.data()[0], 0.0);
        });
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut d = unit_dense();
        // Zero gradient: only decay acts. x <- x - lr*wd*x = 1 - 0.1*0.5
        Sgd::new(0.1).with_weight_decay(0.5).step(&mut d).unwrap();
        d.visit_params(&mut |p| {
            assert!((p.value.data()[0] - 0.95).abs() < 1e-6);
        });
    }

    #[test]
    fn momentum_accumulates() {
        let mut d = unit_dense();
        let mut opt = Sgd::new(0.1).with_momentum(0.9);
        d.visit_params_mut(&mut |p| p.grad.fill(1.0));
        opt.step(&mut d).unwrap(); // v=1, x=1-0.1
        d.visit_params_mut(&mut |p| p.grad.fill(1.0));
        opt.step(&mut d).unwrap(); // v=1.9, x=0.9-0.19
        let mut vals = Vec::new();
        d.visit_params(&mut |p| vals.push(p.value.data()[0]));
        assert!((vals[0] - 0.71).abs() < 1e-5, "{}", vals[0]);
    }

    #[test]
    fn set_lr_changes_step_size() {
        let mut d = unit_dense();
        let mut opt = Sgd::new(0.1);
        opt.set_lr(0.2);
        assert_eq!(opt.lr(), 0.2);
        d.visit_params_mut(&mut |p| p.grad.fill(1.0));
        opt.step(&mut d).unwrap();
        d.visit_params(&mut |p| assert!((p.value.data()[0] - 0.8).abs() < 1e-6));
    }
}

/// Adam optimizer (Kingma & Ba). Not used by the paper's evaluation (plain
/// SGD there), but provided so downstream users can pair FedSU with
/// adaptive local optimizers.
#[derive(Debug)]
pub struct Adam {
    lr: f32,
    beta1: f32,
    beta2: f32,
    eps: f32,
    weight_decay: f32,
    step_count: u64,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
}

impl Adam {
    /// Creates Adam with the standard defaults (β₁ 0.9, β₂ 0.999, ε 1e-8).
    pub fn new(lr: f32) -> Self {
        Adam { lr, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0, step_count: 0, m: Vec::new(), v: Vec::new() }
    }

    /// Sets L2 weight decay.
    pub fn with_weight_decay(mut self, wd: f32) -> Self {
        self.weight_decay = wd;
        self
    }

    /// Sets the moment decay rates.
    ///
    /// # Panics
    ///
    /// Panics unless both betas are in `[0, 1)`.
    pub fn with_betas(mut self, beta1: f32, beta2: f32) -> Self {
        assert!((0.0..1.0).contains(&beta1) && (0.0..1.0).contains(&beta2), "betas must be in [0, 1)");
        self.beta1 = beta1;
        self.beta2 = beta2;
        self
    }

    /// Current learning rate.
    pub fn lr(&self) -> f32 {
        self.lr
    }

    /// Updates the learning rate.
    pub fn set_lr(&mut self, lr: f32) {
        self.lr = lr;
    }

    /// Applies one Adam step to every parameter, then zeroes gradients.
    ///
    /// # Errors
    ///
    /// Currently infallible for well-formed models (stable signature).
    pub fn step(&mut self, model: &mut dyn Layer) -> Result<()> {
        if self.m.is_empty() {
            init_state(model, &mut self.m);
            init_state(model, &mut self.v);
        }
        self.step_count += 1;
        let bc1 = 1.0 - self.beta1.powi(self.step_count as i32);
        let bc2 = 1.0 - self.beta2.powi(self.step_count as i32);
        let (lr, b1, b2, eps, wd) = (self.lr, self.beta1, self.beta2, self.eps, self.weight_decay);
        let mut state = self.m.iter_mut().zip(self.v.iter_mut());
        model.visit_params_mut(&mut |p| {
            let Some((m, v)) = state.next() else {
                return;
            };
            let m = m.data_mut();
            let v = v.data_mut();
            let x = p.value.data_mut();
            let g = p.grad.data_mut();
            for (((xi, gi), mi), vi) in x.iter_mut().zip(g.iter_mut()).zip(m.iter_mut()).zip(v.iter_mut()) {
                let eff = *gi + wd * *xi;
                *mi = b1 * *mi + (1.0 - b1) * eff;
                *vi = b2 * *vi + (1.0 - b2) * eff * eff;
                let m_hat = *mi / bc1;
                let v_hat = *vi / bc2;
                *xi -= lr * m_hat / (v_hat.sqrt() + eps);
                *gi = 0.0;
            }
        });
        Ok(())
    }
}

#[cfg(test)]
mod adam_tests {
    use super::*;
    use crate::dense::Dense;
    use crate::layer::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn unit_dense() -> Dense {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(1, 1, &mut rng).unwrap();
        d.visit_params_mut(&mut |p| p.value.fill(1.0));
        d
    }

    #[test]
    fn first_step_moves_by_approximately_lr() {
        // With bias correction, the first Adam step is ~lr in the gradient
        // direction regardless of gradient magnitude.
        let mut d = unit_dense();
        d.visit_params_mut(&mut |p| p.grad.fill(1000.0));
        Adam::new(0.01).step(&mut d).unwrap();
        d.visit_params(&mut |p| {
            let moved = 1.0 - p.value.data()[0];
            assert!((moved - 0.01).abs() < 1e-4, "moved {moved}");
        });
    }

    #[test]
    fn gradients_are_zeroed_after_step() {
        let mut d = unit_dense();
        d.visit_params_mut(&mut |p| p.grad.fill(1.0));
        Adam::new(0.01).step(&mut d).unwrap();
        d.visit_params(&mut |p| assert_eq!(p.grad.data()[0], 0.0));
    }

    #[test]
    fn adam_trains_a_model() {
        use crate::loss::softmax_cross_entropy;
        use crate::models::mlp;
        use fedsu_tensor::Tensor;
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = mlp(&[4, 12, 3], &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[12, 4], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let mut opt = Adam::new(0.02);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..25 {
            let y = m.forward(&x, true).unwrap();
            let (l, g) = softmax_cross_entropy(&y, &labels).unwrap();
            m.backward(&g).unwrap();
            opt.step(&mut m).unwrap();
            if first.is_none() {
                first = Some(l);
            }
            last = l;
        }
        assert!(last < first.unwrap() * 0.5, "loss {:?} -> {last}", first);
    }

    #[test]
    #[should_panic(expected = "betas must be in")]
    fn invalid_betas_panic() {
        Adam::new(0.01).with_betas(1.0, 0.9);
    }
}
