//! # fedsu-nn
//!
//! A small layer-based neural-network library with hand-written backward
//! passes, built on `fedsu-tensor`. It provides every architecture the
//! FedSU paper evaluates — the 2-conv CNN, ResNet-18-style residual
//! networks, and DenseNet-121-style densely-connected networks — plus the
//! SGD optimizer (with weight decay) and softmax cross-entropy loss used in
//! the paper's training setup.
//!
//! ## Design
//!
//! * Every [`Layer`] caches whatever it needs during `forward` and consumes
//!   it in `backward`; gradients accumulate into per-parameter buffers.
//! * Parameters are reachable in a stable, deterministic order through
//!   [`Layer::visit_params_mut`], which is what lets the FL sync strategies
//!   treat a whole model as one flat `f32` vector (exactly the per-scalar
//!   granularity FedSU's predictability mask requires).
//! * Normalization uses GroupNorm rather than BatchNorm: it is
//!   batch-independent and standard practice in federated-learning research,
//!   where BatchNorm's running statistics are ill-defined across non-IID
//!   clients (see DESIGN.md §3).
//!
//! ```
//! use fedsu_nn::{models, loss::softmax_cross_entropy, optim::Sgd, Layer};
//! use fedsu_tensor::Tensor;
//! use rand::{rngs::StdRng, SeedableRng};
//!
//! # fn main() -> Result<(), fedsu_nn::NnError> {
//! let mut rng = StdRng::seed_from_u64(0);
//! let mut model = models::mlp(&[4, 8, 3], &mut rng)?;
//! let x = Tensor::rand_uniform(&[2, 4], -1.0, 1.0, &mut rng);
//! let logits = model.forward(&x, true)?;
//! let (loss, grad) = softmax_cross_entropy(&logits, &[0, 2])?;
//! model.backward(&grad)?;
//! Sgd::new(0.05).step(&mut model)?;
//! assert!(loss.is_finite());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod activation;
pub mod blocks;
pub mod conv2d;
pub mod dense;
pub mod dropout;
/// Error types.
pub mod error;
pub mod flat;
pub mod flatten;
pub mod groupnorm;
pub mod layer;
pub mod loss;
pub mod models;
pub mod optim;
pub mod pool;
pub mod sequential;

pub use error::NnError;
pub use layer::{Layer, Param};
pub use sequential::Sequential;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, NnError>;
