//! Activation layers.

use crate::layer::Layer;
use crate::{NnError, Result};
use fedsu_tensor::{pool, simd, Tensor};

/// Rectified linear unit: `y = max(x, 0)`, elementwise over any shape.
///
/// Forward and backward run on the dispatched `fedsu_tensor::simd` lanes;
/// the training-mode cache keeps the raw input (a pooled copy, like
/// [`Tanh`]) instead of a boolean mask so the backward pass can ride the
/// same compare+select kernel.
#[derive(Debug, Default)]
pub struct Relu {
    input: Option<Tensor>,
}

impl Relu {
    /// Creates a new ReLU layer.
    pub fn new() -> Self {
        Relu::default()
    }
}

impl Layer for Relu {
    fn name(&self) -> &str {
        "relu"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut out = pool::pooled_like(input);
        simd::relu_fwd(input.data(), out.data_mut());
        if train {
            let mut cache = pool::pooled_like(input);
            cache.data_mut().copy_from_slice(input.data());
            self.input = Some(cache);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cached = self
            .input
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        if cached.len() != grad_output.len() {
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("grad with {} elements", cached.len()),
                grad_output.shape(),
            ));
        }
        let mut out = pool::pooled_like(grad_output);
        simd::relu_bwd(cached.data(), grad_output.data(), out.data_mut());
        pool::recycle(cached);
        Ok(out)
    }
}

/// Leaky rectified linear unit: `y = x` for `x > 0`, `y = slope·x`
/// otherwise.
#[derive(Debug)]
pub struct LeakyRelu {
    slope: f32,
    input: Option<Tensor>,
}

impl LeakyRelu {
    /// Creates a leaky ReLU with the given negative-side slope.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= slope < 1`.
    pub fn new(slope: f32) -> Self {
        assert!((0.0..1.0).contains(&slope), "slope must be in [0, 1)");
        LeakyRelu { slope, input: None }
    }
}

impl Layer for LeakyRelu {
    fn name(&self) -> &str {
        "leaky_relu"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut out = pool::pooled_like(input);
        simd::leaky_fwd(input.data(), self.slope, out.data_mut());
        if train {
            let mut cache = pool::pooled_like(input);
            cache.data_mut().copy_from_slice(input.data());
            self.input = Some(cache);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cached = self
            .input
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        if cached.len() != grad_output.len() {
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("grad with {} elements", cached.len()),
                grad_output.shape(),
            ));
        }
        let mut out = pool::pooled_like(grad_output);
        simd::leaky_bwd(cached.data(), grad_output.data(), self.slope, out.data_mut());
        pool::recycle(cached);
        Ok(out)
    }
}

/// Hyperbolic tangent activation.
#[derive(Debug, Default)]
pub struct Tanh {
    output: Option<Tensor>,
}

impl Tanh {
    /// Creates a tanh layer.
    pub fn new() -> Self {
        Tanh { output: None }
    }
}

impl Layer for Tanh {
    fn name(&self) -> &str {
        "tanh"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let out = input.map(f32::tanh);
        if train {
            let mut cache = pool::pooled_like(&out);
            cache.data_mut().copy_from_slice(out.data());
            self.output = Some(cache);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cached = self
            .output
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        // d tanh(x)/dx = 1 - tanh(x)^2
        let mut out = pool::pooled_like(grad_output);
        for ((o, &g), &y) in out.data_mut().iter_mut().zip(grad_output.data()).zip(cached.data()) {
            *o = g * (1.0 - y * y);
        }
        pool::recycle(cached);
        Ok(out)
    }
}

/// Logistic sigmoid activation.
#[derive(Debug, Default)]
pub struct Sigmoid {
    output: Option<Tensor>,
}

impl Sigmoid {
    /// Creates a sigmoid layer.
    pub fn new() -> Self {
        Sigmoid { output: None }
    }
}

impl Layer for Sigmoid {
    fn name(&self) -> &str {
        "sigmoid"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let out = input.map(|v| 1.0 / (1.0 + (-v).exp()));
        if train {
            let mut cache = pool::pooled_like(&out);
            cache.data_mut().copy_from_slice(out.data());
            self.output = Some(cache);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cached = self
            .output
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        // dσ(x)/dx = σ(x)(1 - σ(x))
        let mut out = pool::pooled_like(grad_output);
        for ((o, &g), &y) in out.data_mut().iter_mut().zip(grad_output.data()).zip(cached.data()) {
            *o = g * y * (1.0 - y);
        }
        pool::recycle(cached);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_clamps_negatives() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.0, 2.0], &[3]).unwrap();
        let y = r.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn backward_masks_gradient() {
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![-1.0, 0.5, 2.0], &[3]).unwrap();
        r.forward(&x, true).unwrap();
        let dy = Tensor::from_vec(vec![10.0, 10.0, 10.0], &[3]).unwrap();
        let dx = r.backward(&dy).unwrap();
        assert_eq!(dx.data(), &[0.0, 10.0, 10.0]);
    }

    #[test]
    fn zero_input_blocks_gradient() {
        // Subgradient at exactly 0 is taken as 0.
        let mut r = Relu::new();
        let x = Tensor::from_vec(vec![0.0], &[1]).unwrap();
        r.forward(&x, true).unwrap();
        let dx = r.backward(&Tensor::ones(&[1])).unwrap();
        assert_eq!(dx.data(), &[0.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut r = Relu::new();
        assert!(r.backward(&Tensor::ones(&[1])).is_err());
    }

    #[test]
    fn inference_mode_does_not_cache() {
        let mut r = Relu::new();
        let x = Tensor::ones(&[2]);
        r.forward(&x, false).unwrap();
        assert!(r.backward(&Tensor::ones(&[2])).is_err());
    }
}

#[cfg(test)]
mod more_activation_tests {
    use super::*;

    fn finite_diff_check(layer: &mut dyn Layer, x: &Tensor) {
        let y = layer.forward(x, true).unwrap();
        let dy = Tensor::ones(y.shape());
        let dx = layer.backward(&dy).unwrap();
        let eps = 1e-3f32;
        let mut x2 = x.clone();
        for idx in 0..x.len() {
            let orig = x2.data_mut()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp = layer.forward(&x2, true).unwrap().sum();
            x2.data_mut()[idx] = orig - eps;
            let lm = layer.forward(&x2, true).unwrap().sum();
            x2.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            assert!(
                (numeric - dx.data()[idx]).abs() < 1e-2,
                "{} idx {idx}: {numeric} vs {}",
                layer.name(),
                dx.data()[idx]
            );
        }
    }

    #[test]
    fn leaky_relu_known_values_and_gradient() {
        let mut l = LeakyRelu::new(0.1);
        let x = Tensor::from_slice(&[-2.0, 0.5]);
        let y = l.forward(&x, true).unwrap();
        assert!((y.data()[0] + 0.2).abs() < 1e-6);
        assert_eq!(y.data()[1], 0.5);
        finite_diff_check(&mut l, &Tensor::from_slice(&[-1.0, -0.3, 0.2, 1.7]));
    }

    #[test]
    fn tanh_gradient_matches_finite_difference() {
        let mut t = Tanh::new();
        finite_diff_check(&mut t, &Tensor::from_slice(&[-1.5, -0.2, 0.0, 0.8, 2.0]));
    }

    #[test]
    fn sigmoid_range_and_gradient() {
        let mut s = Sigmoid::new();
        let y = s.forward(&Tensor::from_slice(&[-10.0, 0.0, 10.0]), false).unwrap();
        assert!(y.data()[0] < 0.01);
        assert!((y.data()[1] - 0.5).abs() < 1e-6);
        assert!(y.data()[2] > 0.99);
        finite_diff_check(&mut s, &Tensor::from_slice(&[-2.0, -0.1, 0.4, 1.3]));
    }

    #[test]
    fn backward_without_forward_errors_for_all() {
        assert!(LeakyRelu::new(0.1).backward(&Tensor::ones(&[1])).is_err());
        assert!(Tanh::new().backward(&Tensor::ones(&[1])).is_err());
        assert!(Sigmoid::new().backward(&Tensor::ones(&[1])).is_err());
    }

    #[test]
    #[should_panic(expected = "slope must be in")]
    fn bad_leaky_slope_panics() {
        LeakyRelu::new(1.0);
    }
}
