//! Softmax cross-entropy loss and classification accuracy.

use crate::{NnError, Result};
use fedsu_tensor::{pool, Tensor};

/// Computes mean softmax cross-entropy over a batch and its gradient with
/// respect to the logits.
///
/// `logits` is `[batch, classes]`; `labels` holds one class index per row.
/// Returns `(mean_loss, dL/dlogits)` where the gradient is
/// `(softmax - onehot) / batch` — ready to feed into
/// [`crate::Layer::backward`].
///
/// # Errors
///
/// Returns [`NnError::BadInput`] when shapes disagree and
/// [`NnError::BadLabel`] when a label is out of range.
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<(f32, Tensor)> {
    if logits.rank() != 2 || logits.shape()[0] != labels.len() {
        return Err(NnError::new_bad_input(
            "softmax_cross_entropy",
            format_args!("[{}, classes] logits", labels.len()),
            logits.shape(),
        ));
    }
    let (batch, classes) = (logits.shape()[0], logits.shape()[1]);
    let mut grad = pool::pooled_zeros(&[batch, classes]);
    let mut loss = 0.0f64;
    let inv_batch = 1.0 / batch as f32;

    for (n, &label) in labels.iter().enumerate() {
        if label >= classes {
            return Err(NnError::BadLabel { label, classes });
        }
        let row = &logits.data()[n * classes..(n + 1) * classes];
        let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        let mut denom = 0.0f32;
        for &v in row {
            denom += (v - max).exp();
        }
        let log_denom = denom.ln();
        loss += f64::from(log_denom - (row[label] - max));
        let g = &mut grad.data_mut()[n * classes..(n + 1) * classes];
        for (k, &v) in row.iter().enumerate() {
            let p = (v - max).exp() / denom;
            g[k] = (p - if k == label { 1.0 } else { 0.0 }) * inv_batch;
        }
    }
    Ok(((loss / batch as f64) as f32, grad))
}

/// Fraction of rows whose argmax matches the label.
///
/// # Errors
///
/// Returns [`NnError::BadInput`] when shapes disagree.
pub fn accuracy(logits: &Tensor, labels: &[usize]) -> Result<f32> {
    if logits.rank() != 2 || logits.shape()[0] != labels.len() {
        return Err(NnError::new_bad_input(
            "accuracy",
            format_args!("[{}, classes] logits", labels.len()),
            logits.shape(),
        ));
    }
    if labels.is_empty() {
        return Ok(0.0);
    }
    let classes = logits.shape()[1];
    let mut correct = 0usize;
    for (n, &label) in labels.iter().enumerate() {
        let row = &logits.data()[n * classes..(n + 1) * classes];
        let mut best = 0usize;
        for (k, &v) in row.iter().enumerate() {
            if v > row[best] {
                best = k;
            }
        }
        if best == label {
            correct += 1;
        }
    }
    Ok(correct as f32 / labels.len() as f32)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_logits_give_log_k_loss() {
        let logits = Tensor::zeros(&[2, 4]);
        let (loss, grad) = softmax_cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((loss - (4.0f32).ln()).abs() < 1e-5);
        // Gradient rows sum to 0 and the true-class entry is negative.
        for n in 0..2 {
            let row = &grad.data()[n * 4..(n + 1) * 4];
            assert!(row.iter().sum::<f32>().abs() < 1e-6);
        }
        assert!(grad.data()[0] < 0.0);
        assert!(grad.data()[7] < 0.0);
    }

    #[test]
    fn confident_correct_prediction_has_low_loss() {
        let logits = Tensor::from_vec(vec![10.0, -10.0], &[1, 2]).unwrap();
        let (loss, _) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss < 1e-3);
        let (bad_loss, _) = softmax_cross_entropy(&logits, &[1]).unwrap();
        assert!(bad_loss > 10.0);
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let logits = Tensor::from_vec(vec![0.3, -0.7, 1.2, 0.1, 0.0, -0.5], &[2, 3]).unwrap();
        let labels = [2usize, 0];
        let (_, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut lp = logits.clone();
            lp.data_mut()[idx] += eps;
            let (loss_p, _) = softmax_cross_entropy(&lp, &labels).unwrap();
            let mut lm = logits.clone();
            lm.data_mut()[idx] -= eps;
            let (loss_m, _) = softmax_cross_entropy(&lm, &labels).unwrap();
            let numeric = (loss_p - loss_m) / (2.0 * eps);
            assert!(
                (numeric - grad.data()[idx]).abs() < 1e-3,
                "idx {idx}: {numeric} vs {}",
                grad.data()[idx]
            );
        }
    }

    #[test]
    fn large_logits_are_stable() {
        let logits = Tensor::from_vec(vec![1000.0, 999.0], &[1, 2]).unwrap();
        let (loss, grad) = softmax_cross_entropy(&logits, &[0]).unwrap();
        assert!(loss.is_finite());
        assert!(!grad.has_non_finite());
    }

    #[test]
    fn bad_label_rejected() {
        let logits = Tensor::zeros(&[1, 3]);
        assert!(matches!(
            softmax_cross_entropy(&logits, &[3]),
            Err(NnError::BadLabel { label: 3, classes: 3 })
        ));
    }

    #[test]
    fn shape_mismatch_rejected() {
        let logits = Tensor::zeros(&[2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(accuracy(&logits, &[0]).is_err());
    }

    #[test]
    fn accuracy_counts_correct_rows() {
        let logits = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 0.2, 0.1], &[3, 2]).unwrap();
        let acc = accuracy(&logits, &[0, 1, 1]).unwrap();
        assert!((acc - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(accuracy(&Tensor::zeros(&[0, 2]), &[]).unwrap(), 0.0);
    }
}
