//! The [`Layer`] trait and the [`Param`] container.

use crate::Result;
use fedsu_tensor::Tensor;

/// A trainable parameter: its value and the gradient accumulated by the most
/// recent backward pass(es).
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    /// Current parameter values.
    pub value: Tensor,
    /// Accumulated gradient (same shape as `value`).
    pub grad: Tensor,
}

impl Param {
    /// Creates a parameter from an initial value, with a zeroed gradient.
    pub fn new(value: Tensor) -> Self {
        let grad = Tensor::zeros(value.shape());
        Param { value, grad }
    }

    /// Number of scalar entries.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }

    /// Zeroes the accumulated gradient.
    pub fn zero_grad(&mut self) {
        self.grad.fill(0.0);
    }
}

/// A neural-network layer with explicit forward and backward passes.
///
/// Layers cache activations during [`forward`](Layer::forward) and consume
/// them in [`backward`](Layer::backward); the caller must therefore pair each
/// backward with a preceding forward on the same instance.
///
/// Parameters are visited in a deterministic order (declaration order,
/// depth-first for containers), which [`crate::flat`] relies on to give every
/// scalar parameter a stable global index — the granularity at which the
/// FedSU predictability mask operates.
pub trait Layer: Send {
    /// Human-readable layer name (used in error messages).
    fn name(&self) -> &str;

    /// Runs the layer on a batch, caching whatever `backward` will need.
    ///
    /// `train` distinguishes training from inference for layers that behave
    /// differently (inference may skip caching).
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::BadInput`] when the input shape does not
    /// match the layer's expectation.
    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor>;

    /// Propagates `grad_output` through the layer, accumulating parameter
    /// gradients and returning the gradient with respect to the input.
    ///
    /// # Errors
    ///
    /// Returns [`crate::NnError::MissingForward`] when called before
    /// `forward`, and shape errors when `grad_output` does not match the
    /// cached activation.
    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor>;

    /// Visits every trainable parameter, depth-first, in declaration order.
    ///
    /// The default implementation visits nothing (parameter-free layer).
    fn visit_params_mut(&mut self, _f: &mut dyn FnMut(&mut Param)) {}

    /// Read-only parameter visit, same order as [`Layer::visit_params_mut`].
    fn visit_params(&self, _f: &mut dyn FnMut(&Param)) {}
}

/// Extension helpers available on every `Layer`.
impl dyn Layer {
    /// Total number of scalar parameters in the layer (recursively).
    pub fn num_params(&self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct NoParams;
    impl Layer for NoParams {
        fn name(&self) -> &str {
            "noparams"
        }
        fn forward(&mut self, input: &Tensor, _train: bool) -> Result<Tensor> {
            Ok(input.clone())
        }
        fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
            Ok(grad_output.clone())
        }
    }

    #[test]
    fn param_new_zeroes_grad() {
        let p = Param::new(Tensor::ones(&[3]));
        assert_eq!(p.grad.data(), &[0.0, 0.0, 0.0]);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn zero_grad_resets() {
        let mut p = Param::new(Tensor::ones(&[2]));
        p.grad.data_mut()[0] = 5.0;
        p.zero_grad();
        assert_eq!(p.grad.data(), &[0.0, 0.0]);
    }

    #[test]
    fn default_visitors_visit_nothing() {
        let l: Box<dyn Layer> = Box::new(NoParams);
        assert_eq!(l.num_params(), 0);
    }
}
