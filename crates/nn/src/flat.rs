//! Flat-vector views of a model's parameters.
//!
//! Federated synchronization — and especially FedSU's per-scalar
//! predictability mask — treats the whole model as one `Vec<f32>`. These
//! helpers convert between a [`Layer`] tree and that flat representation
//! using the stable parameter visit order.

use crate::layer::Layer;
use crate::{NnError, Result};

/// Total number of scalar parameters in `model`.
pub fn param_count(model: &dyn Layer) -> usize {
    let mut n = 0;
    model.visit_params(&mut |p| n += p.len());
    n
}

/// Copies every parameter into one flat vector (visit order).
pub fn flatten_params(model: &dyn Layer) -> Vec<f32> {
    let mut out = Vec::with_capacity(param_count(model));
    model.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
    out
}

/// Copies every accumulated gradient into one flat vector (visit order).
pub fn flatten_grads(model: &dyn Layer) -> Vec<f32> {
    let mut out = Vec::with_capacity(param_count(model));
    model.visit_params(&mut |p| out.extend_from_slice(p.grad.data()));
    out
}

/// Copies every parameter into `out` (visit order), reusing its allocation.
///
/// The steady-round counterpart of [`flatten_params`]: callers that stage
/// uploads every round keep one buffer alive and refill it here.
pub fn flatten_params_into(model: &dyn Layer, out: &mut Vec<f32>) {
    out.clear();
    out.reserve(param_count(model));
    model.visit_params(&mut |p| out.extend_from_slice(p.value.data()));
}

/// Loads a flat vector back into the model's parameters.
///
/// # Errors
///
/// Returns [`NnError::BadConfig`] when `flat.len()` does not match the
/// model's parameter count.
pub fn load_params(model: &mut dyn Layer, flat: &[f32]) -> Result<()> {
    let expected = param_count(model);
    if flat.len() != expected {
        return Err(NnError::BadConfig(format!(
            "flat vector has {} values but model has {} parameters",
            flat.len(),
            expected
        )));
    }
    let mut offset = 0usize;
    model.visit_params_mut(&mut |p| {
        let n = p.len();
        p.value.data_mut().copy_from_slice(&flat[offset..offset + n]);
        offset += n;
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::Dense;
    use crate::sequential::Sequential;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn model() -> Sequential {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = Sequential::new("m");
        s.push(Dense::new(2, 3, &mut rng).unwrap());
        s.push(Dense::new(3, 2, &mut rng).unwrap());
        s
    }

    #[test]
    fn flatten_load_roundtrip() {
        let mut m = model();
        let flat = flatten_params(&m);
        assert_eq!(flat.len(), param_count(&m));
        let modified: Vec<f32> = flat.iter().map(|v| v + 1.0).collect();
        load_params(&mut m, &modified).unwrap();
        assert_eq!(flatten_params(&m), modified);
    }

    #[test]
    fn load_rejects_wrong_length() {
        let mut m = model();
        assert!(load_params(&mut m, &[0.0; 3]).is_err());
    }

    #[test]
    fn grads_flatten_in_same_order() {
        let mut m = model();
        let mut i = 0.0f32;
        m.visit_params_mut(&mut |p| {
            for g in p.grad.data_mut() {
                *g = i;
                i += 1.0;
            }
        });
        let grads = flatten_grads(&m);
        for (k, g) in grads.iter().enumerate() {
            assert_eq!(*g, k as f32);
        }
    }

    #[test]
    fn identical_models_flatten_identically() {
        let a = model();
        let b = model();
        assert_eq!(flatten_params(&a), flatten_params(&b));
    }
}

/// Magic header of the checkpoint wire format.
const CHECKPOINT_MAGIC: u32 = 0xFED5_C4EC;

/// Errors while restoring a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// Payload shorter than declared.
    Truncated,
    /// Magic header mismatch (not a checkpoint).
    BadMagic(u32),
    /// Checkpoint holds a different parameter count than the model.
    WrongSize {
        /// Parameters in the checkpoint.
        checkpoint: usize,
        /// Parameters in the model.
        model: usize,
    },
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::BadMagic(m) => write!(f, "bad checkpoint magic {m:#x}"),
            CheckpointError::WrongSize { checkpoint, model } => {
                write!(f, "checkpoint has {checkpoint} params, model has {model}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes the model's parameters to a compact checkpoint
/// (magic, count, little-endian f32 values).
pub fn save_checkpoint(model: &dyn Layer) -> Vec<u8> {
    let flat = flatten_params(model);
    let mut out = Vec::with_capacity(8 + flat.len() * 4);
    out.extend_from_slice(&CHECKPOINT_MAGIC.to_le_bytes());
    let count = u32::try_from(flat.len())
        .expect("checkpoint format caps the parameter count at u32::MAX");
    out.extend_from_slice(&count.to_le_bytes());
    for v in flat {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Restores parameters saved by [`save_checkpoint`] into `model`.
///
/// # Errors
///
/// Returns [`CheckpointError`] on malformed payloads or a parameter-count
/// mismatch (wrong architecture/preset).
pub fn load_checkpoint(model: &mut dyn Layer, bytes: &[u8]) -> std::result::Result<(), CheckpointError> {
    if bytes.len() < 8 {
        return Err(CheckpointError::Truncated);
    }
    let magic = u32::from_le_bytes(bytes[0..4].try_into().expect("slice is exactly 4 bytes"));
    if magic != CHECKPOINT_MAGIC {
        return Err(CheckpointError::BadMagic(magic));
    }
    let count = u32::from_le_bytes(bytes[4..8].try_into().expect("slice is exactly 4 bytes"));
    let n = usize::try_from(count).expect("u32 count fits in usize on all supported targets");
    let expected = param_count(model);
    if n != expected {
        return Err(CheckpointError::WrongSize { checkpoint: n, model: expected });
    }
    if bytes.len() < 8 + n * 4 {
        return Err(CheckpointError::Truncated);
    }
    let flat: Vec<f32> = (0..n)
        .map(|i| {
            let word = bytes[8 + i * 4..12 + i * 4]
                .try_into()
                .expect("slice is exactly 4 bytes");
            f32::from_le_bytes(word)
        })
        .collect();
    load_params(model, &flat).expect("length checked above");
    Ok(())
}

#[cfg(test)]
mod checkpoint_tests {
    use super::*;
    use crate::models::mlp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn checkpoint_roundtrip() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = mlp(&[4, 6, 2], &mut rng).unwrap();
        let bytes = save_checkpoint(&m);
        let mut fresh = mlp(&[4, 6, 2], &mut StdRng::seed_from_u64(99)).unwrap();
        assert_ne!(flatten_params(&m), flatten_params(&fresh));
        load_checkpoint(&mut fresh, &bytes).unwrap();
        assert_eq!(flatten_params(&m), flatten_params(&fresh));
    }

    #[test]
    fn wrong_architecture_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = mlp(&[4, 6, 2], &mut rng).unwrap();
        let bytes = save_checkpoint(&m);
        let mut other = mlp(&[4, 8, 2], &mut rng).unwrap();
        assert!(matches!(
            load_checkpoint(&mut other, &bytes),
            Err(CheckpointError::WrongSize { .. })
        ));
    }

    #[test]
    fn corrupt_payloads_rejected() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut m = mlp(&[4, 6, 2], &mut rng).unwrap();
        let bytes = save_checkpoint(&m);
        assert_eq!(load_checkpoint(&mut m, &bytes[..4]), Err(CheckpointError::Truncated));
        assert_eq!(load_checkpoint(&mut m, &bytes[..bytes.len() - 2]), Err(CheckpointError::Truncated));
        let mut bad = bytes.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(load_checkpoint(&mut m, &bad), Err(CheckpointError::BadMagic(_))));
    }
}
