//! Composite blocks: ResNet residual blocks and DenseNet dense blocks /
//! transitions, each implemented as a [`Layer`] with a hand-written backward
//! pass through the branch structure.

use crate::activation::Relu;
use crate::conv2d::Conv2d;
use crate::groupnorm::GroupNorm;
use crate::layer::{Layer, Param};
use crate::pool::AvgPool2d;
use crate::{NnError, Result};
use fedsu_tensor::{pool, Tensor};
use rand::Rng;

/// Concatenates two `NCHW` tensors along the channel axis.
fn concat_channels(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (n, ca, h, w) = (a.shape()[0], a.shape()[1], a.shape()[2], a.shape()[3]);
    let cb = b.shape()[1];
    debug_assert_eq!(&[n, h, w], &[b.shape()[0], b.shape()[2], b.shape()[3]]);
    let plane = h * w;
    let mut out = pool::pooled_zeros(&[n, ca + cb, h, w]);
    let od = out.data_mut();
    for s in 0..n {
        let dst = &mut od[s * (ca + cb) * plane..];
        dst[..ca * plane].copy_from_slice(&a.data()[s * ca * plane..(s + 1) * ca * plane]);
        dst[ca * plane..(ca + cb) * plane]
            .copy_from_slice(&b.data()[s * cb * plane..(s + 1) * cb * plane]);
    }
    Ok(out)
}

/// Splits a channel-concatenated gradient back into its two parts.
fn split_channels(g: &Tensor, ca: usize) -> Result<(Tensor, Tensor)> {
    let (n, c, h, w) = (g.shape()[0], g.shape()[1], g.shape()[2], g.shape()[3]);
    let cb = c - ca;
    let plane = h * w;
    let mut ga = pool::pooled_zeros(&[n, ca, h, w]);
    let mut gb = pool::pooled_zeros(&[n, cb, h, w]);
    let gad = ga.data_mut();
    let gbd = gb.data_mut();
    for s in 0..n {
        let src = &g.data()[s * c * plane..];
        gad[s * ca * plane..(s + 1) * ca * plane].copy_from_slice(&src[..ca * plane]);
        gbd[s * cb * plane..(s + 1) * cb * plane].copy_from_slice(&src[ca * plane..c * plane]);
    }
    Ok((ga, gb))
}

/// A ResNet-style basic residual block:
/// `out = relu(gn2(conv2(relu(gn1(conv1(x))))) + skip(x))`,
/// where `skip` is the identity or a strided 1×1 conv + GroupNorm when the
/// shape changes.
pub struct ResidualBlock {
    conv1: Conv2d,
    gn1: GroupNorm,
    relu1: Relu,
    conv2: Conv2d,
    gn2: GroupNorm,
    downsample: Option<(Conv2d, GroupNorm)>,
    out_mask: Option<Vec<bool>>,
    /// Retired mask allocation, reused by the next forward pass.
    spare: Vec<bool>,
}

impl std::fmt::Debug for ResidualBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ResidualBlock")
            .field("downsample", &self.downsample.is_some())
            .finish()
    }
}

impl ResidualBlock {
    /// Creates a basic block mapping `in_channels -> out_channels` with the
    /// given stride on the first convolution. A projection shortcut is added
    /// automatically when `stride != 1` or the channel counts differ.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the child layers.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        groups: usize,
        rng: &mut R,
    ) -> Result<Self> {
        let conv1 = Conv2d::new(in_channels, out_channels, 3, stride, 1, rng)?;
        let gn1 = GroupNorm::new(out_channels, groups)?;
        let conv2 = Conv2d::new(out_channels, out_channels, 3, 1, 1, rng)?;
        let gn2 = GroupNorm::new(out_channels, groups)?;
        let downsample = if stride != 1 || in_channels != out_channels {
            Some((
                Conv2d::new(in_channels, out_channels, 1, stride, 0, rng)?,
                GroupNorm::new(out_channels, groups)?,
            ))
        } else {
            None
        };
        Ok(ResidualBlock {
            conv1,
            gn1,
            relu1: Relu::new(),
            conv2,
            gn2,
            downsample,
            out_mask: None,
            spare: Vec::new(),
        })
    }
}

impl Layer for ResidualBlock {
    fn name(&self) -> &str {
        "residual_block"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut main = self.conv1.forward(input, train)?;
        main = self.gn1.forward(&main, train)?;
        main = self.relu1.forward(&main, train)?;
        main = self.conv2.forward(&main, train)?;
        main = self.gn2.forward(&main, train)?;
        let skip = match &mut self.downsample {
            Some((conv, gn)) => {
                let s = conv.forward(input, train)?;
                let normed = gn.forward(&s, train)?;
                pool::recycle(s);
                normed
            }
            None => {
                let mut copy = pool::pooled_like(input);
                copy.data_mut().copy_from_slice(input.data());
                copy
            }
        };
        let mut out = main.add(&skip)?;
        pool::recycle(main);
        pool::recycle(skip);
        if train {
            let mut mask = std::mem::take(&mut self.spare);
            mask.clear();
            mask.extend(out.data().iter().map(|&v| v > 0.0));
            self.out_mask = Some(mask);
        }
        out.map_in_place(|v| v.max(0.0));
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self
            .out_mask
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        if mask.len() != grad_output.len() {
            let expected = mask.len();
            self.spare = mask;
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("grad with {expected} elements"),
                grad_output.shape(),
            ));
        }
        let mut g = pool::pooled_like(grad_output);
        for ((o, &gv), &m) in g.data_mut().iter_mut().zip(grad_output.data()).zip(&mask) {
            *o = if m { gv } else { 0.0 };
        }
        self.spare = mask;

        // Main branch.
        let mut gm = self.gn2.backward(&g)?;
        gm = self.conv2.backward(&gm)?;
        gm = self.relu1.backward(&gm)?;
        gm = self.gn1.backward(&gm)?;
        let gx_main = self.conv1.backward(&gm)?;

        // Skip branch.
        let gx_skip = match &mut self.downsample {
            Some((conv, gn)) => {
                let gs = gn.backward(&g)?;
                let gx = conv.backward(&gs)?;
                pool::recycle(gs);
                pool::recycle(g);
                gx
            }
            None => g,
        };
        let gx = gx_main.add(&gx_skip)?;
        pool::recycle(gx_main);
        pool::recycle(gx_skip);
        Ok(gx)
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params_mut(f);
        self.gn1.visit_params_mut(f);
        self.conv2.visit_params_mut(f);
        self.gn2.visit_params_mut(f);
        if let Some((conv, gn)) = &mut self.downsample {
            conv.visit_params_mut(f);
            gn.visit_params_mut(f);
        }
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.conv1.visit_params(f);
        self.gn1.visit_params(f);
        self.conv2.visit_params(f);
        self.gn2.visit_params(f);
        if let Some((conv, gn)) = &self.downsample {
            conv.visit_params(f);
            gn.visit_params(f);
        }
    }
}

/// One DenseNet layer: `out = concat(x, conv3x3(relu(gn(x))))`, adding
/// `growth` channels.
pub struct DenseLayer {
    gn: GroupNorm,
    relu: Relu,
    conv: Conv2d,
    in_channels: usize,
}

impl std::fmt::Debug for DenseLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DenseLayer").field("in_channels", &self.in_channels).finish()
    }
}

impl DenseLayer {
    /// Creates a dense layer adding `growth` channels on top of
    /// `in_channels`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the child layers.
    pub fn new<R: Rng + ?Sized>(in_channels: usize, growth: usize, groups: usize, rng: &mut R) -> Result<Self> {
        Ok(DenseLayer {
            gn: GroupNorm::new(in_channels, groups)?,
            relu: Relu::new(),
            conv: Conv2d::new(in_channels, growth, 3, 1, 1, rng)?,
            in_channels,
        })
    }
}

impl Layer for DenseLayer {
    fn name(&self) -> &str {
        "dense_layer"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut f = self.gn.forward(input, train)?;
        f = self.relu.forward(&f, train)?;
        f = self.conv.forward(&f, train)?;
        concat_channels(input, &f)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (g_direct, g_new) = split_channels(grad_output, self.in_channels)?;
        let mut g = self.conv.backward(&g_new)?;
        pool::recycle(g_new);
        let next = self.relu.backward(&g)?;
        pool::recycle(std::mem::replace(&mut g, next));
        let next = self.gn.backward(&g)?;
        pool::recycle(std::mem::replace(&mut g, next));
        let gx = g_direct.add(&g)?;
        pool::recycle(g_direct);
        pool::recycle(g);
        Ok(gx)
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gn.visit_params_mut(f);
        self.conv.visit_params_mut(f);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.gn.visit_params(f);
        self.conv.visit_params(f);
    }
}

/// DenseNet transition: `avgpool2(conv1x1(relu(gn(x))))`, halving spatial
/// dims and mapping to `out_channels`.
pub struct Transition {
    gn: GroupNorm,
    relu: Relu,
    conv: Conv2d,
    pool: AvgPool2d,
}

impl std::fmt::Debug for Transition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Transition").finish()
    }
}

impl Transition {
    /// Creates a transition from `in_channels` to `out_channels`.
    ///
    /// # Errors
    ///
    /// Propagates configuration errors from the child layers.
    pub fn new<R: Rng + ?Sized>(in_channels: usize, out_channels: usize, groups: usize, rng: &mut R) -> Result<Self> {
        Ok(Transition {
            gn: GroupNorm::new(in_channels, groups)?,
            relu: Relu::new(),
            conv: Conv2d::new(in_channels, out_channels, 1, 1, 0, rng)?,
            pool: AvgPool2d::new(2),
        })
    }
}

impl Layer for Transition {
    fn name(&self) -> &str {
        "transition"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let mut x = self.gn.forward(input, train)?;
        x = self.relu.forward(&x, train)?;
        x = self.conv.forward(&x, train)?;
        self.pool.forward(&x, train)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = self.pool.backward(grad_output)?;
        g = self.conv.backward(&g)?;
        g = self.relu.backward(&g)?;
        self.gn.backward(&g)
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.gn.visit_params_mut(f);
        self.conv.visit_params_mut(f);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        self.gn.visit_params(f);
        self.conv.visit_params(f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn concat_split_roundtrip() {
        let a = Tensor::from_vec((0..8).map(|v| v as f32).collect(), &[1, 2, 2, 2]).unwrap();
        let b = Tensor::from_vec((100..104).map(|v| v as f32).collect(), &[1, 1, 2, 2]).unwrap();
        let c = concat_channels(&a, &b).unwrap();
        assert_eq!(c.shape(), &[1, 3, 2, 2]);
        let (a2, b2) = split_channels(&c, 2).unwrap();
        assert_eq!(a2.data(), a.data());
        assert_eq!(b2.data(), b.data());
    }

    #[test]
    fn residual_identity_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut block = ResidualBlock::new(4, 4, 1, 2, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 4, 8, 8], -1.0, 1.0, &mut rng);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.shape(), x.shape());
        let dx = block.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn residual_downsample_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut block = ResidualBlock::new(4, 8, 2, 2, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 4, 8, 8], -1.0, 1.0, &mut rng);
        let y = block.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
        let dx = block.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn residual_output_is_nonnegative() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut block = ResidualBlock::new(2, 2, 1, 1, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[1, 2, 4, 4], -2.0, 2.0, &mut rng);
        let y = block.forward(&x, false).unwrap();
        assert!(y.data().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn residual_finite_difference_gradient() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut block = ResidualBlock::new(2, 2, 1, 1, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[1, 2, 4, 4], -1.0, 1.0, &mut rng);
        let wts: Vec<f32> = (0..32).map(|i| ((i as f32) * 0.31).cos()).collect();

        let y = block.forward(&x, true).unwrap();
        let dy = Tensor::from_vec(wts.clone(), y.shape()).unwrap();
        let dx = block.backward(&dy).unwrap();

        let eps = 1e-2f32;
        let mut x2 = x.clone();
        for idx in [0usize, 9, 25] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp: f32 = block.forward(&x2, true).unwrap().data().iter().zip(&wts).map(|(a, b)| a * b).sum();
            x2.data_mut()[idx] = orig - eps;
            let lm: f32 = block.forward(&x2, true).unwrap().data().iter().zip(&wts).map(|(a, b)| a * b).sum();
            x2.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let got = dx.data()[idx];
            assert!(
                (numeric - got).abs() < 0.05 * (1.0 + got.abs()),
                "idx {idx}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn dense_layer_grows_channels() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut dl = DenseLayer::new(4, 3, 2, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 4, 4, 4], -1.0, 1.0, &mut rng);
        let y = dl.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 7, 4, 4]);
        // The first `in_channels` channels pass through unchanged.
        assert_eq!(&y.data()[..16], &x.data()[..16]);
        let dx = dl.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn dense_layer_finite_difference_gradient() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut dl = DenseLayer::new(2, 2, 1, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[1, 2, 3, 3], -1.0, 1.0, &mut rng);
        let out_len = 1 * 4 * 3 * 3;
        let wts: Vec<f32> = (0..out_len).map(|i| ((i as f32) * 0.17).sin()).collect();

        let y = dl.forward(&x, true).unwrap();
        let dy = Tensor::from_vec(wts.clone(), y.shape()).unwrap();
        let dx = dl.backward(&dy).unwrap();

        let eps = 1e-2f32;
        let mut x2 = x.clone();
        for idx in [0usize, 8, 17] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp: f32 = dl.forward(&x2, true).unwrap().data().iter().zip(&wts).map(|(a, b)| a * b).sum();
            x2.data_mut()[idx] = orig - eps;
            let lm: f32 = dl.forward(&x2, true).unwrap().data().iter().zip(&wts).map(|(a, b)| a * b).sum();
            x2.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let got = dx.data()[idx];
            assert!(
                (numeric - got).abs() < 0.05 * (1.0 + got.abs()),
                "idx {idx}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn transition_halves_spatial_dims() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut t = Transition::new(6, 3, 2, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 6, 8, 8], -1.0, 1.0, &mut rng);
        let y = t.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 3, 4, 4]);
        let dx = t.backward(&Tensor::ones(y.shape())).unwrap();
        assert_eq!(dx.shape(), x.shape());
    }

    #[test]
    fn blocks_report_params() {
        let mut rng = StdRng::seed_from_u64(0);
        let block = ResidualBlock::new(4, 8, 2, 2, &mut rng).unwrap();
        let mut n = 0;
        block.visit_params(&mut |p| n += p.len());
        // conv1 w+b, gn1 g+b, conv2 w+b, gn2 g+b, downsample conv w+b + gn g+b
        let expected = (4 * 8 * 9 + 8) + (8 + 8) + (8 * 8 * 9 + 8) + (8 + 8) + (4 * 8 + 8) + (8 + 8);
        assert_eq!(n, expected);
    }
}
