//! 2-D convolution layer (im2col formulation).

use crate::layer::{Layer, Param};
use crate::{NnError, Result};
use fedsu_tensor::{
    col2im_into, im2col_into, kaiming_uniform, matmul_into, matmul_transpose_a_into,
    matmul_transpose_b_into, pool, ConvDims, Tensor,
};
use rand::Rng;

/// A 2-D convolution over `NCHW` inputs with square kernels.
///
/// Weights are stored as a matrix `[out_channels, in_channels * k * k]` so
/// the forward pass is one matmul against the im2col matrix per sample. The
/// backward pass re-runs `im2col` on the cached input rather than caching the
/// (much larger) column matrices, trading a little compute for memory — the
/// same trade edge devices make. Column/gradient matrices live in scratch
/// buffers owned by the layer, so steady-state forward/backward passes do no
/// per-sample allocation.
#[derive(Debug)]
pub struct Conv2d {
    weight: Param,
    bias: Param,
    out_channels: usize,
    kernel: usize,
    stride: usize,
    padding: usize,
    in_channels: usize,
    cached_input: Option<Tensor>,
    /// im2col scratch, reused across samples and calls.
    cols: Vec<f32>,
    /// Column-gradient scratch for the backward pass.
    dcols: Vec<f32>,
    /// Per-sample weight-gradient scratch for the backward pass.
    dw: Vec<f32>,
}

impl Conv2d {
    /// Creates a convolution layer with Kaiming-uniform weights.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] for zero channels/kernel/stride.
    pub fn new<R: Rng + ?Sized>(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut R,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 || kernel == 0 || stride == 0 {
            return Err(NnError::BadConfig(format!(
                "conv dims must be positive: in={in_channels} out={out_channels} k={kernel} s={stride}"
            )));
        }
        let fan_in = in_channels * kernel * kernel;
        let weight = kaiming_uniform(&[out_channels, fan_in], fan_in, rng);
        Ok(Conv2d {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_channels])),
            out_channels,
            kernel,
            stride,
            padding,
            in_channels,
            cached_input: None,
            cols: Vec::new(),
            dcols: Vec::new(),
            dw: Vec::new(),
        })
    }

    fn dims_for(&self, input: &Tensor) -> Result<(usize, ConvDims)> {
        match input.shape() {
            &[batch, chans, in_h, in_w] if chans == self.in_channels => Ok((
                batch,
                ConvDims {
                    in_channels: self.in_channels,
                    in_h,
                    in_w,
                    kernel: self.kernel,
                    stride: self.stride,
                    padding: self.padding,
                },
            )),
            _ => Err(NnError::new_bad_input(
                "conv2d",
                format_args!("[batch, {}, h, w]", self.in_channels),
                input.shape(),
            )),
        }
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.out_channels
    }
}

impl Layer for Conv2d {
    fn name(&self) -> &str {
        "conv2d"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        let (batch, dims) = self.dims_for(input)?;
        let (out_h, out_w) = (dims.out_h(), dims.out_w());
        let plane = out_h * out_w;
        let fan_in = self.in_channels * self.kernel * self.kernel;
        let sample_in = self.in_channels * dims.in_h * dims.in_w;
        let out_sample = self.out_channels * plane;
        let mut out_t = pool::pooled_zeros(&[batch, self.out_channels, out_h, out_w]);
        let out = out_t.data_mut();

        for n in 0..batch {
            let img = input.data().get(n * sample_in..(n + 1) * sample_in).unwrap_or(&[]);
            im2col_into(img, &dims, &mut self.cols)?;
            let dst = out.get_mut(n * out_sample..(n + 1) * out_sample).unwrap_or_default();
            // y = W · cols, written straight into the output sample.
            matmul_into(self.weight.value.data(), &self.cols, dst, self.out_channels, fan_in, plane)?;
            for (drow, &b) in dst.chunks_exact_mut(plane).zip(self.bias.value.data()) {
                for d in drow.iter_mut() {
                    *d += b;
                }
            }
        }
        if train {
            let mut cached = pool::pooled_like(input);
            cached.data_mut().copy_from_slice(input.data());
            self.cached_input = Some(cached);
        }
        Ok(out_t)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        let (batch, dims) = self.dims_for(&input)?;
        let (out_h, out_w) = (dims.out_h(), dims.out_w());
        let plane = out_h * out_w;
        let expected = [batch, self.out_channels, out_h, out_w];
        if grad_output.shape() != expected {
            pool::recycle(input);
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("grad {expected:?}"),
                grad_output.shape(),
            ));
        }
        let fan_in = self.in_channels * self.kernel * self.kernel;
        let sample_in = self.in_channels * dims.in_h * dims.in_w;
        let out_sample = self.out_channels * plane;
        let mut grad_in_t = pool::pooled_zeros(input.shape());
        let grad_in = grad_in_t.data_mut();
        self.dw.resize(self.out_channels * fan_in, 0.0);
        self.dcols.resize(fan_in * plane, 0.0);

        for n in 0..batch {
            let img = input.data().get(n * sample_in..(n + 1) * sample_in).unwrap_or(&[]);
            im2col_into(img, &dims, &mut self.cols)?;
            let dy = grad_output.data().get(n * out_sample..(n + 1) * out_sample).unwrap_or(&[]);
            // dW += dY · colsᵀ
            matmul_transpose_b_into(dy, &self.cols, &mut self.dw, self.out_channels, plane, fan_in)?;
            for (g, d) in self.weight.grad.data_mut().iter_mut().zip(&self.dw) {
                *g += d;
            }
            // db += row-sums of dY
            for (bg, dy_row) in self.bias.grad.data_mut().iter_mut().zip(dy.chunks_exact(plane)) {
                *bg += dy_row.iter().sum::<f32>();
            }
            // dcols = Wᵀ · dY, then scatter back to image space.
            matmul_transpose_a_into(
                self.weight.value.data(),
                dy,
                &mut self.dcols,
                self.out_channels,
                fan_in,
                plane,
            )?;
            let dst = grad_in.get_mut(n * sample_in..(n + 1) * sample_in).unwrap_or_default();
            col2im_into(&self.dcols, dst, &dims)?;
        }
        pool::recycle(input);
        Ok(grad_in_t)
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_known_values_identity_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, &mut rng).unwrap();
        conv.weight.value = Tensor::from_vec(vec![2.0], &[1, 1]).unwrap();
        conv.bias.value = Tensor::from_vec(vec![0.5], &[1]).unwrap();
        let x = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[1, 1, 2, 2]).unwrap();
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[2.5, 4.5, 6.5, 8.5]);
    }

    #[test]
    fn forward_known_values_3x3_sum_kernel() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, &mut rng).unwrap();
        conv.weight.value = Tensor::ones(&[1, 9]);
        conv.bias.value = Tensor::zeros(&[1]);
        // 2x2 all-ones image; padded 3x3 sums count the in-bounds pixels.
        let x = Tensor::ones(&[1, 1, 2, 2]);
        let y = conv.forward(&x, true).unwrap();
        assert_eq!(y.data(), &[4.0, 4.0, 4.0, 4.0]);
    }

    #[test]
    fn output_shape_with_stride() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(3, 8, 3, 2, 1, &mut rng).unwrap();
        let x = Tensor::zeros(&[2, 3, 8, 8]);
        let y = conv.forward(&x, false).unwrap();
        assert_eq!(y.shape(), &[2, 8, 4, 4]);
    }

    #[test]
    fn rejects_wrong_channel_count() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut conv = Conv2d::new(3, 8, 3, 1, 1, &mut rng).unwrap();
        let x = Tensor::zeros(&[1, 2, 8, 8]);
        assert!(matches!(conv.forward(&x, true), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn finite_difference_gradient_check_weights_and_input() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut conv = Conv2d::new(2, 3, 3, 1, 1, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 2, 4, 4], -1.0, 1.0, &mut rng);

        let y = conv.forward(&x, true).unwrap();
        let dy = Tensor::ones(y.shape());
        let dx = conv.backward(&dy).unwrap();
        let analytic_w = conv.weight.grad.clone();

        let eps = 1e-2f32;
        // Check a few weight coordinates.
        for idx in [0usize, 7, 17, 35] {
            let orig = conv.weight.value.data()[idx];
            conv.weight.value.data_mut()[idx] = orig + eps;
            let lp = conv.forward(&x, true).unwrap().sum();
            conv.weight.value.data_mut()[idx] = orig - eps;
            let lm = conv.forward(&x, true).unwrap().sum();
            conv.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let got = analytic_w.data()[idx];
            assert!(
                (numeric - got).abs() < 0.05 * (1.0 + got.abs()),
                "weight idx {idx}: numeric {numeric} vs analytic {got}"
            );
        }
        // Check a few input coordinates.
        let mut x2 = x.clone();
        for idx in [0usize, 13, 31] {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp = conv.forward(&x2, true).unwrap().sum();
            x2.data_mut()[idx] = orig - eps;
            let lm = conv.forward(&x2, true).unwrap().sum();
            x2.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let got = dx.data()[idx];
            assert!(
                (numeric - got).abs() < 0.05 * (1.0 + got.abs()),
                "input idx {idx}: numeric {numeric} vs analytic {got}"
            );
        }
    }

    #[test]
    fn bias_gradient_counts_output_elements() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut conv = Conv2d::new(1, 2, 1, 1, 0, &mut rng).unwrap();
        let x = Tensor::ones(&[3, 1, 2, 2]); // batch 3, plane 4
        let y = conv.forward(&x, true).unwrap();
        conv.backward(&Tensor::ones(y.shape())).unwrap();
        // Each bias sees batch * plane = 12 gradient ones.
        assert_eq!(conv.bias.grad.data(), &[12.0, 12.0]);
    }
}
