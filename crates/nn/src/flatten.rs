//! Flatten layer: `[batch, ...] -> [batch, prod(...)]`.

use crate::layer::Layer;
use crate::{NnError, Result};
use fedsu_tensor::{pool, Tensor};

/// Flattens all non-batch dimensions.
#[derive(Debug, Default)]
pub struct Flatten {
    cached_shape: Option<Vec<usize>>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }
}

impl Layer for Flatten {
    fn name(&self) -> &str {
        "flatten"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if input.rank() < 2 {
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("rank >= 2"),
                input.shape(),
            ));
        }
        let batch = input.shape()[0];
        let rest: usize = input.shape()[1..].iter().product();
        if train {
            let mut cached = pool::take_usize_buf(input.rank());
            cached.copy_from_slice(input.shape());
            self.cached_shape = Some(cached);
        }
        Ok(input.reshape(&[batch, rest])?)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self
            .cached_shape
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        let out = grad_output.reshape(&shape)?;
        pool::give_usize_buf(shape);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_flattens_and_backward_restores() {
        let mut f = Flatten::new();
        let x = Tensor::zeros(&[2, 3, 4, 5]);
        let y = f.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[2, 60]);
        let dx = f.backward(&Tensor::zeros(&[2, 60])).unwrap();
        assert_eq!(dx.shape(), &[2, 3, 4, 5]);
    }

    #[test]
    fn rejects_rank1() {
        let mut f = Flatten::new();
        assert!(f.forward(&Tensor::zeros(&[5]), true).is_err());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros(&[2, 60])).is_err());
    }
}
