//! Fully-connected (dense) layer.

use crate::layer::{Layer, Param};
use crate::{NnError, Result};
use fedsu_tensor::{kaiming_uniform, matmul, matmul_transpose_a, matmul_transpose_b, pool, Tensor};
use rand::Rng;

/// A fully-connected layer computing `y = x · Wᵀ + b`.
///
/// Input: `[batch, in_features]`; output: `[batch, out_features]`.
/// Weights are stored `[out_features, in_features]`.
#[derive(Debug)]
pub struct Dense {
    weight: Param,
    bias: Param,
    in_features: usize,
    out_features: usize,
    cached_input: Option<Tensor>,
}

impl Dense {
    /// Creates a dense layer with Kaiming-uniform weights and zero bias.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::BadConfig`] when either dimension is zero.
    pub fn new<R: Rng + ?Sized>(in_features: usize, out_features: usize, rng: &mut R) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::BadConfig(format!(
                "dense layer dims must be positive, got {in_features}x{out_features}"
            )));
        }
        let weight = kaiming_uniform(&[out_features, in_features], in_features, rng);
        Ok(Dense {
            weight: Param::new(weight),
            bias: Param::new(Tensor::zeros(&[out_features])),
            in_features,
            out_features,
            cached_input: None,
        })
    }

    /// Input feature dimension.
    pub fn in_features(&self) -> usize {
        self.in_features
    }

    /// Output feature dimension.
    pub fn out_features(&self) -> usize {
        self.out_features
    }
}

impl Layer for Dense {
    fn name(&self) -> &str {
        "dense"
    }

    fn forward(&mut self, input: &Tensor, train: bool) -> Result<Tensor> {
        if !matches!(input.shape(), &[_, f] if f == self.in_features) {
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("[batch, {}]", self.in_features),
                input.shape(),
            ));
        }
        let mut out = matmul_transpose_b(input, &self.weight.value)?;
        let b = self.bias.value.data();
        for orow in out.data_mut().chunks_exact_mut(self.out_features) {
            for (o, bv) in orow.iter_mut().zip(b) {
                *o += bv;
            }
        }
        if train {
            let mut cache = pool::pooled_like(input);
            cache.data_mut().copy_from_slice(input.data());
            self.cached_input = Some(cache);
        }
        Ok(out)
    }

    fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self
            .cached_input
            .take()
            .ok_or_else(|| NnError::new_missing_forward(self.name()))?;
        if !matches!(grad_output.shape(), &[_, f] if f == self.out_features) {
            return Err(NnError::new_bad_input(
                self.name(),
                format_args!("grad [batch, {}]", self.out_features),
                grad_output.shape(),
            ));
        }
        // dW = dYᵀ · X  -> [out, in]
        let dw = matmul_transpose_a(grad_output, &input)?;
        pool::recycle(input);
        self.weight.grad.add_assign(&dw)?;
        pool::recycle(dw);
        // db = column-sum of dY
        let bg = self.bias.grad.data_mut();
        for grow in grad_output.data().chunks_exact(self.out_features) {
            for (b, g) in bg.iter_mut().zip(grow) {
                *b += g;
            }
        }
        // dX = dY · W -> [batch, in]
        Ok(matmul(grad_output, &self.weight.value)?)
    }

    fn visit_params_mut(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    fn visit_params(&self, f: &mut dyn FnMut(&Param)) {
        f(&self.weight);
        f(&self.bias);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn layer_with_known_weights() -> Dense {
        let mut rng = StdRng::seed_from_u64(0);
        let mut d = Dense::new(2, 3, &mut rng).unwrap();
        // W = [[1,2],[3,4],[5,6]], b = [0.1, 0.2, 0.3]
        d.weight.value = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[3, 2]).unwrap();
        d.bias.value = Tensor::from_vec(vec![0.1, 0.2, 0.3], &[3]).unwrap();
        d
    }

    #[test]
    fn forward_known_values() {
        let mut d = layer_with_known_weights();
        let x = Tensor::from_vec(vec![1.0, 1.0], &[1, 2]).unwrap();
        let y = d.forward(&x, true).unwrap();
        assert_eq!(y.shape(), &[1, 3]);
        let want = [3.1, 7.2, 11.3];
        for (a, b) in y.data().iter().zip(&want) {
            assert!((a - b).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_known_gradients() {
        let mut d = layer_with_known_weights();
        let x = Tensor::from_vec(vec![1.0, 2.0], &[1, 2]).unwrap();
        d.forward(&x, true).unwrap();
        let dy = Tensor::from_vec(vec![1.0, 0.0, -1.0], &[1, 3]).unwrap();
        let dx = d.backward(&dy).unwrap();
        // dX = dY·W = [1*1 + 0*3 + (-1)*5, 1*2 + 0*4 + (-1)*6] = [-4, -4]
        assert_eq!(dx.data(), &[-4.0, -4.0]);
        // dW = dYᵀ·X = [[1,2],[0,0],[-1,-2]]
        assert_eq!(d.weight.grad.data(), &[1.0, 2.0, 0.0, 0.0, -1.0, -2.0]);
        assert_eq!(d.bias.grad.data(), &[1.0, 0.0, -1.0]);
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut d = layer_with_known_weights();
        let dy = Tensor::zeros(&[1, 3]);
        assert!(matches!(d.backward(&dy), Err(NnError::MissingForward { .. })));
    }

    #[test]
    fn rejects_bad_input_shape() {
        let mut d = layer_with_known_weights();
        let x = Tensor::zeros(&[1, 5]);
        assert!(matches!(d.forward(&x, true), Err(NnError::BadInput { .. })));
    }

    #[test]
    fn param_visit_order_is_weight_then_bias() {
        let d = layer_with_known_weights();
        let mut lens = Vec::new();
        d.visit_params(&mut |p| lens.push(p.len()));
        assert_eq!(lens, vec![6, 3]);
    }

    #[test]
    fn zero_dims_rejected() {
        let mut rng = StdRng::seed_from_u64(0);
        assert!(Dense::new(0, 3, &mut rng).is_err());
        assert!(Dense::new(3, 0, &mut rng).is_err());
    }

    #[test]
    fn finite_difference_gradient_check() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut d = Dense::new(4, 3, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[2, 4], -1.0, 1.0, &mut rng);
        // Loss = sum(forward(x)); analytic dL/dW via backward with ones.
        let y = d.forward(&x, true).unwrap();
        let dy = Tensor::ones(y.shape());
        d.backward(&dy).unwrap();
        let analytic = d.weight.grad.clone();

        let eps = 1e-3f32;
        for idx in [0usize, 5, 11] {
            let orig = d.weight.value.data()[idx];
            d.weight.value.data_mut()[idx] = orig + eps;
            let lp = d.forward(&x, true).unwrap().sum();
            d.weight.value.data_mut()[idx] = orig - eps;
            let lm = d.forward(&x, true).unwrap().sum();
            d.weight.value.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            let got = analytic.data()[idx];
            assert!((numeric - got).abs() < 1e-2, "idx {idx}: numeric {numeric} vs analytic {got}");
        }
    }
}
