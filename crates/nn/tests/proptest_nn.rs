//! Property-based tests for the NN substrate: gradient checks on random
//! layer configurations and structural invariants.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_nn::activation::Relu;
use fedsu_nn::dense::Dense;
use fedsu_nn::flat::{flatten_params, load_params, param_count};
use fedsu_nn::loss::softmax_cross_entropy;
use fedsu_nn::models::{mlp, ModelPreset};
use fedsu_nn::optim::Sgd;
use fedsu_nn::{Layer, Sequential};
use fedsu_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn dense_gradient_check_random_configs(seed in 0u64..1000, inf in 1usize..6, outf in 1usize..6, batch in 1usize..4) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut d = Dense::new(inf, outf, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[batch, inf], -1.0, 1.0, &mut rng);
        let y = d.forward(&x, true).unwrap();
        let dy = Tensor::ones(y.shape());
        let dx = d.backward(&dy).unwrap();

        let eps = 1e-2f32;
        let mut x2 = x.clone();
        for idx in 0..x.len().min(4) {
            let orig = x2.data()[idx];
            x2.data_mut()[idx] = orig + eps;
            let lp = d.forward(&x2, true).unwrap().sum();
            x2.data_mut()[idx] = orig - eps;
            let lm = d.forward(&x2, true).unwrap().sum();
            x2.data_mut()[idx] = orig;
            let numeric = (lp - lm) / (2.0 * eps);
            prop_assert!((numeric - dx.data()[idx]).abs() < 0.05 * (1.0 + numeric.abs()));
        }
    }

    #[test]
    fn loss_gradient_rows_sum_to_zero(seed in 0u64..1000, batch in 1usize..5, classes in 2usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let logits = Tensor::rand_uniform(&[batch, classes], -3.0, 3.0, &mut rng);
        let labels: Vec<usize> = (0..batch).map(|i| i % classes).collect();
        let (loss, grad) = softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(loss >= 0.0);
        for n in 0..batch {
            let s: f32 = grad.data()[n * classes..(n + 1) * classes].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn flat_roundtrip_arbitrary_values(seed in 0u64..1000, scale in 0.1f32..5.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = mlp(&[3, 5, 2], &mut rng).unwrap();
        let n = param_count(&m);
        let values: Vec<f32> = (0..n).map(|i| ((i as f32) * 0.7).sin() * scale).collect();
        load_params(&mut m, &values).unwrap();
        prop_assert_eq!(flatten_params(&m), values);
    }

    #[test]
    fn relu_is_idempotent(seed in 0u64..1000, len in 1usize..32) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x = Tensor::rand_uniform(&[1, len], -2.0, 2.0, &mut rng);
        let mut r1 = Relu::new();
        let mut r2 = Relu::new();
        let once = r1.forward(&x, false).unwrap();
        let twice = r2.forward(&once, false).unwrap();
        prop_assert_eq!(once.data(), twice.data());
    }

    #[test]
    fn sgd_without_grad_and_decay_is_identity(seed in 0u64..1000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = mlp(&[3, 4, 2], &mut rng).unwrap();
        let before = flatten_params(&m);
        Sgd::new(0.1).step(&mut m).unwrap();
        prop_assert_eq!(flatten_params(&m), before);
    }

    #[test]
    fn training_loss_decreases_over_steps(seed in 0u64..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut m = mlp(&[4, 12, 3], &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[12, 4], -1.0, 1.0, &mut rng);
        let labels: Vec<usize> = (0..12).map(|i| i % 3).collect();
        let mut opt = Sgd::new(0.3);
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..20 {
            let y = m.forward(&x, true).unwrap();
            let (l, g) = softmax_cross_entropy(&y, &labels).unwrap();
            m.backward(&g).unwrap();
            opt.step(&mut m).unwrap();
            if first.is_none() { first = Some(l); }
            last = l;
        }
        prop_assert!(last < first.unwrap(), "loss {} -> {}", first.unwrap(), last);
    }
}

#[test]
fn models_have_expected_relative_sizes() {
    let mut rng = StdRng::seed_from_u64(0);
    let cnn = fedsu_nn::models::cnn(10, ModelPreset::Small, &mut rng).unwrap();
    let resnet = fedsu_nn::models::resnet18(1, 10, ModelPreset::Small, &mut rng).unwrap();
    let densenet = fedsu_nn::models::densenet(3, 10, ModelPreset::Small, &mut rng).unwrap();
    // Sanity on overall scale (documented laptop-scale models).
    for (name, m) in [("cnn", &cnn), ("resnet", &resnet), ("densenet", &densenet)] {
        let n = param_count(m);
        assert!(n > 1_000 && n < 2_000_000, "{name} has {n} params");
    }
}

#[test]
fn sequential_backward_matches_composition() {
    // backward(Sequential) == backward chained manually through each layer.
    let mut rng = StdRng::seed_from_u64(42);
    let mut seq = Sequential::new("s");
    seq.push(Dense::new(3, 4, &mut rng).unwrap());
    seq.push(Relu::new());

    let mut rng2 = StdRng::seed_from_u64(42);
    let mut d = Dense::new(3, 4, &mut rng2).unwrap();
    let mut r = Relu::new();

    let x = Tensor::rand_uniform(&[2, 3], -1.0, 1.0, &mut rng);
    let y_seq = seq.forward(&x, true).unwrap();
    let y_man = r.forward(&d.forward(&x, true).unwrap(), true).unwrap();
    assert_eq!(y_seq.data(), y_man.data());

    let dy = Tensor::ones(y_seq.shape());
    let dx_seq = seq.backward(&dy).unwrap();
    let dx_man = d.backward(&r.backward(&dy).unwrap()).unwrap();
    assert_eq!(dx_seq.data(), dx_man.data());
}
