//! Cross-checks the im2col convolution against a naive direct convolution
//! reference, over randomized geometries.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_nn::conv2d::Conv2d;
use fedsu_nn::{Layer, Param};
use fedsu_tensor::Tensor;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Geometry of the naive reference convolution (NCHW input, square kernel).
#[derive(Debug, Clone, Copy)]
struct NaiveConvGeom {
    batch: usize,
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    stride: usize,
    pad: usize,
}

/// Direct (quadruple-loop) 2-D convolution over NCHW input.
fn naive_conv(input: &[f32], weight: &[f32], bias: &[f32], g: NaiveConvGeom) -> Vec<f32> {
    let NaiveConvGeom { batch, in_c, h, w, out_c, k, stride, pad } = g;
    let oh = (h + 2 * pad - k) / stride + 1;
    let ow = (w + 2 * pad - k) / stride + 1;
    let mut out = vec![0.0f32; batch * out_c * oh * ow];
    for n in 0..batch {
        for oc in 0..out_c {
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = bias[oc];
                    for ic in 0..in_c {
                        for ky in 0..k {
                            for kx in 0..k {
                                let iy = (oy * stride + ky) as isize - pad as isize;
                                let ix = (ox * stride + kx) as isize - pad as isize;
                                if iy >= 0 && (iy as usize) < h && ix >= 0 && (ix as usize) < w {
                                    let iv = input
                                        [n * in_c * h * w + ic * h * w + iy as usize * w + ix as usize];
                                    let wv = weight[oc * in_c * k * k + ic * k * k + ky * k + kx];
                                    acc += iv * wv;
                                }
                            }
                        }
                    }
                    out[n * out_c * oh * ow + oc * oh * ow + oy * ow + ox] = acc;
                }
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn im2col_conv_matches_naive_reference(seed in 0u64..10_000,
                                           batch in 1usize..3,
                                           in_c in 1usize..3,
                                           out_c in 1usize..4,
                                           h in 3usize..9,
                                           w in 3usize..9,
                                           k in 1usize..4,
                                           stride in 1usize..3,
                                           pad in 0usize..2) {
        prop_assume!(h + 2 * pad >= k && w + 2 * pad >= k);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut conv = Conv2d::new(in_c, out_c, k, stride, pad, &mut rng).unwrap();
        let x = Tensor::rand_uniform(&[batch, in_c, h, w], -1.0, 1.0, &mut rng);

        // Pull the layer's actual weights/bias through the Param visitor
        // (visit order: weight then bias).
        let mut buffers: Vec<Vec<f32>> = Vec::new();
        conv.visit_params(&mut |p: &Param| buffers.push(p.value.data().to_vec()));
        let bias = buffers.pop().unwrap();
        let weight = buffers.pop().unwrap();

        let fast = conv.forward(&x, false).unwrap();
        let geom = NaiveConvGeom { batch, in_c, h, w, out_c, k, stride, pad };
        let reference = naive_conv(x.data(), &weight, &bias, geom);
        prop_assert_eq!(fast.len(), reference.len());
        for (a, b) in fast.data().iter().zip(&reference) {
            prop_assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }
}
