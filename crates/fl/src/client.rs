//! An emulated FL client: a local model, optimizer, and data partition.

use crate::schedule::LrSchedule;
use crate::{FlError, Result};
use fedsu_data::Batcher;
use fedsu_nn::flat::{flatten_params, load_params, param_count};
use fedsu_nn::loss::softmax_cross_entropy;
use fedsu_nn::optim::Sgd;
use fedsu_nn::{Layer, Sequential};
use serde::{Deserialize, Serialize};

/// Local-training hyper-parameters shared by every client (the paper's
/// Sec. VI-A setup: batch 32, 50 iterations per round, SGD with weight
/// decay 1e-3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClientConfig {
    /// Mini-batch size per iteration.
    pub batch_size: usize,
    /// SGD iterations per round (`F_s` in Algorithm 1).
    pub local_iters: usize,
    /// Base learning rate.
    pub lr: f32,
    /// L2 weight decay coefficient.
    pub weight_decay: f32,
    /// Per-round learning-rate schedule (Theorem 1's Eq. 13 condition).
    pub schedule: LrSchedule,
    /// Optional global-norm gradient clipping threshold (`None` = off, as
    /// in the paper's setup).
    pub clip_norm: Option<f32>,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            batch_size: 32,
            local_iters: 50,
            lr: 0.01,
            weight_decay: 1e-3,
            schedule: LrSchedule::Constant,
            clip_norm: None,
        }
    }
}

/// Scales all accumulated gradients so their global L2 norm is at most
/// `max_norm` (no-op when already below).
fn clip_gradients(model: &mut fedsu_nn::Sequential, max_norm: f32) {
    use fedsu_nn::Layer;
    let mut sq = 0.0f64;
    model.visit_params(&mut |p| {
        sq += p.grad.data().iter().map(|g| f64::from(*g) * f64::from(*g)).sum::<f64>();
    });
    let norm = sq.sqrt() as f32;
    if norm > max_norm && norm > 0.0 {
        let scale = max_norm / norm;
        model.visit_params_mut(&mut |p| p.grad.scale_in_place(scale));
    }
}

/// One emulated FL client.
pub struct Client {
    id: usize,
    model: Sequential,
    optimizer: Sgd,
    batcher: Batcher,
    config: ClientConfig,
    param_count: usize,
}

impl std::fmt::Debug for Client {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Client")
            .field("id", &self.id)
            .field("params", &self.param_count)
            .field("samples", &self.batcher.len())
            .finish()
    }
}

impl Client {
    /// Creates a client owning `model` and training on `batcher`'s
    /// partition.
    pub fn new(id: usize, model: Sequential, batcher: Batcher, config: ClientConfig) -> Self {
        let optimizer = Sgd::new(config.lr).with_weight_decay(config.weight_decay);
        let param_count = param_count(&model);
        Client { id, model, optimizer, batcher, config, param_count }
    }

    /// Client id (stable across the experiment).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Number of scalar parameters in the local model.
    pub fn param_count(&self) -> usize {
        self.param_count
    }

    /// Number of local training samples.
    pub fn num_samples(&self) -> usize {
        self.batcher.len()
    }

    /// Loads global parameters into the local model (the "pull" step).
    ///
    /// # Errors
    ///
    /// Returns an error when `global` has the wrong length.
    pub fn pull(&mut self, global: &[f32]) -> Result<()> {
        load_params(&mut self.model, global)?;
        Ok(())
    }

    /// Runs one round of local training (`local_iters` SGD steps) and
    /// returns the mean training loss over the round.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Diverged`] if parameters become non-finite, or an
    /// underlying NN error.
    pub fn train_round(&mut self, round: usize) -> Result<f32> {
        self.optimizer.set_lr(self.config.schedule.lr_at(self.config.lr, round));
        let mut total_loss = 0.0f64;
        for _ in 0..self.config.local_iters {
            let (x, labels) = self.batcher.next_batch(self.config.batch_size);
            let logits = self.model.forward(&x, true)?;
            let (loss, grad) = softmax_cross_entropy(&logits, &labels)?;
            if !loss.is_finite() {
                return Err(FlError::Diverged { round });
            }
            self.model.backward(&grad)?;
            if let Some(max_norm) = self.config.clip_norm {
                clip_gradients(&mut self.model, max_norm);
            }
            self.optimizer.step(&mut self.model)?;
            total_loss += f64::from(loss);
        }
        Ok((total_loss / self.config.local_iters as f64) as f32)
    }

    /// Flattened local parameters (the "push" payload before sparsification).
    pub fn local_params(&self) -> Vec<f32> {
        flatten_params(&self.model)
    }

    /// Copies the flattened local parameters into `out`, reusing its
    /// allocation — the steady-round upload-staging counterpart of
    /// [`Client::local_params`].
    pub fn local_params_into(&self, out: &mut Vec<f32>) {
        fedsu_nn::flat::flatten_params_into(&self.model, out);
    }

    /// Shared access to the underlying model (e.g. for evaluation probes).
    pub fn model(&self) -> &Sequential {
        &self.model
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsu_data::{InMemoryDataset, SyntheticConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::sync::Arc;

    fn toy_client(seed: u64) -> Client {
        let mut rng = StdRng::seed_from_u64(seed);
        let data: Arc<InMemoryDataset> =
            Arc::new(SyntheticConfig::new(3, 1, 4, 4).samples_per_class(10).build(&mut rng));
        let n = data.len();
        let batcher = Batcher::new(data, (0..n).collect(), seed);
        let mut model_rng = StdRng::seed_from_u64(0);
        let mut model = fedsu_nn::Sequential::new("m");
        model.push(fedsu_nn::flatten::Flatten::new());
        let inner = fedsu_nn::models::mlp(&[16, 8, 3], &mut model_rng).unwrap();
        model.push_boxed(Box::new(inner));
        Client::new(
            7,
            model,
            batcher,
            ClientConfig {
                batch_size: 4,
                local_iters: 3,
                lr: 0.05,
                weight_decay: 0.0,
                schedule: LrSchedule::Constant,
                clip_norm: None,
            },
        )
    }

    #[test]
    fn pull_roundtrips_params() {
        let mut c = toy_client(1);
        let n = c.param_count();
        let values: Vec<f32> = (0..n).map(|i| (i as f32 * 0.01).sin()).collect();
        c.pull(&values).unwrap();
        assert_eq!(c.local_params(), values);
        assert!(c.pull(&[0.0]).is_err());
    }

    #[test]
    fn train_round_changes_params_and_returns_finite_loss() {
        let mut c = toy_client(2);
        let before = c.local_params();
        let loss = c.train_round(0).unwrap();
        assert!(loss.is_finite() && loss > 0.0);
        assert_ne!(before, c.local_params());
    }

    #[test]
    fn training_reduces_loss_over_rounds() {
        let mut c = toy_client(3);
        let first = c.train_round(0).unwrap();
        let mut last = first;
        for r in 1..10 {
            last = c.train_round(r).unwrap();
        }
        assert!(last < first, "loss {first} -> {last}");
    }

    #[test]
    fn ids_and_sizes_are_reported() {
        let c = toy_client(4);
        assert_eq!(c.id(), 7);
        assert_eq!(c.num_samples(), 30);
        assert!(c.param_count() > 0);
    }
}


#[cfg(test)]
mod clip_tests {
    use super::*;
    use fedsu_nn::dense::Dense;
    use fedsu_nn::Layer;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn clipping_caps_the_global_norm() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = fedsu_nn::Sequential::new("m");
        m.push(Dense::new(2, 2, &mut rng).unwrap());
        m.visit_params_mut(&mut |p| p.grad.fill(10.0));
        clip_gradients(&mut m, 1.0);
        let mut sq = 0.0f32;
        m.visit_params(&mut |p| sq += p.grad.data().iter().map(|g| g * g).sum::<f32>());
        assert!((sq.sqrt() - 1.0).abs() < 1e-5, "norm {}", sq.sqrt());
    }

    #[test]
    fn small_gradients_are_untouched() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut m = fedsu_nn::Sequential::new("m");
        m.push(Dense::new(2, 2, &mut rng).unwrap());
        m.visit_params_mut(&mut |p| p.grad.fill(0.01));
        let mut before = Vec::new();
        m.visit_params(&mut |p| before.extend_from_slice(p.grad.data()));
        clip_gradients(&mut m, 100.0);
        let mut after = Vec::new();
        m.visit_params(&mut |p| after.extend_from_slice(p.grad.data()));
        assert_eq!(before, after);
    }
}
