//! # fedsu-fl
//!
//! The emulated federated-learning runtime the FedSU paper's evaluation
//! runs on: a FedAvg-style round loop (pull → local SGD iterations → push →
//! aggregate), the [`SyncStrategy`] trait that FedAvg/CMFL/APF/FedSU plug
//! into, exact per-scalar communication accounting, the paper's
//! earliest-70% participation rule (via `fedsu-netsim`), and participant
//! dynamicity (clients joining/leaving mid-run).
//!
//! ## Execution model
//!
//! The paper deploys one process per EC2 node and replicates the
//! FedSU_Manager state on every client (masks are identical across clients
//! because they are derived from post-synchronization global values). This
//! runtime exploits exactly that replication argument: strategy state that
//! the paper replicates per-client is held once, while genuinely per-client
//! quantities (local models, data partitions, error accumulators) are kept
//! per client. Bytes on the wire are counted as if the state were
//! physically distributed — which is what the paper measures.

#![warn(missing_docs)]

pub mod client;
/// Error types.
pub mod error;
pub mod experiment;
pub mod message;
pub mod record;
pub mod schedule;
pub mod server;
pub mod strategy;

pub use client::{Client, ClientConfig};
pub use error::FlError;
pub use experiment::{DefenseConfig, Experiment, ExperimentConfig, RoundHook};
pub use fedsu_netsim::{FaultConfig, FaultPlan};
pub use message::{
    bytes_with_retries, retransmitted_bytes, scalars_to_bytes, RoundComm, BYTES_PER_SCALAR,
};
pub use record::{ExperimentResult, RoundRecord};
pub use schedule::LrSchedule;
pub use server::Server;
pub use strategy::{AggregateOutcome, SyncStrategy};

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, FlError>;
