//! Experiment output records.

use serde::{Deserialize, Serialize};

/// Everything recorded about one communication round.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundRecord {
    /// Round index (0-based).
    #[serde(default)]
    pub round: usize,
    /// Emulated duration of this round in seconds.
    #[serde(default)]
    pub duration_secs: f64,
    /// Cumulative emulated time at round end.
    #[serde(default)]
    pub sim_time_secs: f64,
    /// Test accuracy, if this round was an evaluation round.
    #[serde(default)]
    pub accuracy: Option<f32>,
    /// Test loss, if this round was an evaluation round.
    #[serde(default)]
    pub test_loss: Option<f32>,
    /// Mean client training loss this round.
    #[serde(default)]
    pub train_loss: f32,
    /// Fraction of scalars that skipped synchronization (paper's
    /// sparsification ratio).
    #[serde(default)]
    pub sparsification_ratio: f64,
    /// Total bytes on the wire this round (both directions, all clients).
    #[serde(default)]
    pub bytes: u64,
    /// Clients whose updates were aggregated.
    #[serde(default)]
    pub participants: usize,
    /// Clients that dropped out this round (mid-round dropout, crash,
    /// exhausted upload retries, panic, or missed deadline).
    #[serde(default)]
    pub dropped: usize,
    /// Uploads rejected by validation (non-finite or norm-outlier).
    #[serde(default)]
    pub quarantined: usize,
    /// Extra upload bytes spent on retransmissions after lost uploads.
    #[serde(default)]
    pub retransmitted_bytes: u64,
    /// 1 if this round's aggregation was rolled back to the last checkpoint.
    #[serde(default)]
    pub rollbacks: usize,
}

/// A completed experiment: configuration echo plus per-round records.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentResult {
    /// Strategy display name.
    #[serde(default)]
    pub strategy: String,
    /// Model display name.
    #[serde(default)]
    pub model: String,
    /// Per-round records, in order.
    #[serde(default)]
    pub rounds: Vec<RoundRecord>,
    /// Total scalar parameters in the model.
    #[serde(default)]
    pub param_count: usize,
}

impl ExperimentResult {
    /// Emulated seconds until test accuracy first reaches `target`
    /// (`None` if never reached).
    pub fn time_to_accuracy(&self, target: f32) -> Option<f64> {
        self.rounds
            .iter()
            .find(|r| r.accuracy.is_some_and(|a| a >= target))
            .map(|r| r.sim_time_secs)
    }

    /// Rounds until test accuracy first reaches `target`.
    pub fn rounds_to_accuracy(&self, target: f32) -> Option<usize> {
        self.rounds
            .iter()
            .find(|r| r.accuracy.is_some_and(|a| a >= target))
            .map(|r| r.round + 1)
    }

    /// Mean emulated per-round duration.
    pub fn mean_round_secs(&self) -> f64 {
        if self.rounds.is_empty() {
            0.0
        } else {
            self.rounds.iter().map(|r| r.duration_secs).sum::<f64>() / self.rounds.len() as f64
        }
    }

    /// Mean sparsification ratio across all rounds.
    pub fn mean_sparsification(&self) -> f64 {
        if self.rounds.is_empty() {
            0.0
        } else {
            self.rounds.iter().map(|r| r.sparsification_ratio).sum::<f64>() / self.rounds.len() as f64
        }
    }

    /// Highest test accuracy observed.
    pub fn best_accuracy(&self) -> f32 {
        self.rounds.iter().filter_map(|r| r.accuracy).fold(0.0, f32::max)
    }

    /// Total bytes moved over the whole run.
    pub fn total_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.bytes).sum()
    }

    /// Total client-round dropouts over the whole run.
    pub fn total_dropped(&self) -> usize {
        self.rounds.iter().map(|r| r.dropped).sum()
    }

    /// Total quarantined uploads over the whole run.
    pub fn total_quarantined(&self) -> usize {
        self.rounds.iter().map(|r| r.quarantined).sum()
    }

    /// Total retransmitted upload bytes over the whole run.
    pub fn total_retransmitted_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.retransmitted_bytes).sum()
    }

    /// Total checkpoint rollbacks over the whole run.
    pub fn total_rollbacks(&self) -> usize {
        self.rounds.iter().map(|r| r.rollbacks).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(round: usize, acc: Option<f32>, t: f64) -> RoundRecord {
        RoundRecord {
            round,
            duration_secs: 1.0,
            sim_time_secs: t,
            accuracy: acc,
            test_loss: None,
            train_loss: 1.0,
            sparsification_ratio: 0.5,
            bytes: 100,
            participants: 4,
            dropped: 1,
            quarantined: 0,
            retransmitted_bytes: 8,
            rollbacks: 0,
        }
    }

    fn result() -> ExperimentResult {
        ExperimentResult {
            strategy: "test".into(),
            model: "m".into(),
            rounds: vec![
                record(0, Some(0.3), 1.0),
                record(1, None, 2.0),
                record(2, Some(0.6), 3.0),
                record(3, Some(0.7), 4.0),
            ],
            param_count: 10,
        }
    }

    #[test]
    fn time_to_accuracy_finds_first_crossing() {
        let r = result();
        assert_eq!(r.time_to_accuracy(0.6), Some(3.0));
        assert_eq!(r.rounds_to_accuracy(0.6), Some(3));
        assert_eq!(r.time_to_accuracy(0.9), None);
    }

    #[test]
    fn aggregates() {
        let r = result();
        assert_eq!(r.mean_round_secs(), 1.0);
        assert_eq!(r.mean_sparsification(), 0.5);
        assert_eq!(r.best_accuracy(), 0.7);
        assert_eq!(r.total_bytes(), 400);
        assert_eq!(r.total_dropped(), 4);
        assert_eq!(r.total_quarantined(), 0);
        assert_eq!(r.total_retransmitted_bytes(), 32);
        assert_eq!(r.total_rollbacks(), 0);
    }

    #[test]
    fn empty_result_fault_totals_are_zero() {
        let r = ExperimentResult { strategy: "s".into(), model: "m".into(), rounds: vec![], param_count: 0 };
        assert_eq!(r.total_dropped(), 0);
        assert_eq!(r.total_quarantined(), 0);
        assert_eq!(r.total_retransmitted_bytes(), 0);
        assert_eq!(r.total_rollbacks(), 0);
    }

    #[test]
    fn empty_result_is_safe() {
        let r = ExperimentResult { strategy: "s".into(), model: "m".into(), rounds: vec![], param_count: 0 };
        assert_eq!(r.mean_round_secs(), 0.0);
        assert_eq!(r.best_accuracy(), 0.0);
        assert_eq!(r.time_to_accuracy(0.1), None);
    }
}
