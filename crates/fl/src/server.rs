//! The FL server: global parameters and centralized evaluation.

use crate::Result;
use fedsu_data::InMemoryDataset;
use fedsu_nn::flat::{flatten_params, load_params, param_count};
use fedsu_nn::loss::{accuracy, softmax_cross_entropy};
use fedsu_nn::{Layer, Sequential};
use std::sync::Arc;

/// Holds the global model parameters and evaluates them on a held-out test
/// set.
pub struct Server {
    global: Vec<f32>,
    eval_model: Sequential,
    test_set: Arc<InMemoryDataset>,
    eval_batch: usize,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("params", &self.global.len())
            .field("test_samples", &self.test_set.len())
            .finish()
    }
}

impl Server {
    /// Creates a server whose initial global parameters are taken from
    /// `eval_model` (which is also reused for evaluation).
    pub fn new(eval_model: Sequential, test_set: Arc<InMemoryDataset>) -> Self {
        let global = flatten_params(&eval_model);
        Server { global, eval_model, test_set, eval_batch: 64 }
    }

    /// Current global parameter vector.
    pub fn global(&self) -> &[f32] {
        &self.global
    }

    /// Mutable access for the sync strategy's aggregation step.
    pub fn global_mut(&mut self) -> &mut Vec<f32> {
        &mut self.global
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        param_count(&self.eval_model)
    }

    /// Evaluates the current global model on the test set, returning
    /// `(accuracy, mean_loss)`.
    ///
    /// # Errors
    ///
    /// Propagates NN errors (shape mismatches are construction bugs).
    pub fn evaluate(&mut self) -> Result<(f32, f32)> {
        load_params(&mut self.eval_model, &self.global)?;
        let n = self.test_set.len();
        let mut correct_weighted = 0.0f64;
        let mut loss_weighted = 0.0f64;
        let mut start = 0usize;
        while start < n {
            let end = (start + self.eval_batch).min(n);
            let idx: Vec<usize> = (start..end).collect();
            let (x, labels) = self.test_set.batch(&idx);
            let logits = self.eval_model.forward(&x, false)?;
            let acc = accuracy(&logits, &labels)?;
            let (loss, _) = softmax_cross_entropy(&logits, &labels)?;
            let w = (end - start) as f64;
            correct_weighted += f64::from(acc) * w;
            loss_weighted += f64::from(loss) * w;
            start = end;
        }
        Ok(((correct_weighted / n as f64) as f32, (loss_weighted / n as f64) as f32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fedsu_data::SyntheticConfig;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> Server {
        let mut rng = StdRng::seed_from_u64(0);
        let test = Arc::new(SyntheticConfig::new(2, 1, 4, 4).samples_per_class(20).build(&mut rng));
        let mut model = Sequential::new("m");
        model.push(fedsu_nn::flatten::Flatten::new());
        model.push_boxed(Box::new(fedsu_nn::models::mlp(&[16, 2], &mut rng).unwrap()));
        Server::new(model, test)
    }

    #[test]
    fn evaluate_returns_probability_range() {
        let mut s = setup();
        let (acc, loss) = s.evaluate().unwrap();
        assert!((0.0..=1.0).contains(&acc));
        assert!(loss.is_finite() && loss > 0.0);
    }

    #[test]
    fn global_mutation_affects_evaluation() {
        let mut s = setup();
        let (_, loss_before) = s.evaluate().unwrap();
        for v in s.global_mut().iter_mut() {
            *v = 100.0; // absurd params -> loss changes drastically
        }
        let (_, loss_after) = s.evaluate().unwrap();
        assert_ne!(loss_before, loss_after);
    }

    #[test]
    fn param_count_matches_global_len() {
        let s = setup();
        assert_eq!(s.param_count(), s.global().len());
    }
}
