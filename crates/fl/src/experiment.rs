//! The end-to-end experiment loop: pull → local training → sparsified
//! synchronization → aggregation → evaluation, with emulated timing.

use crate::client::{Client, ClientConfig};
use crate::message::scalars_to_bytes;
use crate::record::{ExperimentResult, RoundRecord};
use crate::server::Server;
use crate::strategy::SyncStrategy;
use crate::{FlError, Result};
use fedsu_data::{dirichlet_partition, Batcher, InMemoryDataset};
use fedsu_netsim::{Cluster, ClusterConfig, RoundTimer};
use fedsu_nn::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds one model replica. Called with the same seed for every client so
/// all replicas start identical (the FedAvg precondition).
pub type ModelFactory = Arc<dyn Fn(u64) -> fedsu_nn::Result<Sequential> + Send + Sync>;

/// Decides whether a client participates in a given round (participant
/// dynamicity). `None` means everyone is always active.
pub type AvailabilityFn = Arc<dyn Fn(usize, usize) -> bool + Send + Sync>;

/// Observer invoked after every round with the record and the new global
/// parameter vector (used by the trajectory/microscopic figures).
pub type RoundHook<'a> = &'a mut dyn FnMut(&RoundRecord, &[f32]);

/// Full configuration of one emulated FL experiment.
#[derive(Clone)]
pub struct ExperimentConfig {
    /// Cluster shape and link speeds.
    pub cluster: ClusterConfig,
    /// Fraction of (active) clients aggregated per round (paper: 0.7).
    pub select_fraction: f64,
    /// Number of communication rounds to run.
    pub rounds: usize,
    /// Per-client training hyper-parameters.
    pub client: ClientConfig,
    /// Dirichlet concentration for the non-IID partition (paper: 1.0).
    pub alpha: f64,
    /// Master seed (models, partition, cluster, batch order).
    pub seed: u64,
    /// Evaluate test accuracy every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Nominal local-computation seconds per round for this model (the
    /// emulated device-side cost; scaled per client by the heterogeneity
    /// factor).
    pub compute_secs: f64,
    /// Display name of the model being trained.
    pub model_name: String,
    /// Optional per-(client, round) participation rule.
    pub availability: Option<AvailabilityFn>,
}

impl std::fmt::Debug for ExperimentConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentConfig")
            .field("cluster", &self.cluster)
            .field("select_fraction", &self.select_fraction)
            .field("rounds", &self.rounds)
            .field("client", &self.client)
            .field("alpha", &self.alpha)
            .field("seed", &self.seed)
            .field("eval_every", &self.eval_every)
            .field("compute_secs", &self.compute_secs)
            .field("model_name", &self.model_name)
            .field("availability", &self.availability.is_some())
            .finish()
    }
}

impl ExperimentConfig {
    /// A small, fast configuration mirroring the paper's setup shape
    /// (70% earliest selection, Dirichlet α = 1).
    pub fn quick(n_clients: usize, rounds: usize, model_name: &str) -> Self {
        ExperimentConfig {
            cluster: ClusterConfig::paper_like(n_clients),
            select_fraction: 0.7,
            rounds,
            client: ClientConfig {
                batch_size: 8,
                local_iters: 4,
                lr: 0.05,
                weight_decay: 1e-3,
                schedule: crate::LrSchedule::Constant,
                clip_norm: None,
            },
            alpha: 1.0,
            seed: 42,
            eval_every: 1,
            compute_secs: 4.0,
            model_name: model_name.to_string(),
            availability: None,
        }
    }
}

/// An assembled experiment, ready to run.
pub struct Experiment {
    config: ExperimentConfig,
    clients: Vec<Client>,
    server: Server,
    strategy: Box<dyn SyncStrategy>,
    timer: RoundTimer,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("config", &self.config)
            .field("strategy", &self.strategy.name().to_string())
            .finish()
    }
}

impl Experiment {
    /// Assembles clients (with a Dirichlet data partition), the server, and
    /// the timing model.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for inconsistent configs and
    /// propagates model-construction failures.
    pub fn new(
        config: ExperimentConfig,
        factory: ModelFactory,
        train_data: Arc<InMemoryDataset>,
        test_data: Arc<InMemoryDataset>,
        strategy: Box<dyn SyncStrategy>,
    ) -> Result<Self> {
        let n = config.cluster.n_clients;
        if n == 0 || config.rounds == 0 || config.eval_every == 0 {
            return Err(FlError::BadConfig(
                "clients, rounds and eval_every must be positive".to_string(),
            ));
        }
        let mut part_rng = StdRng::seed_from_u64(config.seed ^ 0x9e3779b97f4a7c15);
        let parts = dirichlet_partition(train_data.labels(), n, config.alpha, &mut part_rng);

        let mut clients = Vec::with_capacity(n);
        for (i, part) in parts.into_iter().enumerate() {
            let model = factory(config.seed)?;
            let batcher = Batcher::new(Arc::clone(&train_data), part, config.seed.wrapping_add(i as u64 + 1));
            clients.push(Client::new(i, model, batcher, config.client));
        }
        let server = Server::new(factory(config.seed)?, test_data);
        let cluster = Cluster::build(&config.cluster, config.seed);
        let timer = RoundTimer::new(&cluster, config.select_fraction);
        Ok(Experiment { config, clients, server, strategy, timer })
    }

    /// Total scalar parameters in the model.
    pub fn param_count(&self) -> usize {
        self.server.param_count()
    }

    /// Read access to the strategy (e.g. for Fig. 7's skip statistics).
    pub fn strategy(&self) -> &dyn SyncStrategy {
        self.strategy.as_ref()
    }

    /// Runs all configured rounds.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Diverged`] when parameters become non-finite, or
    /// any underlying training error.
    pub fn run(&mut self, mut hook: Option<RoundHook<'_>>) -> Result<ExperimentResult> {
        let n = self.clients.len();
        let total = self.param_count();
        let mut records = Vec::with_capacity(self.config.rounds);
        let mut sim_time = 0.0f64;
        // Round-0 download: every client pulls the full initial model.
        let mut prev_broadcast_scalars = total;
        let mut was_active = vec![false; n];

        for round in 0..self.config.rounds {
            let active: Vec<bool> = (0..n)
                .map(|i| self.config.availability.as_ref().map_or(true, |f| f(i, round)))
                .collect();
            if !active.iter().any(|&a| a) {
                return Err(FlError::BadConfig(format!("no active clients in round {round}")));
            }

            // Joining clients additionally download the strategy's replicated
            // state (the paper's dynamicity protocol, Sec. V).
            let join_state_bytes = self.strategy.join_state().map_or(0, |s| s.len() as u64);
            let mut download_bytes = vec![0u64; n];
            for i in 0..n {
                if active[i] {
                    download_bytes[i] = scalars_to_bytes(prev_broadcast_scalars);
                    if !was_active[i] && round > 0 {
                        download_bytes[i] = scalars_to_bytes(total) + join_state_bytes;
                    }
                }
            }

            // 1+2. Pull current global and train locally, in parallel.
            let global_snapshot = self.server.global().to_vec();
            let train_losses = train_all(&mut self.clients, &active, &global_snapshot, round)?;

            // 3. Collect local parameters (inactive clients contribute the
            // unchanged global; they are never selected).
            let locals: Vec<Vec<f32>> = self
                .clients
                .iter()
                .enumerate()
                .map(|(i, c)| if active[i] { c.local_params() } else { global_snapshot.clone() })
                .collect();

            // 4. Strategy phase A: upload volumes.
            let upload_scalars = self.strategy.prepare_uploads(round, &locals, &global_snapshot);
            if upload_scalars.len() != n {
                return Err(FlError::StrategyContract(format!(
                    "prepare_uploads returned {} entries for {} clients",
                    upload_scalars.len(),
                    n
                )));
            }
            let upload_bytes: Vec<u64> = upload_scalars.iter().map(|&s| s * u64::from(crate::BYTES_PER_SCALAR as u32)).collect();

            // 5. Emulated timing + earliest-K selection.
            let compute: Vec<f64> = active
                .iter()
                .map(|&a| if a { self.config.compute_secs } else { 0.0 })
                .collect();
            let timing = self.timer.round_at(round, &compute, &upload_bytes, &download_bytes, &active);

            // 6. Strategy phase B: aggregate into the new global.
            let outcome = self.strategy.aggregate(round, &locals, &timing.selected, &active, self.server.global_mut());
            if self.server.global().iter().any(|v| !v.is_finite()) {
                return Err(FlError::Diverged { round });
            }
            prev_broadcast_scalars = outcome.broadcast_scalars;

            // 7. Accounting and evaluation.
            sim_time += timing.duration_secs;
            let bytes: u64 = upload_bytes
                .iter()
                .enumerate()
                .filter(|&(i, _)| active[i])
                .map(|(_, b)| *b)
                .sum::<u64>()
                + download_bytes.iter().sum::<u64>();
            let (accuracy, test_loss) = if round % self.config.eval_every == 0 || round + 1 == self.config.rounds {
                let (a, l) = self.server.evaluate()?;
                (Some(a), Some(l))
            } else {
                (None, None)
            };
            let n_active = active.iter().filter(|&&a| a).count();
            let train_loss = if n_active == 0 { 0.0 } else { train_losses.iter().sum::<f32>() / n_active as f32 };

            let record = RoundRecord {
                round,
                duration_secs: timing.duration_secs,
                sim_time_secs: sim_time,
                accuracy,
                test_loss,
                train_loss,
                sparsification_ratio: 1.0 - outcome.synced_scalars as f64 / outcome.total_scalars.max(1) as f64,
                bytes,
                participants: timing.selected.len(),
            };
            if let Some(h) = hook.as_mut() {
                h(&record, self.server.global());
            }
            records.push(record);
            was_active = active;
        }

        Ok(ExperimentResult {
            strategy: self.strategy.name().to_string(),
            model: self.config.model_name.clone(),
            rounds: records,
            param_count: total,
        })
    }
}

/// Trains every active client for one round, spreading clients across
/// available cores with crossbeam scoped threads. Returns per-client mean
/// training losses (0.0 for inactive clients).
fn train_all(clients: &mut [Client], active: &[bool], global: &[f32], round: usize) -> Result<Vec<f32>> {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get()).min(clients.len().max(1));
    let mut losses = vec![0.0f32; clients.len()];

    if threads <= 1 {
        for (i, client) in clients.iter_mut().enumerate() {
            if active[i] {
                client.pull(global)?;
                losses[i] = client.train_round(round)?;
            }
        }
        return Ok(losses);
    }

    let chunk = clients.len().div_ceil(threads);
    let results: Vec<Result<Vec<(usize, f32)>>> = crossbeam::thread::scope(|s| {
        let mut handles = Vec::new();
        for (ci, chunk_clients) in clients.chunks_mut(chunk).enumerate() {
            let base = ci * chunk;
            let active = &active;
            handles.push(s.spawn(move |_| -> Result<Vec<(usize, f32)>> {
                let mut out = Vec::new();
                for (off, client) in chunk_clients.iter_mut().enumerate() {
                    let id = base + off;
                    if active[id] {
                        client.pull(global)?;
                        out.push((id, client.train_round(round)?));
                    }
                }
                Ok(out)
            }));
        }
        handles.into_iter().map(|h| h.join().expect("client thread panicked")).collect()
    })
    .expect("crossbeam scope");

    for r in results {
        for (id, loss) in r? {
            losses[id] = loss;
        }
    }
    Ok(losses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{average_into, AggregateOutcome};
    use fedsu_data::SyntheticConfig;

    /// Plain FedAvg used as the reference strategy in runtime tests.
    struct TestAvg;
    impl SyncStrategy for TestAvg {
        fn name(&self) -> &str {
            "test-fedavg"
        }
        fn prepare_uploads(&mut self, _round: usize, locals: &[Vec<f32>], _global: &[f32]) -> Vec<u64> {
            locals.iter().map(|l| l.len() as u64).collect()
        }
        fn aggregate(
            &mut self,
            _round: usize,
            locals: &[Vec<f32>],
            selected: &[usize],
            _active: &[bool],
            global: &mut [f32],
        ) -> AggregateOutcome {
            average_into(locals, selected, global);
            AggregateOutcome {
                broadcast_scalars: global.len(),
                synced_scalars: global.len(),
                total_scalars: global.len(),
            }
        }
    }

    fn quick_experiment(n_clients: usize, rounds: usize) -> Experiment {
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) =
            SyntheticConfig::new(3, 1, 4, 4).samples_per_class(30).noise_std(0.4).build_split(10, &mut rng);
        let (train, test) = (Arc::new(train), Arc::new(test));
        let factory: ModelFactory = Arc::new(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = Sequential::new("probe");
            m.push(fedsu_nn::flatten::Flatten::new());
            m.push_boxed(Box::new(fedsu_nn::models::mlp(&[16, 12, 3], &mut rng)?));
            Ok(m)
        });
        let mut cfg = ExperimentConfig::quick(n_clients, rounds, "probe");
        cfg.client = ClientConfig {
            batch_size: 8,
            local_iters: 3,
            lr: 0.1,
            weight_decay: 0.0,
            schedule: crate::LrSchedule::Constant,
            clip_norm: None,
        };
        Experiment::new(cfg, factory, train, test, Box::new(TestAvg)).unwrap()
    }

    #[test]
    fn fedavg_improves_accuracy() {
        let mut e = quick_experiment(4, 12);
        let result = e.run(None).unwrap();
        let first = result.rounds.first().and_then(|r| r.accuracy).unwrap();
        let best = result.best_accuracy();
        assert!(best > first, "accuracy should improve: {first} -> {best}");
        assert!(best > 0.5, "should beat chance on an easy task, got {best}");
    }

    #[test]
    fn records_are_complete_and_monotone_in_time() {
        let mut e = quick_experiment(3, 5);
        let result = e.run(None).unwrap();
        assert_eq!(result.rounds.len(), 5);
        let mut last = 0.0;
        for r in &result.rounds {
            assert!(r.sim_time_secs > last);
            last = r.sim_time_secs;
            assert!(r.bytes > 0);
            assert_eq!(r.sparsification_ratio, 0.0); // full sync strategy
        }
    }

    #[test]
    fn hook_sees_every_round() {
        let mut e = quick_experiment(3, 4);
        let mut seen = Vec::new();
        {
            let mut hook = |r: &RoundRecord, g: &[f32]| {
                seen.push((r.round, g.len()));
            };
            e.run(Some(&mut hook)).unwrap();
        }
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().all(|&(_, len)| len > 0));
    }

    #[test]
    fn participants_follow_select_fraction() {
        let mut e = quick_experiment(10, 2);
        let result = e.run(None).unwrap();
        for r in &result.rounds {
            assert_eq!(r.participants, 7); // 70% of 10
        }
    }

    #[test]
    fn availability_limits_participants() {
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = SyntheticConfig::new(2, 1, 4, 4).samples_per_class(30).build_split(10, &mut rng);
        let (train, test) = (Arc::new(train), Arc::new(test));
        let factory: ModelFactory = Arc::new(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = Sequential::new("probe");
            m.push(fedsu_nn::flatten::Flatten::new());
            m.push_boxed(Box::new(fedsu_nn::models::mlp(&[16, 2], &mut rng)?));
            Ok(m)
        });
        let mut cfg = ExperimentConfig::quick(4, 3, "probe");
        cfg.select_fraction = 1.0;
        // Client 3 joins only from round 1 onward.
        cfg.availability = Some(Arc::new(|client, round| client != 3 || round >= 1));
        let mut e = Experiment::new(cfg, factory, train, test, Box::new(TestAvg)).unwrap();
        let result = e.run(None).unwrap();
        assert_eq!(result.rounds[0].participants, 3);
        assert_eq!(result.rounds[1].participants, 4);
        // The joiner's catch-up download makes round 1 strictly heavier than
        // a steady-state round.
        assert!(result.rounds[1].bytes >= result.rounds[2].bytes);
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let train = Arc::new(SyntheticConfig::new(2, 1, 4, 4).samples_per_class(5).build(&mut rng));
        let test = Arc::clone(&train);
        let factory: ModelFactory = Arc::new(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = Sequential::new("probe");
            m.push(fedsu_nn::flatten::Flatten::new());
            m.push_boxed(Box::new(fedsu_nn::models::mlp(&[16, 2], &mut rng)?));
            Ok(m)
        });
        let cfg = ExperimentConfig::quick(2, 0, "probe");
        assert!(Experiment::new(cfg, factory, train, test, Box::new(TestAvg)).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = quick_experiment(3, 3);
        let mut b = quick_experiment(3, 3);
        let ra = a.run(None).unwrap();
        let rb = b.run(None).unwrap();
        assert_eq!(ra.rounds, rb.rounds);
    }
}
