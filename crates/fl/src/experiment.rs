//! The end-to-end experiment loop: pull → local training → sparsified
//! synchronization → aggregation → evaluation, with emulated timing,
//! optional fault injection, and server-side fault tolerance.

use crate::client::{Client, ClientConfig};
use crate::message::{bytes_with_retries, scalars_to_bytes};
use crate::record::{ExperimentResult, RoundRecord};
use crate::server::Server;
use crate::strategy::{AggregateOutcome, SyncStrategy};
use crate::{FlError, Result};
use fedsu_data::{dirichlet_partition, Batcher, InMemoryDataset};
use fedsu_netsim::{Cluster, ClusterConfig, FaultPenalties, FaultPlan, RoundTimer};
use fedsu_nn::Sequential;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Builds one model replica. Called with the same seed for every client so
/// all replicas start identical (the FedAvg precondition).
pub type ModelFactory = Arc<dyn Fn(u64) -> fedsu_nn::Result<Sequential> + Send + Sync>;

/// Decides whether a client participates in a given round (participant
/// dynamicity). `None` means everyone is always active.
pub type AvailabilityFn = Arc<dyn Fn(usize, usize) -> bool + Send + Sync>;

/// Observer invoked after every round with the record and the new global
/// parameter vector (used by the trajectory/microscopic figures).
pub type RoundHook<'a> = &'a mut dyn FnMut(&RoundRecord, &[f32]);

/// Server-side fault-tolerance knobs.
///
/// Disabled by default: with `enabled == false` the runtime behaves exactly
/// like the legacy clean-path loop (divergence errors out, a fully-lost
/// round is a config error), which keeps zero-fault runs bit-for-bit
/// reproducible against old records.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DefenseConfig {
    /// Master switch for every defense below.
    pub enabled: bool,
    /// Upload retransmissions allowed per client per round.
    pub max_retries: u32,
    /// Emulated seconds of backoff charged per retransmission.
    pub retry_backoff_secs: f64,
    /// Quarantine uploads whose update norm exceeds this multiple of the
    /// round's (lower) median update norm.
    pub outlier_norm_factor: f32,
    /// Optional hard round deadline in emulated seconds: selected clients
    /// finishing later are dropped from aggregation.
    pub round_deadline_secs: Option<f64>,
    /// Emulated seconds charged when a round produces no usable upload.
    pub lost_round_penalty_secs: f64,
    /// Roll back to the last finite global instead of erroring `Diverged`.
    pub rollback: bool,
    /// Consecutive unusable rounds tolerated before
    /// [`FlError::QuarantineExhausted`].
    pub max_barren_rounds: usize,
}

impl Default for DefenseConfig {
    fn default() -> Self {
        DefenseConfig {
            enabled: false,
            max_retries: 2,
            retry_backoff_secs: 2.0,
            outlier_norm_factor: 8.0,
            round_deadline_secs: None,
            lost_round_penalty_secs: 30.0,
            rollback: true,
            max_barren_rounds: 8,
        }
    }
}

impl DefenseConfig {
    /// Defenses enabled with the default knobs.
    pub fn on() -> Self {
        DefenseConfig { enabled: true, ..DefenseConfig::default() }
    }
}

/// Full configuration of one emulated FL experiment.
#[derive(Clone)]
pub struct ExperimentConfig {
    /// Cluster shape and link speeds.
    pub cluster: ClusterConfig,
    /// Fraction of (active) clients aggregated per round (paper: 0.7).
    pub select_fraction: f64,
    /// Number of communication rounds to run.
    pub rounds: usize,
    /// Per-client training hyper-parameters.
    pub client: ClientConfig,
    /// Dirichlet concentration for the non-IID partition (paper: 1.0).
    pub alpha: f64,
    /// Master seed (models, partition, cluster, batch order).
    pub seed: u64,
    /// Evaluate test accuracy every this many rounds (1 = every round).
    pub eval_every: usize,
    /// Nominal local-computation seconds per round for this model (the
    /// emulated device-side cost; scaled per client by the heterogeneity
    /// factor).
    pub compute_secs: f64,
    /// Display name of the model being trained.
    pub model_name: String,
    /// Optional per-(client, round) participation rule.
    pub availability: Option<AvailabilityFn>,
    /// Seeded fault-injection plan (default: the zero-fault plan).
    pub faults: FaultPlan,
    /// Server-side fault-tolerance configuration (default: disabled).
    pub defense: DefenseConfig,
    /// Kernel-level thread budget for tensor matmuls (`0` = auto-detect).
    /// Installed once at the start of [`Experiment::run`]; when the round
    /// loop is already training clients on separate threads it temporarily
    /// forces kernels serial so the two layers never oversubscribe. Parallel
    /// kernels are bit-identical to serial ones, so this never changes
    /// results.
    pub kernel_threads: usize,
}

impl std::fmt::Debug for ExperimentConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ExperimentConfig")
            .field("cluster", &self.cluster)
            .field("select_fraction", &self.select_fraction)
            .field("rounds", &self.rounds)
            .field("client", &self.client)
            .field("alpha", &self.alpha)
            .field("seed", &self.seed)
            .field("eval_every", &self.eval_every)
            .field("compute_secs", &self.compute_secs)
            .field("model_name", &self.model_name)
            .field("availability", &self.availability.is_some())
            .field("faults", &self.faults)
            .field("defense", &self.defense)
            .field("kernel_threads", &self.kernel_threads)
            .finish()
    }
}

impl ExperimentConfig {
    /// A small, fast configuration mirroring the paper's setup shape
    /// (70% earliest selection, Dirichlet α = 1).
    pub fn quick(n_clients: usize, rounds: usize, model_name: &str) -> Self {
        ExperimentConfig {
            cluster: ClusterConfig::paper_like(n_clients),
            select_fraction: 0.7,
            rounds,
            client: ClientConfig {
                batch_size: 8,
                local_iters: 4,
                lr: 0.05,
                weight_decay: 1e-3,
                schedule: crate::LrSchedule::Constant,
                clip_norm: None,
            },
            alpha: 1.0,
            seed: 42,
            eval_every: 1,
            compute_secs: 4.0,
            model_name: model_name.to_string(),
            availability: None,
            faults: FaultPlan::none(),
            defense: DefenseConfig::default(),
            kernel_threads: 0,
        }
    }
}

/// Reusable per-round buffers for [`Experiment::run`]: every vector is
/// cleared and refilled in place each round, so the steady-state loop
/// performs no per-round allocations for its bookkeeping. The refilled
/// values are identical to what fresh allocations would hold, which keeps
/// zero-fault records bit-for-bit reproducible.
#[derive(Default)]
struct RoundScratch {
    avail: Vec<bool>,
    active: Vec<bool>,
    was_active: Vec<bool>,
    download_bytes: Vec<u64>,
    train_results: Vec<Result<f32>>,
    returned: Vec<bool>,
    train_losses: Vec<f32>,
    tx_attempts: Vec<u32>,
    locals: Vec<Vec<f32>>,
    upload_bytes: Vec<u64>,
    compute: Vec<f64>,
    time_factor: Vec<f64>,
    extra_secs: Vec<f64>,
    valid: Vec<bool>,
    update_norm: Vec<f32>,
    finite_norms: Vec<f32>,
    survivors: Vec<usize>,
    agg_active: Vec<bool>,
    global_snapshot: Vec<f32>,
    upload_scalars: Vec<u64>,
}

/// An assembled experiment, ready to run.
pub struct Experiment {
    config: ExperimentConfig,
    clients: Vec<Client>,
    server: Server,
    strategy: Box<dyn SyncStrategy>,
    timer: RoundTimer,
}

impl std::fmt::Debug for Experiment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Experiment")
            .field("config", &self.config)
            .field("strategy", &self.strategy.name().to_string())
            .finish()
    }
}

impl Experiment {
    /// Assembles clients (with a Dirichlet data partition), the server, and
    /// the timing model.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::BadConfig`] for inconsistent configs and
    /// propagates model-construction failures.
    pub fn new(
        config: ExperimentConfig,
        factory: ModelFactory,
        train_data: Arc<InMemoryDataset>,
        test_data: Arc<InMemoryDataset>,
        strategy: Box<dyn SyncStrategy>,
    ) -> Result<Self> {
        let n = config.cluster.n_clients;
        if n == 0 || config.rounds == 0 || config.eval_every == 0 {
            return Err(FlError::BadConfig(
                "clients, rounds and eval_every must be positive".to_string(),
            ));
        }
        if config.select_fraction.is_nan()
            || config.select_fraction <= 0.0
            || config.select_fraction > 1.0
        {
            return Err(FlError::BadConfig(format!(
                "select_fraction must be in (0, 1], got {}",
                config.select_fraction
            )));
        }
        if config.alpha.is_nan() || config.alpha <= 0.0 {
            return Err(FlError::BadConfig(format!(
                "alpha must be positive, got {}",
                config.alpha
            )));
        }
        let mut part_rng = StdRng::seed_from_u64(config.seed ^ 0x9e3779b97f4a7c15);
        let parts = dirichlet_partition(train_data.labels(), n, config.alpha, &mut part_rng);

        let mut clients = Vec::with_capacity(n);
        for (i, part) in parts.into_iter().enumerate() {
            let model = factory(config.seed)?;
            let batcher = Batcher::new(Arc::clone(&train_data), part, config.seed.wrapping_add(i as u64 + 1));
            clients.push(Client::new(i, model, batcher, config.client));
        }
        let server = Server::new(factory(config.seed)?, test_data);
        let cluster = Cluster::build(&config.cluster, config.seed);
        let timer = RoundTimer::new(&cluster, config.select_fraction);
        Ok(Experiment { config, clients, server, strategy, timer })
    }

    /// Total scalar parameters in the model.
    pub fn param_count(&self) -> usize {
        self.server.param_count()
    }

    /// Read access to the strategy (e.g. for Fig. 7's skip statistics).
    pub fn strategy(&self) -> &dyn SyncStrategy {
        self.strategy.as_ref()
    }

    /// Runs all configured rounds.
    ///
    /// With fault tolerance disabled (the default), this is the legacy
    /// clean-path loop: it returns [`FlError::Diverged`] when parameters
    /// become non-finite and propagates any training error. With
    /// [`DefenseConfig::enabled`], faults injected by the configured
    /// [`FaultPlan`] are absorbed: failed or dropped clients are excluded,
    /// corrupted uploads are quarantined, lost uploads are retried with
    /// backoff charged to sim-time, and a poisoned aggregation rolls back to
    /// the last good checkpoint.
    ///
    /// # Errors
    ///
    /// Returns [`FlError::Diverged`] when parameters become non-finite (and
    /// rollback is unavailable), [`FlError::QuarantineExhausted`] when too
    /// many consecutive rounds produce no usable update, or any underlying
    /// training error.
    pub fn run(&mut self, mut hook: Option<RoundHook<'_>>) -> Result<ExperimentResult> {
        // Install the kernel thread budget before any training work; `0`
        // resolves to auto-detect. Safe at any value: parallel kernels are
        // bit-identical to serial ones.
        fedsu_tensor::set_kernel_threads(self.config.kernel_threads);
        let n = self.clients.len();
        let total = self.param_count();
        let faults = self.config.faults;
        let defense = self.config.defense;
        let mut records = Vec::with_capacity(self.config.rounds);
        let mut sim_time = 0.0f64;
        // Round-0 download: every client pulls the full initial model.
        let mut prev_broadcast_scalars = total;
        let mut checkpoint: Option<Vec<f32>> = None;
        if defense.enabled && defense.rollback {
            let mut cp: Vec<f32> = Vec::with_capacity(total);
            cp.extend_from_slice(self.server.global());
            checkpoint = Some(cp);
        }
        let mut barren_streak = 0usize;
        // All per-round bookkeeping lives in one scratch block, refilled in
        // place every round. The reservations below pre-size the variable-
        // length members once so nothing in the loop grows past capacity.
        let mut scratch = RoundScratch::default();
        scratch.was_active.resize(n, false);
        scratch.global_snapshot.resize(total, 0.0);
        scratch.survivors.reserve(n);
        scratch.finite_norms.reserve(n);
        // Per-round allocation attribution (FEDSU_ALLOC_STATS): re-base the
        // process counters so each round's delta lands in the alloc_stats
        // round log. Reporting only — never touches records or sim-time.
        let alloc_trace = fedsu_tensor::alloc_stats::enabled();
        if alloc_trace {
            fedsu_tensor::alloc_stats::begin_run(self.config.rounds);
        }

        for round in 0..self.config.rounds {
            scratch.avail.clear();
            scratch.avail.resize(n, true);
            if let Some(f) = self.config.availability.as_ref() {
                for (i, a) in scratch.avail.iter_mut().enumerate() {
                    *a = f(i, round);
                }
            }
            // Crashed clients are unavailable until their down-window ends;
            // on rejoin they pay the dynamicity catch-up download below.
            scratch.active.clear();
            scratch.active.resize(n, false);
            for (i, (act, &a)) in
                scratch.active.iter_mut().zip(&scratch.avail).enumerate()
            {
                *act = a && !faults.crashed(i, round);
            }
            let mut dropped = scratch
                .avail
                .iter()
                .zip(&scratch.active)
                .filter(|&(&a, &act)| a && !act)
                .count();
            let mut quarantined = 0usize;
            let mut rollbacks = 0usize;

            // Joining clients additionally download the strategy's replicated
            // state (the paper's dynamicity protocol, Sec. V).
            let join_state_bytes = self.strategy.join_state().map_or(0, |s| {
                u64::try_from(s.len()).expect("join-state size fits in u64 on supported targets")
            });
            scratch.download_bytes.clear();
            scratch.download_bytes.resize(n, 0);
            for ((db, &is_active), &was) in scratch
                .download_bytes
                .iter_mut()
                .zip(&scratch.active)
                .zip(&scratch.was_active)
            {
                if is_active {
                    *db = scalars_to_bytes(prev_broadcast_scalars);
                    if !was && round > 0 {
                        *db = scalars_to_bytes(total)
                            .checked_add(join_state_bytes)
                            .expect("rejoin payload fits in u64: model bytes plus a small join state");
                    }
                }
            }

            // 1+2. Pull current global and train locally, in parallel, with
            // per-client panic capture.
            scratch.global_snapshot.copy_from_slice(self.server.global());
            train_all(
                &mut self.clients,
                &scratch.active,
                &scratch.global_snapshot,
                round,
                &mut scratch.train_results,
            );

            // `returned[i]`: client i delivered an upload this round.
            scratch.returned.clear();
            scratch.returned.extend_from_slice(&scratch.active);
            scratch.train_losses.clear();
            scratch.train_losses.resize(n, 0.0);
            for ((res, loss_slot), ret) in scratch
                .train_results
                .iter_mut()
                .zip(scratch.train_losses.iter_mut())
                .zip(scratch.returned.iter_mut())
            {
                match std::mem::replace(res, Ok(0.0)) {
                    Ok(loss) => *loss_slot = loss,
                    Err(FlError::ClientFailed { .. }) if defense.enabled => {
                        *ret = false;
                        dropped += 1;
                    }
                    Err(e) => return Err(e),
                }
            }

            // Mid-round dropouts and lossy uploads.
            let retries = if defense.enabled { defense.max_retries } else { 0 };
            scratch.tx_attempts.clear();
            scratch.tx_attempts.resize(n, 1);
            for (i, (ret, att)) in scratch
                .returned
                .iter_mut()
                .zip(scratch.tx_attempts.iter_mut())
                .enumerate()
            {
                if !*ret {
                    continue;
                }
                if faults.dropout(i, round) {
                    *ret = false;
                    dropped += 1;
                    continue;
                }
                match faults.upload_attempts(i, round, retries) {
                    Some(attempts) => *att = attempts,
                    None => {
                        *ret = false;
                        dropped += 1;
                    }
                }
            }

            if !scratch.returned.iter().any(|&r| r) {
                // Nobody delivered an upload this round.
                if !defense.enabled {
                    return Err(FlError::new_bad_config(format_args!(
                        "no active clients in round {round}"
                    )));
                }
                barren_streak += 1;
                if barren_streak > defense.max_barren_rounds {
                    return Err(FlError::QuarantineExhausted { round });
                }
                sim_time += defense.lost_round_penalty_secs;
                let (accuracy, test_loss) =
                    if round % self.config.eval_every == 0 || round + 1 == self.config.rounds {
                        let (a, l) = self.server.evaluate()?;
                        (Some(a), Some(l))
                    } else {
                        (None, None)
                    };
                let n_active = scratch.active.iter().filter(|&&a| a).count();
                let train_loss = if n_active == 0 {
                    0.0
                } else {
                    scratch.train_losses.iter().sum::<f32>() / n_active as f32
                };
                let record = RoundRecord {
                    round,
                    duration_secs: defense.lost_round_penalty_secs,
                    sim_time_secs: sim_time,
                    accuracy,
                    test_loss,
                    train_loss,
                    sparsification_ratio: 1.0,
                    bytes: scratch.download_bytes.iter().sum(),
                    participants: 0,
                    dropped,
                    quarantined: 0,
                    retransmitted_bytes: 0,
                    rollbacks: 0,
                };
                if let Some(h) = hook.as_mut() {
                    h(&record, self.server.global());
                }
                records.push(record);
                std::mem::swap(&mut scratch.was_active, &mut scratch.active);
                continue;
            }

            // 3. Collect local parameters (clients whose upload never arrives
            // contribute the unchanged global; they are never aggregated).
            // Corruption hits the payload after training, on the wire.
            scratch.locals.resize_with(n, Vec::new);
            for (i, (slot, c)) in
                scratch.locals.iter_mut().zip(&self.clients).enumerate()
            {
                if scratch.returned[i] {
                    c.local_params_into(slot);
                    if faults.corrupts(i, round) {
                        faults.corrupt_upload(i, round, slot);
                    }
                } else {
                    slot.clear();
                    slot.extend_from_slice(&scratch.global_snapshot);
                }
            }

            // 4. Strategy phase A: upload volumes, staged into the
            // round-scratch buffer (no per-round allocation).
            self.strategy.prepare_uploads_into(
                round,
                &scratch.locals,
                &scratch.global_snapshot,
                &mut scratch.upload_scalars,
            );
            if scratch.upload_scalars.len() != n {
                return Err(FlError::new_strategy_contract(format_args!(
                    "prepare_uploads_into staged {} entries for {} clients",
                    scratch.upload_scalars.len(),
                    n
                )));
            }
            scratch.upload_bytes.clear();
            scratch.upload_bytes.resize(n, 0);
            for (b, &s) in scratch.upload_bytes.iter_mut().zip(&scratch.upload_scalars) {
                *b = s * crate::BYTES_PER_SCALAR;
            }

            // 5. Emulated timing + earliest-K selection, with slowdown
            // multipliers and retry backoff charged to each client's clock.
            scratch.compute.clear();
            scratch.compute.resize(n, 0.0);
            scratch.time_factor.clear();
            scratch.time_factor.resize(n, 1.0);
            scratch.extra_secs.clear();
            scratch.extra_secs.resize(n, 0.0);
            for (i, ((comp, tf), extra)) in scratch
                .compute
                .iter_mut()
                .zip(scratch.time_factor.iter_mut())
                .zip(scratch.extra_secs.iter_mut())
                .enumerate()
            {
                if scratch.returned[i] {
                    *comp = self.config.compute_secs;
                    *tf = faults.slowdown(i, round);
                }
                *extra = defense.retry_backoff_secs * f64::from(scratch.tx_attempts[i] - 1);
            }
            let timing = self.timer.round_faulty(
                round,
                &scratch.compute,
                &scratch.upload_bytes,
                &scratch.download_bytes,
                &scratch.returned,
                FaultPenalties {
                    time_factor: &scratch.time_factor,
                    extra_secs: &scratch.extra_secs,
                },
            );

            let mut selected = timing.selected.clone();
            let mut duration = timing.duration_secs;
            if defense.enabled {
                if let Some(deadline) = defense.round_deadline_secs {
                    let before = selected.len();
                    selected.retain(|&i| timing.finish_secs[i] <= deadline);
                    dropped += before - selected.len();
                    duration = duration.min(deadline);
                }
            }

            // Server-side validation: quarantine non-finite and norm-outlier
            // uploads before they can reach aggregation (or a stateful
            // strategy's per-client accumulators).
            if defense.enabled {
                quarantined += validate_uploads_into(
                    &scratch.locals,
                    &scratch.global_snapshot,
                    &scratch.returned,
                    defense.outlier_norm_factor,
                    &mut scratch.valid,
                    &mut scratch.update_norm,
                    &mut scratch.finite_norms,
                );
            } else {
                scratch.valid.clear();
                scratch.valid.extend_from_slice(&scratch.returned);
            }
            scratch.survivors.clear();
            scratch
                .survivors
                .extend(selected.iter().copied().filter(|&i| scratch.valid[i]));
            scratch.agg_active.clear();
            scratch.agg_active.resize(n, false);
            for (i, agg) in scratch.agg_active.iter_mut().enumerate() {
                *agg = scratch.returned[i] && scratch.valid[i];
            }

            // 6. Strategy phase B: aggregate the surviving set into the new
            // global (or hold the global on a barren round).
            let mut outcome;
            if scratch.survivors.is_empty() {
                barren_streak += 1;
                if barren_streak > defense.max_barren_rounds {
                    return Err(FlError::QuarantineExhausted { round });
                }
                outcome = AggregateOutcome {
                    broadcast_scalars: prev_broadcast_scalars,
                    synced_scalars: 0,
                    total_scalars: total,
                };
            } else {
                barren_streak = 0;
                outcome = self.strategy.aggregate(
                    round,
                    &scratch.locals,
                    &scratch.survivors,
                    &scratch.agg_active,
                    self.server.global_mut(),
                );
                if self.server.global().iter().any(|v| !v.is_finite()) {
                    match checkpoint.as_ref() {
                        Some(cp) => {
                            self.server.global_mut().copy_from_slice(cp);
                            rollbacks += 1;
                            // Every client must re-download the restored
                            // global in full next round.
                            outcome.broadcast_scalars = total;
                        }
                        None => return Err(FlError::Diverged { round }),
                    }
                } else if let Some(cp) = checkpoint.as_mut() {
                    cp.copy_from_slice(self.server.global());
                }
            }
            prev_broadcast_scalars = outcome.broadcast_scalars;

            // 7. Accounting and evaluation. Lost transmission attempts burn
            // wire bytes: a payload delivered on attempt `a` cost `a` sends.
            sim_time += duration;
            let upload_wire: u64 = (0..n)
                .filter(|&i| scratch.returned[i])
                .map(|i| bytes_with_retries(scratch.upload_bytes[i], scratch.tx_attempts[i]))
                .sum();
            let retransmitted_bytes: u64 = scratch
                .returned
                .iter()
                .zip(&scratch.upload_bytes)
                .zip(&scratch.tx_attempts)
                .filter(|((&r, _), _)| r)
                .map(|((_, &b), &a)| crate::message::retransmitted_bytes(b, a))
                .sum();
            let bytes: u64 = upload_wire
                .checked_add(scratch.download_bytes.iter().sum::<u64>())
                .expect("round wire total fits in u64: both directions are bounded by model size");

            // Runtime invariant guards (armed by FEDSU_CHECK_INVARIANTS=1):
            // the emulated clock only moves forward, and every uploaded wire
            // byte is accounted for exactly once — aggregated, quarantined,
            // late (missed the round deadline), or burnt on retransmission.
            if fedsu_tensor::invariant::enabled() {
                assert!(
                    duration.is_finite() && duration >= 0.0,
                    "invariant violation [sim-time]: round {round} duration \
                     {duration} is negative or non-finite"
                );
                assert!(
                    sim_time.is_finite(),
                    "invariant violation [sim-time]: cumulative sim time became \
                     non-finite at round {round}"
                );
                let aggregated_bytes: u64 =
                    scratch.survivors.iter().map(|&i| scratch.upload_bytes[i]).sum();
                let quarantined_bytes: u64 = (0..n)
                    .filter(|&i| scratch.returned[i] && !scratch.valid[i])
                    .map(|i| scratch.upload_bytes[i])
                    .sum();
                let late_bytes: u64 = (0..n)
                    .filter(|&i| {
                        scratch.returned[i]
                            && scratch.valid[i]
                            && !scratch.survivors.contains(&i)
                    })
                    .map(|i| scratch.upload_bytes[i])
                    .sum();
                let decomposed_bytes = aggregated_bytes
                    .checked_add(quarantined_bytes)
                    .and_then(|b| b.checked_add(late_bytes))
                    .and_then(|b| b.checked_add(retransmitted_bytes))
                    .expect("wire decomposition fits in u64: every term is bounded by upload wire");
                assert_eq!(
                    upload_wire, decomposed_bytes,
                    "invariant violation [wire-conservation]: round {round} upload \
                     wire bytes do not decompose into aggregated + quarantined + \
                     late + retransmitted"
                );
            }

            let (accuracy, test_loss) = if round % self.config.eval_every == 0 || round + 1 == self.config.rounds {
                let (a, l) = self.server.evaluate()?;
                (Some(a), Some(l))
            } else {
                (None, None)
            };
            let n_active = scratch.active.iter().filter(|&&a| a).count();
            let train_loss = if n_active == 0 {
                0.0
            } else {
                scratch.train_losses.iter().sum::<f32>() / n_active as f32
            };

            let record = RoundRecord {
                round,
                duration_secs: duration,
                sim_time_secs: sim_time,
                accuracy,
                test_loss,
                train_loss,
                sparsification_ratio: 1.0 - outcome.synced_scalars as f64 / outcome.total_scalars.max(1) as f64,
                bytes,
                participants: scratch.survivors.len(),
                dropped,
                quarantined,
                retransmitted_bytes,
                rollbacks,
            };
            if let Some(h) = hook.as_mut() {
                h(&record, self.server.global());
            }
            records.push(record);
            std::mem::swap(&mut scratch.was_active, &mut scratch.active);
            if alloc_trace {
                fedsu_tensor::alloc_stats::mark_round(round);
            }
        }

        if alloc_trace {
            // Stderr report consumed by CI as the alloc-stats artifact; the
            // deltas themselves stay readable via `alloc_stats::rounds()`.
            for r in fedsu_tensor::alloc_stats::rounds() {
                eprintln!("ALLOC_STATS round={} allocs={} bytes={}", r.round, r.allocs, r.bytes);
            }
        }

        Ok(ExperimentResult {
            strategy: self.strategy.name().to_string(),
            model: self.config.model_name.clone(),
            rounds: records,
            param_count: total,
        })
    }
}

/// Rejects non-finite and norm-outlier uploads among the `returned` set.
///
/// An upload is quarantined when it contains a non-finite scalar, or when
/// its L2 update norm (`‖local − global‖`) exceeds `outlier_norm_factor`
/// times the lower median of the round's finite update norms. Fills `valid`
/// with the per-client validity mask (reusing the caller's buffers, so the
/// round loop performs no allocation here) and returns the number of
/// quarantined uploads.
fn validate_uploads_into(
    locals: &[Vec<f32>],
    global: &[f32],
    returned: &[bool],
    outlier_norm_factor: f32,
    valid: &mut Vec<bool>,
    update_norm: &mut Vec<f32>,
    finite_norms: &mut Vec<f32>,
) -> usize {
    let n = locals.len();
    valid.clear();
    valid.extend_from_slice(returned);
    update_norm.clear();
    update_norm.resize(n, 0.0);
    finite_norms.clear();
    finite_norms.reserve(n);
    for ((local, &ret), (v, norm)) in locals
        .iter()
        .zip(returned)
        .zip(valid.iter_mut().zip(update_norm.iter_mut()))
    {
        if !ret {
            continue;
        }
        let mut finite = true;
        let mut sq = 0.0f64;
        for (a, b) in local.iter().zip(global) {
            if !a.is_finite() {
                finite = false;
                break;
            }
            let d = f64::from(a - b);
            sq += d * d;
        }
        if finite {
            *norm = sq.sqrt() as f32;
            finite_norms.push(*norm);
        } else {
            *v = false;
            *norm = f32::INFINITY;
        }
    }
    if !finite_norms.is_empty() {
        finite_norms.sort_by(f32::total_cmp);
        // Lower median: with one corrupted client out of two, the honest
        // norm anchors the threshold. The list is non-empty here, so the
        // fallback is unreachable and quarantines nothing.
        let median = finite_norms
            .get((finite_norms.len() - 1) / 2)
            .copied()
            .unwrap_or(f32::INFINITY)
            .max(1e-6);
        for (v, &norm) in valid.iter_mut().zip(update_norm.iter()) {
            if *v && norm > outlier_norm_factor * median {
                *v = false;
            }
        }
    }
    returned.iter().zip(valid.iter()).filter(|&(&r, &v)| r && !v).count()
}

/// Allocating wrapper over [`validate_uploads_into`], kept for the unit
/// tests' convenience.
#[cfg(test)]
fn validate_uploads(
    locals: &[Vec<f32>],
    global: &[f32],
    returned: &[bool],
    outlier_norm_factor: f32,
) -> (Vec<bool>, usize) {
    let mut valid = Vec::new();
    let mut update_norm = Vec::new();
    let mut finite_norms = Vec::new();
    let quarantined = validate_uploads_into(
        locals,
        global,
        returned,
        outlier_norm_factor,
        &mut valid,
        &mut update_norm,
        &mut finite_norms,
    );
    (valid, quarantined)
}

/// Pulls the global into one client and trains it for one round, converting
/// a panic anywhere inside into [`FlError::ClientFailed`].
fn train_one(client: &mut Client, id: usize, global: &[f32], round: usize) -> Result<f32> {
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<f32> {
        client.pull(global)?;
        client.train_round(round)
    }));
    match caught {
        Ok(res) => res,
        Err(_) => Err(FlError::ClientFailed { id }),
    }
}

/// Trains every active client for one round, spreading clients across
/// available cores with crossbeam scoped threads. Fills `out` — reusing its
/// allocation — with one result per client: `Ok(mean training loss)` (0.0
/// for inactive clients) or the client's individual failure — a panicking
/// client never aborts the process. Each worker thread writes straight into
/// its disjoint chunk of `out`, so the fan-out stages no per-thread result
/// buffers.
fn train_all(
    clients: &mut [Client],
    active: &[bool],
    global: &[f32],
    round: usize,
    out: &mut Vec<Result<f32>>,
) {
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get()).min(clients.len().max(1));
    out.clear();
    out.resize_with(clients.len(), || Ok(0.0f32));

    if threads <= 1 {
        for (i, ((client, slot), &is_active)) in
            clients.iter_mut().zip(out.iter_mut()).zip(active).enumerate()
        {
            if is_active {
                *slot = train_one(client, i, global, round);
            }
        }
        return;
    }

    let chunk = clients.len().div_ceil(threads);
    // Client-level parallelism owns the cores for this round: force tensor
    // kernels serial while the scope is live so the two layers compose
    // without oversubscription, then restore the configured policy. Kernel
    // outputs are bit-identical at every thread count, so this only affects
    // scheduling, never results.
    let saved_kernel_threads = fedsu_tensor::kernel_threads_setting();
    fedsu_tensor::set_kernel_threads(1);
    let scope_result = crossbeam::thread::scope(|s| {
        let mut handles = Vec::with_capacity(threads);
        for (ci, (chunk_clients, chunk_out)) in
            clients.chunks_mut(chunk).zip(out.chunks_mut(chunk)).enumerate()
        {
            let base = ci * chunk;
            let active = &active;
            handles.push(s.spawn(move |_| {
                for (off, (client, slot)) in
                    chunk_clients.iter_mut().zip(chunk_out.iter_mut()).enumerate()
                {
                    let id = base + off;
                    if active.get(id).is_some_and(|&a| a) {
                        *slot = train_one(client, id, global, round);
                    }
                }
            }));
        }
        // A chunk thread dying outside the per-client capture should be
        // unreachable; report which chunks (if any) did so the caller's
        // slots can blame every client in them.
        let mut dead_chunks: Vec<usize> = Vec::with_capacity(threads);
        for (ci, h) in handles.into_iter().enumerate() {
            if h.join().is_err() {
                dead_chunks.push(ci);
            }
        }
        dead_chunks
    });
    fedsu_tensor::set_kernel_threads(saved_kernel_threads);

    match scope_result {
        Ok(dead_chunks) => {
            for ci in dead_chunks {
                let base = ci * chunk;
                for id in base..(base + chunk).min(active.len()) {
                    if active[id] {
                        out[id] = Err(FlError::ClientFailed { id });
                    }
                }
            }
        }
        Err(_) => {
            for (slot, (id, &is_active)) in out.iter_mut().zip(active.iter().enumerate()) {
                if is_active {
                    *slot = Err(FlError::ClientFailed { id });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{average_into, AggregateOutcome};
    use fedsu_data::SyntheticConfig;
    use fedsu_netsim::FaultConfig;

    /// Plain FedAvg used as the reference strategy in runtime tests.
    struct TestAvg;
    impl SyncStrategy for TestAvg {
        fn name(&self) -> &str {
            "test-fedavg"
        }
        fn prepare_uploads_into(
            &mut self,
            _round: usize,
            locals: &[Vec<f32>],
            _global: &[f32],
            out: &mut Vec<u64>,
        ) {
            out.clear();
            out.extend(locals.iter().map(|l| l.len() as u64));
        }
        fn aggregate(
            &mut self,
            _round: usize,
            locals: &[Vec<f32>],
            selected: &[usize],
            _active: &[bool],
            global: &mut [f32],
        ) -> AggregateOutcome {
            average_into(locals, selected, global);
            AggregateOutcome {
                broadcast_scalars: global.len(),
                synced_scalars: global.len(),
                total_scalars: global.len(),
            }
        }
    }

    fn quick_experiment_with(
        n_clients: usize,
        rounds: usize,
        tweak: impl FnOnce(&mut ExperimentConfig),
    ) -> Experiment {
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) =
            SyntheticConfig::new(3, 1, 4, 4).samples_per_class(30).noise_std(0.4).build_split(10, &mut rng);
        let (train, test) = (Arc::new(train), Arc::new(test));
        let factory: ModelFactory = Arc::new(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = Sequential::new("probe");
            m.push(fedsu_nn::flatten::Flatten::new());
            m.push_boxed(Box::new(fedsu_nn::models::mlp(&[16, 12, 3], &mut rng)?));
            Ok(m)
        });
        let mut cfg = ExperimentConfig::quick(n_clients, rounds, "probe");
        cfg.client = ClientConfig {
            batch_size: 8,
            local_iters: 3,
            lr: 0.1,
            weight_decay: 0.0,
            schedule: crate::LrSchedule::Constant,
            clip_norm: None,
        };
        tweak(&mut cfg);
        Experiment::new(cfg, factory, train, test, Box::new(TestAvg)).unwrap()
    }

    fn quick_experiment(n_clients: usize, rounds: usize) -> Experiment {
        quick_experiment_with(n_clients, rounds, |_| {})
    }

    #[test]
    fn fedavg_improves_accuracy() {
        let mut e = quick_experiment(4, 12);
        let result = e.run(None).unwrap();
        let first = result.rounds.first().and_then(|r| r.accuracy).unwrap();
        let best = result.best_accuracy();
        assert!(best > first, "accuracy should improve: {first} -> {best}");
        assert!(best > 0.5, "should beat chance on an easy task, got {best}");
    }

    #[test]
    fn records_are_complete_and_monotone_in_time() {
        let mut e = quick_experiment(3, 5);
        let result = e.run(None).unwrap();
        assert_eq!(result.rounds.len(), 5);
        let mut last = 0.0;
        for r in &result.rounds {
            assert!(r.sim_time_secs > last);
            last = r.sim_time_secs;
            assert!(r.bytes > 0);
            assert_eq!(r.sparsification_ratio, 0.0); // full sync strategy
            assert_eq!(r.dropped, 0);
            assert_eq!(r.quarantined, 0);
            assert_eq!(r.retransmitted_bytes, 0);
            assert_eq!(r.rollbacks, 0);
        }
    }

    #[test]
    fn hook_sees_every_round() {
        let mut e = quick_experiment(3, 4);
        let mut seen = Vec::new();
        {
            let mut hook = |r: &RoundRecord, g: &[f32]| {
                seen.push((r.round, g.len()));
            };
            e.run(Some(&mut hook)).unwrap();
        }
        assert_eq!(seen.len(), 4);
        assert!(seen.iter().all(|&(_, len)| len > 0));
    }

    #[test]
    fn participants_follow_select_fraction() {
        let mut e = quick_experiment(10, 2);
        let result = e.run(None).unwrap();
        for r in &result.rounds {
            assert_eq!(r.participants, 7); // 70% of 10
        }
    }

    #[test]
    fn availability_limits_participants() {
        let mut rng = StdRng::seed_from_u64(5);
        let (train, test) = SyntheticConfig::new(2, 1, 4, 4).samples_per_class(30).build_split(10, &mut rng);
        let (train, test) = (Arc::new(train), Arc::new(test));
        let factory: ModelFactory = Arc::new(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = Sequential::new("probe");
            m.push(fedsu_nn::flatten::Flatten::new());
            m.push_boxed(Box::new(fedsu_nn::models::mlp(&[16, 2], &mut rng)?));
            Ok(m)
        });
        let mut cfg = ExperimentConfig::quick(4, 3, "probe");
        cfg.select_fraction = 1.0;
        // Client 3 joins only from round 1 onward.
        cfg.availability = Some(Arc::new(|client, round| client != 3 || round >= 1));
        let mut e = Experiment::new(cfg, factory, train, test, Box::new(TestAvg)).unwrap();
        let result = e.run(None).unwrap();
        assert_eq!(result.rounds[0].participants, 3);
        assert_eq!(result.rounds[1].participants, 4);
        // The joiner's catch-up download makes round 1 strictly heavier than
        // a steady-state round.
        assert!(result.rounds[1].bytes >= result.rounds[2].bytes);
    }

    #[test]
    fn bad_configs_are_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let train = Arc::new(SyntheticConfig::new(2, 1, 4, 4).samples_per_class(5).build(&mut rng));
        let test = Arc::clone(&train);
        let factory: ModelFactory = Arc::new(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = Sequential::new("probe");
            m.push(fedsu_nn::flatten::Flatten::new());
            m.push_boxed(Box::new(fedsu_nn::models::mlp(&[16, 2], &mut rng)?));
            Ok(m)
        });
        let cfg = ExperimentConfig::quick(2, 0, "probe");
        assert!(Experiment::new(cfg, factory, train, test, Box::new(TestAvg)).is_err());
    }

    #[test]
    fn bad_fraction_and_alpha_are_rejected() {
        let mut rng = StdRng::seed_from_u64(5);
        let train = Arc::new(SyntheticConfig::new(2, 1, 4, 4).samples_per_class(5).build(&mut rng));
        let factory: ModelFactory = Arc::new(|seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut m = Sequential::new("probe");
            m.push(fedsu_nn::flatten::Flatten::new());
            m.push_boxed(Box::new(fedsu_nn::models::mlp(&[16, 2], &mut rng)?));
            Ok(m)
        });
        for (fraction, alpha) in [(0.0, 1.0), (1.5, 1.0), (f64::NAN, 1.0), (0.7, 0.0), (0.7, -1.0)] {
            let mut cfg = ExperimentConfig::quick(2, 2, "probe");
            cfg.select_fraction = fraction;
            cfg.alpha = alpha;
            let err = Experiment::new(
                cfg,
                Arc::clone(&factory),
                Arc::clone(&train),
                Arc::clone(&train),
                Box::new(TestAvg),
            )
            .unwrap_err();
            assert!(
                matches!(err, FlError::BadConfig(_)),
                "fraction {fraction} alpha {alpha}: {err:?}"
            );
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = quick_experiment(3, 3);
        let mut b = quick_experiment(3, 3);
        let ra = a.run(None).unwrap();
        let rb = b.run(None).unwrap();
        assert_eq!(ra.rounds, rb.rounds);
    }

    #[test]
    fn zero_fault_plan_is_bit_for_bit_identical() {
        // A zero-probability plan with a different fault seed must reproduce
        // the default (no-plan) records exactly.
        let mut a = quick_experiment(4, 4);
        let mut b = quick_experiment_with(4, 4, |cfg| {
            cfg.faults = FaultPlan::new(FaultConfig { seed: 0xDEAD_BEEF, ..FaultConfig::default() });
        });
        let ra = a.run(None).unwrap();
        let rb = b.run(None).unwrap();
        assert_eq!(ra.rounds, rb.rounds);
    }

    #[test]
    fn faulty_run_survives_with_defenses() {
        let mut e = quick_experiment_with(6, 8, |cfg| {
            cfg.faults = FaultPlan::new(FaultConfig {
                dropout_prob: 0.2,
                upload_loss_prob: 0.15,
                corrupt_prob: 0.1,
                crash_prob: 0.05,
                ..FaultConfig::default()
            });
            cfg.defense = DefenseConfig::on();
        });
        let result = e.run(None).unwrap();
        assert_eq!(result.rounds.len(), 8);
        assert!(
            result.total_dropped() + result.total_quarantined() > 0,
            "the fault plan should have injected something"
        );
        let mut last = 0.0;
        for r in &result.rounds {
            assert!(r.sim_time_secs > last, "sim time must stay strictly monotone");
            last = r.sim_time_secs;
        }
    }

    #[test]
    fn retransmissions_charge_bytes_and_backoff() {
        let clean = quick_experiment_with(4, 5, |cfg| {
            cfg.defense = DefenseConfig::on();
        })
        .run(None)
        .unwrap();
        let lossy = quick_experiment_with(4, 5, |cfg| {
            cfg.faults = FaultPlan::new(FaultConfig { upload_loss_prob: 0.4, ..FaultConfig::default() });
            cfg.defense = DefenseConfig::on();
        })
        .run(None)
        .unwrap();
        assert!(lossy.total_retransmitted_bytes() > 0, "losses should force retransmissions");
        assert!(
            lossy.rounds.last().unwrap().sim_time_secs > clean.rounds.last().unwrap().sim_time_secs,
            "retry backoff must cost emulated time"
        );
    }

    #[test]
    fn corrupted_uploads_are_quarantined_not_fatal() {
        let mut e = quick_experiment_with(5, 6, |cfg| {
            cfg.faults = FaultPlan::new(FaultConfig { corrupt_prob: 0.3, ..FaultConfig::default() });
            cfg.defense = DefenseConfig::on();
        });
        let mut finite = true;
        let result = {
            let mut hook = |_r: &RoundRecord, g: &[f32]| {
                finite &= g.iter().all(|v| v.is_finite());
            };
            e.run(Some(&mut hook)).unwrap()
        };
        assert!(finite, "the global must stay finite under corruption");
        assert!(result.total_quarantined() > 0, "corrupted uploads should be quarantined");
    }

    #[test]
    fn client_panic_is_captured_as_client_failed() {
        struct PanicLayer;
        impl fedsu_nn::Layer for PanicLayer {
            fn name(&self) -> &str {
                "panic"
            }
            fn forward(&mut self, _input: &fedsu_tensor::Tensor, _train: bool) -> fedsu_nn::Result<fedsu_tensor::Tensor> {
                panic!("injected client fault");
            }
            fn backward(&mut self, _grad: &fedsu_tensor::Tensor) -> fedsu_nn::Result<fedsu_tensor::Tensor> {
                panic!("injected client fault");
            }
        }
        let mut rng = StdRng::seed_from_u64(5);
        let data = Arc::new(SyntheticConfig::new(2, 1, 4, 4).samples_per_class(5).build(&mut rng));
        let n_samples = data.len();
        let mut model = Sequential::new("boom");
        model.push(PanicLayer);
        let batcher = Batcher::new(data, (0..n_samples).collect(), 1);
        let mut client = Client::new(
            0,
            model,
            batcher,
            ClientConfig {
                batch_size: 2,
                local_iters: 1,
                lr: 0.1,
                weight_decay: 0.0,
                schedule: crate::LrSchedule::Constant,
                clip_norm: None,
            },
        );
        let err = train_one(&mut client, 0, &[], 0).unwrap_err();
        assert_eq!(err, FlError::ClientFailed { id: 0 });
    }

    #[test]
    fn validate_uploads_flags_nan_and_outliers() {
        let global = vec![0.0f32; 4];
        let locals = vec![
            vec![0.1, 0.1, 0.1, 0.1],
            vec![0.2, f32::NAN, 0.1, 0.1],
            vec![1.0e8, 0.0, 0.0, 0.0],
            vec![0.1, 0.2, 0.1, 0.0],
        ];
        let returned = vec![true, true, true, true];
        let (valid, quarantined) = validate_uploads(&locals, &global, &returned, 8.0);
        assert_eq!(valid, vec![true, false, false, true]);
        assert_eq!(quarantined, 2);
        // Clients that never returned are not counted as quarantined.
        let (valid, quarantined) = validate_uploads(&locals, &global, &[true, false, false, true], 8.0);
        assert_eq!(valid, vec![true, false, false, true]);
        assert_eq!(quarantined, 0);
    }
}
