//! The [`SyncStrategy`] trait — the plug-point where FedAvg, CMFL, APF and
//! FedSU implement their synchronization rules.

use serde::{Deserialize, Serialize};

/// Accounting returned by [`SyncStrategy::aggregate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AggregateOutcome {
    /// Scalars each client downloads after aggregation (broadcast volume).
    pub broadcast_scalars: usize,
    /// Scalars realistically synchronized on the upload path this round,
    /// summed over distinct scalar indices (error-feedback payloads count).
    pub synced_scalars: usize,
    /// Total scalar parameters in the model.
    pub total_scalars: usize,
}

/// A federated synchronization strategy.
///
/// The runtime calls, once per round and in this order:
///
/// 1. [`prepare_uploads_into`](SyncStrategy::prepare_uploads_into) with
///    *every* client's locally-trained flat parameters — the strategy
///    decides what each client would put on the wire (the round timer needs
///    the volumes before participant selection);
/// 2. [`aggregate`](SyncStrategy::aggregate) with the ids of the earliest-
///    returning clients — the strategy mutates `global` into the new global
///    parameters that every client then loads.
///
/// State the paper replicates identically on each client (masks, EMAs,
/// no-checking periods) lives once inside the strategy object; genuinely
/// per-client state (e.g. FedSU's local error accumulators) must be indexed
/// by client id. See the crate docs for why this is faithful.
pub trait SyncStrategy: Send {
    /// Strategy display name (used in experiment records and tables).
    fn name(&self) -> &str;

    /// Phase A: decides per-client upload volumes for this round, writing
    /// one entry per client into `out` (cleared first).
    ///
    /// `locals[i]` is client `i`'s flat parameter vector after local
    /// training; `global` is the current global vector. Each entry is the
    /// number of *scalars* that client uploads (the runtime converts to
    /// bytes). The runtime passes a round-scratch buffer so steady rounds
    /// stay allocation-free. Implementations may cache per-client decisions
    /// for use in [`aggregate`](SyncStrategy::aggregate).
    fn prepare_uploads_into(
        &mut self,
        round: usize,
        locals: &[Vec<f32>],
        global: &[f32],
        out: &mut Vec<u64>,
    );

    /// Allocating convenience wrapper around
    /// [`prepare_uploads_into`](SyncStrategy::prepare_uploads_into), for
    /// tests and one-shot callers that don't keep a scratch buffer.
    fn prepare_uploads(&mut self, round: usize, locals: &[Vec<f32>], global: &[f32]) -> Vec<u64> {
        let mut out = Vec::new();
        self.prepare_uploads_into(round, locals, global, &mut out);
        out
    }

    /// Phase B: aggregates the selected clients and writes the new global
    /// parameters into `global` (which every client replica then loads).
    ///
    /// `active[i]` says whether client `i` participated this round at all
    /// (participant dynamicity); `selected ⊆ active`. Strategies with
    /// per-client state (e.g. FedSU's local error accumulators) must only
    /// touch state of active clients.
    fn aggregate(
        &mut self,
        round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome;

    /// Resident bytes of strategy-internal state (Table II memory
    /// accounting). Defaults to zero for stateless strategies.
    fn state_bytes(&self) -> usize {
        0
    }

    /// Serialized state a newly-joining client must download in addition to
    /// the model (the paper's dynamicity protocol, Sec. V). `None` means the
    /// strategy needs no extra join state.
    fn join_state(&self) -> Option<Vec<u8>> {
        None
    }

    /// Per-scalar fraction of elapsed rounds in which the scalar skipped
    /// synchronization (drives the paper's Fig. 7 CDF). `None` if the
    /// strategy does not track it.
    fn skip_fractions(&self) -> Option<Vec<f64>> {
        None
    }

    /// Downcast hook so harnesses can inspect strategy-specific state after
    /// a run (e.g. FedSU's mask-transition events for Fig. 6). Strategies
    /// that expose such state override this to return `self`.
    fn as_any(&self) -> Option<&dyn std::any::Any> {
        None
    }
}

/// Averages the selected clients' values for every scalar into `global`
/// (plain FedAvg aggregation — shared by several strategies).
///
/// # Panics
///
/// Panics if `selected` is empty or any local vector length differs from
/// `global`.
pub fn average_into(locals: &[Vec<f32>], selected: &[usize], global: &mut [f32]) {
    assert!(!selected.is_empty(), "cannot aggregate zero clients");
    let inv = 1.0 / selected.len() as f32;
    for g in global.iter_mut() {
        *g = 0.0;
    }
    for &c in selected {
        let local = &locals[c];
        assert_eq!(local.len(), global.len(), "local/global length mismatch");
        for (g, &v) in global.iter_mut().zip(local) {
            *g += v * inv;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn average_into_means_selected_only() {
        let locals = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![100.0, 100.0]];
        let mut global = vec![0.0, 0.0];
        average_into(&locals, &[0, 1], &mut global);
        assert_eq!(global, vec![2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "zero clients")]
    fn empty_selection_panics() {
        let mut g = vec![0.0];
        average_into(&[vec![1.0]], &[], &mut g);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let mut g = vec![0.0, 0.0];
        average_into(&[vec![1.0]], &[0], &mut g);
    }

    #[test]
    fn aggregate_outcome_is_copy_and_serializable() {
        let o = AggregateOutcome { broadcast_scalars: 1, synced_scalars: 2, total_scalars: 3 };
        let o2 = o;
        assert_eq!(o, o2);
    }
}
