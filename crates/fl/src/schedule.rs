//! Learning-rate schedules.
//!
//! Theorem 1 of the paper guarantees FedSU's convergence when the
//! learning-rate sequence satisfies `Ση_k = ∞` and `Ση_k² / Ση_k → 0`
//! (Eq. 13), e.g. `η_k = O(1/√T)`. The schedules here cover the constant
//! rate the evaluation uses plus the decaying forms the theorem calls for.

use serde::{Deserialize, Serialize};

/// A per-round learning-rate schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum LrSchedule {
    /// Constant learning rate (the paper's experimental setting).
    #[default]
    Constant,
    /// `η_k = base / sqrt(k + 1)` — satisfies Eq. 13.
    InvSqrt,
    /// Multiply by `gamma` every `every` rounds.
    Step {
        /// Rounds between decays.
        every: usize,
        /// Multiplicative decay factor (0 < gamma <= 1).
        gamma: f32,
    },
}

impl LrSchedule {
    /// The learning rate for `round` (0-based) given the base rate.
    ///
    /// # Panics
    ///
    /// Panics for `Step { every: 0, .. }`.
    pub fn lr_at(&self, base: f32, round: usize) -> f32 {
        match *self {
            LrSchedule::Constant => base,
            LrSchedule::InvSqrt => base / ((round + 1) as f32).sqrt(),
            LrSchedule::Step { every, gamma } => {
                assert!(every > 0, "step schedule needs a positive period");
                base * gamma.powi((round / every) as i32)
            }
        }
    }

    /// Checks Eq. 13 empirically over a horizon: `Ση_k²/Ση_k` must shrink
    /// as the horizon grows. Used by tests and the analysis module.
    pub fn eq13_ratio(&self, base: f32, horizon: usize) -> f64 {
        let mut sum = 0.0f64;
        let mut sum_sq = 0.0f64;
        for k in 0..horizon {
            let lr = f64::from(self.lr_at(base, k));
            sum += lr;
            sum_sq += lr * lr;
        }
        if sum == 0.0 {
            0.0
        } else {
            sum_sq / sum
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant;
        assert_eq!(s.lr_at(0.1, 0), 0.1);
        assert_eq!(s.lr_at(0.1, 100), 0.1);
    }

    #[test]
    fn inv_sqrt_decays() {
        let s = LrSchedule::InvSqrt;
        assert_eq!(s.lr_at(0.1, 0), 0.1);
        assert!((s.lr_at(0.1, 3) - 0.05).abs() < 1e-6);
        assert!(s.lr_at(0.1, 99) < s.lr_at(0.1, 98));
    }

    #[test]
    fn step_decays_in_stairs() {
        let s = LrSchedule::Step { every: 10, gamma: 0.5 };
        assert_eq!(s.lr_at(0.4, 9), 0.4);
        assert_eq!(s.lr_at(0.4, 10), 0.2);
        assert_eq!(s.lr_at(0.4, 25), 0.1);
    }

    #[test]
    fn inv_sqrt_satisfies_eq13() {
        let s = LrSchedule::InvSqrt;
        let r100 = s.eq13_ratio(0.1, 100);
        let r10000 = s.eq13_ratio(0.1, 10_000);
        assert!(r10000 < r100, "ratio must shrink: {r100} vs {r10000}");
        assert!(r10000 < 0.01);
    }

    #[test]
    fn constant_violates_eq13() {
        let s = LrSchedule::Constant;
        let r100 = s.eq13_ratio(0.1, 100);
        let r10000 = s.eq13_ratio(0.1, 10_000);
        assert!((r100 - r10000).abs() < 1e-9, "constant ratio never shrinks");
    }

    #[test]
    #[should_panic(expected = "positive period")]
    fn zero_step_period_panics() {
        LrSchedule::Step { every: 0, gamma: 0.5 }.lr_at(0.1, 1);
    }
}
