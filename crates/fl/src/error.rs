use fedsu_nn::NnError;
use std::fmt;

/// Errors produced by the FL runtime.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FlError {
    /// A neural-network operation failed inside a client or the server.
    Nn(NnError),
    /// The experiment configuration is inconsistent.
    BadConfig(String),
    /// Model parameters diverged (NaN/Inf observed).
    Diverged {
        /// Round at which divergence was detected.
        round: usize,
    },
    /// A strategy violated the runtime contract (e.g. wrong vector length).
    StrategyContract(String),
    /// A client's local training panicked (the panic was caught; the run
    /// only aborts when fault tolerance is disabled).
    ClientFailed {
        /// Id of the client whose thread panicked.
        id: usize,
    },
    /// Too many consecutive rounds produced no usable update (every upload
    /// was dropped, lost, or quarantined) — the defense budget is exhausted.
    QuarantineExhausted {
        /// Round at which the barren-round budget ran out.
        round: usize,
    },
}

impl FlError {
    /// Builds [`FlError::BadConfig`] out of line, so the round loop's hot
    /// path carries no formatting machinery.
    #[cold]
    pub(crate) fn new_bad_config(args: fmt::Arguments<'_>) -> Self {
        FlError::BadConfig(args.to_string())
    }

    /// Builds [`FlError::StrategyContract`] out of line (cold error path).
    #[cold]
    pub(crate) fn new_strategy_contract(args: fmt::Arguments<'_>) -> Self {
        FlError::StrategyContract(args.to_string())
    }
}

impl fmt::Display for FlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlError::Nn(e) => write!(f, "nn error: {e}"),
            FlError::BadConfig(msg) => write!(f, "bad experiment config: {msg}"),
            FlError::Diverged { round } => write!(f, "training diverged at round {round}"),
            FlError::StrategyContract(msg) => write!(f, "strategy contract violation: {msg}"),
            FlError::ClientFailed { id } => write!(f, "client {id} failed (local training panicked)"),
            FlError::QuarantineExhausted { round } => {
                write!(f, "no usable updates for too many consecutive rounds (round {round})")
            }
        }
    }
}

impl std::error::Error for FlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FlError::Nn(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NnError> for FlError {
    fn from(e: NnError) -> Self {
        FlError::Nn(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        use std::error::Error;
        let e: FlError = NnError::BadConfig("x".into()).into();
        assert!(e.source().is_some());
        assert!(FlError::Diverged { round: 3 }.to_string().contains("round 3"));
    }

    #[test]
    fn fault_variants_display_and_source() {
        use std::error::Error;
        let c = FlError::ClientFailed { id: 7 };
        assert!(c.to_string().contains("client 7"));
        assert!(c.source().is_none());
        let q = FlError::QuarantineExhausted { round: 12 };
        assert!(q.to_string().contains("round 12"));
        assert!(q.source().is_none());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlError>();
    }
}
