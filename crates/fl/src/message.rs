//! Communication accounting.
//!
//! The paper's evaluated quantity is bytes on the wire; masks are replicated
//! client-side, so only parameter *values* are transmitted for mask-derived
//! sparse updates (4 bytes per `f32` scalar). These helpers keep that
//! accounting in one place.

use serde::{Deserialize, Serialize};

/// Wire size of one `f32` scalar.
pub const BYTES_PER_SCALAR: u64 = 4;

/// Per-round communication accounting across the whole cluster.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RoundComm {
    /// Upload bytes for every client (indexed by client id).
    pub upload_bytes: Vec<u64>,
    /// Download bytes for every client (indexed by client id).
    pub download_bytes: Vec<u64>,
    /// Scalars realistically synchronized this round (upload side, including
    /// any error-aggregation payloads).
    pub synced_scalars: usize,
    /// Total scalar parameters in the model.
    pub total_scalars: usize,
}

impl RoundComm {
    /// Fraction of scalars that skipped synchronization this round —
    /// the paper's "sparsification ratio" (communication compression).
    pub fn sparsification_ratio(&self) -> f64 {
        if self.total_scalars == 0 {
            0.0
        } else {
            1.0 - self.synced_scalars as f64 / self.total_scalars as f64
        }
    }

    /// Total bytes moved this round, both directions, all clients.
    pub fn total_bytes(&self) -> u64 {
        self.upload_bytes
            .iter()
            .sum::<u64>()
            .checked_add(self.download_bytes.iter().sum::<u64>())
            .expect("round byte total fits in u64: per-client payloads are model-sized")
    }
}

/// Converts a scalar count to wire bytes.
pub fn scalars_to_bytes(scalars: usize) -> u64 {
    u64::try_from(scalars).expect("scalar count fits in u64 on all supported targets")
        * BYTES_PER_SCALAR
}

/// Wire bytes actually spent uploading `bytes` when the transfer succeeded
/// on the `attempts`-th try (every lost attempt retransmits the payload).
/// `attempts == 1` is the fault-free case and costs exactly `bytes`.
pub fn bytes_with_retries(bytes: u64, attempts: u32) -> u64 {
    bytes
        .checked_mul(u64::from(attempts.max(1)))
        .expect("retry-inflated wire bytes fit in u64: attempts is a small bounded count")
}

/// The retransmission *overhead* of a transfer that succeeded on the
/// `attempts`-th try: payload bytes re-sent after the first attempt,
/// i.e. `bytes × (attempts − 1)`. This is the single definition shared by
/// the emulation's `RoundRecord::retransmitted_bytes` and the wire
/// session layer's `ReliabilityStats::retransmitted_bytes`
/// (`fedsu-transport`), so the two accountings stay comparable.
pub fn retransmitted_bytes(bytes: u64, attempts: u32) -> u64 {
    // Saturating like the session-layer counters it mirrors: overhead
    // accounting must never be the thing that panics a round.
    bytes.saturating_mul(u64::from(attempts.max(1).saturating_sub(1)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparsification_ratio_basic() {
        let c = RoundComm {
            upload_bytes: vec![4, 4],
            download_bytes: vec![8, 8],
            synced_scalars: 25,
            total_scalars: 100,
        };
        assert!((c.sparsification_ratio() - 0.75).abs() < 1e-12);
        assert_eq!(c.total_bytes(), 24);
    }

    #[test]
    fn empty_model_has_zero_ratio() {
        let c = RoundComm {
            upload_bytes: vec![],
            download_bytes: vec![],
            synced_scalars: 0,
            total_scalars: 0,
        };
        assert_eq!(c.sparsification_ratio(), 0.0);
    }

    #[test]
    fn scalar_byte_conversion() {
        assert_eq!(scalars_to_bytes(10), 40);
        assert_eq!(scalars_to_bytes(0), 0);
    }

    #[test]
    fn retry_bytes_accounting() {
        assert_eq!(bytes_with_retries(100, 1), 100);
        assert_eq!(bytes_with_retries(100, 3), 300);
        // Attempt counts below 1 are clamped: a successful upload happened.
        assert_eq!(bytes_with_retries(100, 0), 100);
    }

    #[test]
    fn retransmitted_bytes_is_the_overhead_of_bytes_with_retries() {
        for bytes in [0u64, 1, 100, 1 << 40] {
            for attempts in [0u32, 1, 2, 3, 7] {
                assert_eq!(
                    retransmitted_bytes(bytes, attempts),
                    bytes_with_retries(bytes, attempts) - bytes,
                    "bytes={bytes} attempts={attempts}"
                );
            }
        }
        assert_eq!(retransmitted_bytes(100, 1), 0, "fault-free transfers retransmit nothing");
        assert_eq!(retransmitted_bytes(100, 3), 200);
    }
}
