//! Property-based tests for the FL runtime's pure components: accounting
//! arithmetic and learning-rate schedules.

use fedsu_fl::{LrSchedule, RoundComm};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparsification_ratio_is_a_fraction(synced in 0usize..10_000, extra in 0usize..10_000) {
        let total = synced + extra;
        let comm = RoundComm {
            upload_bytes: vec![],
            download_bytes: vec![],
            synced_scalars: synced,
            total_scalars: total,
        };
        let r = comm.sparsification_ratio();
        prop_assert!((0.0..=1.0).contains(&r));
        if total > 0 {
            prop_assert!((r - (extra as f64 / total as f64)).abs() < 1e-12);
        }
    }

    #[test]
    fn total_bytes_sums_both_directions(up in proptest::collection::vec(0u64..1_000_000, 0..16),
                                        down in proptest::collection::vec(0u64..1_000_000, 0..16)) {
        let expected: u64 = up.iter().sum::<u64>() + down.iter().sum::<u64>();
        let comm = RoundComm { upload_bytes: up, download_bytes: down, synced_scalars: 0, total_scalars: 1 };
        prop_assert_eq!(comm.total_bytes(), expected);
    }

    #[test]
    fn schedules_are_positive_and_bounded_by_base(base in 0.001f32..1.0, round in 0usize..10_000) {
        for schedule in [
            LrSchedule::Constant,
            LrSchedule::InvSqrt,
            LrSchedule::Step { every: 100, gamma: 0.5 },
        ] {
            let lr = schedule.lr_at(base, round);
            prop_assert!(lr > 0.0, "{schedule:?} gave {lr}");
            prop_assert!(lr <= base + f32::EPSILON, "{schedule:?} exceeded base: {lr} > {base}");
        }
    }

    #[test]
    fn decaying_schedules_are_monotone(base in 0.001f32..1.0, a in 0usize..5_000, b in 0usize..5_000) {
        let (lo, hi) = (a.min(b), a.max(b));
        for schedule in [LrSchedule::InvSqrt, LrSchedule::Step { every: 7, gamma: 0.9 }] {
            prop_assert!(schedule.lr_at(base, hi) <= schedule.lr_at(base, lo) + f32::EPSILON);
        }
    }

    #[test]
    fn eq13_ratio_shrinks_for_inv_sqrt(base in 0.01f32..0.5) {
        let s = LrSchedule::InvSqrt;
        let short = s.eq13_ratio(base, 200);
        let long = s.eq13_ratio(base, 5_000);
        prop_assert!(long < short);
    }
}
