//! Reliable session protocol over an unreliable byte link.
//!
//! The [`crate::LocalBus`] (and any future socket transport) moves opaque
//! frames; the [`crate::ChaosBus`](crate::ChaosClient) may lose, corrupt,
//! duplicate, reorder, or delay them. This module restores exactly-once,
//! integrity-checked delivery on top:
//!
//! * every [`Message`] travels inside a framed [`Envelope`] carrying a
//!   round **epoch**, a **sequence number**, a retransmission **attempt**
//!   counter, and an FNV-1a **checksum**;
//! * receivers acknowledge every accepted data frame (including duplicates
//!   and stale frames, so a retransmitting peer always converges);
//! * senders retransmit unacknowledged frames with a deterministic linear
//!   backoff schedule, up to a bounded retry budget — mirroring
//!   `DefenseConfig::{max_retries, retry_backoff_secs}` on the emulation
//!   side;
//! * receivers deduplicate by `(epoch, seq)` and reject frames from past
//!   epochs, so a round's update can never be aggregated twice and a
//!   straggler's retransmission can never leak into a later round.
//!
//! Every endpoint keeps [`ReliabilityStats`]; `retransmitted_bytes` counts
//! payload (encoded [`Message`]) bytes re-sent after the first attempt,
//! the same quantity the `fedsu-fl` runtime records per round in
//! `RoundRecord::retransmitted_bytes`.

use crate::bus::{ByteLink, ServerByteLink};
use crate::{BusError, Message};
use std::collections::{BTreeSet, VecDeque};
use std::time::Duration;

const ENV_MAGIC: u16 = 0x5EF5;
const ENV_VERSION: u8 = 1;
const KIND_DATA: u8 = 1;
const KIND_ACK: u8 = 2;

/// Fixed envelope bytes around every payload: header (magic, version,
/// kind, client, epoch, seq, attempt, payload length) plus the trailing
/// checksum.
pub const ENVELOPE_OVERHEAD: usize = 2 + 1 + 1 + 4 + 4 + 4 + 2 + 4 + 4;

/// What an [`Envelope`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// An application payload that must be acknowledged.
    Data,
    /// An acknowledgement of one `(epoch, seq)` data frame.
    Ack,
}

/// A framed wire unit: the session protocol's header around the existing
/// versioned [`Message`] encoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Data or ack.
    pub kind: FrameKind,
    /// The client slot this session belongs to (same value in both
    /// directions of one client's session).
    pub client: u32,
    /// Round epoch the frame belongs to.
    pub epoch: u32,
    /// Sequence number within the epoch (per direction).
    pub seq: u32,
    /// Retransmission attempt, 0-based.
    pub attempt: u16,
    /// Encoded [`Message`] bytes (empty for acks).
    pub payload: Vec<u8>,
}

/// Envelope decoding errors. All are survivable: the session layer treats
/// an undecodable frame as lost and lets retransmission recover.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EnvelopeError {
    /// Frame shorter than its declared contents.
    Truncated,
    /// Magic header mismatch.
    BadMagic(u16),
    /// Unsupported envelope version.
    BadVersion(u8),
    /// Unknown frame kind.
    BadKind(u8),
    /// Checksum mismatch (bit corruption on the wire).
    BadChecksum {
        /// Checksum carried by the frame.
        carried: u32,
        /// Checksum recomputed over the received bytes.
        computed: u32,
    },
    /// Bytes left over after the declared payload (e.g. two spliced
    /// frames).
    TrailingBytes,
}

impl std::fmt::Display for EnvelopeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EnvelopeError::Truncated => write!(f, "envelope truncated"),
            EnvelopeError::BadMagic(m) => write!(f, "bad envelope magic {m:#x}"),
            EnvelopeError::BadVersion(v) => write!(f, "unsupported envelope version {v}"),
            EnvelopeError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            EnvelopeError::BadChecksum { carried, computed } => {
                write!(f, "checksum mismatch: frame says {carried:#x}, computed {computed:#x}")
            }
            EnvelopeError::TrailingBytes => write!(f, "trailing bytes after envelope payload"),
        }
    }
}

impl std::error::Error for EnvelopeError {}

/// FNV-1a 32-bit over `bytes` — cheap, deterministic, and plenty to catch
/// the chaos bus's bit flips.
fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Byte offset of the `attempt` field inside an encoded envelope: magic (2)
/// + version (1) + kind (1) + client (4) + epoch (4) + seq (4).
const ATTEMPT_OFFSET: usize = 2 + 1 + 1 + 4 + 4 + 4;

/// Rewrites the `attempt` field of an encoded frame in place and refreshes
/// the trailing FNV-1a checksum, yielding bytes identical to re-encoding
/// the whole envelope with the new attempt. The retransmission loops cache
/// one encoding per `(epoch, seq)` and re-stamp it per attempt instead of
/// cloning the payload and re-serializing every time.
fn restamp_attempt(frame: &mut [u8], attempt: u16) {
    let Some(body_len) = frame.len().checked_sub(4) else { return };
    if let Some(dst) = frame.get_mut(ATTEMPT_OFFSET..ATTEMPT_OFFSET + 2) {
        dst.copy_from_slice(&attempt.to_le_bytes());
    }
    let sum = frame.get(..body_len).map_or(0, fnv1a);
    if let Some(tail) = frame.get_mut(body_len..) {
        tail.copy_from_slice(&sum.to_le_bytes());
    }
}

fn take<'a>(data: &mut &'a [u8], n: usize) -> Result<&'a [u8], EnvelopeError> {
    if data.len() < n {
        return Err(EnvelopeError::Truncated);
    }
    let (head, tail) = data.split_at(n);
    *data = tail;
    Ok(head)
}

fn take_u16(data: &mut &[u8]) -> Result<u16, EnvelopeError> {
    take(data, 2)?
        .try_into()
        .map(u16::from_le_bytes)
        .map_err(|_| EnvelopeError::Truncated)
}

fn take_u32(data: &mut &[u8]) -> Result<u32, EnvelopeError> {
    take(data, 4)?
        .try_into()
        .map(u32::from_le_bytes)
        .map_err(|_| EnvelopeError::Truncated)
}

fn take_u8(data: &mut &[u8]) -> Result<u8, EnvelopeError> {
    take(data, 1).map(|h| h.first().copied().unwrap_or(0))
}

impl Envelope {
    /// A data frame.
    pub fn data(client: u32, epoch: u32, seq: u32, attempt: u16, payload: Vec<u8>) -> Self {
        Envelope { kind: FrameKind::Data, client, epoch, seq, attempt, payload }
    }

    /// An acknowledgement of the `(epoch, seq)` data frame.
    ///
    /// The ack echoes the `attempt` of the data frame it acknowledges.
    /// Receivers match acks on `(epoch, seq)` alone, but a chaos bus keys
    /// wire fates on the attempt too — echoing it means the ack for a
    /// retransmission rolls a fresh fate instead of deterministically
    /// repeating the fate that lost the first ack.
    pub fn ack(client: u32, epoch: u32, seq: u32, attempt: u16) -> Self {
        Envelope { kind: FrameKind::Ack, client, epoch, seq, attempt, payload: Vec::new() }
    }

    fn kind_byte(&self) -> u8 {
        match self.kind {
            FrameKind::Data => KIND_DATA,
            FrameKind::Ack => KIND_ACK,
        }
    }

    /// Serializes the envelope: header, payload, trailing FNV-1a checksum
    /// over everything before it.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(ENVELOPE_OVERHEAD + self.payload.len());
        out.extend_from_slice(&ENV_MAGIC.to_le_bytes());
        out.push(ENV_VERSION);
        out.push(self.kind_byte());
        out.extend_from_slice(&self.client.to_le_bytes());
        out.extend_from_slice(&self.epoch.to_le_bytes());
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.attempt.to_le_bytes());
        let len = u32::try_from(self.payload.len()).unwrap_or(u32::MAX);
        out.extend_from_slice(&len.to_le_bytes());
        out.extend_from_slice(&self.payload);
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Parses an envelope produced by [`Envelope::encode`]. Never panics on
    /// arbitrary input.
    ///
    /// # Errors
    ///
    /// Returns [`EnvelopeError`] on truncation, bad magic/version/kind, a
    /// checksum mismatch, or trailing bytes after the declared payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, EnvelopeError> {
        let mut data = bytes;
        let magic = take_u16(&mut data)?;
        if magic != ENV_MAGIC {
            return Err(EnvelopeError::BadMagic(magic));
        }
        let version = take_u8(&mut data)?;
        if version != ENV_VERSION {
            return Err(EnvelopeError::BadVersion(version));
        }
        let kind_byte = take_u8(&mut data)?;
        let kind = match kind_byte {
            KIND_DATA => FrameKind::Data,
            KIND_ACK => FrameKind::Ack,
            other => return Err(EnvelopeError::BadKind(other)),
        };
        let client = take_u32(&mut data)?;
        let epoch = take_u32(&mut data)?;
        let seq = take_u32(&mut data)?;
        let attempt = take_u16(&mut data)?;
        let payload_len = take_u32(&mut data)? as usize;
        // `data` now holds payload + 4-byte checksum; reject splices.
        if data.len() < 4 {
            return Err(EnvelopeError::Truncated);
        }
        if data.len() - 4 < payload_len {
            return Err(EnvelopeError::Truncated);
        }
        if data.len() - 4 > payload_len {
            return Err(EnvelopeError::TrailingBytes);
        }
        let payload = take(&mut data, payload_len)?.to_vec();
        let carried = take_u32(&mut data)?;
        let computed = fnv1a(bytes.get(..bytes.len() - 4).unwrap_or(&[]));
        if carried != computed {
            return Err(EnvelopeError::BadChecksum { carried, computed });
        }
        Ok(Envelope { kind, client, epoch, seq, attempt, payload })
    }

    /// Parses just the fixed header `(kind, client, epoch, seq, attempt)`
    /// without verifying the checksum — the chaos bus uses this to key its
    /// per-(client, round, attempt) fault decisions on well-formed frames
    /// it is *about* to corrupt.
    pub fn peek_header(bytes: &[u8]) -> Option<(FrameKind, u32, u32, u32, u16)> {
        let mut data = bytes;
        let magic = take_u16(&mut data).ok()?;
        if magic != ENV_MAGIC {
            return None;
        }
        if take_u8(&mut data).ok()? != ENV_VERSION {
            return None;
        }
        let kind = match take_u8(&mut data).ok()? {
            KIND_DATA => FrameKind::Data,
            KIND_ACK => FrameKind::Ack,
            _ => return None,
        };
        let client = take_u32(&mut data).ok()?;
        let epoch = take_u32(&mut data).ok()?;
        let seq = take_u32(&mut data).ok()?;
        let attempt = take_u16(&mut data).ok()?;
        Some((kind, client, epoch, seq, attempt))
    }
}

/// Knobs of the reliable session protocol. The defaults suit in-process
/// links; raise the timeout for real networks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionConfig {
    /// Retransmissions allowed after the first attempt before
    /// [`SessionError::RetriesExhausted`].
    pub max_retries: u32,
    /// How long to wait for an ack on the first attempt.
    pub ack_timeout: Duration,
    /// Deterministic linear backoff: attempt `k` waits
    /// `ack_timeout + k × backoff`.
    pub backoff: Duration,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            max_retries: 8,
            ack_timeout: Duration::from_millis(40),
            backoff: Duration::from_millis(20),
        }
    }
}

impl SessionConfig {
    fn wait_for(&self, attempt: u32) -> Duration {
        self.ack_timeout.saturating_add(self.backoff.saturating_mul(attempt))
    }
}

/// Per-endpoint counters of the reliability machinery. Additive across
/// endpoints via [`ReliabilityStats::merged`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Data frames sent, including retransmissions.
    pub data_frames_sent: u64,
    /// Data frames delivered to the application exactly once.
    pub data_frames_delivered: u64,
    /// Retransmission attempts after a frame's first send.
    pub retransmits: u64,
    /// Payload (encoded message) bytes re-sent after the first attempt —
    /// the wire-side analogue of `RoundRecord::retransmitted_bytes`.
    pub retransmitted_bytes: u64,
    /// Duplicate data frames dropped by `(epoch, seq)` dedup.
    pub dups_dropped: u64,
    /// Frames rejected as undecodable (truncation, bad checksum, garbage).
    pub corrupt_frames_rejected: u64,
    /// Data frames rejected because their epoch predates the current one.
    pub stale_epoch_rejected: u64,
    /// Acknowledgements sent.
    pub acks_sent: u64,
    /// Acknowledgements received.
    pub acks_received: u64,
}

impl ReliabilityStats {
    /// Element-wise saturating sum of two stats blocks.
    pub fn merged(&self, other: &ReliabilityStats) -> ReliabilityStats {
        ReliabilityStats {
            data_frames_sent: self.data_frames_sent.saturating_add(other.data_frames_sent),
            data_frames_delivered: self
                .data_frames_delivered
                .saturating_add(other.data_frames_delivered),
            retransmits: self.retransmits.saturating_add(other.retransmits),
            retransmitted_bytes: self.retransmitted_bytes.saturating_add(other.retransmitted_bytes),
            dups_dropped: self.dups_dropped.saturating_add(other.dups_dropped),
            corrupt_frames_rejected: self
                .corrupt_frames_rejected
                .saturating_add(other.corrupt_frames_rejected),
            stale_epoch_rejected: self.stale_epoch_rejected.saturating_add(other.stale_epoch_rejected),
            acks_sent: self.acks_sent.saturating_add(other.acks_sent),
            acks_received: self.acks_received.saturating_add(other.acks_received),
        }
    }
}

/// Session protocol errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SessionError {
    /// The underlying transport failed (timeout or disconnect).
    Bus(BusError),
    /// A reliable send exhausted its retry budget without an ack.
    RetriesExhausted {
        /// Client slot of the session.
        client: u32,
        /// Epoch of the unacknowledged frame.
        epoch: u32,
        /// Sequence number of the unacknowledged frame.
        seq: u32,
        /// Total transmission attempts made.
        attempts: u32,
    },
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Bus(e) => write!(f, "transport failure: {e}"),
            SessionError::RetriesExhausted { client, epoch, seq, attempts } => write!(
                f,
                "no ack for client {client} epoch {epoch} seq {seq} after {attempts} attempts"
            ),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<BusError> for SessionError {
    fn from(e: BusError) -> Self {
        SessionError::Bus(e)
    }
}

/// How the receive side classified an incoming data frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Admit {
    /// Epoch predates the receiver's current epoch.
    Stale,
    /// `(epoch, seq)` already delivered.
    Dup,
    /// First sighting: deliver.
    Fresh,
}

/// Receive-side dedup state for one peer: current epoch plus the set of
/// `(epoch, seq)` pairs already delivered. Entries from finished epochs are
/// pruned on every epoch advance, so memory stays bounded by one round's
/// traffic.
#[derive(Debug, Default)]
struct RxState {
    epoch: u32,
    seen: BTreeSet<(u32, u32)>,
}

impl RxState {
    fn begin_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
        self.seen.retain(|&(e, _)| e >= epoch);
    }

    fn admit(&mut self, epoch: u32, seq: u32) -> Admit {
        if epoch < self.epoch {
            return Admit::Stale;
        }
        if !self.seen.insert((epoch, seq)) {
            return Admit::Dup;
        }
        Admit::Fresh
    }
}

/// One client's reliable session over any [`ByteLink`].
#[derive(Debug)]
pub struct ClientSession<L: ByteLink> {
    link: L,
    client: u32,
    epoch: u32,
    next_seq: u32,
    rx: RxState,
    inbox: VecDeque<Message>,
    config: SessionConfig,
    stats: ReliabilityStats,
}

impl<L: ByteLink> ClientSession<L> {
    /// Wraps `link` as the reliable session of client `client`.
    pub fn new(link: L, client: u32, config: SessionConfig) -> Self {
        ClientSession {
            link,
            client,
            epoch: 0,
            next_seq: 0,
            rx: RxState::default(),
            inbox: VecDeque::new(),
            config,
            stats: ReliabilityStats::default(),
        }
    }

    /// Advances the session to round `epoch`: frames from earlier epochs
    /// are rejected as stale from now on, and dedup memory for them is
    /// released.
    pub fn begin_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
        self.next_seq = 0;
        self.rx.begin_epoch(epoch);
    }

    /// Current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Reliability counters of this endpoint.
    pub fn stats(&self) -> ReliabilityStats {
        self.stats
    }

    /// The wrapped link (e.g. to read its transport or chaos stats).
    pub fn link(&self) -> &L {
        &self.link
    }

    /// Sends `msg` with at-least-once retransmission and waits for the
    /// ack; combined with receiver dedup this yields exactly-once
    /// delivery. Data frames arriving while waiting are admitted, acked,
    /// and buffered for [`ClientSession::recv_reliable`].
    ///
    /// # Errors
    ///
    /// [`SessionError::RetriesExhausted`] when the retry budget runs out;
    /// [`SessionError::Bus`] on disconnect.
    pub fn send_reliable(&mut self, msg: &Message) -> Result<(), SessionError> {
        let payload = msg.encode();
        let payload_len = payload.len();
        let seq = self.next_seq;
        self.next_seq = self.next_seq.wrapping_add(1);
        // Encode the envelope once for this (epoch, seq); each attempt only
        // re-stamps the attempt field and checksum in the cached bytes.
        let mut frame = Envelope::data(self.client, self.epoch, seq, 0, payload).encode();
        let mut attempt: u32 = 0;
        loop {
            restamp_attempt(&mut frame, u16::try_from(attempt).unwrap_or(u16::MAX));
            self.link.send_bytes(frame.clone())?;
            self.stats.data_frames_sent = self.stats.data_frames_sent.saturating_add(1);
            if attempt > 0 {
                self.stats.retransmits = self.stats.retransmits.saturating_add(1);
                self.stats.retransmitted_bytes = self
                    .stats
                    .retransmitted_bytes
                    .saturating_add(u64::try_from(payload_len).unwrap_or(u64::MAX));
            }
            let wait = self.config.wait_for(attempt);
            loop {
                match self.read_one(wait) {
                    Err(SessionError::Bus(BusError::Timeout)) => break,
                    Err(e) => return Err(e),
                    Ok(Some((e, s))) if e == self.epoch && s == seq => return Ok(()),
                    Ok(_) => {}
                }
            }
            if attempt >= self.config.max_retries {
                return Err(SessionError::RetriesExhausted {
                    client: self.client,
                    epoch: self.epoch,
                    seq,
                    attempts: attempt.saturating_add(1),
                });
            }
            attempt = attempt.saturating_add(1);
        }
    }

    /// Receives the next exactly-once message from the server.
    ///
    /// # Errors
    ///
    /// [`SessionError::Bus`] with [`BusError::Timeout`] when nothing
    /// deliverable arrives within one quiet `timeout` window.
    pub fn recv_reliable(&mut self, timeout: Duration) -> Result<Message, SessionError> {
        loop {
            if let Some(m) = self.inbox.pop_front() {
                return Ok(m);
            }
            self.read_one(timeout)?;
        }
    }

    /// Services the link until `grace` elapses with no traffic, re-acking
    /// late retransmissions so the peer's in-flight [`send_reliable`]
    /// calls can complete after this side's last logical receive — the
    /// TIME_WAIT analog. Call before dropping the session at the end of a
    /// run; a disconnect also ends the linger (quietly: the peer is gone,
    /// so there is nothing left to service).
    ///
    /// [`send_reliable`]: ServerSession::send_reliable
    pub fn linger(&mut self, grace: Duration) {
        while self.read_one(grace).is_ok() {}
    }

    /// Reads and processes one frame. Returns `Ok(Some((epoch, seq)))`
    /// when the frame was an ack, `Ok(None)` otherwise (data frames are
    /// admitted into the inbox as a side effect).
    fn read_one(&mut self, timeout: Duration) -> Result<Option<(u32, u32)>, SessionError> {
        let bytes = self.link.recv_bytes(timeout)?;
        let env = match Envelope::decode(&bytes) {
            Ok(env) => env,
            Err(_) => {
                self.stats.corrupt_frames_rejected =
                    self.stats.corrupt_frames_rejected.saturating_add(1);
                return Ok(None);
            }
        };
        match env.kind {
            FrameKind::Ack => {
                self.stats.acks_received = self.stats.acks_received.saturating_add(1);
                Ok(Some((env.epoch, env.seq)))
            }
            FrameKind::Data => {
                match self.rx.admit(env.epoch, env.seq) {
                    Admit::Stale => {
                        self.stats.stale_epoch_rejected =
                            self.stats.stale_epoch_rejected.saturating_add(1);
                        self.send_ack(env.client, env.epoch, env.seq, env.attempt);
                    }
                    Admit::Dup => {
                        self.stats.dups_dropped = self.stats.dups_dropped.saturating_add(1);
                        self.send_ack(env.client, env.epoch, env.seq, env.attempt);
                    }
                    Admit::Fresh => match Message::decode(&env.payload) {
                        Ok(msg) => {
                            self.send_ack(env.client, env.epoch, env.seq, env.attempt);
                            self.stats.data_frames_delivered =
                                self.stats.data_frames_delivered.saturating_add(1);
                            self.inbox.push_back(msg);
                        }
                        Err(_) => {
                            // Checksummed frame with an undecodable payload:
                            // a sender-side framing bug. Un-admit so a good
                            // copy could still deliver, never ack garbage.
                            self.rx.seen.remove(&(env.epoch, env.seq));
                            self.stats.corrupt_frames_rejected =
                                self.stats.corrupt_frames_rejected.saturating_add(1);
                        }
                    },
                }
                Ok(None)
            }
        }
    }

    fn send_ack(&mut self, client: u32, epoch: u32, seq: u32, attempt: u16) {
        // Ack loss is recovered by peer retransmission; a disconnect will
        // surface on the session's next send/recv.
        if self.link.send_bytes(Envelope::ack(client, epoch, seq, attempt).encode()).is_ok() {
            self.stats.acks_sent = self.stats.acks_sent.saturating_add(1);
        }
    }
}

/// The server's reliable session over any [`ServerByteLink`]: per-client
/// sequence numbers and dedup state, one shared inbox.
#[derive(Debug)]
pub struct ServerSession<L: ServerByteLink> {
    link: L,
    epoch: u32,
    next_seq: Vec<u32>,
    rx: Vec<RxState>,
    inbox: VecDeque<(usize, Message)>,
    config: SessionConfig,
    stats: ReliabilityStats,
}

impl<L: ServerByteLink> ServerSession<L> {
    /// Wraps `link` (sizing per-client state from its client count).
    pub fn new(link: L, config: SessionConfig) -> Self {
        let n = link.client_count();
        ServerSession {
            link,
            epoch: 0,
            next_seq: vec![0; n],
            rx: (0..n).map(|_| RxState::default()).collect(),
            inbox: VecDeque::new(),
            config,
            stats: ReliabilityStats::default(),
        }
    }

    /// Advances every client session to round `epoch` (see
    /// [`ClientSession::begin_epoch`]).
    pub fn begin_epoch(&mut self, epoch: u32) {
        self.epoch = epoch;
        for s in &mut self.next_seq {
            *s = 0;
        }
        for rx in &mut self.rx {
            rx.begin_epoch(epoch);
        }
    }

    /// Current epoch.
    pub fn epoch(&self) -> u32 {
        self.epoch
    }

    /// Aggregate reliability counters across all client sessions.
    pub fn stats(&self) -> ReliabilityStats {
        self.stats
    }

    /// The wrapped link (e.g. to read its transport or chaos stats).
    pub fn link(&self) -> &L {
        &self.link
    }

    /// Number of client sessions.
    pub fn client_count(&self) -> usize {
        self.rx.len()
    }

    /// Reliably sends `msg` to `client` (see
    /// [`ClientSession::send_reliable`]).
    ///
    /// # Errors
    ///
    /// [`SessionError::RetriesExhausted`] when the retry budget runs out;
    /// [`SessionError::Bus`] on disconnect or unknown client.
    pub fn send_reliable(&mut self, client: usize, msg: &Message) -> Result<(), SessionError> {
        let client_u32 = u32::try_from(client).unwrap_or(u32::MAX);
        let payload = msg.encode();
        let payload_len = payload.len();
        let seq = {
            let slot = self.next_seq.get_mut(client).ok_or(BusError::Disconnected)?;
            let seq = *slot;
            *slot = slot.wrapping_add(1);
            seq
        };
        // Encode the envelope once for this (epoch, seq); each attempt only
        // re-stamps the attempt field and checksum in the cached bytes.
        let mut frame = Envelope::data(client_u32, self.epoch, seq, 0, payload).encode();
        let mut attempt: u32 = 0;
        loop {
            restamp_attempt(&mut frame, u16::try_from(attempt).unwrap_or(u16::MAX));
            self.link.send_bytes_to(client, frame.clone())?;
            self.stats.data_frames_sent = self.stats.data_frames_sent.saturating_add(1);
            if attempt > 0 {
                self.stats.retransmits = self.stats.retransmits.saturating_add(1);
                self.stats.retransmitted_bytes = self
                    .stats
                    .retransmitted_bytes
                    .saturating_add(u64::try_from(payload_len).unwrap_or(u64::MAX));
            }
            let wait = self.config.wait_for(attempt);
            loop {
                match self.read_one(wait) {
                    Err(SessionError::Bus(BusError::Timeout)) => break,
                    Err(e) => return Err(e),
                    Ok(Some((c, e, s))) if c == client && e == self.epoch && s == seq => {
                        return Ok(())
                    }
                    Ok(_) => {}
                }
            }
            if attempt >= self.config.max_retries {
                return Err(SessionError::RetriesExhausted {
                    client: client_u32,
                    epoch: self.epoch,
                    seq,
                    attempts: attempt.saturating_add(1),
                });
            }
            attempt = attempt.saturating_add(1);
        }
    }

    /// Reliably sends `msg` to every client, in client order.
    ///
    /// # Errors
    ///
    /// Returns the first per-client failure.
    pub fn broadcast_reliable(&mut self, msg: &Message) -> Result<(), SessionError> {
        for c in 0..self.client_count() {
            self.send_reliable(c, msg)?;
        }
        Ok(())
    }

    /// Receives the next exactly-once `(client, message)` pair.
    ///
    /// # Errors
    ///
    /// [`SessionError::Bus`] with [`BusError::Timeout`] when nothing
    /// deliverable arrives within one quiet `timeout` window.
    pub fn recv_reliable(&mut self, timeout: Duration) -> Result<(usize, Message), SessionError> {
        loop {
            if let Some(pair) = self.inbox.pop_front() {
                return Ok(pair);
            }
            self.read_one(timeout)?;
        }
    }

    /// Services the link until `grace` elapses with no traffic, re-acking
    /// late retransmissions so clients' in-flight
    /// [`ClientSession::send_reliable`] calls can complete after the
    /// server's last logical receive — the TIME_WAIT analog. Call in a
    /// loop until every client is done; a disconnect also ends the linger
    /// (quietly: the peers are gone, so there is nothing left to service).
    pub fn linger(&mut self, grace: Duration) {
        while self.read_one(grace).is_ok() {}
    }

    /// Reads and processes one frame. Returns `Ok(Some((client, epoch,
    /// seq)))` for an ack, `Ok(None)` otherwise.
    fn read_one(&mut self, timeout: Duration) -> Result<Option<(usize, u32, u32)>, SessionError> {
        let bytes = self.link.recv_bytes(timeout)?;
        let env = match Envelope::decode(&bytes) {
            Ok(env) => env,
            Err(_) => {
                self.stats.corrupt_frames_rejected =
                    self.stats.corrupt_frames_rejected.saturating_add(1);
                return Ok(None);
            }
        };
        let client = usize::try_from(env.client).unwrap_or(usize::MAX);
        if self.rx.get(client).is_none() {
            // A well-formed frame for a client slot we do not have is
            // indistinguishable from corruption that survived the checksum.
            self.stats.corrupt_frames_rejected =
                self.stats.corrupt_frames_rejected.saturating_add(1);
            return Ok(None);
        }
        match env.kind {
            FrameKind::Ack => {
                self.stats.acks_received = self.stats.acks_received.saturating_add(1);
                Ok(Some((client, env.epoch, env.seq)))
            }
            FrameKind::Data => {
                let admit = self
                    .rx
                    .get_mut(client)
                    .map(|rx| rx.admit(env.epoch, env.seq))
                    .unwrap_or(Admit::Stale);
                match admit {
                    Admit::Stale => {
                        self.stats.stale_epoch_rejected =
                            self.stats.stale_epoch_rejected.saturating_add(1);
                        self.send_ack(client, env.epoch, env.seq, env.attempt);
                    }
                    Admit::Dup => {
                        self.stats.dups_dropped = self.stats.dups_dropped.saturating_add(1);
                        self.send_ack(client, env.epoch, env.seq, env.attempt);
                    }
                    Admit::Fresh => match Message::decode(&env.payload) {
                        Ok(msg) => {
                            self.send_ack(client, env.epoch, env.seq, env.attempt);
                            self.stats.data_frames_delivered =
                                self.stats.data_frames_delivered.saturating_add(1);
                            self.inbox.push_back((client, msg));
                        }
                        Err(_) => {
                            if let Some(rx) = self.rx.get_mut(client) {
                                rx.seen.remove(&(env.epoch, env.seq));
                            }
                            self.stats.corrupt_frames_rejected =
                                self.stats.corrupt_frames_rejected.saturating_add(1);
                        }
                    },
                }
                Ok(None)
            }
        }
    }

    fn send_ack(&mut self, client: usize, epoch: u32, seq: u32, attempt: u16) {
        let client_u32 = u32::try_from(client).unwrap_or(u32::MAX);
        if self
            .link
            .send_bytes_to(client, Envelope::ack(client_u32, epoch, seq, attempt).encode())
            .is_ok()
        {
            self.stats.acks_sent = self.stats.acks_sent.saturating_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalBus, SparseValues};

    const T: Duration = Duration::from_millis(500);

    fn cfg() -> SessionConfig {
        SessionConfig {
            max_retries: 4,
            ack_timeout: Duration::from_millis(30),
            backoff: Duration::from_millis(10),
        }
    }

    #[test]
    fn envelope_roundtrips() {
        for env in [
            Envelope::data(3, 7, 11, 2, Message::Pull { client: 3 }.encode()),
            Envelope::data(0, 0, 0, 0, Vec::new()),
            Envelope::ack(9, 1, 5, 2),
        ] {
            let bytes = env.encode();
            assert_eq!(bytes.len(), ENVELOPE_OVERHEAD + env.payload.len());
            assert_eq!(Envelope::decode(&bytes).unwrap(), env);
            let (kind, client, epoch, seq, attempt) = Envelope::peek_header(&bytes).unwrap();
            assert_eq!(
                (kind, client, epoch, seq, attempt),
                (env.kind, env.client, env.epoch, env.seq, env.attempt)
            );
        }
    }

    #[test]
    fn restamped_frame_is_bit_identical_to_a_fresh_encode() {
        // The retransmission loops cache one encoding and re-stamp the
        // attempt field; the wire bytes must be indistinguishable from
        // encoding a fresh envelope at that attempt.
        let payload = Message::Pull { client: 3 }.encode();
        let mut frame = Envelope::data(3, 7, 11, 0, payload.clone()).encode();
        for attempt in [0u16, 1, 2, 9, u16::MAX] {
            restamp_attempt(&mut frame, attempt);
            let fresh = Envelope::data(3, 7, 11, attempt, payload.clone()).encode();
            assert_eq!(frame, fresh, "attempt {attempt}");
            assert_eq!(Envelope::decode(&frame).unwrap().attempt, attempt);
        }
        // Degenerate inputs must not panic or write out of bounds.
        restamp_attempt(&mut [], 1);
        restamp_attempt(&mut [0u8; 3], 1);
    }

    #[test]
    fn envelope_rejects_corruption_truncation_and_splices() {
        let env = Envelope::data(1, 2, 3, 0, Message::Shutdown.encode());
        let good = env.encode();
        // Every single-bit flip is caught (checksum or structure).
        for pos in 0..good.len() {
            for bit in 0..8 {
                let mut bad = good.clone();
                bad[pos] ^= 1 << bit;
                assert_ne!(Envelope::decode(&bad).ok(), Some(env.clone()), "flip at {pos}:{bit}");
            }
        }
        // Every truncation errors.
        for cut in 1..good.len() {
            assert!(Envelope::decode(&good[..good.len() - cut]).is_err(), "cut {cut}");
        }
        // A splice of two whole frames is rejected, not half-decoded.
        let mut spliced = good.clone();
        spliced.extend_from_slice(&Envelope::ack(1, 2, 3, 0).encode());
        assert_eq!(Envelope::decode(&spliced), Err(EnvelopeError::TrailingBytes));
        // Garbage never panics.
        assert!(Envelope::decode(&[]).is_err());
        assert!(Envelope::decode(&[0xF5, 0x5E, 1, 1]).is_err());
    }

    #[test]
    fn reliable_roundtrip_over_clean_bus() {
        // send_reliable blocks until the peer acks, so (as with the raw
        // bus) each side of the session lives on its own thread.
        let (server, mut clients) = LocalBus::star(2);
        let mut srv = ServerSession::new(server, cfg());
        let c1 = clients.remove(1);
        let model = Message::Model { round: 0, values: SparseValues::dense(vec![1.0, 2.0]) };
        let expect = model.clone();
        let handle = std::thread::spawn(move || {
            let mut cs = ClientSession::new(c1, 1, cfg());
            cs.send_reliable(&Message::Pull { client: 1 }).unwrap();
            assert_eq!(cs.recv_reliable(T).unwrap(), expect);
            cs.stats()
        });
        let (from, msg) = srv.recv_reliable(T).unwrap();
        assert_eq!((from, msg), (1, Message::Pull { client: 1 }));
        srv.send_reliable(1, &model).unwrap();
        let client_stats = handle.join().unwrap();

        // Clean path: no retries, no dups, one data frame + ack each way.
        for s in [client_stats, srv.stats()] {
            assert_eq!(s.retransmits, 0);
            assert_eq!(s.retransmitted_bytes, 0);
            assert_eq!(s.dups_dropped, 0);
            assert_eq!(s.corrupt_frames_rejected, 0);
            assert_eq!(s.data_frames_sent, 1);
            assert_eq!(s.data_frames_delivered, 1);
            assert_eq!(s.acks_sent, 1);
            assert_eq!(s.acks_received, 1);
        }
    }

    #[test]
    fn duplicate_data_frames_are_delivered_once_and_reacked() {
        let (server, mut clients) = LocalBus::star(1);
        let mut srv = ServerSession::new(server, cfg());
        let client = clients.remove(0);
        // Hand-craft the same data frame twice (a wire duplicate).
        let payload = Message::Pull { client: 0 }.encode();
        let frame = Envelope::data(0, 0, 0, 0, payload).encode();
        crate::bus::ByteLink::send_bytes(&client, frame.clone()).unwrap();
        crate::bus::ByteLink::send_bytes(&client, frame).unwrap();
        let (from, msg) = srv.recv_reliable(T).unwrap();
        assert_eq!((from, msg), (0, Message::Pull { client: 0 }));
        // No second delivery; the dup was dropped but still acked.
        assert!(srv.recv_reliable(Duration::from_millis(20)).is_err());
        assert_eq!(srv.stats().data_frames_delivered, 1);
        assert_eq!(srv.stats().dups_dropped, 1);
        assert_eq!(srv.stats().acks_sent, 2);
        // Both acks arrived at the client endpoint.
        let a = crate::bus::ByteLink::recv_bytes(&client, T).unwrap();
        let b = crate::bus::ByteLink::recv_bytes(&client, T).unwrap();
        assert_eq!(Envelope::decode(&a).unwrap(), Envelope::ack(0, 0, 0, 0));
        assert_eq!(Envelope::decode(&b).unwrap(), Envelope::ack(0, 0, 0, 0));
    }

    #[test]
    fn stale_epoch_frames_are_rejected_but_acked() {
        let (server, mut clients) = LocalBus::star(1);
        let mut srv = ServerSession::new(server, cfg());
        srv.begin_epoch(3);
        let client = clients.remove(0);
        let frame = Envelope::data(0, 2, 0, 0, Message::Pull { client: 0 }.encode()).encode();
        crate::bus::ByteLink::send_bytes(&client, frame).unwrap();
        assert!(srv.recv_reliable(Duration::from_millis(20)).is_err());
        assert_eq!(srv.stats().stale_epoch_rejected, 1);
        assert_eq!(srv.stats().data_frames_delivered, 0);
        assert_eq!(srv.stats().acks_sent, 1, "stale frames still ack so the sender stops");
    }

    #[test]
    fn lost_ack_causes_retransmit_and_dedup_absorbs_it() {
        // Server endpoint that never sends acks: drop the server->client
        // direction by receiving raw and never replying, then check the
        // client gives up after its budget.
        let (server, mut clients) = LocalBus::star(1);
        let client = clients.remove(0);
        let mut cs = ClientSession::new(
            client,
            0,
            SessionConfig {
                max_retries: 2,
                ack_timeout: Duration::from_millis(10),
                backoff: Duration::from_millis(5),
            },
        );
        let err = cs.send_reliable(&Message::Pull { client: 0 }).unwrap_err();
        assert_eq!(
            err,
            SessionError::RetriesExhausted { client: 0, epoch: 0, seq: 0, attempts: 3 }
        );
        assert_eq!(cs.stats().retransmits, 2);
        assert!(cs.stats().retransmitted_bytes > 0);
        // All three attempts are on the server inbox; attempts are marked.
        let mut attempts = Vec::new();
        for _ in 0..3 {
            let bytes = crate::bus::ServerByteLink::recv_bytes(&server, T).unwrap();
            attempts.push(Envelope::decode(&bytes).unwrap().attempt);
        }
        assert_eq!(attempts, vec![0, 1, 2]);
    }

    #[test]
    fn corrupt_frames_are_counted_and_survived() {
        let (server, mut clients) = LocalBus::star(1);
        let mut srv = ServerSession::new(server, cfg());
        let client = clients.remove(0);
        crate::bus::ByteLink::send_bytes(&client, vec![1, 2, 3, 4]).unwrap();
        let mut good = Envelope::data(0, 0, 0, 0, Message::Pull { client: 0 }.encode()).encode();
        let last = good.len() - 1;
        good[last] ^= 0xFF; // break the checksum
        crate::bus::ByteLink::send_bytes(&client, good).unwrap();
        assert!(srv.recv_reliable(Duration::from_millis(20)).is_err());
        assert_eq!(srv.stats().corrupt_frames_rejected, 2);
        assert_eq!(srv.stats().data_frames_delivered, 0);
    }

    #[test]
    fn stats_merge_saturates() {
        let a = ReliabilityStats { retransmitted_bytes: u64::MAX - 1, ..Default::default() };
        let b = ReliabilityStats { retransmitted_bytes: 100, acks_sent: 3, ..Default::default() };
        let m = a.merged(&b);
        assert_eq!(m.retransmitted_bytes, u64::MAX);
        assert_eq!(m.acks_sent, 3);
    }
}
