//! Deterministic wire-fault injection: a decorator over any byte link.
//!
//! [`ChaosClient`] and [`ChaosServer`] wrap a [`ByteLink`] /
//! [`ServerByteLink`] and apply a [`FaultPlan`]'s wire knobs to every
//! frame the wrapped link *sends*: drop, bit corruption, duplication,
//! one-slot reordering, and multi-slot delay. Receiving passes through
//! untouched (each direction of a link is chaos'd by its sender, so no
//! frame is faulted twice).
//!
//! Every decision is a pure hash of `(seed, link, epoch, seq, attempt)` —
//! the same splitmix-style scheme the emulation uses for client dropouts
//! and corruption — read from the envelope header of the frame being
//! sent. Two consequences:
//!
//! * runs are exactly reproducible: same seed, same traffic, same faults,
//!   regardless of thread interleaving;
//! * a *retransmission* carries a fresh attempt number and therefore rolls
//!   a fresh decision, so the session layer's retries genuinely make
//!   progress instead of replaying the identical fate.
//!
//! Delay and reorder are modelled with a tick-based holdback queue: the
//! link's logical clock advances once per send, and a held frame is
//! released after the frame that advances the clock past its release tick
//! — i.e. a reordered frame is delivered right *after* its successor.
//! Because every release needs a later send, liveness comes from the
//! session layer's retransmissions (each retry ticks the clock); a final
//! [`ChaosClient::flush`] drains anything still held at shutdown.

use crate::bus::{ByteLink, ServerByteLink};
use crate::session::{Envelope, FrameKind};
use crate::BusError;
use fedsu_netsim::{FaultPlan, WireFrame};
use parking_lot::Mutex;
use std::time::Duration;

/// Counters of what the chaos decorator did to one link (or, from
/// [`ChaosServer::stats`], all links summed).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChaosStats {
    /// Frames offered to the decorator.
    pub frames: u64,
    /// Frames silently dropped.
    pub drops: u64,
    /// Bytes of the dropped frames (these never reach the inner link's
    /// counters).
    pub dropped_bytes: u64,
    /// Frames delivered with deterministically flipped bits.
    pub corruptions: u64,
    /// Extra copies injected by duplication.
    pub duplicates: u64,
    /// Frames held back one slot (delivered after their successor).
    pub reorders: u64,
    /// Frames held back `wire_delay_depth` slots.
    pub delays: u64,
}

impl ChaosStats {
    /// Element-wise saturating sum of two stats blocks.
    pub fn merged(&self, other: &ChaosStats) -> ChaosStats {
        ChaosStats {
            frames: self.frames.saturating_add(other.frames),
            drops: self.drops.saturating_add(other.drops),
            dropped_bytes: self.dropped_bytes.saturating_add(other.dropped_bytes),
            corruptions: self.corruptions.saturating_add(other.corruptions),
            duplicates: self.duplicates.saturating_add(other.duplicates),
            reorders: self.reorders.saturating_add(other.reorders),
            delays: self.delays.saturating_add(other.delays),
        }
    }
}

/// A frame awaiting release from the holdback queue.
#[derive(Debug)]
struct Pending {
    release: u64,
    order: u64,
    bytes: Vec<u8>,
}

/// Per-direction chaos state: a logical clock (one tick per send), the
/// holdback queue, and a counter that keys fault decisions for frames
/// without a readable envelope header.
#[derive(Debug, Default)]
struct LinkState {
    tick: u64,
    order: u64,
    fallback_seq: u64,
    pending: Vec<Pending>,
    stats: ChaosStats,
    /// Reusable staging area for frames due on the wire: taken under the
    /// lock, drained by the caller after releasing it, then stored back so
    /// steady-state sends never reallocate the outer vector.
    due_scratch: Vec<Vec<u8>>,
}

const DIR_TO_SERVER: u64 = 0;
const DIR_TO_CLIENT: u64 = 1;

/// Folds destination client, direction, and frame kind into one link id so
/// e.g. a data frame and the ack it provokes never share a fault decision.
fn link_id(client: u64, dir: u64, kind: Option<FrameKind>) -> u64 {
    let kind_bit = match kind {
        Some(FrameKind::Ack) => 1,
        _ => 0,
    };
    client.wrapping_mul(4).wrapping_add(dir.wrapping_mul(2)).wrapping_add(kind_bit)
}

/// Derives the deterministic fault key for `bytes` on the (client, dir)
/// link: the envelope header when one is readable, else a per-link counter
/// (still deterministic for a fixed traffic order).
fn frame_key(client: u64, dir: u64, bytes: &[u8], state: &mut LinkState) -> WireFrame {
    if let Some((kind, _, epoch, seq, attempt)) = Envelope::peek_header(bytes) {
        WireFrame {
            link: link_id(client, dir, Some(kind)),
            epoch: u64::from(epoch),
            seq: u64::from(seq),
            attempt: u64::from(attempt),
        }
    } else {
        state.fallback_seq = state.fallback_seq.wrapping_add(1);
        WireFrame { link: link_id(client, dir, None), epoch: u64::MAX, seq: state.fallback_seq, attempt: 0 }
    }
}

/// Applies the plan's wire faults to one outgoing frame and appends to
/// `out`, in delivery order, every frame now due on the wire: the frame
/// itself (after corruption, with its duplicate first) when delivered
/// immediately, followed by any held frames whose tick has matured. Fault
/// decisions and queue mutations happen here, under the caller's state
/// lock; the caller performs the actual sends *after* releasing it, so no
/// lock guard is ever held across wire I/O.
fn chaos_send(
    plan: &FaultPlan,
    client: u64,
    dir: u64,
    state: &mut LinkState,
    mut bytes: Vec<u8>,
    out: &mut Vec<Vec<u8>>,
) {
    state.tick = state.tick.wrapping_add(1);
    state.stats.frames = state.stats.frames.saturating_add(1);
    let key = frame_key(client, dir, &bytes, state);
    if plan.wire_drops(&key) {
        state.stats.drops = state.stats.drops.saturating_add(1);
        state.stats.dropped_bytes = state
            .stats
            .dropped_bytes
            .saturating_add(u64::try_from(bytes.len()).unwrap_or(u64::MAX));
    } else {
        if plan.wire_corrupts(&key) {
            plan.corrupt_frame(&key, &mut bytes);
            state.stats.corruptions = state.stats.corruptions.saturating_add(1);
        }
        let duplicate = plan.wire_duplicates(&key);
        if duplicate {
            state.stats.duplicates = state.stats.duplicates.saturating_add(1);
        }
        let hold = {
            let d = plan.wire_delay(&key);
            if d > 0 {
                state.stats.delays = state.stats.delays.saturating_add(1);
                d
            } else if plan.wire_reorders(&key) {
                state.stats.reorders = state.stats.reorders.saturating_add(1);
                1
            } else {
                0
            }
        };
        if hold == 0 {
            out.reserve(if duplicate { 2 } else { 1 });
            if duplicate {
                out.push(bytes.clone());
            }
            out.push(bytes);
        } else {
            let release = state.tick.wrapping_add(u64::try_from(hold).unwrap_or(u64::MAX));
            let copies = if duplicate { 2 } else { 1 };
            state.pending.reserve(copies);
            for i in 0..copies {
                state.order = state.order.wrapping_add(1);
                let payload = if i + 1 < copies { bytes.clone() } else { std::mem::take(&mut bytes) };
                state.pending.push(Pending { release, order: state.order, bytes: payload });
            }
        }
    }
    release_matured(state, out);
}

/// Moves every held frame whose release tick has passed onto `out`, oldest
/// first, for the caller to deliver once the state lock is released. The
/// holdback queue is re-sorted in place; order among still-held frames is
/// irrelevant because every release sorts by `(release, order)` again.
fn release_matured(state: &mut LinkState, out: &mut Vec<Vec<u8>>) {
    let tick = state.tick;
    if !state.pending.iter().any(|p| p.release <= tick) {
        return;
    }
    state.pending.sort_by_key(|p| (p.release, p.order));
    let split = state.pending.partition_point(|p| p.release <= tick);
    out.reserve(split);
    for p in state.pending.drain(..split) {
        out.push(p.bytes);
    }
}

/// Moves the entire holdback queue onto `out` (shutdown / end-of-round),
/// oldest first, for the caller to deliver once the state lock is released.
fn release_all(state: &mut LinkState, out: &mut Vec<Vec<u8>>) {
    state.pending.sort_by_key(|p| (p.release, p.order));
    out.reserve(state.pending.len());
    for p in state.pending.drain(..) {
        out.push(p.bytes);
    }
}

/// A [`ByteLink`] decorator injecting the plan's deterministic wire faults
/// into everything the wrapped client endpoint sends.
#[derive(Debug)]
pub struct ChaosClient<L: ByteLink> {
    inner: L,
    plan: FaultPlan,
    client: u64,
    state: Mutex<LinkState>,
}

impl<L: ByteLink> ChaosClient<L> {
    /// Wraps client `client`'s link with `plan`'s wire faults.
    pub fn new(inner: L, plan: FaultPlan, client: usize) -> Self {
        ChaosClient {
            inner,
            plan,
            client: u64::try_from(client).unwrap_or(u64::MAX),
            state: Mutex::new(LinkState::default()),
        }
    }

    /// What the decorator has done so far on this link.
    pub fn stats(&self) -> ChaosStats {
        self.state.lock().stats
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Delivers every frame still held in the delay queue.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped link's send failure.
    pub fn flush(&self) -> Result<(), BusError> {
        let mut due = {
            let mut state = self.state.lock();
            let mut out = std::mem::take(&mut state.due_scratch);
            out.clear();
            release_all(&mut state, &mut out);
            out
        };
        for b in due.drain(..) {
            self.inner.send_bytes(b)?;
        }
        self.state.lock().due_scratch = due;
        Ok(())
    }
}

impl<L: ByteLink> ByteLink for ChaosClient<L> {
    fn send_bytes(&self, bytes: Vec<u8>) -> Result<(), BusError> {
        if self.plan.wire_is_zero() {
            return self.inner.send_bytes(bytes);
        }
        // Decide fates and mutate the holdback queue under the lock; put
        // the due frames on the wire only after it is released. The staging
        // vector is borrowed from the link state and handed back afterward
        // so its capacity survives from send to send.
        let mut due = {
            let mut state = self.state.lock();
            let mut out = std::mem::take(&mut state.due_scratch);
            out.clear();
            chaos_send(&self.plan, self.client, DIR_TO_SERVER, &mut state, bytes, &mut out);
            out
        };
        for b in due.drain(..) {
            self.inner.send_bytes(b)?;
        }
        self.state.lock().due_scratch = due;
        Ok(())
    }

    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, BusError> {
        self.inner.recv_bytes(timeout)
    }
}

/// A [`ServerByteLink`] decorator injecting the plan's deterministic wire
/// faults into everything the wrapped server endpoint sends, with
/// independent per-destination chaos state.
#[derive(Debug)]
pub struct ChaosServer<L: ServerByteLink> {
    inner: L,
    plan: FaultPlan,
    states: Vec<Mutex<LinkState>>,
}

impl<L: ServerByteLink> ChaosServer<L> {
    /// Wraps the server link with `plan`'s wire faults.
    pub fn new(inner: L, plan: FaultPlan) -> Self {
        let n = inner.client_count();
        ChaosServer { inner, plan, states: (0..n).map(|_| Mutex::new(LinkState::default())).collect() }
    }

    /// Decorator counters summed over every destination link.
    pub fn stats(&self) -> ChaosStats {
        self.states
            .iter()
            .fold(ChaosStats::default(), |acc, s| acc.merged(&s.lock().stats))
    }

    /// Decorator counters for the link toward one client.
    pub fn stats_for(&self, client: usize) -> ChaosStats {
        self.states.get(client).map(|s| s.lock().stats).unwrap_or_default()
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// Delivers every frame still held in any destination's delay queue.
    ///
    /// # Errors
    ///
    /// Propagates the first send failure.
    pub fn flush(&self) -> Result<(), BusError> {
        for (client, state) in self.states.iter().enumerate() {
            let mut due = {
                let mut state = state.lock();
                let mut out = std::mem::take(&mut state.due_scratch);
                out.clear();
                release_all(&mut state, &mut out);
                out
            };
            for b in due.drain(..) {
                self.inner.send_bytes_to(client, b)?;
            }
            state.lock().due_scratch = due;
        }
        Ok(())
    }
}

impl<L: ServerByteLink> ServerByteLink for ChaosServer<L> {
    fn send_bytes_to(&self, client: usize, bytes: Vec<u8>) -> Result<(), BusError> {
        if self.plan.wire_is_zero() {
            return self.inner.send_bytes_to(client, bytes);
        }
        let Some(state) = self.states.get(client) else {
            return Err(BusError::Disconnected);
        };
        // Same discipline as the client side: fates under the lock, wire
        // I/O after it is released.
        let mut due = {
            let mut guard = state.lock();
            let mut out = std::mem::take(&mut guard.due_scratch);
            out.clear();
            chaos_send(
                &self.plan,
                u64::try_from(client).unwrap_or(u64::MAX),
                DIR_TO_CLIENT,
                &mut guard,
                bytes,
                &mut out,
            );
            out
        };
        for b in due.drain(..) {
            self.inner.send_bytes_to(client, b)?;
        }
        state.lock().due_scratch = due;
        Ok(())
    }

    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, BusError> {
        self.inner.recv_bytes(timeout)
    }

    fn client_count(&self) -> usize {
        self.inner.client_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LocalBus, Message};
    use fedsu_netsim::FaultConfig;

    const T: Duration = Duration::from_millis(500);

    fn plan(config: FaultConfig) -> FaultPlan {
        FaultPlan::new(config)
    }

    fn frame(seq: u32) -> Vec<u8> {
        Envelope::data(0, 0, seq, 0, Message::Pull { client: 0 }.encode()).encode()
    }

    #[test]
    fn zero_plan_is_fully_transparent() {
        let (server, mut clients) = LocalBus::star(1);
        let chaos = ChaosClient::new(clients.remove(0), plan(FaultConfig::default()), 0);
        for seq in 0..8 {
            chaos.send_bytes(frame(seq)).unwrap();
        }
        for seq in 0..8 {
            let got = ServerByteLink::recv_bytes(&server, T).unwrap();
            assert_eq!(got, frame(seq), "zero plan must not drop, mutate, or reorder");
        }
        assert_eq!(chaos.stats(), ChaosStats::default());
    }

    #[test]
    fn chaos_is_deterministic_across_runs() {
        let config = FaultConfig {
            wire_drop_prob: 0.2,
            wire_corrupt_prob: 0.2,
            wire_duplicate_prob: 0.2,
            wire_reorder_prob: 0.2,
            wire_delay_prob: 0.1,
            seed: 7,
            ..FaultConfig::default()
        };
        let run = || {
            let (server, mut clients) = LocalBus::star(1);
            let chaos = ChaosClient::new(clients.remove(0), plan(config.clone()), 0);
            for seq in 0..64 {
                chaos.send_bytes(frame(seq)).unwrap();
            }
            chaos.flush().unwrap();
            let mut out = Vec::new();
            while let Ok(bytes) = ServerByteLink::recv_bytes(&server, Duration::from_millis(10)) {
                out.push(bytes);
            }
            (out, chaos.stats())
        };
        let (a, sa) = run();
        let (b, sb) = run();
        assert_eq!(a, b, "same plan + traffic must give byte-identical wire output");
        assert_eq!(sa, sb);
        assert!(sa.drops > 0 || sa.corruptions > 0 || sa.duplicates > 0, "plan should act at these rates");
    }

    #[test]
    fn drops_never_reach_the_inner_link() {
        let config =
            FaultConfig { wire_drop_prob: 1.0, seed: 3, ..FaultConfig::default() };
        let (server, mut clients) = LocalBus::star(1);
        let chaos = ChaosClient::new(clients.remove(0), plan(config), 0);
        for seq in 0..4 {
            chaos.send_bytes(frame(seq)).unwrap();
        }
        assert!(ServerByteLink::recv_bytes(&server, Duration::from_millis(10)).is_err());
        let stats = chaos.stats();
        assert_eq!(stats.drops, 4);
        assert!(stats.dropped_bytes > 0);
        assert_eq!(chaos.inner().stats().messages_sent, 0, "dropped frames never hit the wire");
    }

    #[test]
    fn duplicates_arrive_twice_and_delays_release_on_later_sends() {
        let config =
            FaultConfig { wire_duplicate_prob: 1.0, seed: 11, ..FaultConfig::default() };
        let (server, mut clients) = LocalBus::star(1);
        let chaos = ChaosClient::new(clients.remove(0), plan(config), 0);
        chaos.send_bytes(frame(0)).unwrap();
        let a = ServerByteLink::recv_bytes(&server, T).unwrap();
        let b = ServerByteLink::recv_bytes(&server, T).unwrap();
        assert_eq!(a, frame(0));
        assert_eq!(b, frame(0));

        let config = FaultConfig {
            wire_delay_prob: 1.0,
            wire_delay_depth: 2,
            seed: 11,
            ..FaultConfig::default()
        };
        let (server, mut clients) = LocalBus::star(1);
        let chaos = ChaosClient::new(clients.remove(0), plan(config), 0);
        // Every frame is held 2 ticks: frame 0 (sent at tick 1, release 3)
        // must come out only after the tick-3 send.
        chaos.send_bytes(frame(0)).unwrap();
        chaos.send_bytes(frame(1)).unwrap();
        assert!(
            ServerByteLink::recv_bytes(&server, Duration::from_millis(10)).is_err(),
            "nothing released before its tick"
        );
        chaos.send_bytes(frame(2)).unwrap();
        let got = ServerByteLink::recv_bytes(&server, T).unwrap();
        assert_eq!(got, frame(0), "held frame released once the clock passes its tick");
        chaos.flush().unwrap();
        assert_eq!(ServerByteLink::recv_bytes(&server, T).unwrap(), frame(1));
        assert_eq!(ServerByteLink::recv_bytes(&server, T).unwrap(), frame(2));
        assert_eq!(chaos.stats().delays, 3);
    }

    #[test]
    fn server_side_chaos_is_per_destination() {
        let config = FaultConfig { wire_drop_prob: 0.5, seed: 5, ..FaultConfig::default() };
        let (server, clients) = LocalBus::star(4);
        let chaos = ChaosServer::new(server, plan(config));
        let payload = Message::Shutdown.encode();
        for round in 0..16u32 {
            for c in 0..4 {
                let env = Envelope::data(u32::try_from(c).unwrap_or(0), 0, round, 0, payload.clone());
                chaos.send_bytes_to(c, env.encode()).unwrap();
            }
        }
        let total = chaos.stats();
        assert_eq!(total.frames, 64);
        assert!(total.drops > 0 && total.drops < 64, "p=0.5 must land strictly between");
        let mut per_client_drops = Vec::new();
        for c in 0..4 {
            per_client_drops.push(chaos.stats_for(c).drops);
        }
        assert!(
            per_client_drops.iter().any(|&d| d != per_client_drops[0])
                || per_client_drops.iter().all(|&d| d > 0),
            "destinations draw independent fates: {per_client_drops:?}"
        );
        let mut received = 0;
        for c in &clients {
            while ByteLink::recv_bytes(c, Duration::from_millis(5)).is_ok() {
                received += 1;
            }
        }
        assert_eq!(received, 64 - total.drops, "every non-dropped frame arrives exactly once");
    }

    #[test]
    fn corruption_flips_bits_but_keeps_length() {
        let config = FaultConfig { wire_corrupt_prob: 1.0, seed: 2, ..FaultConfig::default() };
        let (server, mut clients) = LocalBus::star(1);
        let chaos = ChaosClient::new(clients.remove(0), plan(config), 0);
        chaos.send_bytes(frame(0)).unwrap();
        let got = ServerByteLink::recv_bytes(&server, T).unwrap();
        assert_eq!(got.len(), frame(0).len());
        assert_ne!(got, frame(0));
        assert!(Envelope::decode(&got).is_err(), "checksum catches the flip");
        assert_eq!(chaos.stats().corruptions, 1);
    }

    #[test]
    fn retransmissions_roll_fresh_fates() {
        // With p(drop)=0.6 some (seq, attempt=0) frame is dropped while the
        // same seq at attempt=1 passes — the property that makes bounded
        // retries converge under a deterministic plan.
        let config = FaultConfig { wire_drop_prob: 0.6, seed: 13, ..FaultConfig::default() };
        let p = plan(config);
        let (server, mut clients) = LocalBus::star(1);
        let chaos = ChaosClient::new(clients.remove(0), p, 0);
        let mut recovered = false;
        for seq in 0..32u32 {
            chaos.send_bytes(Envelope::data(0, 0, seq, 0, Vec::new()).encode()).unwrap();
            let first = ServerByteLink::recv_bytes(&server, Duration::from_millis(5));
            if first.is_ok() {
                continue;
            }
            chaos.send_bytes(Envelope::data(0, 0, seq, 1, Vec::new()).encode()).unwrap();
            if ServerByteLink::recv_bytes(&server, Duration::from_millis(5)).is_ok() {
                recovered = true;
                break;
            }
        }
        assert!(recovered, "some retransmission must survive where attempt 0 was dropped");
    }
}
