//! # fedsu-transport
//!
//! The paper implements client↔server communication with RPyC (remote
//! Python calls). This crate is the Rust stand-in: typed FL messages with a
//! compact, versioned wire encoding, channel-based endpoints that actually
//! move the encoded bytes between threads, and per-endpoint byte counters —
//! so a "distributed" FedAvg over real threads can be checked bit-for-bit
//! against the in-process emulation (see `tests/distributed_fedavg.rs`).
//!
//! The `fedsu-fl` runtime deliberately does *not* route its inner loop
//! through this transport (the emulation counts bytes analytically, which
//! is what the paper measures); the transport exists to demonstrate that
//! the message protocol is complete and self-consistent — and, since the
//! fault-tolerant session layer landed, that the protocol survives an
//! actively hostile wire.
//!
//! The crate is a small stack:
//!
//! * [`LocalBus`] endpoints move opaque frames between threads and count
//!   bytes ([`ByteLink`] / [`ServerByteLink`] are the seams);
//! * [`ChaosClient`] / [`ChaosServer`] optionally decorate a link with a
//!   seeded [`FaultPlan`]'s wire faults — drop, corruption, duplication,
//!   reordering, delay — every decision a pure hash of
//!   `(client, round epoch, seq, attempt)`, shared with the emulator's
//!   fault model;
//! * [`ClientSession`] / [`ServerSession`] restore exactly-once delivery
//!   on top with acks, bounded deterministic retransmission, `(epoch,
//!   seq)` dedup, and stale-epoch rejection, reporting
//!   [`ReliabilityStats`] whose `retransmitted_bytes` matches the fl
//!   runtime's per-round accounting.
//!
//! ```
//! use fedsu_transport::{Message, SparseValues};
//!
//! let msg = Message::Update { round: 3, client: 1, values: SparseValues::dense(vec![1.0, 2.0]) };
//! let bytes = msg.encode();
//! assert_eq!(Message::decode(&bytes).unwrap(), msg);
//! ```

#![warn(missing_docs)]

mod bus;
mod chaos;
mod message;
mod session;

pub use bus::{
    BusError, ByteLink, ClientEndpoint, LocalBus, ServerByteLink, ServerEndpoint, TransportStats,
};
pub use chaos::{ChaosClient, ChaosServer, ChaosStats};
pub use fedsu_netsim::{FaultConfig, FaultPlan, WireFrame};
pub use message::{DecodeError, Message, QuantizedValues, SparseValues};
pub use session::{
    ClientSession, Envelope, EnvelopeError, FrameKind, ReliabilityStats, ServerSession,
    SessionConfig, SessionError, ENVELOPE_OVERHEAD,
};
