//! # fedsu-transport
//!
//! The paper implements client↔server communication with RPyC (remote
//! Python calls). This crate is the Rust stand-in: typed FL messages with a
//! compact, versioned wire encoding, channel-based endpoints that actually
//! move the encoded bytes between threads, and per-endpoint byte counters —
//! so a "distributed" FedAvg over real threads can be checked bit-for-bit
//! against the in-process emulation (see `tests/distributed_fedavg.rs`).
//!
//! The `fedsu-fl` runtime deliberately does *not* route its inner loop
//! through this transport (the emulation counts bytes analytically, which
//! is what the paper measures); the transport exists to demonstrate that
//! the message protocol is complete and self-consistent.
//!
//! ```
//! use fedsu_transport::{Message, SparseValues};
//!
//! let msg = Message::Update { round: 3, client: 1, values: SparseValues::dense(vec![1.0, 2.0]) };
//! let bytes = msg.encode();
//! assert_eq!(Message::decode(&bytes).unwrap(), msg);
//! ```

#![warn(missing_docs)]

mod bus;
mod message;

pub use bus::{BusError, ClientEndpoint, LocalBus, ServerEndpoint, TransportStats};
pub use message::{DecodeError, Message, SparseValues};
