//! Typed FL messages and their wire encoding.
//!
//! The protocol mirrors Algorithm 1's interaction pattern: clients pull the
//! latest (masked) model, push sparse value updates, push accumulated error
//! reports when a check is due, and joiners request the replicated manager
//! state. All payloads are length-prefixed little-endian.

use bytes::Buf;
use std::fmt;

const MAGIC: u16 = 0xF5ED;
const VERSION: u8 = 1;

/// Parameter values for a subset of scalars.
///
/// When both sides already know the mask (FedSU's replicated masks), only
/// the values travel; an explicit index list is available for protocols
/// without shared masks.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseValues {
    /// Explicit scalar indices, or `None` when the receiver derives them
    /// from shared state (mask-implied).
    pub indices: Option<Vec<u32>>,
    /// The values, in index order.
    pub values: Vec<f32>,
}

impl SparseValues {
    /// Values for every scalar (a dense update).
    pub fn dense(values: Vec<f32>) -> Self {
        SparseValues { indices: None, values }
    }

    /// Values for an explicit index set.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ.
    pub fn sparse(indices: Vec<u32>, values: Vec<f32>) -> Self {
        assert_eq!(indices.len(), values.len(), "indices/values length mismatch");
        SparseValues { indices: Some(indices), values }
    }

    /// Number of scalar values carried.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no values are carried.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        match &self.indices {
            None => buf.push(0),
            Some(idx) => {
                buf.push(1);
                buf.extend_from_slice(&(idx.len() as u32).to_le_bytes());
                for &i in idx {
                    buf.extend_from_slice(&i.to_le_bytes());
                }
            }
        }
        buf.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for &v in &self.values {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }

    fn decode_from(data: &mut &[u8]) -> Result<Self, DecodeError> {
        if data.remaining() < 1 {
            return Err(DecodeError::Truncated);
        }
        let tag = data.get_u8();
        let indices: Option<Vec<u32>> = match tag {
            0 => None,
            1 => {
                if data.remaining() < 4 {
                    return Err(DecodeError::Truncated);
                }
                let n = data.get_u32_le() as usize;
                if data.remaining() < n * 4 {
                    return Err(DecodeError::Truncated);
                }
                Some((0..n).map(|_| data.get_u32_le()).collect())
            }
            other => return Err(DecodeError::BadTag(other)),
        };
        if data.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n = data.get_u32_le() as usize;
        if data.remaining() < n * 4 {
            return Err(DecodeError::Truncated);
        }
        let values = (0..n).map(|_| data.get_f32_le()).collect();
        if let Some(idx) = &indices {
            if idx.len() != n {
                return Err(DecodeError::Inconsistent("index/value counts differ"));
            }
        }
        Ok(SparseValues { indices, values })
    }
}

/// A quantized update payload: one sign+level byte per scalar plus one
/// `f32` scale per fixed-size chunk.
///
/// This is the frame QSGD-style strategies put on the wire; the receiver
/// dequantizes with the strategy's own code-to-value rule. Keeping codes as
/// raw bytes (rather than widening to `f32` at the sender) is the whole
/// point: the framed byte count equals what the byte-accounting emulation
/// charges for a quantized upload.
///
/// Code format: bit 7 is the sign (1 = negative), bits 0–6 the level, so
/// `levels` must be ≤ 126 for `level ≤ levels + 1` to fit.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedValues {
    /// Quantization levels `s` the encoder used (≤ 126).
    pub levels: u32,
    /// Scalars per chunk; the final chunk may be shorter. Zero only when
    /// no codes are carried.
    pub chunk_len: u32,
    /// Per-chunk scale factors, in chunk order.
    pub scales: Vec<f32>,
    /// Sign+level codes, chunks concatenated.
    pub codes: Vec<u8>,
}

impl QuantizedValues {
    /// Assembles a quantized payload.
    ///
    /// # Panics
    ///
    /// Panics if the scale count does not cover the codes (`scales.len()`
    /// must equal `codes.len()` divided by `chunk_len`, rounded up), or if
    /// `levels > 126`.
    pub fn new(levels: u32, chunk_len: u32, scales: Vec<f32>, codes: Vec<u8>) -> Self {
        assert!(levels <= 126, "levels {levels} do not fit 7-bit codes");
        let expected = expected_chunks(codes.len(), chunk_len);
        assert_eq!(
            Some(scales.len()),
            expected,
            "scale count mismatch: {} scales for {} codes in chunks of {}",
            scales.len(),
            codes.len(),
            chunk_len
        );
        QuantizedValues { levels, chunk_len, scales, codes }
    }

    /// Number of quantized scalars carried.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether no scalars are carried.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.extend_from_slice(&self.levels.to_le_bytes());
        buf.extend_from_slice(&self.chunk_len.to_le_bytes());
        buf.extend_from_slice(&(self.scales.len() as u32).to_le_bytes());
        for &s in &self.scales {
            buf.extend_from_slice(&s.to_le_bytes());
        }
        buf.extend_from_slice(&(self.codes.len() as u32).to_le_bytes());
        buf.extend_from_slice(&self.codes);
    }

    fn decode_from(data: &mut &[u8]) -> Result<Self, DecodeError> {
        if data.remaining() < 12 {
            return Err(DecodeError::Truncated);
        }
        let levels = data.get_u32_le();
        if levels > 126 {
            return Err(DecodeError::Inconsistent("quantization levels exceed 7-bit codes"));
        }
        let chunk_len = data.get_u32_le();
        let n_scales = data.get_u32_le() as usize;
        if data.remaining() < n_scales * 4 {
            return Err(DecodeError::Truncated);
        }
        let scales: Vec<f32> = (0..n_scales).map(|_| data.get_f32_le()).collect();
        if data.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let n_codes = data.get_u32_le() as usize;
        let (code_bytes, rest) = data.split_at_checked(n_codes).ok_or(DecodeError::Truncated)?;
        let codes = code_bytes.to_vec();
        *data = rest;
        if expected_chunks(codes.len(), chunk_len) != Some(scales.len()) {
            return Err(DecodeError::Inconsistent("scale count does not cover the codes"));
        }
        if codes.iter().any(|&c| u32::from(c & 0x7f) > levels + 1) {
            return Err(DecodeError::Inconsistent("code level exceeds declared levels"));
        }
        Ok(QuantizedValues { levels, chunk_len, scales, codes })
    }
}

/// Chunk count covering `n_codes` at `chunk_len` scalars each, or `None`
/// when `chunk_len` is zero with codes present (undefined).
fn expected_chunks(n_codes: usize, chunk_len: u32) -> Option<usize> {
    if n_codes == 0 {
        Some(0)
    } else if chunk_len == 0 {
        None
    } else {
        Some(n_codes.div_ceil(chunk_len as usize))
    }
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq)]
pub enum Message {
    /// Client → server: request the latest model (round start).
    Pull {
        /// Requesting client.
        client: u32,
    },
    /// Server → client: the (masked) model values for this round.
    Model {
        /// Round the values belong to.
        round: u32,
        /// Broadcast values.
        values: SparseValues,
    },
    /// Client → server: locally-trained values for the unmasked scalars.
    Update {
        /// Round of the update.
        round: u32,
        /// Reporting client.
        client: u32,
        /// Uploaded values.
        values: SparseValues,
    },
    /// Client → server: accumulated prediction errors for checked scalars.
    ErrorReport {
        /// Round of the report.
        round: u32,
        /// Reporting client.
        client: u32,
        /// Accumulated errors for the check set.
        errors: SparseValues,
    },
    /// Client → server: a fresh participant asks for model + manager state.
    JoinRequest {
        /// Joining client.
        client: u32,
    },
    /// Server → client: the replicated manager state for a joiner.
    JoinState {
        /// Opaque manager snapshot (see `fedsu-core::JoinState`).
        payload: Vec<u8>,
    },
    /// Server → clients: training is over.
    Shutdown,
    /// Client → server: a quantized (QSGD-style) update — 1-byte codes plus
    /// per-chunk scales instead of full `f32` values.
    QuantizedUpdate {
        /// Round of the update.
        round: u32,
        /// Reporting client.
        client: u32,
        /// The quantized payload.
        values: QuantizedValues,
    },
}

impl Message {
    fn tag(&self) -> u8 {
        match self {
            Message::Pull { .. } => 1,
            Message::Model { .. } => 2,
            Message::Update { .. } => 3,
            Message::ErrorReport { .. } => 4,
            Message::JoinRequest { .. } => 5,
            Message::JoinState { .. } => 6,
            Message::Shutdown => 7,
            Message::QuantizedUpdate { .. } => 8,
        }
    }

    /// Serializes the message (magic, version, tag, body).
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        self.encode_into(&mut buf);
        buf
    }

    /// Serializes the message into `buf`, clearing it first. Hot paths call
    /// this with a reused buffer so steady-state encoding allocates nothing
    /// once the buffer has grown to the message's working size.
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        buf.clear();
        buf.extend_from_slice(&MAGIC.to_le_bytes());
        buf.push(VERSION);
        buf.push(self.tag());
        match self {
            Message::Pull { client } | Message::JoinRequest { client } => {
                buf.extend_from_slice(&client.to_le_bytes());
            }
            Message::Model { round, values } => {
                buf.extend_from_slice(&round.to_le_bytes());
                values.encode_into(buf);
            }
            Message::Update { round, client, values } | Message::ErrorReport { round, client, errors: values } => {
                buf.extend_from_slice(&round.to_le_bytes());
                buf.extend_from_slice(&client.to_le_bytes());
                values.encode_into(buf);
            }
            Message::JoinState { payload } => {
                buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
                buf.extend_from_slice(payload);
            }
            Message::Shutdown => {}
            Message::QuantizedUpdate { round, client, values } => {
                buf.extend_from_slice(&round.to_le_bytes());
                buf.extend_from_slice(&client.to_le_bytes());
                values.encode_into(buf);
            }
        }
    }

    /// Parses a message produced by [`Message::encode`].
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError`] on truncation, bad magic/version, or an
    /// unknown tag.
    pub fn decode(mut data: &[u8]) -> Result<Self, DecodeError> {
        if data.remaining() < 4 {
            return Err(DecodeError::Truncated);
        }
        let magic = data.get_u16_le();
        if magic != MAGIC {
            return Err(DecodeError::BadMagic(magic));
        }
        let version = data.get_u8();
        if version != VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let tag = data.get_u8();
        let need_u32 = |data: &mut &[u8]| -> Result<u32, DecodeError> {
            if data.remaining() < 4 {
                Err(DecodeError::Truncated)
            } else {
                Ok(data.get_u32_le())
            }
        };
        match tag {
            1 => Ok(Message::Pull { client: need_u32(&mut data)? }),
            2 => {
                let round = need_u32(&mut data)?;
                let values = SparseValues::decode_from(&mut data)?;
                Ok(Message::Model { round, values })
            }
            3 => {
                let round = need_u32(&mut data)?;
                let client = need_u32(&mut data)?;
                let values = SparseValues::decode_from(&mut data)?;
                Ok(Message::Update { round, client, values })
            }
            4 => {
                let round = need_u32(&mut data)?;
                let client = need_u32(&mut data)?;
                let errors = SparseValues::decode_from(&mut data)?;
                Ok(Message::ErrorReport { round, client, errors })
            }
            5 => Ok(Message::JoinRequest { client: need_u32(&mut data)? }),
            6 => {
                let n = need_u32(&mut data)? as usize;
                let payload = data.get(..n).ok_or(DecodeError::Truncated)?.to_vec();
                Ok(Message::JoinState { payload })
            }
            7 => Ok(Message::Shutdown),
            8 => {
                let round = need_u32(&mut data)?;
                let client = need_u32(&mut data)?;
                let values = QuantizedValues::decode_from(&mut data)?;
                Ok(Message::QuantizedUpdate { round, client, values })
            }
            other => Err(DecodeError::BadTag(other)),
        }
    }
}

/// Wire-decoding errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// Buffer shorter than the declared contents.
    Truncated,
    /// Magic header mismatch.
    BadMagic(u16),
    /// Unsupported protocol version.
    BadVersion(u8),
    /// Unknown message or payload tag.
    BadTag(u8),
    /// Internally inconsistent payload.
    Inconsistent(&'static str),
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "message truncated"),
            DecodeError::BadMagic(m) => write!(f, "bad magic {m:#x}"),
            DecodeError::BadVersion(v) => write!(f, "unsupported version {v}"),
            DecodeError::BadTag(t) => write!(f, "unknown tag {t}"),
            DecodeError::Inconsistent(msg) => write!(f, "inconsistent payload: {msg}"),
        }
    }
}

impl std::error::Error for DecodeError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(msg: Message) {
        let bytes = msg.encode();
        assert_eq!(Message::decode(&bytes).unwrap(), msg);
    }

    #[test]
    fn all_variants_roundtrip() {
        roundtrip(Message::Pull { client: 7 });
        roundtrip(Message::Model { round: 3, values: SparseValues::dense(vec![1.0, -2.0]) });
        roundtrip(Message::Update {
            round: 9,
            client: 2,
            values: SparseValues::sparse(vec![0, 5, 9], vec![0.1, 0.2, 0.3]),
        });
        roundtrip(Message::ErrorReport {
            round: 4,
            client: 1,
            errors: SparseValues::dense(vec![]),
        });
        roundtrip(Message::JoinRequest { client: 0 });
        roundtrip(Message::JoinState { payload: vec![1, 2, 3, 4, 5] });
        roundtrip(Message::Shutdown);
    }

    #[test]
    fn truncated_rejected() {
        let bytes = Message::Model { round: 1, values: SparseValues::dense(vec![1.0; 8]) }.encode();
        for cut in [0, 3, 5, bytes.len() - 1] {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version_rejected() {
        let mut bytes = Message::Shutdown.encode();
        bytes[0] ^= 0xFF;
        assert!(matches!(Message::decode(&bytes), Err(DecodeError::BadMagic(_))));
        let mut bytes = Message::Shutdown.encode();
        bytes[2] = 99;
        assert!(matches!(Message::decode(&bytes), Err(DecodeError::BadVersion(99))));
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut bytes = Message::Shutdown.encode();
        bytes[3] = 200;
        assert!(matches!(Message::decode(&bytes), Err(DecodeError::BadTag(200))));
    }

    #[test]
    fn dense_update_wire_size_is_4_bytes_per_scalar_plus_header() {
        let msg = Message::Update { round: 0, client: 0, values: SparseValues::dense(vec![0.0; 100]) };
        // 4 header + 8 (round, client) + 1 tag + 4 count + 400 values.
        assert_eq!(msg.encode().len(), 4 + 8 + 1 + 4 + 400);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sparse_length_mismatch_panics() {
        SparseValues::sparse(vec![1], vec![1.0, 2.0]);
    }

    fn quantized_msg() -> Message {
        Message::QuantizedUpdate {
            round: 5,
            client: 3,
            values: QuantizedValues::new(15, 4, vec![2.5, 0.0, 1.25], vec![0x81, 3, 0, 7, 0x8F, 1, 2, 3, 9]),
        }
    }

    #[test]
    fn quantized_update_roundtrips() {
        roundtrip(quantized_msg());
        roundtrip(Message::QuantizedUpdate {
            round: 0,
            client: 0,
            values: QuantizedValues::new(1, 0, vec![], vec![]),
        });
    }

    #[test]
    fn quantized_update_wire_size_is_one_byte_per_scalar_plus_scales() {
        let msg = quantized_msg();
        // 4 header + 8 (round, client) + 12 (levels, chunk_len, scale count)
        // + 3×4 scales + 4 code count + 9 codes.
        assert_eq!(msg.encode().len(), 4 + 8 + 12 + 12 + 4 + 9);
    }

    #[test]
    fn quantized_truncation_rejected_at_every_cut() {
        let bytes = quantized_msg().encode();
        for cut in 0..bytes.len() {
            assert!(Message::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn quantized_inconsistencies_rejected() {
        let ok = quantized_msg().encode();
        // Declared levels above the 7-bit ceiling.
        let mut bad = ok.clone();
        bad.splice(12..16, 127u32.to_le_bytes());
        assert!(matches!(Message::decode(&bad), Err(DecodeError::Inconsistent(_))));
        // Zero chunk_len with codes present.
        let mut bad = ok.clone();
        bad.splice(16..20, 0u32.to_le_bytes());
        assert!(matches!(Message::decode(&bad), Err(DecodeError::Inconsistent(_))));
        // A code whose level exceeds levels + 1.
        let mut bad = ok;
        let last = bad.len() - 1;
        bad[last] = 0x80 | 17;
        assert!(matches!(Message::decode(&bad), Err(DecodeError::Inconsistent(_))));
    }

    #[test]
    #[should_panic(expected = "scale count mismatch")]
    fn quantized_scale_mismatch_panics() {
        QuantizedValues::new(15, 4, vec![1.0], vec![0; 9]);
    }
}
