//! Channel-based endpoints connecting one server and N clients across
//! threads, moving *encoded* message bytes (so byte counters measure the
//! real wire volume).

use crate::{DecodeError, Message};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Cumulative traffic counters of one endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransportStats {
    /// Bytes sent by this endpoint.
    pub bytes_sent: u64,
    /// Bytes received by this endpoint.
    pub bytes_received: u64,
    /// Messages sent.
    pub messages_sent: u64,
    /// Messages received.
    pub messages_received: u64,
}

#[derive(Debug, Default)]
struct Counter {
    stats: Mutex<TransportStats>,
}

impl Counter {
    fn sent(&self, bytes: usize) {
        let mut s = self.stats.lock();
        // usize -> u64 is infallible on every supported target; saturate
        // the conversion *and* the accumulation rather than panic so
        // accounting can never abort a transfer (a bare `+=` still aborts
        // debug builds on overflow, contradicting that guarantee).
        s.bytes_sent = s.bytes_sent.saturating_add(u64::try_from(bytes).unwrap_or(u64::MAX));
        s.messages_sent = s.messages_sent.saturating_add(1);
    }
    fn received(&self, bytes: usize) {
        let mut s = self.stats.lock();
        s.bytes_received = s.bytes_received.saturating_add(u64::try_from(bytes).unwrap_or(u64::MAX));
        s.messages_received = s.messages_received.saturating_add(1);
    }
}

/// Transport errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BusError {
    /// The peer endpoint hung up.
    Disconnected,
    /// No message arrived within the timeout.
    Timeout,
    /// The received bytes did not decode.
    Decode(DecodeError),
}

impl std::fmt::Display for BusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BusError::Disconnected => write!(f, "peer disconnected"),
            BusError::Timeout => write!(f, "receive timed out"),
            BusError::Decode(e) => write!(f, "decode failed: {e}"),
        }
    }
}

impl std::error::Error for BusError {}

/// A directed byte-moving endpoint from one client toward the server: the
/// primitive the session and chaos layers stack on. [`ClientEndpoint`]
/// implements it directly; [`crate::ChaosClient`] decorates any
/// implementation with deterministic wire faults.
pub trait ByteLink {
    /// Sends one opaque frame.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Disconnected`] when the peer is gone.
    fn send_bytes(&self, bytes: Vec<u8>) -> Result<(), BusError>;

    /// Receives the next frame (blocking with timeout).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Timeout`] / [`BusError::Disconnected`].
    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, BusError>;
}

/// The server-side byte-moving endpoint: one shared inbox, per-client
/// outboxes. [`ServerEndpoint`] implements it directly;
/// [`crate::ChaosServer`] decorates any implementation with deterministic
/// wire faults.
pub trait ServerByteLink {
    /// Sends one opaque frame to `client`.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Disconnected`] when the client is gone or
    /// unknown.
    fn send_bytes_to(&self, client: usize, bytes: Vec<u8>) -> Result<(), BusError>;

    /// Receives the next frame from any client (blocking with timeout).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Timeout`] / [`BusError::Disconnected`].
    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, BusError>;

    /// Number of connected clients.
    fn client_count(&self) -> usize;
}

/// The server's side of the bus: receives from all clients on one queue,
/// sends to each client individually.
pub struct ServerEndpoint {
    inbox: Receiver<Vec<u8>>,
    to_clients: Vec<Sender<Vec<u8>>>,
    counter: Arc<Counter>,
}

impl std::fmt::Debug for ServerEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerEndpoint").field("clients", &self.to_clients.len()).finish()
    }
}

impl ServerEndpoint {
    /// Sends a message to one client.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Disconnected`] if the client endpoint is gone.
    pub fn send(&self, client: usize, msg: &Message) -> Result<(), BusError> {
        self.send_bytes_to(client, msg.encode())
    }

    /// Broadcasts a message to every client.
    ///
    /// # Errors
    ///
    /// Returns the first send failure.
    pub fn broadcast(&self, msg: &Message) -> Result<(), BusError> {
        for c in 0..self.to_clients.len() {
            self.send(c, msg)?;
        }
        Ok(())
    }

    /// Receives the next client message (blocking with timeout).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Timeout`] / [`BusError::Disconnected`] /
    /// [`BusError::Decode`] accordingly.
    pub fn recv(&self, timeout: Duration) -> Result<Message, BusError> {
        let bytes = ServerByteLink::recv_bytes(self, timeout)?;
        Message::decode(&bytes).map_err(BusError::Decode)
    }

    /// Number of connected clients.
    pub fn clients(&self) -> usize {
        self.to_clients.len()
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> TransportStats {
        *self.counter.stats.lock()
    }
}

impl ServerByteLink for ServerEndpoint {
    fn send_bytes_to(&self, client: usize, bytes: Vec<u8>) -> Result<(), BusError> {
        self.counter.sent(bytes.len());
        self.to_clients
            .get(client)
            .ok_or(BusError::Disconnected)?
            .send(bytes)
            .map_err(|_| BusError::Disconnected)
    }

    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, BusError> {
        let bytes = self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => BusError::Timeout,
            RecvTimeoutError::Disconnected => BusError::Disconnected,
        })?;
        self.counter.received(bytes.len());
        Ok(bytes)
    }

    fn client_count(&self) -> usize {
        self.to_clients.len()
    }
}

/// One client's side of the bus.
pub struct ClientEndpoint {
    id: usize,
    to_server: Sender<Vec<u8>>,
    inbox: Receiver<Vec<u8>>,
    counter: Arc<Counter>,
}

impl std::fmt::Debug for ClientEndpoint {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClientEndpoint").field("id", &self.id).finish()
    }
}

impl ClientEndpoint {
    /// This endpoint's client id.
    pub fn id(&self) -> usize {
        self.id
    }

    /// Sends a message to the server.
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Disconnected`] if the server endpoint is gone.
    pub fn send(&self, msg: &Message) -> Result<(), BusError> {
        self.send_bytes(msg.encode())
    }

    /// Receives the next server message (blocking with timeout).
    ///
    /// # Errors
    ///
    /// Returns [`BusError::Timeout`] / [`BusError::Disconnected`] /
    /// [`BusError::Decode`] accordingly.
    pub fn recv(&self, timeout: Duration) -> Result<Message, BusError> {
        let bytes = ByteLink::recv_bytes(self, timeout)?;
        Message::decode(&bytes).map_err(BusError::Decode)
    }

    /// Traffic counters for this endpoint.
    pub fn stats(&self) -> TransportStats {
        *self.counter.stats.lock()
    }
}

impl ByteLink for ClientEndpoint {
    fn send_bytes(&self, bytes: Vec<u8>) -> Result<(), BusError> {
        self.counter.sent(bytes.len());
        self.to_server.send(bytes).map_err(|_| BusError::Disconnected)
    }

    fn recv_bytes(&self, timeout: Duration) -> Result<Vec<u8>, BusError> {
        let bytes = self.inbox.recv_timeout(timeout).map_err(|e| match e {
            RecvTimeoutError::Timeout => BusError::Timeout,
            RecvTimeoutError::Disconnected => BusError::Disconnected,
        })?;
        self.counter.received(bytes.len());
        Ok(bytes)
    }
}

/// Factory for a star topology: one server, `n` clients.
#[derive(Debug)]
pub struct LocalBus;

impl LocalBus {
    /// Creates connected endpoints for one server and `n` clients.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn star(n: usize) -> (ServerEndpoint, Vec<ClientEndpoint>) {
        assert!(n > 0, "need at least one client");
        let (client_tx, server_inbox) = unbounded::<Vec<u8>>();
        let server_counter = Arc::new(Counter::default());
        let mut to_clients = Vec::with_capacity(n);
        let mut clients = Vec::with_capacity(n);
        for id in 0..n {
            let (tx, rx) = unbounded::<Vec<u8>>();
            to_clients.push(tx);
            clients.push(ClientEndpoint {
                id,
                to_server: client_tx.clone(),
                inbox: rx,
                counter: Arc::new(Counter::default()),
            });
        }
        let server = ServerEndpoint { inbox: server_inbox, to_clients, counter: server_counter };
        (server, clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SparseValues;

    const T: Duration = Duration::from_millis(500);

    #[test]
    fn client_to_server_roundtrip() {
        let (server, clients) = LocalBus::star(2);
        clients[1].send(&Message::Pull { client: 1 }).unwrap();
        let msg = server.recv(T).unwrap();
        assert_eq!(msg, Message::Pull { client: 1 });
        assert_eq!(server.stats().messages_received, 1);
        assert_eq!(clients[1].stats().messages_sent, 1);
        assert_eq!(server.stats().bytes_received, clients[1].stats().bytes_sent);
    }

    #[test]
    fn broadcast_reaches_every_client() {
        let (server, clients) = LocalBus::star(3);
        let model = Message::Model { round: 0, values: SparseValues::dense(vec![1.0, 2.0]) };
        server.broadcast(&model).unwrap();
        for c in &clients {
            assert_eq!(c.recv(T).unwrap(), model);
        }
        assert_eq!(server.stats().messages_sent, 3);
    }

    #[test]
    fn timeout_when_no_message() {
        let (server, _clients) = LocalBus::star(1);
        assert_eq!(server.recv(Duration::from_millis(10)).unwrap_err(), BusError::Timeout);
    }

    #[test]
    fn disconnect_is_detected() {
        let (server, clients) = LocalBus::star(1);
        drop(server);
        assert_eq!(clients[0].send(&Message::Shutdown).unwrap_err(), BusError::Disconnected);
    }

    #[test]
    fn cross_thread_exchange() {
        let (server, mut clients) = LocalBus::star(2);
        let handles: Vec<_> = clients
            .drain(..)
            .map(|c| {
                std::thread::spawn(move || {
                    c.send(&Message::Update {
                        round: 0,
                        client: c.id() as u32,
                        values: SparseValues::dense(vec![c.id() as f32]),
                    })
                    .unwrap();
                    matches!(c.recv(T).unwrap(), Message::Shutdown)
                })
            })
            .collect();
        let mut seen = Vec::new();
        for _ in 0..2 {
            if let Message::Update { client, .. } = server.recv(T).unwrap() {
                seen.push(client);
            }
        }
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1]);
        server.broadcast(&Message::Shutdown).unwrap();
        for h in handles {
            assert!(h.join().unwrap());
        }
    }

    #[test]
    #[should_panic(expected = "at least one client")]
    fn empty_star_panics() {
        LocalBus::star(0);
    }
}
