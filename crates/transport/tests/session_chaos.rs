//! Chaos soak: a sessioned FedAvg loop over the chaos bus must survive
//! drop/corrupt/duplicate/reorder/delay plans and still produce exactly
//! the model a fault-free run produces — no lost updates, no
//! double-counted updates, bit-for-bit.
//!
//! `FEDSU_CHAOS_CASES` scales the number of soak plans (default 6; CI can
//! raise it).

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_transport::{
    ChaosClient, ChaosServer, ChaosStats, ClientSession, FaultConfig, FaultPlan, LocalBus,
    Message, ReliabilityStats, ServerSession, SessionConfig, SparseValues,
};
use std::time::Duration;

const PARAMS: usize = 16;
const CLIENTS: usize = 3;
const ROUNDS: usize = 4;
const T: Duration = Duration::from_secs(20);
/// End-of-run grace: longer than the peer's largest inter-retransmit gap
/// (`ack_timeout + backoff × max_retries` = 95ms) so a lingering endpoint
/// outlives every late retransmission aimed at it.
const LINGER: Duration = Duration::from_millis(250);

fn session_cfg() -> SessionConfig {
    // A generous retry budget so even p=0.3 double-sided loss plans
    // converge with overwhelming probability (the plan is deterministic,
    // so a passing seed passes forever).
    SessionConfig {
        max_retries: 16,
        ack_timeout: Duration::from_millis(15),
        backoff: Duration::from_millis(5),
    }
}

/// Deterministic fake "local training" (same rule as distributed_fedavg).
fn local_update(round: usize, client: usize, j: usize) -> f32 {
    ((round * 31 + client * 7 + j) % 13) as f32 * 0.01 - 0.06
}

struct RunOutcome {
    global: Vec<f32>,
    server_rel: ReliabilityStats,
    clients_rel: ReliabilityStats,
    server_chaos: ChaosStats,
    clients_chaos: ChaosStats,
}

/// Full sessioned FedAvg over the chaos bus under `faults`. Aggregation is
/// by client index (not arrival order), so the result is bit-for-bit
/// comparable across plans.
fn run_sessioned_fedavg(faults: &FaultConfig) -> RunOutcome {
    let (server, clients) = LocalBus::star(CLIENTS);
    let chaos_server = ChaosServer::new(server, FaultPlan::new(faults.clone()));
    let mut srv = ServerSession::new(chaos_server, session_cfg());

    let handles: Vec<_> = clients
        .into_iter()
        .map(|endpoint| {
            let id = endpoint.id();
            let chaos = ChaosClient::new(endpoint, FaultPlan::new(faults.clone()), id);
            std::thread::spawn(move || {
                let mut session = ClientSession::new(chaos, id as u32, session_cfg());
                for round in 0..ROUNDS {
                    session.begin_epoch(round as u32);
                    let trained = loop {
                        match session.recv_reliable(T).unwrap() {
                            Message::Model { round: r, values } if r as usize == round => {
                                break values
                                    .values
                                    .iter()
                                    .enumerate()
                                    .map(|(j, v)| v + local_update(round, id, j))
                                    .collect::<Vec<f32>>();
                            }
                            other => panic!("client {id} round {round}: unexpected {other:?}"),
                        }
                    };
                    session
                        .send_reliable(&Message::Update {
                            round: round as u32,
                            client: id as u32,
                            values: SparseValues::dense(trained),
                        })
                        .unwrap();
                }
                // TIME_WAIT: service the server's late retransmissions
                // (its last ack to us may have been chaos-dropped).
                session.linger(LINGER);
                (session.stats(), session.link().stats())
            })
        })
        .collect();

    let mut global = vec![0.0f32; PARAMS];
    for round in 0..ROUNDS {
        srv.begin_epoch(round as u32);
        srv.broadcast_reliable(&Message::Model {
            round: round as u32,
            values: SparseValues::dense(global.clone()),
        })
        .unwrap();
        let mut per_client: Vec<Option<Vec<f32>>> = vec![None; CLIENTS];
        while per_client.iter().any(Option::is_none) {
            let (from, msg) = srv.recv_reliable(T).unwrap();
            match msg {
                Message::Update { round: r, client, values } => {
                    assert_eq!(r as usize, round, "epoch gating must keep rounds separate");
                    assert_eq!(client as usize, from);
                    assert!(
                        per_client[from].is_none(),
                        "client {from} delivered twice in round {round}: dedup failed"
                    );
                    per_client[from] = Some(values.values);
                }
                other => panic!("server round {round}: unexpected {other:?}"),
            }
        }
        // Fixed fold order => bit-for-bit reproducible aggregation.
        let mut acc = vec![0.0f32; PARAMS];
        for update in per_client.into_iter().flatten() {
            for (a, v) in acc.iter_mut().zip(&update) {
                *a += v / CLIENTS as f32;
            }
        }
        global = acc;
    }

    // Server-side TIME_WAIT: keep re-acking clients' late retransmissions
    // until every client thread has actually finished its run.
    while handles.iter().any(|h| !h.is_finished()) {
        srv.linger(Duration::from_millis(25));
    }
    let mut clients_rel = ReliabilityStats::default();
    let mut clients_chaos = ChaosStats::default();
    for h in handles {
        let (rel, chaos) = h.join().unwrap();
        clients_rel = clients_rel.merged(&rel);
        clients_chaos = clients_chaos.merged(&chaos);
    }
    RunOutcome {
        global,
        server_rel: srv.stats(),
        clients_rel,
        server_chaos: srv.link().stats(),
        clients_chaos,
    }
}

fn assert_exactly_once(outcome: &RunOutcome) {
    assert_eq!(
        outcome.server_rel.data_frames_delivered,
        (ROUNDS * CLIENTS) as u64,
        "server must deliver each update exactly once"
    );
    assert_eq!(
        outcome.clients_rel.data_frames_delivered,
        (ROUNDS * CLIENTS) as u64,
        "each client must deliver each model exactly once"
    );
}

#[test]
fn zero_fault_wire_is_transparent_and_retry_free() {
    let clean = run_sessioned_fedavg(&FaultConfig::default());
    assert_exactly_once(&clean);
    assert_eq!(clean.server_chaos, ChaosStats::default(), "zero plan must not touch frames");
    assert_eq!(clean.clients_chaos, ChaosStats::default());
    assert_eq!(clean.server_rel.retransmits, 0);
    assert_eq!(clean.server_rel.retransmitted_bytes, 0);
    assert_eq!(clean.clients_rel.retransmits, 0);
    assert_eq!(clean.clients_rel.retransmitted_bytes, 0);
    assert_eq!(clean.server_rel.dups_dropped, 0);
    assert_eq!(clean.clients_rel.corrupt_frames_rejected, 0);
    // Exactly one data frame per logical message.
    assert_eq!(clean.server_rel.data_frames_sent, (ROUNDS * CLIENTS) as u64);
    assert_eq!(clean.clients_rel.data_frames_sent, (ROUNDS * CLIENTS) as u64);
}

#[test]
fn lossy_wire_reproduces_the_clean_model_bit_for_bit() {
    let clean = run_sessioned_fedavg(&FaultConfig::default());
    let lossy = FaultConfig {
        wire_drop_prob: 0.25,
        wire_corrupt_prob: 0.1,
        wire_duplicate_prob: 0.1,
        wire_reorder_prob: 0.1,
        wire_delay_prob: 0.05,
        seed: 0xC4A0,
        ..FaultConfig::default()
    };
    let faulted = run_sessioned_fedavg(&lossy);
    assert_exactly_once(&faulted);
    assert_eq!(
        faulted.global.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        clean.global.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
        "a lossy wire within the retry budget must not change the model at all"
    );
    // The plan actually did damage, and the session actually repaired it.
    let chaos = faulted.server_chaos.merged(&faulted.clients_chaos);
    assert!(chaos.drops > 0, "soak plan should drop frames: {chaos:?}");
    assert!(chaos.corruptions > 0, "soak plan should corrupt frames: {chaos:?}");
    let rel = faulted.server_rel.merged(&faulted.clients_rel);
    assert!(rel.retransmits > 0, "drops must force retransmissions");
    assert!(rel.retransmitted_bytes > 0);
    assert!(
        rel.corrupt_frames_rejected >= chaos.corruptions,
        "every corrupted frame must be caught by the envelope checksum \
         (chaos corrupted {}, receivers rejected {})",
        chaos.corruptions,
        rel.corrupt_frames_rejected
    );
}

#[test]
fn soak_random_plans_all_converge_exactly_once() {
    let cases: usize = std::env::var("FEDSU_CHAOS_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(6);
    let clean = run_sessioned_fedavg(&FaultConfig::default());
    let clean_bits: Vec<u32> = clean.global.iter().map(|v| v.to_bits()).collect();
    // Deterministic per-case knob derivation (splitmix-flavored): each case
    // exercises a different mix of the five wire faults.
    let unit = |case: u64, salt: u64| -> f64 {
        let mut z = case
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(salt.wrapping_mul(0xBF58_476D_1CE4_E5B9));
        z ^= z >> 30;
        z = z.wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    for case in 0..cases as u64 {
        let faults = FaultConfig {
            wire_drop_prob: unit(case, 1) * 0.3,
            wire_corrupt_prob: unit(case, 2) * 0.15,
            wire_duplicate_prob: unit(case, 3) * 0.15,
            wire_reorder_prob: unit(case, 4) * 0.15,
            wire_delay_prob: unit(case, 5) * 0.1,
            wire_delay_depth: 1 + (case % 3) as usize,
            seed: 0x50AC ^ case,
            ..FaultConfig::default()
        };
        let outcome = run_sessioned_fedavg(&faults);
        assert_exactly_once(&outcome);
        let bits: Vec<u32> = outcome.global.iter().map(|v| v.to_bits()).collect();
        assert_eq!(bits, clean_bits, "case {case} diverged under {faults:?}");
    }
}
