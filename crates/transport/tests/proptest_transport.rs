//! Property-based tests of the wire format: arbitrary messages and session
//! envelopes round-trip, and corrupted/truncated/spliced payloads never
//! panic.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_transport::{DecodeError, Envelope, Message, SparseValues, ENVELOPE_OVERHEAD};
use proptest::prelude::*;

fn arb_sparse() -> impl Strategy<Value = SparseValues> {
    let dense = proptest::collection::vec(-1e6f32..1e6, 0..64).prop_map(SparseValues::dense);
    let sparse = proptest::collection::vec((0u32..10_000, -1e6f32..1e6), 0..64).prop_map(|pairs| {
        let (indices, values): (Vec<u32>, Vec<f32>) = pairs.into_iter().unzip();
        SparseValues::sparse(indices, values)
    });
    prop_oneof![dense, sparse]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        any::<u32>().prop_map(|client| Message::Pull { client }),
        (any::<u32>(), arb_sparse()).prop_map(|(round, values)| Message::Model { round, values }),
        (any::<u32>(), any::<u32>(), arb_sparse())
            .prop_map(|(round, client, values)| Message::Update { round, client, values }),
        (any::<u32>(), any::<u32>(), arb_sparse())
            .prop_map(|(round, client, errors)| Message::ErrorReport { round, client, errors }),
        any::<u32>().prop_map(|client| Message::JoinRequest { client }),
        proptest::collection::vec(any::<u8>(), 0..256).prop_map(|payload| Message::JoinState { payload }),
        Just(Message::Shutdown),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_message_roundtrips(msg in arb_message()) {
        let bytes = msg.encode();
        let decoded = Message::decode(&bytes).unwrap();
        prop_assert_eq!(decoded, msg);
    }

    #[test]
    fn truncation_never_panics(msg in arb_message(), cut in 0usize..64) {
        let bytes = msg.encode();
        let cut = cut.min(bytes.len());
        // Either decodes to the message (only if nothing was cut) or errors.
        match Message::decode(&bytes[..bytes.len() - cut]) {
            Ok(decoded) => prop_assert!(cut == 0 && decoded == msg),
            Err(_) => prop_assert!(cut > 0),
        }
    }

    #[test]
    fn bitflips_never_panic(msg in arb_message(), pos in 0usize..64, bit in 0u8..8) {
        let mut bytes = msg.encode();
        let len = bytes.len();
        bytes[pos % len] ^= 1 << bit;
        // Must not panic; any result (error or some decoded message) is fine.
        let _ = Message::decode(&bytes);
    }

    #[test]
    fn garbage_is_rejected(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Random bytes essentially never carry the magic; when they do not,
        // decode must fail cleanly.
        if data.len() < 2 || data[0] != 0xED || data[1] != 0xF5 {
            match Message::decode(&data) {
                Err(DecodeError::Truncated | DecodeError::BadMagic(_) | DecodeError::BadVersion(_)
                    | DecodeError::BadTag(_) | DecodeError::Inconsistent(_)) => {}
                Ok(_) => prop_assert!(false, "garbage decoded as a message"),
            }
        }
    }

    #[test]
    fn wire_size_formula_holds_for_dense_updates(n in 0usize..128) {
        let msg = Message::Update { round: 1, client: 2, values: SparseValues::dense(vec![0.5; n]) };
        prop_assert_eq!(msg.encode().len(), 4 + 8 + 1 + 4 + 4 * n);
    }
}

fn arb_envelope() -> impl Strategy<Value = Envelope> {
    (any::<u32>(), any::<u32>(), any::<u32>(), any::<u16>(), arb_message(), any::<bool>()).prop_map(
        |(client, epoch, seq, attempt, msg, is_data)| {
            if is_data {
                Envelope::data(client, epoch, seq, attempt, msg.encode())
            } else {
                Envelope::ack(client, epoch, seq, attempt)
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn any_envelope_roundtrips(env in arb_envelope()) {
        let bytes = env.encode();
        prop_assert_eq!(bytes.len(), ENVELOPE_OVERHEAD + env.payload.len());
        prop_assert_eq!(Envelope::decode(&bytes).unwrap(), env);
    }

    #[test]
    fn envelope_truncation_never_panics(env in arb_envelope(), cut in 0usize..64) {
        let bytes = env.encode();
        let cut = cut.min(bytes.len());
        match Envelope::decode(&bytes[..bytes.len() - cut]) {
            Ok(decoded) => prop_assert!(cut == 0 && decoded == env),
            Err(_) => prop_assert!(cut > 0),
        }
        // The chaos-keying peek must also survive any prefix.
        let _ = Envelope::peek_header(&bytes[..bytes.len() - cut]);
    }

    #[test]
    fn envelope_bitflips_are_always_detected(env in arb_envelope(), pos in 0usize..4096, bit in 0u8..8) {
        let mut bytes = env.encode();
        let len = bytes.len();
        bytes[pos % len] ^= 1 << bit;
        // A single flipped bit can never silently decode back to the
        // original: either the structure breaks or the checksum catches it.
        match Envelope::decode(&bytes) {
            Ok(decoded) => prop_assert_ne!(decoded, env),
            Err(_) => {}
        }
    }

    #[test]
    fn envelope_splices_never_panic_and_never_half_decode(a in arb_envelope(), b in arb_envelope(), split in 0usize..4096) {
        // Two frames glued together: strict framing must reject the splice
        // rather than decode frame `a` and silently drop frame `b`.
        let mut spliced = a.encode();
        spliced.extend_from_slice(&b.encode());
        prop_assert!(Envelope::decode(&spliced).is_err());
        // Any resegmentation of the splice (a torn read) must not panic.
        let split = split % (spliced.len() + 1);
        let _ = Envelope::decode(&spliced[..split]);
        let _ = Envelope::decode(&spliced[split..]);
        let _ = Envelope::peek_header(&spliced[split..]);
    }

    #[test]
    fn envelope_garbage_never_panics(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Envelope::decode(&data);
        let _ = Envelope::peek_header(&data);
    }
}
