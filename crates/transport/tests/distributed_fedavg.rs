//! End-to-end protocol check: a FedAvg round loop over real threads and the
//! encoded wire format produces exactly the parameter averages the
//! analytical emulation computes, and the measured wire bytes match the
//! 4-bytes-per-scalar accounting the `fedsu-fl` runtime assumes.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_transport::{LocalBus, Message, SparseValues};
use std::time::Duration;

const T: Duration = Duration::from_secs(5);
const PARAMS: usize = 32;
const CLIENTS: usize = 4;
const ROUNDS: usize = 5;

/// Deterministic fake "local training": each client shifts every scalar by
/// a client- and round-dependent amount.
fn local_update(round: usize, client: usize, j: usize) -> f32 {
    ((round * 31 + client * 7 + j) % 13) as f32 * 0.01 - 0.06
}

#[test]
fn threaded_fedavg_matches_analytic_averaging() {
    let (server, mut clients) = LocalBus::star(CLIENTS);

    // Client threads: pull, "train", push, repeat; exit on Shutdown.
    let handles: Vec<_> = clients
        .drain(..)
        .map(|endpoint| {
            std::thread::spawn(move || {
                loop {
                    match endpoint.recv(T).unwrap() {
                        Message::Model { round, values } => {
                            let trained: Vec<f32> = values
                                .values
                                .iter()
                                .enumerate()
                                .map(|(j, v)| v + local_update(round as usize, endpoint.id(), j))
                                .collect();
                            endpoint
                                .send(&Message::Update {
                                    round,
                                    client: endpoint.id() as u32,
                                    values: SparseValues::dense(trained),
                                })
                                .unwrap();
                        }
                        Message::Shutdown => return endpoint.stats(),
                        other => panic!("unexpected message {other:?}"),
                    }
                }
            })
        })
        .collect();

    // Server round loop over the wire...
    let mut global = vec![0.0f32; PARAMS];
    for round in 0..ROUNDS {
        server
            .broadcast(&Message::Model {
                round: round as u32,
                values: SparseValues::dense(global.clone()),
            })
            .unwrap();
        let mut acc = vec![0.0f32; PARAMS];
        for _ in 0..CLIENTS {
            match server.recv(T).unwrap() {
                Message::Update { round: r, values, .. } => {
                    assert_eq!(r as usize, round);
                    for (a, v) in acc.iter_mut().zip(&values.values) {
                        *a += v / CLIENTS as f32;
                    }
                }
                other => panic!("unexpected message {other:?}"),
            }
        }
        global = acc;
    }
    server.broadcast(&Message::Shutdown).unwrap();
    let client_stats: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();

    // ...must equal the purely analytical computation.
    let mut reference = vec![0.0f32; PARAMS];
    for round in 0..ROUNDS {
        let snapshot = reference.clone();
        let mut acc = vec![0.0f32; PARAMS];
        for client in 0..CLIENTS {
            for (j, a) in acc.iter_mut().enumerate() {
                *a += (snapshot[j] + local_update(round, client, j)) / CLIENTS as f32;
            }
        }
        reference = acc;
    }
    for (g, r) in global.iter().zip(&reference) {
        assert!((g - r).abs() < 1e-5, "{g} vs {r}");
    }

    // Wire accounting: each upload carries 4 bytes/scalar plus the fixed
    // 17-byte header (magic+version+tag+round+client+payload tag+count).
    let per_update = (4 + 4 + 4 + 1 + 4 + 4 * PARAMS) as u64;
    for s in &client_stats {
        assert_eq!(s.messages_sent, ROUNDS as u64);
        assert_eq!(s.bytes_sent, ROUNDS as u64 * per_update);
    }
    let server_stats = server.stats();
    assert_eq!(server_stats.messages_received, (ROUNDS * CLIENTS) as u64);
    // Shutdown + one model broadcast per round to each client.
    assert_eq!(server_stats.messages_sent, ((ROUNDS + 1) * CLIENTS) as u64);
}
