use std::fmt;

/// Errors produced by tensor operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two operands had incompatible shapes.
    ShapeMismatch {
        /// Shape of the left/first operand.
        left: Vec<usize>,
        /// Shape of the right/second operand.
        right: Vec<usize>,
        /// Operation that was attempted.
        op: &'static str,
    },
    /// A buffer's length did not match the product of the requested shape.
    LengthMismatch {
        /// Length of the provided buffer.
        len: usize,
        /// Shape requested.
        shape: Vec<usize>,
    },
    /// An index was out of bounds for the tensor's shape.
    IndexOutOfBounds {
        /// Offending flat index.
        index: usize,
        /// Number of elements in the tensor.
        len: usize,
    },
    /// The operation requires a tensor of a specific rank.
    RankMismatch {
        /// Rank the operation expected.
        expected: usize,
        /// Rank of the tensor provided.
        actual: usize,
        /// Operation that was attempted.
        op: &'static str,
    },
    /// An argument was invalid (e.g. zero-sized dimension where forbidden).
    InvalidArgument(String),
}

impl TensorError {
    /// Cold constructor for [`TensorError::ShapeMismatch`]; keeps the
    /// owned-shape copies off the hot paths that report the error.
    pub fn new_shape_mismatch(left: &[usize], right: &[usize], op: &'static str) -> TensorError {
        TensorError::ShapeMismatch { left: left.to_vec(), right: right.to_vec(), op }
    }

    /// Cold constructor for [`TensorError::LengthMismatch`].
    pub fn new_length_mismatch(len: usize, shape: &[usize]) -> TensorError {
        TensorError::LengthMismatch { len, shape: shape.to_vec() }
    }

    /// Cold constructor for [`TensorError::RankMismatch`].
    pub fn new_rank_mismatch(expected: usize, actual: usize, op: &'static str) -> TensorError {
        TensorError::RankMismatch { expected, actual, op }
    }
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { left, right, op } => {
                write!(f, "shape mismatch in `{op}`: {left:?} vs {right:?}")
            }
            TensorError::LengthMismatch { len, shape } => {
                write!(f, "buffer of length {len} cannot be viewed as shape {shape:?}")
            }
            TensorError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for tensor of {len} elements")
            }
            TensorError::RankMismatch { expected, actual, op } => {
                write!(f, "`{op}` expects rank-{expected} tensor, got rank {actual}")
            }
            TensorError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
        }
    }
}

impl std::error::Error for TensorError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let e = TensorError::ShapeMismatch {
            left: vec![2, 3],
            right: vec![3, 2],
            op: "add",
        };
        let msg = e.to_string();
        assert!(msg.contains("add"));
        assert!(msg.contains("[2, 3]"));
        assert!(msg.starts_with(char::is_lowercase));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<TensorError>();
    }

    #[test]
    fn length_mismatch_display() {
        let e = TensorError::LengthMismatch { len: 5, shape: vec![2, 3] };
        assert!(e.to_string().contains("length 5"));
    }
}
