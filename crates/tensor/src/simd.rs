//! Runtime-dispatched SIMD inner loops for the hot kernels.
//!
//! This module is the single place in the workspace that touches
//! `std::arch` intrinsics. It provides `f32x8`-style vector lanes (AVX2),
//! `f32x4` lanes (SSE2), and a scalar fallback, selected **once per
//! process** from the host CPU via `is_x86_feature_detected!` and
//! overridable for testing:
//!
//! * `FEDSU_SIMD=off|scalar|sse2|avx2` — environment override, consulted on
//!   first use and clamped to what the hardware actually supports.
//! * [`set_simd_level`] — in-process override (also clamped), mirroring
//!   [`crate::par::set_kernel_threads`] so tests can sweep every level.
//!
//! ## Bit-identity contract (DESIGN.md §10.1)
//!
//! Every vectorized loop in this module vectorizes **across output
//! elements**, never across a single element's reduction: lane `j` of a
//! vector always holds the one value that the scalar code would compute for
//! output element `j`, and each output element keeps exactly one ascending
//! accumulation chain starting from `+0.0`. Multiplies and adds are issued
//! as separate instructions (`mul` then `add`, never a fused
//! multiply-add), matching Rust's scalar semantics, which never contract
//! `a + b * c` into an FMA. Branches become branchless compare+select
//! (`cmp` + `and`/`andnot`) only where the scalar path is itself written as
//! the equivalent compare+select, so NaN payloads and signed zeros travel
//! identically.
//!
//! The resulting guarantee has three tiers (DESIGN.md §10.1 spells out the
//! full contract):
//!
//! 1. **Strict, thread-count invariance.** At a fixed SIMD level, outputs
//!    are bit-for-bit identical (NaN payloads included) at every kernel
//!    thread count: threads partition output elements, never split an
//!    element's chain, and partition boundaries are chosen so every element
//!    runs through the same compiled kernel instance regardless of count.
//! 2. **Modulo NaN payload, across levels.** Between `scalar`/`sse2`/`avx2`
//!    (and against the naive `reference::` loops) every finite value,
//!    signed zero, and infinity is bit-identical; only the *payload* of a
//!    NaN may differ, and only when an add sees **two** NaN operands
//!    (e.g. a planted-NaN accumulator plus an `inf·0` product). IEEE 754
//!    lets `NaN + NaN` return either payload, and LLVM commutes the
//!    operands of an `fadd` independently per compiled loop instance — the
//!    payload is deterministic for a given level but not portable between
//!    differently compiled instances, so the contract scopes that freedom
//!    instead of pretending to remove it.
//! 3. **Strict even across levels** for kernels whose accumulation chains
//!    span multiple kernel calls with shifting vector/remainder splits
//!    (conv's col2im scatter): those use the NaN-*holding* add
//!    (`if !y.is_nan() { y += x }`, vectorized as an unordered-compare
//!    blend), which never performs a double-NaN add and is therefore exact
//!    at every level and thread count.
//!
//! The canonical scalar loops below are `#[inline(never)]` so each has one
//! compiled instance: per level the payload choice is frozen, which is what
//! makes tier 1 strict rather than merely modulo-NaN.
//!
//! ## Safety contract (`unsafe` waiver)
//!
//! `unsafe_code` is denied workspace-wide; this module carries the one
//! reviewed `#![allow]`. The waiver is kept narrow by construction:
//!
//! * Intrinsics for a feature level are only reachable through the
//!   level-checked dispatch in this module: `Avx2`/`Sse2` variants run only
//!   when [`hardware_simd_level`] has observed the feature, and every
//!   override is clamped to that detected capability.
//! * All loads and stores go through pointers obtained from subslices whose
//!   length was just established by `chunks_exact`/`chunks_exact_mut`/
//!   `split_at`(`_mut`) or a checked `get` — there is no pointer arithmetic
//!   beyond what those length-checked subslices imply.
//! * Remainder lanes always fall back to plain safe scalar code.
#![allow(unsafe_code)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Vector width the dispatched kernels run at.
///
/// Ordered by capability: `Scalar < Sse2 < Avx2`, so levels can be clamped
/// with `min` against the detected hardware ceiling.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SimdLevel {
    /// Plain scalar loops — the semantic ground truth.
    Scalar,
    /// 128-bit `f32x4` lanes (x86-64 baseline).
    Sse2,
    /// 256-bit `f32x8` lanes.
    Avx2,
}

impl SimdLevel {
    /// Stable lowercase name (used by `FEDSU_SIMD` and the bench JSON).
    pub fn name(self) -> &'static str {
        match self {
            SimdLevel::Scalar => "scalar",
            SimdLevel::Sse2 => "sse2",
            SimdLevel::Avx2 => "avx2",
        }
    }

    fn index(self) -> usize {
        match self {
            SimdLevel::Scalar => 0,
            SimdLevel::Sse2 => 1,
            SimdLevel::Avx2 => 2,
        }
    }

    fn from_index(i: usize) -> SimdLevel {
        match i {
            2 => SimdLevel::Avx2,
            1 => SimdLevel::Sse2,
            _ => SimdLevel::Scalar,
        }
    }
}

/// Sentinel meaning "no in-process override": the environment-resolved
/// default applies.
const OVERRIDE_UNSET: usize = usize::MAX;

static OVERRIDE: AtomicUsize = AtomicUsize::new(OVERRIDE_UNSET);
static HARDWARE: OnceLock<SimdLevel> = OnceLock::new();
static DEFAULT: OnceLock<SimdLevel> = OnceLock::new();

fn detect_hardware() -> SimdLevel {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            return SimdLevel::Avx2;
        }
        if std::arch::is_x86_feature_detected!("sse2") {
            return SimdLevel::Sse2;
        }
    }
    SimdLevel::Scalar
}

/// The widest level this CPU supports (detected once, then cached).
pub fn hardware_simd_level() -> SimdLevel {
    *HARDWARE.get_or_init(detect_hardware)
}

/// Parses a `FEDSU_SIMD` value; unrecognized or absent means "auto"
/// (hardware maximum).
fn parse_env(value: Option<&str>) -> Option<SimdLevel> {
    let v = value?.trim();
    if v.eq_ignore_ascii_case("off") || v.eq_ignore_ascii_case("scalar") {
        Some(SimdLevel::Scalar)
    } else if v.eq_ignore_ascii_case("sse2") {
        Some(SimdLevel::Sse2)
    } else if v.eq_ignore_ascii_case("avx2") {
        Some(SimdLevel::Avx2)
    } else {
        None
    }
}

fn default_level() -> SimdLevel {
    *DEFAULT.get_or_init(|| {
        let hw = hardware_simd_level();
        parse_env(std::env::var("FEDSU_SIMD").ok().as_deref()).map_or(hw, |l| l.min(hw))
    })
}

/// The level the dispatched operations currently run at.
///
/// Resolution order: the [`set_simd_level`] override if one was installed,
/// else the `FEDSU_SIMD` environment selection (consulted once, on first
/// use), else the hardware maximum. The result never exceeds
/// [`hardware_simd_level`].
pub fn simd_level() -> SimdLevel {
    match OVERRIDE.load(Ordering::SeqCst) {
        OVERRIDE_UNSET => default_level(),
        i => SimdLevel::from_index(i),
    }
}

/// Forces the dispatch level for this process, clamped to the detected
/// hardware capability (requesting `Avx2` on an SSE2-only machine installs
/// `Sse2`).
///
/// Levels agree bit-for-bit on all finite/±0/±inf outputs (and modulo
/// NaN payload otherwise — see the module docs), so changing this at any
/// point affects speed, not results. Tests use it to sweep the full
/// SIMD × thread matrix in one process.
pub fn set_simd_level(level: SimdLevel) {
    OVERRIDE.store(level.min(hardware_simd_level()).index(), Ordering::SeqCst);
}

// ---------------------------------------------------------------------------
// Scalar ground truth
// ---------------------------------------------------------------------------

/// Scalar implementations: the exact loops the vector paths must reproduce
/// bit-for-bit. Also used verbatim for remainder lanes.
///
/// Every function is `#[inline(never)]` so each loop is compiled **exactly
/// once** in the binary. Were these inlined into the `#[target_feature]`
/// kernels, the compiler would re-instruction-select them under the wider
/// subtarget, where it is free to commute the operands of a commutative
/// `addss`/`mulss` — and x86 NaN propagation follows the *first* operand,
/// so two NaNs competing in one accumulation chain (say an input NaN and a
/// `0·inf` indefinite) could surface different payload bits between the
/// remainder path and the pure-scalar level. One compilation per loop
/// removes that freedom.
mod scalar {
    /// `y[i] += a * x[i]` over the common length.
    #[inline(never)]
    pub(super) fn axpy(y: &mut [f32], a: f32, x: &[f32]) {
        for (y, &x) in y.iter_mut().zip(x.iter()) {
            *y += a * x;
        }
    }

    /// `y[i] += x[i]` over the common length.
    #[inline(never)]
    pub(super) fn add_assign(y: &mut [f32], x: &[f32]) {
        for (y, &x) in y.iter_mut().zip(x.iter()) {
            *y += x;
        }
    }

    /// `y[i] += x[i]` unless `y[i]` is already NaN, in which case it is
    /// held bit-exactly. Used where one element's accumulation chain spans
    /// *several* kernel calls with shifting vector/remainder splits (conv
    /// scatter): holding a NaN accumulator makes the result independent of
    /// which operand order the compiler picks for each add, because an add
    /// then never sees two NaN operands — the only case where x86 `addps`
    /// payload propagation depends on operand order.
    #[inline(never)]
    pub(super) fn scatter_add(y: &mut [f32], x: &[f32]) {
        for (y, &x) in y.iter_mut().zip(x.iter()) {
            if !y.is_nan() {
                *y += x;
            }
        }
    }

    /// `r[i] += l[i] - g[i]` over the common length.
    #[inline(never)]
    pub(super) fn add_diff(r: &mut [f32], l: &[f32], g: &[f32]) {
        for ((r, &l), &g) in r.iter_mut().zip(l.iter()).zip(g.iter()) {
            *r += l - g;
        }
    }

    /// `out[i] = |x[i]|` (sign bit cleared; NaN payloads preserved).
    #[inline(never)]
    pub(super) fn abs_into(out: &mut [f32], x: &[f32]) {
        for (o, &v) in out.iter_mut().zip(x.iter()) {
            *o = v.abs();
        }
    }

    /// `out[i] = x[i]` if `x[i] > 0`, else `+0.0` (NaN compares false).
    #[inline(never)]
    pub(super) fn relu_fwd(x: &[f32], out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(x.iter()) {
            *o = if v > 0.0 { v } else { 0.0 };
        }
    }

    /// `out[i] = g[i]` if `x[i] > 0`, else `+0.0`.
    #[inline(never)]
    pub(super) fn relu_bwd(x: &[f32], g: &[f32], out: &mut [f32]) {
        for ((o, &v), &gv) in out.iter_mut().zip(x.iter()).zip(g.iter()) {
            *o = if v > 0.0 { gv } else { 0.0 };
        }
    }

    /// `out[i] = x[i]` if `x[i] > 0`, else `slope * x[i]`.
    #[inline(never)]
    pub(super) fn leaky_fwd(x: &[f32], slope: f32, out: &mut [f32]) {
        for (o, &v) in out.iter_mut().zip(x.iter()) {
            *o = if v > 0.0 { v } else { slope * v };
        }
    }

    /// `out[i] = g[i]` if `x[i] > 0`, else `slope * g[i]`.
    #[inline(never)]
    pub(super) fn leaky_bwd(x: &[f32], g: &[f32], slope: f32, out: &mut [f32]) {
        for ((o, &v), &gv) in out.iter_mut().zip(x.iter()).zip(g.iter()) {
            *o = if v > 0.0 { gv } else { slope * gv };
        }
    }

    /// One SGD step with weight decay; zeroes the gradient.
    #[inline(never)]
    pub(super) fn sgd_step(x: &mut [f32], g: &mut [f32], lr: f32, wd: f32) {
        for (x, gr) in x.iter_mut().zip(g.iter_mut()) {
            let eff = *gr + wd * *x;
            *x -= lr * eff;
            *gr = 0.0;
        }
    }

    /// One momentum-SGD step with weight decay; zeroes the gradient.
    #[inline(never)]
    pub(super) fn sgd_momentum_step(x: &mut [f32], g: &mut [f32], m: &mut [f32], lr: f32, wd: f32, mu: f32) {
        for ((x, gr), m) in x.iter_mut().zip(g.iter_mut()).zip(m.iter_mut()) {
            let eff = *gr + wd * *x;
            *m = mu * *m + eff;
            *x -= lr * *m;
            *gr = 0.0;
        }
    }

    /// One column strip of one output row of the ikj `C = A·B` kernel over
    /// one `k`-tile: `c_cols[j] += a_tile[p] * b_tile[p·n + col0 + j]` for
    /// ascending `p`. `col0` is the strip's first column, so the caller can
    /// keep a narrow window of `B` cache-resident across many output rows.
    pub(super) fn nn_tile_cols(c_cols: &mut [f32], a_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) {
        nn_tile_tail(c_cols, a_tile, b_tile, n, col0);
    }

    /// Two-row variant of [`nn_tile_cols`]: the same column strip of two
    /// output rows over one `k`-tile. The scalar ground truth simply runs
    /// the rows back-to-back through the shared single-row loop — the rows
    /// are independent, so ordering between them is immaterial; vector
    /// levels keep both rows' accumulators live so each `B` load feeds two
    /// rows.
    pub(super) fn nn_tile_cols2(c0_cols: &mut [f32], c1_cols: &mut [f32], a0_tile: &[f32], a1_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) {
        nn_tile_tail(c0_cols, a0_tile, b_tile, n, col0);
        nn_tile_tail(c1_cols, a1_tile, b_tile, n, col0);
    }

    /// The trailing columns of [`nn_tile_cols`] starting at `col`:
    /// `c_tail[j] += a_tile[p] * b_tile[p·n + col + j]` for ascending `p`.
    /// The full-row kernel delegates here with `col = 0` so the whole-row
    /// and vector-remainder paths share one compiled accumulation loop.
    #[inline(never)]
    pub(super) fn nn_tile_tail(c_tail: &mut [f32], a_tile: &[f32], b_tile: &[f32], n: usize, col: usize) {
        for (&av, b_row) in a_tile.iter().zip(b_tile.chunks_exact(n)) {
            let bt = b_row.get(col..).unwrap_or(&[]);
            for (c, &bv) in c_tail.iter_mut().zip(bt.iter()) {
                *c += av * bv;
            }
        }
    }

    /// One output row of the `C = A·Bᵀ` kernel: `c_row[j]` is the sequential
    /// dot of `a_row` with row `j` of `B` (`b` is `len(c_row)` rows of `k`).
    /// Requires `k > 0`.
    #[inline(never)]
    pub(super) fn tb_row(c_row: &mut [f32], a_row: &[f32], b: &[f32], k: usize) {
        for (c, b_row) in c_row.iter_mut().zip(b.chunks_exact(k)) {
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                acc += av * bv;
            }
            *c = acc;
        }
    }
}

// ---------------------------------------------------------------------------
// x86-64 vector implementations
// ---------------------------------------------------------------------------

/// AVX2 (`f32x8`) and SSE2 (`f32x4`) variants of every operation.
///
/// Every function is `unsafe` with the same contract: the caller must have
/// verified (via [`hardware_simd_level`]) that the named feature is
/// available. Inside, raw-pointer loads/stores only ever target subslices
/// whose length was just established safely.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::scalar;
    use std::arch::x86_64::{
        __m128, __m256, _mm256_add_ps, _mm256_and_ps, _mm256_andnot_ps, _mm256_castsi256_ps,
        _mm256_cmp_ps, _mm256_loadu_ps, _mm256_mul_ps, _mm256_or_ps, _mm256_permute2f128_ps,
        _CMP_UNORD_Q, _mm_cmpunord_ps,
        _mm256_permutevar8x32_ps, _mm256_set1_epi32, _mm256_set1_ps, _mm256_set_ps,
        _mm256_setzero_ps, _mm256_shuffle_ps, _mm256_storeu_ps, _mm256_sub_ps,
        _mm256_unpackhi_ps, _mm256_unpacklo_ps, _mm_add_ps, _mm_and_ps, _mm_andnot_ps,
        _mm_castsi128_ps, _mm_cmpgt_ps, _mm_loadu_ps, _mm_movehl_ps, _mm_movelh_ps, _mm_mul_ps,
        _mm_or_ps, _mm_set1_epi32, _mm_set1_ps, _mm_set_ps, _mm_setzero_ps, _mm_shuffle_ps,
        _mm_storeu_ps, _mm_sub_ps, _mm_unpackhi_ps, _mm_unpacklo_ps, _CMP_GT_OQ,
    };

    /// `x > 0` as a full-width lane mask (NaN compares false, like the
    /// scalar `>`).
    #[target_feature(enable = "avx2")]
    unsafe fn gt_zero8(x: __m256) -> __m256 {
        _mm256_cmp_ps::<_CMP_GT_OQ>(x, _mm256_setzero_ps())
    }

    #[target_feature(enable = "sse2")]
    unsafe fn gt_zero4(x: __m128) -> __m128 {
        _mm_cmpgt_ps(x, _mm_setzero_ps())
    }

    /// All-lanes sign-bit-clear mask (`!sign` per lane).
    #[target_feature(enable = "avx2")]
    unsafe fn abs_mask8() -> __m256 {
        _mm256_castsi256_ps(_mm256_set1_epi32(0x7fff_ffff))
    }

    #[target_feature(enable = "sse2")]
    unsafe fn abs_mask4() -> __m128 {
        _mm_castsi128_ps(_mm_set1_epi32(0x7fff_ffff))
    }

    /// Generates the AVX2 + SSE2 bodies for a unary/binary elementwise map.
    /// Each arm walks full-width chunks, then hands the remainder to the
    /// scalar ground truth.
    macro_rules! elementwise {
        (
            $(#[$meta:meta])*
            avx2: $name8:ident, sse2: $name4:ident,
            |$($arg:ident : $ty:ty),*| lanes8 $body8:block lanes4 $body4:block
        ) => {
            $(#[$meta])*
            #[target_feature(enable = "avx2")]
            pub(super) unsafe fn $name8($($arg: $ty),*) $body8

            $(#[$meta])*
            #[target_feature(enable = "sse2")]
            pub(super) unsafe fn $name4($($arg: $ty),*) $body4
        };
    }

    elementwise! {
        /// `y[i] += a * x[i]`: lanewise `add(y, mul(a, x))`, same
        /// mul-then-add order as the scalar loop.
        avx2: axpy_avx2, sse2: axpy_sse2,
        |y: &mut [f32], a: f32, x: &[f32]| lanes8 {
            let av = _mm256_set1_ps(a);
            let mut yc = y.chunks_exact_mut(8);
            let mut xc = x.chunks_exact(8);
            for (ys, xs) in (&mut yc).zip(&mut xc) {
                // SAFETY: both subslices are exactly 8 lanes long.
                unsafe {
                    let yv = _mm256_loadu_ps(ys.as_ptr());
                    let xv = _mm256_loadu_ps(xs.as_ptr());
                    _mm256_storeu_ps(ys.as_mut_ptr(), _mm256_add_ps(yv, _mm256_mul_ps(av, xv)));
                }
            }
            scalar::axpy(yc.into_remainder(), a, xc.remainder());
        } lanes4 {
            let av = _mm_set1_ps(a);
            let mut yc = y.chunks_exact_mut(4);
            let mut xc = x.chunks_exact(4);
            for (ys, xs) in (&mut yc).zip(&mut xc) {
                // SAFETY: both subslices are exactly 4 lanes long.
                unsafe {
                    let yv = _mm_loadu_ps(ys.as_ptr());
                    let xv = _mm_loadu_ps(xs.as_ptr());
                    _mm_storeu_ps(ys.as_mut_ptr(), _mm_add_ps(yv, _mm_mul_ps(av, xv)));
                }
            }
            scalar::axpy(yc.into_remainder(), a, xc.remainder());
        }
    }

    elementwise! {
        /// `y[i] += x[i]`.
        avx2: add_assign_avx2, sse2: add_assign_sse2,
        |y: &mut [f32], x: &[f32]| lanes8 {
            let mut yc = y.chunks_exact_mut(8);
            let mut xc = x.chunks_exact(8);
            for (ys, xs) in (&mut yc).zip(&mut xc) {
                // SAFETY: both subslices are exactly 8 lanes long.
                unsafe {
                    let yv = _mm256_loadu_ps(ys.as_ptr());
                    let xv = _mm256_loadu_ps(xs.as_ptr());
                    _mm256_storeu_ps(ys.as_mut_ptr(), _mm256_add_ps(yv, xv));
                }
            }
            scalar::add_assign(yc.into_remainder(), xc.remainder());
        } lanes4 {
            let mut yc = y.chunks_exact_mut(4);
            let mut xc = x.chunks_exact(4);
            for (ys, xs) in (&mut yc).zip(&mut xc) {
                // SAFETY: both subslices are exactly 4 lanes long.
                unsafe {
                    let yv = _mm_loadu_ps(ys.as_ptr());
                    let xv = _mm_loadu_ps(xs.as_ptr());
                    _mm_storeu_ps(ys.as_mut_ptr(), _mm_add_ps(yv, xv));
                }
            }
            scalar::add_assign(yc.into_remainder(), xc.remainder());
        }
    }

    elementwise! {
        /// NaN-holding scatter add: `select(isnan(y), y, y + x)` per lane,
        /// matching the scalar guard bit-for-bit (see
        /// [`scalar::scatter_add`] for why the guard exists).
        avx2: scatter_add_avx2, sse2: scatter_add_sse2,
        |y: &mut [f32], x: &[f32]| lanes8 {
            let mut yc = y.chunks_exact_mut(8);
            let mut xc = x.chunks_exact(8);
            for (ys, xs) in (&mut yc).zip(&mut xc) {
                // SAFETY: both subslices are exactly 8 lanes long.
                unsafe {
                    let yv = _mm256_loadu_ps(ys.as_ptr());
                    let xv = _mm256_loadu_ps(xs.as_ptr());
                    let m = _mm256_cmp_ps::<_CMP_UNORD_Q>(yv, yv);
                    let s = _mm256_add_ps(yv, xv);
                    _mm256_storeu_ps(
                        ys.as_mut_ptr(),
                        _mm256_or_ps(_mm256_and_ps(m, yv), _mm256_andnot_ps(m, s)),
                    );
                }
            }
            scalar::scatter_add(yc.into_remainder(), xc.remainder());
        } lanes4 {
            let mut yc = y.chunks_exact_mut(4);
            let mut xc = x.chunks_exact(4);
            for (ys, xs) in (&mut yc).zip(&mut xc) {
                // SAFETY: both subslices are exactly 4 lanes long.
                unsafe {
                    let yv = _mm_loadu_ps(ys.as_ptr());
                    let xv = _mm_loadu_ps(xs.as_ptr());
                    let m = _mm_cmpunord_ps(yv, yv);
                    let s = _mm_add_ps(yv, xv);
                    _mm_storeu_ps(
                        ys.as_mut_ptr(),
                        _mm_or_ps(_mm_and_ps(m, yv), _mm_andnot_ps(m, s)),
                    );
                }
            }
            scalar::scatter_add(yc.into_remainder(), xc.remainder());
        }
    }

    elementwise! {
        /// `r[i] += l[i] - g[i]`: lanewise `add(r, sub(l, g))`, matching the
        /// scalar `r + (l - g)` evaluation order.
        avx2: add_diff_avx2, sse2: add_diff_sse2,
        |r: &mut [f32], l: &[f32], g: &[f32]| lanes8 {
            let mut rc = r.chunks_exact_mut(8);
            let mut lc = l.chunks_exact(8);
            let mut gc = g.chunks_exact(8);
            for ((rs, ls), gs) in (&mut rc).zip(&mut lc).zip(&mut gc) {
                // SAFETY: all three subslices are exactly 8 lanes long.
                unsafe {
                    let rv = _mm256_loadu_ps(rs.as_ptr());
                    let lv = _mm256_loadu_ps(ls.as_ptr());
                    let gv = _mm256_loadu_ps(gs.as_ptr());
                    _mm256_storeu_ps(rs.as_mut_ptr(), _mm256_add_ps(rv, _mm256_sub_ps(lv, gv)));
                }
            }
            scalar::add_diff(rc.into_remainder(), lc.remainder(), gc.remainder());
        } lanes4 {
            let mut rc = r.chunks_exact_mut(4);
            let mut lc = l.chunks_exact(4);
            let mut gc = g.chunks_exact(4);
            for ((rs, ls), gs) in (&mut rc).zip(&mut lc).zip(&mut gc) {
                // SAFETY: all three subslices are exactly 4 lanes long.
                unsafe {
                    let rv = _mm_loadu_ps(rs.as_ptr());
                    let lv = _mm_loadu_ps(ls.as_ptr());
                    let gv = _mm_loadu_ps(gs.as_ptr());
                    _mm_storeu_ps(rs.as_mut_ptr(), _mm_add_ps(rv, _mm_sub_ps(lv, gv)));
                }
            }
            scalar::add_diff(rc.into_remainder(), lc.remainder(), gc.remainder());
        }
    }

    elementwise! {
        /// `out[i] = |x[i]|` by clearing the sign bit — exactly what the
        /// scalar `f32::abs` does, so NaN payloads are preserved.
        avx2: abs_into_avx2, sse2: abs_into_sse2,
        |out: &mut [f32], x: &[f32]| lanes8 {
            let mask = abs_mask8();
            let mut oc = out.chunks_exact_mut(8);
            let mut xc = x.chunks_exact(8);
            for (os, xs) in (&mut oc).zip(&mut xc) {
                // SAFETY: both subslices are exactly 8 lanes long.
                unsafe {
                    let xv = _mm256_loadu_ps(xs.as_ptr());
                    _mm256_storeu_ps(os.as_mut_ptr(), _mm256_and_ps(xv, mask));
                }
            }
            scalar::abs_into(oc.into_remainder(), xc.remainder());
        } lanes4 {
            let mask = abs_mask4();
            let mut oc = out.chunks_exact_mut(4);
            let mut xc = x.chunks_exact(4);
            for (os, xs) in (&mut oc).zip(&mut xc) {
                // SAFETY: both subslices are exactly 4 lanes long.
                unsafe {
                    let xv = _mm_loadu_ps(xs.as_ptr());
                    _mm_storeu_ps(os.as_mut_ptr(), _mm_and_ps(xv, mask));
                }
            }
            scalar::abs_into(oc.into_remainder(), xc.remainder());
        }
    }

    elementwise! {
        /// ReLU forward as compare+select: lanes where `x > 0` keep `x`
        /// (bit-exact, NaN payloads included); all others become `+0.0`.
        avx2: relu_fwd_avx2, sse2: relu_fwd_sse2,
        |x: &[f32], out: &mut [f32]| lanes8 {
            let mut xc = x.chunks_exact(8);
            let mut oc = out.chunks_exact_mut(8);
            for (xs, os) in (&mut xc).zip(&mut oc) {
                // SAFETY: both subslices are exactly 8 lanes long.
                unsafe {
                    let xv = _mm256_loadu_ps(xs.as_ptr());
                    _mm256_storeu_ps(os.as_mut_ptr(), _mm256_and_ps(gt_zero8(xv), xv));
                }
            }
            scalar::relu_fwd(xc.remainder(), oc.into_remainder());
        } lanes4 {
            let mut xc = x.chunks_exact(4);
            let mut oc = out.chunks_exact_mut(4);
            for (xs, os) in (&mut xc).zip(&mut oc) {
                // SAFETY: both subslices are exactly 4 lanes long.
                unsafe {
                    let xv = _mm_loadu_ps(xs.as_ptr());
                    _mm_storeu_ps(os.as_mut_ptr(), _mm_and_ps(gt_zero4(xv), xv));
                }
            }
            scalar::relu_fwd(xc.remainder(), oc.into_remainder());
        }
    }

    elementwise! {
        /// ReLU backward: lanes where `x > 0` pass `g` through unchanged,
        /// all others emit `+0.0`.
        avx2: relu_bwd_avx2, sse2: relu_bwd_sse2,
        |x: &[f32], g: &[f32], out: &mut [f32]| lanes8 {
            let mut xc = x.chunks_exact(8);
            let mut gc = g.chunks_exact(8);
            let mut oc = out.chunks_exact_mut(8);
            for ((xs, gs), os) in (&mut xc).zip(&mut gc).zip(&mut oc) {
                // SAFETY: all three subslices are exactly 8 lanes long.
                unsafe {
                    let xv = _mm256_loadu_ps(xs.as_ptr());
                    let gv = _mm256_loadu_ps(gs.as_ptr());
                    _mm256_storeu_ps(os.as_mut_ptr(), _mm256_and_ps(gt_zero8(xv), gv));
                }
            }
            scalar::relu_bwd(xc.remainder(), gc.remainder(), oc.into_remainder());
        } lanes4 {
            let mut xc = x.chunks_exact(4);
            let mut gc = g.chunks_exact(4);
            let mut oc = out.chunks_exact_mut(4);
            for ((xs, gs), os) in (&mut xc).zip(&mut gc).zip(&mut oc) {
                // SAFETY: all three subslices are exactly 4 lanes long.
                unsafe {
                    let xv = _mm_loadu_ps(xs.as_ptr());
                    let gv = _mm_loadu_ps(gs.as_ptr());
                    _mm_storeu_ps(os.as_mut_ptr(), _mm_and_ps(gt_zero4(xv), gv));
                }
            }
            scalar::relu_bwd(xc.remainder(), gc.remainder(), oc.into_remainder());
        }
    }

    elementwise! {
        /// Leaky-ReLU forward: `select(x > 0, x, slope * x)`. The negative
        /// branch multiplies exactly like the scalar else-arm (including
        /// `slope * -0.0 = -0.0`).
        avx2: leaky_fwd_avx2, sse2: leaky_fwd_sse2,
        |x: &[f32], slope: f32, out: &mut [f32]| lanes8 {
            let sv = _mm256_set1_ps(slope);
            let mut xc = x.chunks_exact(8);
            let mut oc = out.chunks_exact_mut(8);
            for (xs, os) in (&mut xc).zip(&mut oc) {
                // SAFETY: both subslices are exactly 8 lanes long.
                unsafe {
                    let xv = _mm256_loadu_ps(xs.as_ptr());
                    let m = gt_zero8(xv);
                    let neg = _mm256_mul_ps(sv, xv);
                    _mm256_storeu_ps(
                        os.as_mut_ptr(),
                        _mm256_or_ps(_mm256_and_ps(m, xv), _mm256_andnot_ps(m, neg)),
                    );
                }
            }
            scalar::leaky_fwd(xc.remainder(), slope, oc.into_remainder());
        } lanes4 {
            let sv = _mm_set1_ps(slope);
            let mut xc = x.chunks_exact(4);
            let mut oc = out.chunks_exact_mut(4);
            for (xs, os) in (&mut xc).zip(&mut oc) {
                // SAFETY: both subslices are exactly 4 lanes long.
                unsafe {
                    let xv = _mm_loadu_ps(xs.as_ptr());
                    let m = gt_zero4(xv);
                    let neg = _mm_mul_ps(sv, xv);
                    _mm_storeu_ps(
                        os.as_mut_ptr(),
                        _mm_or_ps(_mm_and_ps(m, xv), _mm_andnot_ps(m, neg)),
                    );
                }
            }
            scalar::leaky_fwd(xc.remainder(), slope, oc.into_remainder());
        }
    }

    elementwise! {
        /// Leaky-ReLU backward: `select(x > 0, g, slope * g)`.
        avx2: leaky_bwd_avx2, sse2: leaky_bwd_sse2,
        |x: &[f32], g: &[f32], slope: f32, out: &mut [f32]| lanes8 {
            let sv = _mm256_set1_ps(slope);
            let mut xc = x.chunks_exact(8);
            let mut gc = g.chunks_exact(8);
            let mut oc = out.chunks_exact_mut(8);
            for ((xs, gs), os) in (&mut xc).zip(&mut gc).zip(&mut oc) {
                // SAFETY: all three subslices are exactly 8 lanes long.
                unsafe {
                    let xv = _mm256_loadu_ps(xs.as_ptr());
                    let gv = _mm256_loadu_ps(gs.as_ptr());
                    let m = gt_zero8(xv);
                    let neg = _mm256_mul_ps(sv, gv);
                    _mm256_storeu_ps(
                        os.as_mut_ptr(),
                        _mm256_or_ps(_mm256_and_ps(m, gv), _mm256_andnot_ps(m, neg)),
                    );
                }
            }
            scalar::leaky_bwd(xc.remainder(), gc.remainder(), slope, oc.into_remainder());
        } lanes4 {
            let sv = _mm_set1_ps(slope);
            let mut xc = x.chunks_exact(4);
            let mut gc = g.chunks_exact(4);
            let mut oc = out.chunks_exact_mut(4);
            for ((xs, gs), os) in (&mut xc).zip(&mut gc).zip(&mut oc) {
                // SAFETY: all three subslices are exactly 4 lanes long.
                unsafe {
                    let xv = _mm_loadu_ps(xs.as_ptr());
                    let gv = _mm_loadu_ps(gs.as_ptr());
                    let m = gt_zero4(xv);
                    let neg = _mm_mul_ps(sv, gv);
                    _mm_storeu_ps(
                        os.as_mut_ptr(),
                        _mm_or_ps(_mm_and_ps(m, gv), _mm_andnot_ps(m, neg)),
                    );
                }
            }
            scalar::leaky_bwd(xc.remainder(), gc.remainder(), slope, oc.into_remainder());
        }
    }

    elementwise! {
        /// SGD step: `eff = g + wd·x; x -= lr·eff; g = 0`, all in the
        /// scalar evaluation order.
        avx2: sgd_step_avx2, sse2: sgd_step_sse2,
        |x: &mut [f32], g: &mut [f32], lr: f32, wd: f32| lanes8 {
            let lrv = _mm256_set1_ps(lr);
            let wdv = _mm256_set1_ps(wd);
            let zero = _mm256_setzero_ps();
            let mut xc = x.chunks_exact_mut(8);
            let mut gc = g.chunks_exact_mut(8);
            for (xs, gs) in (&mut xc).zip(&mut gc) {
                // SAFETY: both subslices are exactly 8 lanes long.
                unsafe {
                    let xv = _mm256_loadu_ps(xs.as_ptr());
                    let gv = _mm256_loadu_ps(gs.as_ptr());
                    let eff = _mm256_add_ps(gv, _mm256_mul_ps(wdv, xv));
                    _mm256_storeu_ps(xs.as_mut_ptr(), _mm256_sub_ps(xv, _mm256_mul_ps(lrv, eff)));
                    _mm256_storeu_ps(gs.as_mut_ptr(), zero);
                }
            }
            scalar::sgd_step(xc.into_remainder(), gc.into_remainder(), lr, wd);
        } lanes4 {
            let lrv = _mm_set1_ps(lr);
            let wdv = _mm_set1_ps(wd);
            let zero = _mm_setzero_ps();
            let mut xc = x.chunks_exact_mut(4);
            let mut gc = g.chunks_exact_mut(4);
            for (xs, gs) in (&mut xc).zip(&mut gc) {
                // SAFETY: both subslices are exactly 4 lanes long.
                unsafe {
                    let xv = _mm_loadu_ps(xs.as_ptr());
                    let gv = _mm_loadu_ps(gs.as_ptr());
                    let eff = _mm_add_ps(gv, _mm_mul_ps(wdv, xv));
                    _mm_storeu_ps(xs.as_mut_ptr(), _mm_sub_ps(xv, _mm_mul_ps(lrv, eff)));
                    _mm_storeu_ps(gs.as_mut_ptr(), zero);
                }
            }
            scalar::sgd_step(xc.into_remainder(), gc.into_remainder(), lr, wd);
        }
    }

    elementwise! {
        /// Momentum-SGD step: `eff = g + wd·x; m = mu·m + eff;
        /// x -= lr·m; g = 0`, all in the scalar evaluation order.
        avx2: sgd_momentum_step_avx2, sse2: sgd_momentum_step_sse2,
        |x: &mut [f32], g: &mut [f32], m: &mut [f32], lr: f32, wd: f32, mu: f32| lanes8 {
            let lrv = _mm256_set1_ps(lr);
            let wdv = _mm256_set1_ps(wd);
            let muv = _mm256_set1_ps(mu);
            let zero = _mm256_setzero_ps();
            let mut xc = x.chunks_exact_mut(8);
            let mut gc = g.chunks_exact_mut(8);
            let mut mc = m.chunks_exact_mut(8);
            for ((xs, gs), ms) in (&mut xc).zip(&mut gc).zip(&mut mc) {
                // SAFETY: all three subslices are exactly 8 lanes long.
                unsafe {
                    let xv = _mm256_loadu_ps(xs.as_ptr());
                    let gv = _mm256_loadu_ps(gs.as_ptr());
                    let mv = _mm256_loadu_ps(ms.as_ptr());
                    let eff = _mm256_add_ps(gv, _mm256_mul_ps(wdv, xv));
                    let vel = _mm256_add_ps(_mm256_mul_ps(muv, mv), eff);
                    _mm256_storeu_ps(ms.as_mut_ptr(), vel);
                    _mm256_storeu_ps(xs.as_mut_ptr(), _mm256_sub_ps(xv, _mm256_mul_ps(lrv, vel)));
                    _mm256_storeu_ps(gs.as_mut_ptr(), zero);
                }
            }
            scalar::sgd_momentum_step(
                xc.into_remainder(), gc.into_remainder(), mc.into_remainder(), lr, wd, mu,
            );
        } lanes4 {
            let lrv = _mm_set1_ps(lr);
            let wdv = _mm_set1_ps(wd);
            let muv = _mm_set1_ps(mu);
            let zero = _mm_setzero_ps();
            let mut xc = x.chunks_exact_mut(4);
            let mut gc = g.chunks_exact_mut(4);
            let mut mc = m.chunks_exact_mut(4);
            for ((xs, gs), ms) in (&mut xc).zip(&mut gc).zip(&mut mc) {
                // SAFETY: all three subslices are exactly 4 lanes long.
                unsafe {
                    let xv = _mm_loadu_ps(xs.as_ptr());
                    let gv = _mm_loadu_ps(gs.as_ptr());
                    let mv = _mm_loadu_ps(ms.as_ptr());
                    let eff = _mm_add_ps(gv, _mm_mul_ps(wdv, xv));
                    let vel = _mm_add_ps(_mm_mul_ps(muv, mv), eff);
                    _mm_storeu_ps(ms.as_mut_ptr(), vel);
                    _mm_storeu_ps(xs.as_mut_ptr(), _mm_sub_ps(xv, _mm_mul_ps(lrv, vel)));
                    _mm_storeu_ps(gs.as_mut_ptr(), zero);
                }
            }
            scalar::sgd_momentum_step(
                xc.into_remainder(), gc.into_remainder(), mc.into_remainder(), lr, wd, mu,
            );
        }
    }

    /// AVX2 ikj strip kernel: register-blocks 32 output columns (4 × f32x8
    /// accumulators), keeping each column's ascending-`p` chain in one lane
    /// across the whole `k`-tile. Loading the accumulator from the output
    /// strip and storing it back at tile boundaries resumes the exact scalar
    /// chain. `col0` is the strip's first column within the `n`-wide rows of
    /// `b_tile`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn nn_tile_cols_avx2(c_cols: &mut [f32], a_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) {
        let mut col = col0;
        let mut blocks = c_cols.chunks_exact_mut(32);
        for cs in &mut blocks {
            let (lo, hi) = cs.split_at_mut(16);
            let (c0, c1) = lo.split_at_mut(8);
            let (c2, c3) = hi.split_at_mut(8);
            // SAFETY: each cN is exactly 8 lanes of the 32-wide block.
            let (mut acc0, mut acc1, mut acc2, mut acc3) = unsafe {
                (
                    _mm256_loadu_ps(c0.as_ptr()),
                    _mm256_loadu_ps(c1.as_ptr()),
                    _mm256_loadu_ps(c2.as_ptr()),
                    _mm256_loadu_ps(c3.as_ptr()),
                )
            };
            for (&av, b_row) in a_tile.iter().zip(b_tile.chunks_exact(n)) {
                let Some(bs) = b_row.get(col..col + 32) else { continue };
                let (blo, bhi) = bs.split_at(16);
                let (b0, b1) = blo.split_at(8);
                let (b2, b3) = bhi.split_at(8);
                let avv = _mm256_set1_ps(av);
                // SAFETY: each bN is exactly 8 lanes of the checked 32-wide
                // window of this B row.
                unsafe {
                    acc0 = _mm256_add_ps(acc0, _mm256_mul_ps(avv, _mm256_loadu_ps(b0.as_ptr())));
                    acc1 = _mm256_add_ps(acc1, _mm256_mul_ps(avv, _mm256_loadu_ps(b1.as_ptr())));
                    acc2 = _mm256_add_ps(acc2, _mm256_mul_ps(avv, _mm256_loadu_ps(b2.as_ptr())));
                    acc3 = _mm256_add_ps(acc3, _mm256_mul_ps(avv, _mm256_loadu_ps(b3.as_ptr())));
                }
            }
            // SAFETY: same 8-lane subslices the accumulators were loaded from.
            unsafe {
                _mm256_storeu_ps(c0.as_mut_ptr(), acc0);
                _mm256_storeu_ps(c1.as_mut_ptr(), acc1);
                _mm256_storeu_ps(c2.as_mut_ptr(), acc2);
                _mm256_storeu_ps(c3.as_mut_ptr(), acc3);
            }
            col += 32;
        }
        let mut tail = blocks.into_remainder().chunks_exact_mut(8);
        for cs in &mut tail {
            // SAFETY: cs is exactly 8 lanes.
            let mut acc = unsafe { _mm256_loadu_ps(cs.as_ptr()) };
            for (&av, b_row) in a_tile.iter().zip(b_tile.chunks_exact(n)) {
                let Some(bs) = b_row.get(col..col + 8) else { continue };
                // SAFETY: bs is exactly 8 lanes.
                unsafe {
                    acc = _mm256_add_ps(acc, _mm256_mul_ps(_mm256_set1_ps(av), _mm256_loadu_ps(bs.as_ptr())));
                }
            }
            // SAFETY: cs is exactly 8 lanes.
            unsafe { _mm256_storeu_ps(cs.as_mut_ptr(), acc) };
            col += 8;
        }
        scalar::nn_tile_tail(tail.into_remainder(), a_tile, b_tile, n, col);
    }

    /// SSE2 ikj strip kernel: 16-column register blocks (4 × f32x4).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn nn_tile_cols_sse2(c_cols: &mut [f32], a_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) {
        let mut col = col0;
        let mut blocks = c_cols.chunks_exact_mut(16);
        for cs in &mut blocks {
            let (lo, hi) = cs.split_at_mut(8);
            let (c0, c1) = lo.split_at_mut(4);
            let (c2, c3) = hi.split_at_mut(4);
            // SAFETY: each cN is exactly 4 lanes of the 16-wide block.
            let (mut acc0, mut acc1, mut acc2, mut acc3) = unsafe {
                (
                    _mm_loadu_ps(c0.as_ptr()),
                    _mm_loadu_ps(c1.as_ptr()),
                    _mm_loadu_ps(c2.as_ptr()),
                    _mm_loadu_ps(c3.as_ptr()),
                )
            };
            for (&av, b_row) in a_tile.iter().zip(b_tile.chunks_exact(n)) {
                let Some(bs) = b_row.get(col..col + 16) else { continue };
                let (blo, bhi) = bs.split_at(8);
                let (b0, b1) = blo.split_at(4);
                let (b2, b3) = bhi.split_at(4);
                let avv = _mm_set1_ps(av);
                // SAFETY: each bN is exactly 4 lanes of the checked 16-wide
                // window of this B row.
                unsafe {
                    acc0 = _mm_add_ps(acc0, _mm_mul_ps(avv, _mm_loadu_ps(b0.as_ptr())));
                    acc1 = _mm_add_ps(acc1, _mm_mul_ps(avv, _mm_loadu_ps(b1.as_ptr())));
                    acc2 = _mm_add_ps(acc2, _mm_mul_ps(avv, _mm_loadu_ps(b2.as_ptr())));
                    acc3 = _mm_add_ps(acc3, _mm_mul_ps(avv, _mm_loadu_ps(b3.as_ptr())));
                }
            }
            // SAFETY: same 4-lane subslices the accumulators were loaded from.
            unsafe {
                _mm_storeu_ps(c0.as_mut_ptr(), acc0);
                _mm_storeu_ps(c1.as_mut_ptr(), acc1);
                _mm_storeu_ps(c2.as_mut_ptr(), acc2);
                _mm_storeu_ps(c3.as_mut_ptr(), acc3);
            }
            col += 16;
        }
        let mut tail = blocks.into_remainder().chunks_exact_mut(4);
        for cs in &mut tail {
            // SAFETY: cs is exactly 4 lanes.
            let mut acc = unsafe { _mm_loadu_ps(cs.as_ptr()) };
            for (&av, b_row) in a_tile.iter().zip(b_tile.chunks_exact(n)) {
                let Some(bs) = b_row.get(col..col + 4) else { continue };
                // SAFETY: bs is exactly 4 lanes.
                unsafe {
                    acc = _mm_add_ps(acc, _mm_mul_ps(_mm_set1_ps(av), _mm_loadu_ps(bs.as_ptr())));
                }
            }
            // SAFETY: cs is exactly 4 lanes.
            unsafe { _mm_storeu_ps(cs.as_mut_ptr(), acc) };
            col += 4;
        }
        scalar::nn_tile_tail(tail.into_remainder(), a_tile, b_tile, n, col);
    }

    /// AVX2 two-row ikj strip kernel: 32-column register blocks with both
    /// rows' accumulators live (8 × f32x8), so each `B` load feeds two
    /// rows' multiply-adds — the register-blocking step that makes the
    /// kernel load-port- rather than bandwidth-bound on wide outputs. Each
    /// element still receives its `+= a·b` updates in ascending-`p` order;
    /// the column remainder finishes through the single-row kernel.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn nn_tile_cols2_avx2(c0_cols: &mut [f32], c1_cols: &mut [f32], a0_tile: &[f32], a1_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) {
        let mut col = col0;
        let mut blocks0 = c0_cols.chunks_exact_mut(32);
        let mut blocks1 = c1_cols.chunks_exact_mut(32);
        for (cs0, cs1) in (&mut blocks0).zip(&mut blocks1) {
            let (lo0, hi0) = cs0.split_at_mut(16);
            let (c00, c01) = lo0.split_at_mut(8);
            let (c02, c03) = hi0.split_at_mut(8);
            let (lo1, hi1) = cs1.split_at_mut(16);
            let (c10, c11) = lo1.split_at_mut(8);
            let (c12, c13) = hi1.split_at_mut(8);
            // SAFETY: each cNM is exactly 8 lanes of its row's 32-wide block.
            let (mut acc00, mut acc01, mut acc02, mut acc03) = unsafe {
                (
                    _mm256_loadu_ps(c00.as_ptr()),
                    _mm256_loadu_ps(c01.as_ptr()),
                    _mm256_loadu_ps(c02.as_ptr()),
                    _mm256_loadu_ps(c03.as_ptr()),
                )
            };
            // SAFETY: as above, for the second row.
            let (mut acc10, mut acc11, mut acc12, mut acc13) = unsafe {
                (
                    _mm256_loadu_ps(c10.as_ptr()),
                    _mm256_loadu_ps(c11.as_ptr()),
                    _mm256_loadu_ps(c12.as_ptr()),
                    _mm256_loadu_ps(c13.as_ptr()),
                )
            };
            for ((&av0, &av1), b_row) in a0_tile.iter().zip(a1_tile.iter()).zip(b_tile.chunks_exact(n)) {
                let Some(bs) = b_row.get(col..col + 32) else { continue };
                let (blo, bhi) = bs.split_at(16);
                let (b0, b1) = blo.split_at(8);
                let (b2, b3) = bhi.split_at(8);
                let av0v = _mm256_set1_ps(av0);
                let av1v = _mm256_set1_ps(av1);
                // SAFETY: each bN is exactly 8 lanes of the checked 32-wide
                // window of this B row; each load is shared by both rows.
                unsafe {
                    let bv0 = _mm256_loadu_ps(b0.as_ptr());
                    let bv1 = _mm256_loadu_ps(b1.as_ptr());
                    let bv2 = _mm256_loadu_ps(b2.as_ptr());
                    let bv3 = _mm256_loadu_ps(b3.as_ptr());
                    acc00 = _mm256_add_ps(acc00, _mm256_mul_ps(av0v, bv0));
                    acc01 = _mm256_add_ps(acc01, _mm256_mul_ps(av0v, bv1));
                    acc02 = _mm256_add_ps(acc02, _mm256_mul_ps(av0v, bv2));
                    acc03 = _mm256_add_ps(acc03, _mm256_mul_ps(av0v, bv3));
                    acc10 = _mm256_add_ps(acc10, _mm256_mul_ps(av1v, bv0));
                    acc11 = _mm256_add_ps(acc11, _mm256_mul_ps(av1v, bv1));
                    acc12 = _mm256_add_ps(acc12, _mm256_mul_ps(av1v, bv2));
                    acc13 = _mm256_add_ps(acc13, _mm256_mul_ps(av1v, bv3));
                }
            }
            // SAFETY: same 8-lane subslices the accumulators were loaded from.
            unsafe {
                _mm256_storeu_ps(c00.as_mut_ptr(), acc00);
                _mm256_storeu_ps(c01.as_mut_ptr(), acc01);
                _mm256_storeu_ps(c02.as_mut_ptr(), acc02);
                _mm256_storeu_ps(c03.as_mut_ptr(), acc03);
                _mm256_storeu_ps(c10.as_mut_ptr(), acc10);
                _mm256_storeu_ps(c11.as_mut_ptr(), acc11);
                _mm256_storeu_ps(c12.as_mut_ptr(), acc12);
                _mm256_storeu_ps(c13.as_mut_ptr(), acc13);
            }
            col += 32;
        }
        // Column remainder: each row finishes independently through the
        // single-row kernel, continuing at `col`.
        // SAFETY: caller verified AVX2, the same contract this fn has.
        unsafe {
            nn_tile_cols_avx2(blocks0.into_remainder(), a0_tile, b_tile, n, col);
            nn_tile_cols_avx2(blocks1.into_remainder(), a1_tile, b_tile, n, col);
        }
    }

    /// SSE2 two-row ikj strip kernel: 16-column register blocks shared
    /// across two rows (8 × f32x4 accumulators).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn nn_tile_cols2_sse2(c0_cols: &mut [f32], c1_cols: &mut [f32], a0_tile: &[f32], a1_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) {
        let mut col = col0;
        let mut blocks0 = c0_cols.chunks_exact_mut(16);
        let mut blocks1 = c1_cols.chunks_exact_mut(16);
        for (cs0, cs1) in (&mut blocks0).zip(&mut blocks1) {
            let (lo0, hi0) = cs0.split_at_mut(8);
            let (c00, c01) = lo0.split_at_mut(4);
            let (c02, c03) = hi0.split_at_mut(4);
            let (lo1, hi1) = cs1.split_at_mut(8);
            let (c10, c11) = lo1.split_at_mut(4);
            let (c12, c13) = hi1.split_at_mut(4);
            // SAFETY: each cNM is exactly 4 lanes of its row's 16-wide block.
            let (mut acc00, mut acc01, mut acc02, mut acc03) = unsafe {
                (
                    _mm_loadu_ps(c00.as_ptr()),
                    _mm_loadu_ps(c01.as_ptr()),
                    _mm_loadu_ps(c02.as_ptr()),
                    _mm_loadu_ps(c03.as_ptr()),
                )
            };
            // SAFETY: as above, for the second row.
            let (mut acc10, mut acc11, mut acc12, mut acc13) = unsafe {
                (
                    _mm_loadu_ps(c10.as_ptr()),
                    _mm_loadu_ps(c11.as_ptr()),
                    _mm_loadu_ps(c12.as_ptr()),
                    _mm_loadu_ps(c13.as_ptr()),
                )
            };
            for ((&av0, &av1), b_row) in a0_tile.iter().zip(a1_tile.iter()).zip(b_tile.chunks_exact(n)) {
                let Some(bs) = b_row.get(col..col + 16) else { continue };
                let (blo, bhi) = bs.split_at(8);
                let (b0, b1) = blo.split_at(4);
                let (b2, b3) = bhi.split_at(4);
                let av0v = _mm_set1_ps(av0);
                let av1v = _mm_set1_ps(av1);
                // SAFETY: each bN is exactly 4 lanes of the checked 16-wide
                // window of this B row; each load is shared by both rows.
                unsafe {
                    let bv0 = _mm_loadu_ps(b0.as_ptr());
                    let bv1 = _mm_loadu_ps(b1.as_ptr());
                    let bv2 = _mm_loadu_ps(b2.as_ptr());
                    let bv3 = _mm_loadu_ps(b3.as_ptr());
                    acc00 = _mm_add_ps(acc00, _mm_mul_ps(av0v, bv0));
                    acc01 = _mm_add_ps(acc01, _mm_mul_ps(av0v, bv1));
                    acc02 = _mm_add_ps(acc02, _mm_mul_ps(av0v, bv2));
                    acc03 = _mm_add_ps(acc03, _mm_mul_ps(av0v, bv3));
                    acc10 = _mm_add_ps(acc10, _mm_mul_ps(av1v, bv0));
                    acc11 = _mm_add_ps(acc11, _mm_mul_ps(av1v, bv1));
                    acc12 = _mm_add_ps(acc12, _mm_mul_ps(av1v, bv2));
                    acc13 = _mm_add_ps(acc13, _mm_mul_ps(av1v, bv3));
                }
            }
            // SAFETY: same 4-lane subslices the accumulators were loaded from.
            unsafe {
                _mm_storeu_ps(c00.as_mut_ptr(), acc00);
                _mm_storeu_ps(c01.as_mut_ptr(), acc01);
                _mm_storeu_ps(c02.as_mut_ptr(), acc02);
                _mm_storeu_ps(c03.as_mut_ptr(), acc03);
                _mm_storeu_ps(c10.as_mut_ptr(), acc10);
                _mm_storeu_ps(c11.as_mut_ptr(), acc11);
                _mm_storeu_ps(c12.as_mut_ptr(), acc12);
                _mm_storeu_ps(c13.as_mut_ptr(), acc13);
            }
            col += 16;
        }
        // SAFETY: caller verified SSE2, the same contract this fn has.
        unsafe {
            nn_tile_cols_sse2(blocks0.into_remainder(), a0_tile, b_tile, n, col);
            nn_tile_cols_sse2(blocks1.into_remainder(), a1_tile, b_tile, n, col);
        }
    }

    /// AVX2 `A·Bᵀ` row kernel: 8 output columns at a time. Eight contiguous
    /// loads from the 8 B rows are transposed in registers so that lane `j`
    /// of the accumulator carries output column `j`'s one sequential
    /// ascending-`p` dot chain (broadcast-multiply-add per `p`, no
    /// horizontal reduction anywhere). Requires `k > 0`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn tb_row_avx2(c_row: &mut [f32], a_row: &[f32], b: &[f32], k: usize) {
        let mut c_blocks = c_row.chunks_exact_mut(8);
        let mut b_groups = b.chunks_exact(8 * k);
        for (cs, group) in (&mut c_blocks).zip(&mut b_groups) {
            let mut rows = group.chunks_exact(k);
            let (r0, r1, r2, r3, r4, r5, r6, r7) = match (
                rows.next(), rows.next(), rows.next(), rows.next(),
                rows.next(), rows.next(), rows.next(), rows.next(),
            ) {
                (Some(r0), Some(r1), Some(r2), Some(r3), Some(r4), Some(r5), Some(r6), Some(r7)) => {
                    (r0, r1, r2, r3, r4, r5, r6, r7)
                }
                // Unreachable: an 8·k group always yields eight k-rows.
                _ => continue,
            };
            let mut acc = _mm256_setzero_ps();
            let main = k - (k % 8);
            let mut p = 0usize;
            while p < main {
                if let (Some(s0), Some(s1), Some(s2), Some(s3), Some(s4), Some(s5), Some(s6), Some(s7), Some(sa)) = (
                    r0.get(p..p + 8), r1.get(p..p + 8), r2.get(p..p + 8), r3.get(p..p + 8),
                    r4.get(p..p + 8), r5.get(p..p + 8), r6.get(p..p + 8), r7.get(p..p + 8),
                    a_row.get(p..p + 8),
                ) {
                    // SAFETY: every subslice is exactly 8 lanes.
                    unsafe {
                        let v0 = _mm256_loadu_ps(s0.as_ptr());
                        let v1 = _mm256_loadu_ps(s1.as_ptr());
                        let v2 = _mm256_loadu_ps(s2.as_ptr());
                        let v3 = _mm256_loadu_ps(s3.as_ptr());
                        let v4 = _mm256_loadu_ps(s4.as_ptr());
                        let v5 = _mm256_loadu_ps(s5.as_ptr());
                        let v6 = _mm256_loadu_ps(s6.as_ptr());
                        let v7 = _mm256_loadu_ps(s7.as_ptr());
                        // 8×8 in-register transpose: col[t] lane j = element
                        // p+t of row j.
                        let t0 = _mm256_unpacklo_ps(v0, v1);
                        let t1 = _mm256_unpackhi_ps(v0, v1);
                        let t2 = _mm256_unpacklo_ps(v2, v3);
                        let t3 = _mm256_unpackhi_ps(v2, v3);
                        let t4 = _mm256_unpacklo_ps(v4, v5);
                        let t5 = _mm256_unpackhi_ps(v4, v5);
                        let t6 = _mm256_unpacklo_ps(v6, v7);
                        let t7 = _mm256_unpackhi_ps(v6, v7);
                        let u0 = _mm256_shuffle_ps::<0x44>(t0, t2);
                        let u1 = _mm256_shuffle_ps::<0xEE>(t0, t2);
                        let u2 = _mm256_shuffle_ps::<0x44>(t1, t3);
                        let u3 = _mm256_shuffle_ps::<0xEE>(t1, t3);
                        let u4 = _mm256_shuffle_ps::<0x44>(t4, t6);
                        let u5 = _mm256_shuffle_ps::<0xEE>(t4, t6);
                        let u6 = _mm256_shuffle_ps::<0x44>(t5, t7);
                        let u7 = _mm256_shuffle_ps::<0xEE>(t5, t7);
                        let col0 = _mm256_permute2f128_ps::<0x20>(u0, u4);
                        let col1 = _mm256_permute2f128_ps::<0x20>(u1, u5);
                        let col2 = _mm256_permute2f128_ps::<0x20>(u2, u6);
                        let col3 = _mm256_permute2f128_ps::<0x20>(u3, u7);
                        let col4 = _mm256_permute2f128_ps::<0x31>(u0, u4);
                        let col5 = _mm256_permute2f128_ps::<0x31>(u1, u5);
                        let col6 = _mm256_permute2f128_ps::<0x31>(u2, u6);
                        let col7 = _mm256_permute2f128_ps::<0x31>(u3, u7);
                        // Ascending p: one mul+add per step, per lane.
                        let a0 = _mm256_loadu_ps(sa.as_ptr());
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(broadcast_lane(a0, 0), col0));
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(broadcast_lane(a0, 1), col1));
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(broadcast_lane(a0, 2), col2));
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(broadcast_lane(a0, 3), col3));
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(broadcast_lane(a0, 4), col4));
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(broadcast_lane(a0, 5), col5));
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(broadcast_lane(a0, 6), col6));
                        acc = _mm256_add_ps(acc, _mm256_mul_ps(broadcast_lane(a0, 7), col7));
                    }
                }
                p += 8;
            }
            for p in main..k {
                let col = _mm256_set_ps(
                    r7.get(p).copied().unwrap_or(0.0),
                    r6.get(p).copied().unwrap_or(0.0),
                    r5.get(p).copied().unwrap_or(0.0),
                    r4.get(p).copied().unwrap_or(0.0),
                    r3.get(p).copied().unwrap_or(0.0),
                    r2.get(p).copied().unwrap_or(0.0),
                    r1.get(p).copied().unwrap_or(0.0),
                    r0.get(p).copied().unwrap_or(0.0),
                );
                let av = _mm256_set1_ps(a_row.get(p).copied().unwrap_or(0.0));
                acc = _mm256_add_ps(acc, _mm256_mul_ps(av, col));
            }
            // SAFETY: cs is exactly 8 lanes; this is the single overwrite of
            // these outputs (`*c = acc`), matching the scalar kernel.
            unsafe { _mm256_storeu_ps(cs.as_mut_ptr(), acc) };
        }
        scalar::tb_row(c_blocks.into_remainder(), a_row, b_groups.remainder(), k);
    }

    /// SSE2 `A·Bᵀ` row kernel: 4 output columns at a time via a 4×4
    /// in-register transpose. Requires `k > 0`.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn tb_row_sse2(c_row: &mut [f32], a_row: &[f32], b: &[f32], k: usize) {
        let mut c_blocks = c_row.chunks_exact_mut(4);
        let mut b_groups = b.chunks_exact(4 * k);
        for (cs, group) in (&mut c_blocks).zip(&mut b_groups) {
            let mut rows = group.chunks_exact(k);
            let (r0, r1, r2, r3) = match (rows.next(), rows.next(), rows.next(), rows.next()) {
                (Some(r0), Some(r1), Some(r2), Some(r3)) => (r0, r1, r2, r3),
                // Unreachable: a 4·k group always yields four k-rows.
                _ => continue,
            };
            let mut acc = _mm_setzero_ps();
            let main = k - (k % 4);
            let mut p = 0usize;
            while p < main {
                if let (Some(s0), Some(s1), Some(s2), Some(s3), Some(sa)) = (
                    r0.get(p..p + 4), r1.get(p..p + 4), r2.get(p..p + 4), r3.get(p..p + 4),
                    a_row.get(p..p + 4),
                ) {
                    // SAFETY: every subslice is exactly 4 lanes.
                    unsafe {
                        let v0 = _mm_loadu_ps(s0.as_ptr());
                        let v1 = _mm_loadu_ps(s1.as_ptr());
                        let v2 = _mm_loadu_ps(s2.as_ptr());
                        let v3 = _mm_loadu_ps(s3.as_ptr());
                        let t0 = _mm_unpacklo_ps(v0, v1);
                        let t1 = _mm_unpacklo_ps(v2, v3);
                        let t2 = _mm_unpackhi_ps(v0, v1);
                        let t3 = _mm_unpackhi_ps(v2, v3);
                        let col0 = _mm_movelh_ps(t0, t1);
                        let col1 = _mm_movehl_ps(t1, t0);
                        let col2 = _mm_movelh_ps(t2, t3);
                        let col3 = _mm_movehl_ps(t3, t2);
                        let a0 = _mm_loadu_ps(sa.as_ptr());
                        acc = _mm_add_ps(acc, _mm_mul_ps(broadcast_lane4(a0, 0), col0));
                        acc = _mm_add_ps(acc, _mm_mul_ps(broadcast_lane4(a0, 1), col1));
                        acc = _mm_add_ps(acc, _mm_mul_ps(broadcast_lane4(a0, 2), col2));
                        acc = _mm_add_ps(acc, _mm_mul_ps(broadcast_lane4(a0, 3), col3));
                    }
                }
                p += 4;
            }
            for p in main..k {
                let col = _mm_set_ps(
                    r3.get(p).copied().unwrap_or(0.0),
                    r2.get(p).copied().unwrap_or(0.0),
                    r1.get(p).copied().unwrap_or(0.0),
                    r0.get(p).copied().unwrap_or(0.0),
                );
                let av = _mm_set1_ps(a_row.get(p).copied().unwrap_or(0.0));
                acc = _mm_add_ps(acc, _mm_mul_ps(av, col));
            }
            // SAFETY: cs is exactly 4 lanes.
            unsafe { _mm_storeu_ps(cs.as_mut_ptr(), acc) };
        }
        scalar::tb_row(c_blocks.into_remainder(), a_row, b_groups.remainder(), k);
    }

    /// Broadcasts lane `lane` (0..=7) of `v` to all 8 lanes (vpermps with a
    /// splatted index vector; folds to a constant permute for literal args).
    #[target_feature(enable = "avx2")]
    unsafe fn broadcast_lane(v: __m256, lane: i32) -> __m256 {
        _mm256_permutevar8x32_ps(v, _mm256_set1_epi32(lane))
    }

    /// Broadcasts lane `lane` (0..=3) of `v` to all 4 lanes.
    #[target_feature(enable = "sse2")]
    unsafe fn broadcast_lane4(v: __m128, lane: i32) -> __m128 {
        match lane {
            0 => _mm_shuffle_ps::<0x00>(v, v),
            1 => _mm_shuffle_ps::<0x55>(v, v),
            2 => _mm_shuffle_ps::<0xAA>(v, v),
            _ => _mm_shuffle_ps::<0xFF>(v, v),
        }
    }
}

/// Fallback shims for non-x86 targets: the dispatch below never selects
/// `Sse2`/`Avx2` there (detection returns `Scalar` and overrides clamp to
/// it), but the call sites still need the symbols to compile. Each shim has
/// the same (vacuously satisfied) safety contract as its x86 counterpart.
#[cfg(not(target_arch = "x86_64"))]
mod x86 {
    use super::scalar;

    macro_rules! shim {
        ($($name:ident($($arg:ident : $ty:ty),*) => $target:ident;)*) => {
            $(
                /// Non-x86 shim: delegates to the scalar ground truth.
                ///
                /// # Safety
                ///
                /// Always safe; `unsafe` only mirrors the x86 signature.
                pub(super) unsafe fn $name($($arg: $ty),*) {
                    scalar::$target($($arg),*)
                }
            )*
        };
    }

    shim! {
        axpy_avx2(y: &mut [f32], a: f32, x: &[f32]) => axpy;
        axpy_sse2(y: &mut [f32], a: f32, x: &[f32]) => axpy;
        add_assign_avx2(y: &mut [f32], x: &[f32]) => add_assign;
        add_assign_sse2(y: &mut [f32], x: &[f32]) => add_assign;
        scatter_add_avx2(y: &mut [f32], x: &[f32]) => scatter_add;
        scatter_add_sse2(y: &mut [f32], x: &[f32]) => scatter_add;
        add_diff_avx2(r: &mut [f32], l: &[f32], g: &[f32]) => add_diff;
        add_diff_sse2(r: &mut [f32], l: &[f32], g: &[f32]) => add_diff;
        abs_into_avx2(out: &mut [f32], x: &[f32]) => abs_into;
        abs_into_sse2(out: &mut [f32], x: &[f32]) => abs_into;
        relu_fwd_avx2(x: &[f32], out: &mut [f32]) => relu_fwd;
        relu_fwd_sse2(x: &[f32], out: &mut [f32]) => relu_fwd;
        relu_bwd_avx2(x: &[f32], g: &[f32], out: &mut [f32]) => relu_bwd;
        relu_bwd_sse2(x: &[f32], g: &[f32], out: &mut [f32]) => relu_bwd;
        leaky_fwd_avx2(x: &[f32], slope: f32, out: &mut [f32]) => leaky_fwd;
        leaky_fwd_sse2(x: &[f32], slope: f32, out: &mut [f32]) => leaky_fwd;
        leaky_bwd_avx2(x: &[f32], g: &[f32], slope: f32, out: &mut [f32]) => leaky_bwd;
        leaky_bwd_sse2(x: &[f32], g: &[f32], slope: f32, out: &mut [f32]) => leaky_bwd;
        sgd_step_avx2(x: &mut [f32], g: &mut [f32], lr: f32, wd: f32) => sgd_step;
        sgd_step_sse2(x: &mut [f32], g: &mut [f32], lr: f32, wd: f32) => sgd_step;
        sgd_momentum_step_avx2(x: &mut [f32], g: &mut [f32], m: &mut [f32], lr: f32, wd: f32, mu: f32) => sgd_momentum_step;
        sgd_momentum_step_sse2(x: &mut [f32], g: &mut [f32], m: &mut [f32], lr: f32, wd: f32, mu: f32) => sgd_momentum_step;
        nn_tile_cols_avx2(c_cols: &mut [f32], a_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) => nn_tile_cols;
        nn_tile_cols_sse2(c_cols: &mut [f32], a_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) => nn_tile_cols;
        nn_tile_cols2_avx2(c0_cols: &mut [f32], c1_cols: &mut [f32], a0_tile: &[f32], a1_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) => nn_tile_cols2;
        nn_tile_cols2_sse2(c0_cols: &mut [f32], c1_cols: &mut [f32], a0_tile: &[f32], a1_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) => nn_tile_cols2;
        tb_row_avx2(c_row: &mut [f32], a_row: &[f32], b: &[f32], k: usize) => tb_row;
        tb_row_sse2(c_row: &mut [f32], a_row: &[f32], b: &[f32], k: usize) => tb_row;
    }
}

// ---------------------------------------------------------------------------
// Dispatched entry points
// ---------------------------------------------------------------------------

/// Generates the `_with(level, …)` dispatcher plus (optionally) the public
/// entry point that resolves [`simd_level`] once per call.
macro_rules! dispatch {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident / $with:ident ($($arg:ident : $ty:ty),*) => ($scalar_fn:ident, $sse2_fn:ident, $avx2_fn:ident)
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $ty),*) {
            $with(simd_level(), $($arg),*);
        }

        dispatch! {
            with $with ($($arg: $ty),*) => ($scalar_fn, $sse2_fn, $avx2_fn)
        }
    };
    (
        with $with:ident ($($arg:ident : $ty:ty),*) => ($scalar_fn:ident, $sse2_fn:ident, $avx2_fn:ident)
    ) => {
        /// Level-pinned dispatcher, so tight loops resolve the level once.
        /// `level` must not exceed [`hardware_simd_level`] (both
        /// [`simd_level`] and [`set_simd_level`] guarantee this).
        pub fn $with(level: SimdLevel, $($arg: $ty),*) {
            match level {
                SimdLevel::Scalar => scalar::$scalar_fn($($arg),*),
                // SAFETY: `level` is clamped to the detected hardware
                // capability, so the required target feature is present.
                SimdLevel::Sse2 => unsafe { x86::$sse2_fn($($arg),*) },
                // SAFETY: as above, AVX2 was detected at runtime.
                SimdLevel::Avx2 => unsafe { x86::$avx2_fn($($arg),*) },
            }
        }
    };
}

dispatch! {
    /// `y[i] += a * x[i]` over the common prefix of `y` and `x`.
    ///
    /// Bit-identical at every SIMD level (separate mul+add, one chain per
    /// element).
    pub fn axpy / axpy_with (y: &mut [f32], a: f32, x: &[f32]) => (axpy, axpy_sse2, axpy_avx2)
}

dispatch! {
    /// `y[i] += x[i]` over the common prefix of `y` and `x`.
    pub fn add_assign / add_assign_with (y: &mut [f32], x: &[f32]) => (add_assign, add_assign_sse2, add_assign_avx2)
}

// NaN-holding scatter add for accumulation chains that span multiple kernel
// calls (conv col2im): `y[i] += x[i]` unless `y[i]` is NaN, which is held
// bit-exactly so double-NaN operand-order ambiguity can never arise.
dispatch! {
    with scatter_add_with (y: &mut [f32], x: &[f32]) => (scatter_add, scatter_add_sse2, scatter_add_avx2)
}

dispatch! {
    /// `r[i] += l[i] - g[i]` over the common prefix (top-k residual
    /// accumulation: evaluated as `r + (l - g)` at every level).
    pub fn add_diff / add_diff_with (r: &mut [f32], l: &[f32], g: &[f32]) => (add_diff, add_diff_sse2, add_diff_avx2)
}

dispatch! {
    /// `out[i] = |x[i]|` over the common prefix: clears the sign bit,
    /// preserving NaN payloads, exactly like `f32::abs`.
    pub fn abs_into / abs_into_with (out: &mut [f32], x: &[f32]) => (abs_into, abs_into_sse2, abs_into_avx2)
}

dispatch! {
    /// ReLU forward: `out[i] = x[i] if x[i] > 0 else +0.0`. NaN inputs
    /// yield `+0.0` (the comparison is false), `-0.0` yields `+0.0`.
    pub fn relu_fwd / relu_fwd_with (x: &[f32], out: &mut [f32]) => (relu_fwd, relu_fwd_sse2, relu_fwd_avx2)
}

dispatch! {
    /// ReLU backward: `out[i] = g[i] if x[i] > 0 else +0.0` (the
    /// subgradient at 0 is 0).
    pub fn relu_bwd / relu_bwd_with (x: &[f32], g: &[f32], out: &mut [f32]) => (relu_bwd, relu_bwd_sse2, relu_bwd_avx2)
}

dispatch! {
    /// Leaky-ReLU forward: `out[i] = x[i] if x[i] > 0 else slope * x[i]`.
    pub fn leaky_fwd / leaky_fwd_with (x: &[f32], slope: f32, out: &mut [f32]) => (leaky_fwd, leaky_fwd_sse2, leaky_fwd_avx2)
}

dispatch! {
    /// Leaky-ReLU backward: `out[i] = g[i] if x[i] > 0 else slope * g[i]`.
    pub fn leaky_bwd / leaky_bwd_with (x: &[f32], g: &[f32], slope: f32, out: &mut [f32]) => (leaky_bwd, leaky_bwd_sse2, leaky_bwd_avx2)
}

dispatch! {
    /// Fused SGD step over the common prefix: `eff = g + wd·x;
    /// x -= lr·eff; g = 0`, in exactly that scalar evaluation order.
    pub fn sgd_step / sgd_step_with (x: &mut [f32], g: &mut [f32], lr: f32, wd: f32) => (sgd_step, sgd_step_sse2, sgd_step_avx2)
}

dispatch! {
    /// Fused momentum-SGD step: `eff = g + wd·x; m = mu·m + eff;
    /// x -= lr·m; g = 0`, in exactly that scalar evaluation order.
    pub fn sgd_momentum_step / sgd_momentum_step_with (x: &mut [f32], g: &mut [f32], m: &mut [f32], lr: f32, wd: f32, mu: f32) => (sgd_momentum_step, sgd_momentum_step_sse2, sgd_momentum_step_avx2)
}

// One column strip of one output row of the ikj `C = A·B` kernel over one
// `k`-tile: `c_cols[j] += a_tile[p] * b_tile[p·n + col0 + j]` for ascending
// `p` (`b_tile` is `len(a_tile)` rows of `n`; `col0` is the strip's first
// column). Strip-wise calls let the caller keep a narrow `B` window
// cache-resident across many output rows without changing any element's
// accumulation order.
dispatch! {
    with nn_tile_cols_with (c_cols: &mut [f32], a_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) => (nn_tile_cols, nn_tile_cols_sse2, nn_tile_cols_avx2)
}

// Two-row variant of `nn_tile_cols_with`: the same strip of two output rows,
// sharing each `B` load across both rows' accumulators at the vector levels.
// Callers must pair rows the same way at every thread count (the matmul
// driver pairs within `MC`-aligned blocks) so each element always runs
// through the same compiled kernel instance.
dispatch! {
    with nn_tile_cols2_with (c0_cols: &mut [f32], c1_cols: &mut [f32], a0_tile: &[f32], a1_tile: &[f32], b_tile: &[f32], n: usize, col0: usize) => (nn_tile_cols2, nn_tile_cols2_sse2, nn_tile_cols2_avx2)
}

// One output row of the `C = A·Bᵀ` kernel: `c_row[j] = dot(a_row,
// b[j·k..][..k])`, each dot one sequential ascending-`p` chain. Requires
// `k > 0` (the caller short-circuits empty dots).
dispatch! {
    with tb_row_with (c_row: &mut [f32], a_row: &[f32], b: &[f32], k: usize) => (tb_row, tb_row_sse2, tb_row_avx2)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic fill with specials (±0.0, NaN, ±inf) planted
    /// periodically so select/abs paths face the full IEEE surface.
    fn filled(len: usize, seed: u32) -> Vec<f32> {
        let mut state = seed | 1;
        (0..len)
            .map(|i| {
                state = state.wrapping_mul(1_664_525).wrapping_add(1_013_904_223);
                match i % 23 {
                    7 => -0.0,
                    11 => f32::NAN,
                    15 => f32::INFINITY,
                    19 => f32::NEG_INFINITY,
                    _ => (state >> 8) as f32 / (1 << 16) as f32 - 128.0,
                }
            })
            .collect()
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}: index {i}: {x} vs {y}");
        }
    }

    /// Bit equality modulo NaN payloads: any NaN matches any NaN. Used where
    /// two *differently compiled* loop instances cover the same element (see
    /// the double-NaN carve-out in the module docs): `NaN + NaN` keeps
    /// whichever operand the compiled add ordered first, so the payload is
    /// deterministic per instance but not portable between instances.
    fn assert_bits_eq_mod_nan(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len(), "{what}: length");
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                x.to_bits() == y.to_bits() || (x.is_nan() && y.is_nan()),
                "{what}: index {i}: {x} ({:#010x}) vs {y} ({:#010x})",
                x.to_bits(),
                y.to_bits()
            );
        }
    }

    fn levels() -> Vec<SimdLevel> {
        [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
            .into_iter()
            .filter(|&l| l <= hardware_simd_level())
            .collect()
    }

    const LENS: [usize; 6] = [0, 1, 7, 8, 33, 1000];

    #[test]
    fn env_parsing_rules() {
        assert_eq!(parse_env(None), None);
        assert_eq!(parse_env(Some("")), None);
        assert_eq!(parse_env(Some("garbage")), None);
        assert_eq!(parse_env(Some("off")), Some(SimdLevel::Scalar));
        assert_eq!(parse_env(Some("Scalar")), Some(SimdLevel::Scalar));
        assert_eq!(parse_env(Some(" sse2 ")), Some(SimdLevel::Sse2));
        assert_eq!(parse_env(Some("AVX2")), Some(SimdLevel::Avx2));
    }

    #[test]
    fn level_order_and_names() {
        assert!(SimdLevel::Scalar < SimdLevel::Sse2);
        assert!(SimdLevel::Sse2 < SimdLevel::Avx2);
        for l in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
            assert_eq!(SimdLevel::from_index(l.index()), l);
            assert_eq!(parse_env(Some(l.name())), Some(l));
        }
    }

    #[test]
    fn override_is_clamped_to_hardware() {
        let prior = simd_level();
        set_simd_level(SimdLevel::Avx2);
        assert!(simd_level() <= hardware_simd_level());
        set_simd_level(SimdLevel::Scalar);
        assert_eq!(simd_level(), SimdLevel::Scalar);
        set_simd_level(prior);
        assert_eq!(simd_level(), prior);
    }

    #[test]
    fn axpy_bit_identical_across_levels() {
        for &len in &LENS {
            let x = filled(len, 3);
            let mut want = filled(len, 5);
            scalar::axpy(&mut want, 1.7, &x);
            for level in levels() {
                let mut got = filled(len, 5);
                axpy_with(level, &mut got, 1.7, &x);
                assert_bits_eq(&got, &want, &format!("axpy {level:?} len {len}"));
            }
        }
    }

    #[test]
    fn add_assign_and_add_diff_bit_identical_across_levels() {
        for &len in &LENS {
            let x = filled(len, 11);
            let g = filled(len, 13);
            let mut want_add = filled(len, 17);
            let mut want_diff = filled(len, 17);
            scalar::add_assign(&mut want_add, &x);
            scalar::add_diff(&mut want_diff, &x, &g);
            for level in levels() {
                let mut got = filled(len, 17);
                add_assign_with(level, &mut got, &x);
                assert_bits_eq(&got, &want_add, &format!("add_assign {level:?} len {len}"));
                let mut got = filled(len, 17);
                add_diff_with(level, &mut got, &x, &g);
                assert_bits_eq(&got, &want_diff, &format!("add_diff {level:?} len {len}"));
            }
        }
    }

    #[test]
    fn scatter_add_holds_nan_and_is_bit_identical_across_levels() {
        // Offset the special pattern so NaN/inf in `x` meet different
        // specials in `y` — the exact double-NaN / inf+(-inf) collisions the
        // NaN-holding guard exists for.
        for &len in &LENS {
            let x: Vec<f32> = filled(len + 13, 73).split_off(13);
            let mut want = filled(len, 79);
            scalar::scatter_add(&mut want, &x);
            for level in levels() {
                let mut got = filled(len, 79);
                scatter_add_with(level, &mut got, &x);
                assert_bits_eq(&got, &want, &format!("scatter_add {level:?} len {len}"));
            }
        }
        // The hold rule itself: a NaN accumulator keeps its exact payload.
        let payload = f32::from_bits(0x7fc0_1234);
        for level in levels() {
            let mut y = [payload, 1.0, f32::INFINITY];
            scatter_add_with(level, &mut y, &[5.0, f32::NEG_INFINITY, f32::NEG_INFINITY]);
            assert_eq!(y[0].to_bits(), 0x7fc0_1234, "{level:?}: NaN held");
            assert_eq!(y[1], f32::NEG_INFINITY);
            assert!(y[2].is_nan(), "{level:?}: inf + -inf is NaN");
        }
    }

    #[test]
    fn abs_and_activations_bit_identical_across_levels() {
        for &len in &LENS {
            let x = filled(len, 29);
            let g = filled(len, 31);
            let mut want = vec![0.0f32; len];
            for level in levels() {
                let tag = format!("{level:?} len {len}");
                let mut got = vec![0.0f32; len];
                scalar::abs_into(&mut want, &x);
                abs_into_with(level, &mut got, &x);
                assert_bits_eq(&got, &want, &format!("abs {tag}"));
                scalar::relu_fwd(&x, &mut want);
                relu_fwd_with(level, &x, &mut got);
                assert_bits_eq(&got, &want, &format!("relu_fwd {tag}"));
                scalar::relu_bwd(&x, &g, &mut want);
                relu_bwd_with(level, &x, &g, &mut got);
                assert_bits_eq(&got, &want, &format!("relu_bwd {tag}"));
                scalar::leaky_fwd(&x, 0.1, &mut want);
                leaky_fwd_with(level, &x, 0.1, &mut got);
                assert_bits_eq(&got, &want, &format!("leaky_fwd {tag}"));
                scalar::leaky_bwd(&x, &g, 0.1, &mut want);
                leaky_bwd_with(level, &x, &g, 0.1, &mut got);
                assert_bits_eq(&got, &want, &format!("leaky_bwd {tag}"));
            }
        }
    }

    #[test]
    fn relu_ieee_edge_cases() {
        let x = [f32::NAN, -0.0, 0.0, -1.0, 2.0, f32::NEG_INFINITY, f32::INFINITY];
        for level in levels() {
            let mut out = vec![9.0f32; x.len()];
            relu_fwd_with(level, &x, &mut out);
            assert_eq!(out.first().copied().map(f32::to_bits), Some(0.0f32.to_bits()), "NaN input → +0.0");
            assert_eq!(out.get(1).copied().map(f32::to_bits), Some(0.0f32.to_bits()), "-0.0 → +0.0");
            assert_eq!(out.get(4).copied(), Some(2.0));
            assert_eq!(out.last().copied(), Some(f32::INFINITY));
        }
    }

    #[test]
    fn sgd_steps_bit_identical_across_levels() {
        for &len in &LENS {
            let mut want_x = filled(len, 41);
            let mut want_g = filled(len, 43);
            let mut want_m = filled(len, 47);
            scalar::sgd_step(&mut want_x, &mut want_g, 0.05, 1e-3);
            scalar::sgd_momentum_step(&mut want_x, &mut want_g, &mut want_m, 0.05, 1e-3, 0.9);
            for level in levels() {
                let mut x = filled(len, 41);
                let mut g = filled(len, 43);
                let mut m = filled(len, 47);
                sgd_step_with(level, &mut x, &mut g, 0.05, 1e-3);
                sgd_momentum_step_with(level, &mut x, &mut g, &mut m, 0.05, 1e-3, 0.9);
                let tag = format!("{level:?} len {len}");
                assert_bits_eq(&x, &want_x, &format!("sgd x {tag}"));
                assert_bits_eq(&g, &want_g, &format!("sgd g {tag}"));
                assert_bits_eq(&m, &want_m, &format!("sgd m {tag}"));
            }
        }
    }

    #[test]
    fn nn_tile_cols_bit_identical_across_levels_and_strip_widths() {
        for &(rows, n) in &[(1usize, 1usize), (3, 7), (4, 8), (5, 33), (7, 40), (2, 100), (6, 129)] {
            let a_tile = filled(rows, 53);
            let b_tile = filled(rows * n, 59);
            let mut want = filled(n, 61);
            scalar::nn_tile_cols(&mut want, &a_tile, &b_tile, n, 0);
            for level in levels() {
                // Whole row as one strip (strict: the exact production call
                // shape), then split into strips of every width. Strip
                // decomposition preserves each element's ascending-`p` chain
                // but moves elements between differently compiled loop
                // bodies (vector body vs remainder), so sub-strip checks are
                // modulo NaN payload — values, zeros' signs, and infinities
                // must still agree exactly.
                for strip in [n, 1, 8, 13, 32] {
                    let mut got = filled(n, 61);
                    for (chunk, jb) in got.chunks_mut(strip).zip((0..n).step_by(strip)) {
                        nn_tile_cols_with(level, chunk, &a_tile, &b_tile, n, jb);
                    }
                    let what = format!("nn_tile_cols {level:?} {rows}x{n} strip {strip}");
                    if strip == n {
                        assert_bits_eq(&got, &want, &what);
                    } else {
                        assert_bits_eq_mod_nan(&got, &want, &what);
                    }
                }
            }
        }
    }

    #[test]
    fn nn_tile_cols2_matches_two_single_rows() {
        for &(n, col0, width) in &[(1usize, 0usize, 1usize), (8, 0, 8), (40, 0, 40), (40, 8, 24), (129, 96, 33), (100, 64, 36)] {
            let rows = 5;
            let a0 = filled(rows, 73);
            let a1 = filled(rows, 79);
            let b_tile = filled(rows * n, 83);
            let mut want0 = filled(width, 87);
            let mut want1 = filled(width, 91);
            scalar::nn_tile_cols(&mut want0, &a0, &b_tile, n, col0);
            scalar::nn_tile_cols(&mut want1, &a1, &b_tile, n, col0);
            for level in levels() {
                let mut got0 = filled(width, 87);
                let mut got1 = filled(width, 91);
                nn_tile_cols2_with(level, &mut got0, &mut got1, &a0, &a1, &b_tile, n, col0);
                let what = format!("nn_tile_cols2 {level:?} n={n} col0={col0} w={width}");
                // Values, signed zeros, and infinities must agree exactly;
                // double-NaN payloads may differ between the paired and
                // single-row kernel instances (module-doc carve-out).
                assert_bits_eq_mod_nan(&got0, &want0, &format!("{what} row0"));
                assert_bits_eq_mod_nan(&got1, &want1, &format!("{what} row1"));
            }
        }
    }

    #[test]
    fn tb_row_bit_identical_across_levels() {
        for &(cols, k) in &[(1usize, 1usize), (3, 5), (8, 8), (9, 16), (16, 33), (5, 100), (17, 7)] {
            let a_row = filled(k, 67);
            let b = filled(cols * k, 71);
            let mut want = vec![0.0f32; cols];
            scalar::tb_row(&mut want, &a_row, &b, k);
            for level in levels() {
                let mut got = vec![0.0f32; cols];
                tb_row_with(level, &mut got, &a_row, &b, k);
                assert_bits_eq(&got, &want, &format!("tb_row {level:?} {cols}x{k}"));
            }
        }
    }
}
