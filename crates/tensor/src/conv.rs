//! im2col/col2im helpers used by the convolution layers in `fedsu-nn`.
//!
//! `im2col` unrolls sliding windows of an `NCHW` input into a matrix so that
//! a 2-D convolution becomes a single matrix multiplication; `col2im`
//! scatter-adds a column matrix back into image space (the adjoint of
//! `im2col`, used in the backward pass).

use crate::{Result, Tensor, TensorError};

/// Geometry of a 2-D convolution, shared by forward and backward passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvDims {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub padding: usize,
}

impl ConvDims {
    /// Output height after convolution.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the geometry is degenerate (kernel larger
    /// than padded input).
    pub fn out_h(&self) -> usize {
        debug_assert!(self.in_h + 2 * self.padding >= self.kernel);
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width after convolution.
    pub fn out_w(&self) -> usize {
        debug_assert!(self.in_w + 2 * self.padding >= self.kernel);
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Rows of the im2col matrix: `in_channels * kernel * kernel`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Columns of the im2col matrix: `out_h * out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    fn validate(&self) -> Result<()> {
        if self.kernel == 0 || self.stride == 0 {
            return Err(TensorError::InvalidArgument(
                "conv kernel and stride must be non-zero".to_string(),
            ));
        }
        if self.in_h + 2 * self.padding < self.kernel || self.in_w + 2 * self.padding < self.kernel {
            return Err(TensorError::InvalidArgument(format!(
                "kernel {} larger than padded input {}x{} (+2*{})",
                self.kernel, self.in_h, self.in_w, self.padding
            )));
        }
        Ok(())
    }
}

/// Unrolls one image (`[C, H, W]`, flattened) into an im2col matrix of shape
/// `[C*k*k, out_h*out_w]`.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `image.len()` disagrees with
/// the geometry and [`TensorError::InvalidArgument`] for degenerate geometry.
pub fn im2col(image: &[f32], dims: &ConvDims) -> Result<Tensor> {
    dims.validate()?;
    let expected = dims.in_channels * dims.in_h * dims.in_w;
    if image.len() != expected {
        return Err(TensorError::LengthMismatch {
            len: image.len(),
            shape: vec![dims.in_channels, dims.in_h, dims.in_w],
        });
    }
    let (out_h, out_w) = (dims.out_h(), dims.out_w());
    let cols = out_h * out_w;
    let rows = dims.col_rows();
    let mut out = vec![0.0f32; rows * cols];

    let mut row = 0usize;
    for c in 0..dims.in_channels {
        let chan = &image[c * dims.in_h * dims.in_w..(c + 1) * dims.in_h * dims.in_w];
        for ky in 0..dims.kernel {
            for kx in 0..dims.kernel {
                let out_row = &mut out[row * cols..(row + 1) * cols];
                let mut col = 0usize;
                for oy in 0..out_h {
                    let iy = (oy * dims.stride + ky) as isize - dims.padding as isize;
                    if iy < 0 || iy as usize >= dims.in_h {
                        col += out_w;
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..out_w {
                        let ix = (ox * dims.stride + kx) as isize - dims.padding as isize;
                        if ix >= 0 && (ix as usize) < dims.in_w {
                            out_row[col] = chan[iy * dims.in_w + ix as usize];
                        }
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
    crate::invariant::check_op_output("im2col", &[image], &out);
    Tensor::from_vec(out, &[rows, cols])
}

/// Scatter-adds an im2col-format matrix (`[C*k*k, out_h*out_w]`) back into an
/// image buffer of `[C, H, W]`. This is the adjoint of [`im2col`], used to
/// propagate gradients to the convolution input.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `cols` has the wrong shape and
/// [`TensorError::LengthMismatch`] when `image` has the wrong length.
pub fn col2im(cols: &Tensor, image: &mut [f32], dims: &ConvDims) -> Result<()> {
    dims.validate()?;
    let expected_shape = [dims.col_rows(), dims.col_cols()];
    if cols.shape() != expected_shape {
        return Err(TensorError::ShapeMismatch {
            left: cols.shape().to_vec(),
            right: expected_shape.to_vec(),
            op: "col2im",
        });
    }
    let expected_len = dims.in_channels * dims.in_h * dims.in_w;
    if image.len() != expected_len {
        return Err(TensorError::LengthMismatch {
            len: image.len(),
            shape: vec![dims.in_channels, dims.in_h, dims.in_w],
        });
    }
    let (out_h, out_w) = (dims.out_h(), dims.out_w());
    let n_cols = out_h * out_w;
    let data = cols.data();
    // `image` is mutated in place, so its pre-state must be classified as an
    // input *before* the scatter-add to keep the finite-kernel guard honest.
    let inputs_finite = crate::invariant::enabled()
        && data.iter().chain(image.iter()).all(|v| v.is_finite());

    let mut row = 0usize;
    for c in 0..dims.in_channels {
        let chan = &mut image[c * dims.in_h * dims.in_w..(c + 1) * dims.in_h * dims.in_w];
        for ky in 0..dims.kernel {
            for kx in 0..dims.kernel {
                let in_row = &data[row * n_cols..(row + 1) * n_cols];
                let mut col = 0usize;
                for oy in 0..out_h {
                    let iy = (oy * dims.stride + ky) as isize - dims.padding as isize;
                    if iy < 0 || iy as usize >= dims.in_h {
                        col += out_w;
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..out_w {
                        let ix = (ox * dims.stride + kx) as isize - dims.padding as isize;
                        if ix >= 0 && (ix as usize) < dims.in_w {
                            chan[iy * dims.in_w + ix as usize] += in_row[col];
                        }
                        col += 1;
                    }
                }
                row += 1;
            }
        }
    }
    if inputs_finite {
        crate::invariant::check_op_output("col2im", &[], image);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_geometry() {
        let d = ConvDims { in_channels: 3, in_h: 28, in_w: 28, kernel: 5, stride: 1, padding: 2 };
        assert_eq!(d.out_h(), 28);
        assert_eq!(d.out_w(), 28);
        let d2 = ConvDims { in_channels: 1, in_h: 28, in_w: 28, kernel: 2, stride: 2, padding: 0 };
        assert_eq!(d2.out_h(), 14);
    }

    #[test]
    fn im2col_identity_kernel_no_padding() {
        // 1x1 kernel, stride 1, no padding: im2col is the identity layout.
        let d = ConvDims { in_channels: 2, in_h: 2, in_w: 2, kernel: 1, stride: 1, padding: 0 };
        let img: Vec<f32> = (1..=8).map(|v| v as f32).collect();
        let cols = im2col(&img, &d).unwrap();
        assert_eq!(cols.shape(), &[2, 4]);
        assert_eq!(cols.data(), img.as_slice());
    }

    #[test]
    fn im2col_known_values_with_padding() {
        // 1 channel 2x2 image, 3x3 kernel, pad 1, stride 1 -> out 2x2.
        let d = ConvDims { in_channels: 1, in_h: 2, in_w: 2, kernel: 3, stride: 1, padding: 1 };
        let img = [1.0, 2.0, 3.0, 4.0];
        let cols = im2col(&img, &d).unwrap();
        assert_eq!(cols.shape(), &[9, 4]);
        // Center tap (ky=1,kx=1) sees the original pixels.
        let center = &cols.data()[4 * 4..5 * 4];
        assert_eq!(center, &[1.0, 2.0, 3.0, 4.0]);
        // Top-left tap (ky=0,kx=0): for out (0,0) it reads padded zero,
        // for out (1,1) it reads pixel (0,0)=1.
        let tl = &cols.data()[0..4];
        assert_eq!(tl, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let d = ConvDims { in_channels: 2, in_h: 5, in_w: 4, kernel: 3, stride: 2, padding: 1 };
        let x: Vec<f32> = (0..d.in_channels * d.in_h * d.in_w).map(|i| (i as f32 * 0.37).sin()).collect();
        let rows = d.col_rows();
        let cols_n = d.col_cols();
        let y: Vec<f32> = (0..rows * cols_n).map(|i| (i as f32 * 0.11).cos()).collect();

        let cx = im2col(&x, &d).unwrap();
        let lhs: f32 = cx.data().iter().zip(&y).map(|(a, b)| a * b).sum();

        let yt = Tensor::from_vec(y, &[rows, cols_n]).unwrap();
        let mut back = vec![0.0f32; x.len()];
        col2im(&yt, &mut back, &d).unwrap();
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();

        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn invalid_geometry_rejected() {
        let d = ConvDims { in_channels: 1, in_h: 2, in_w: 2, kernel: 5, stride: 1, padding: 0 };
        assert!(im2col(&[0.0; 4], &d).is_err());
        let d0 = ConvDims { in_channels: 1, in_h: 2, in_w: 2, kernel: 0, stride: 1, padding: 0 };
        assert!(im2col(&[0.0; 4], &d0).is_err());
    }

    #[test]
    fn wrong_buffer_lengths_rejected() {
        let d = ConvDims { in_channels: 1, in_h: 2, in_w: 2, kernel: 1, stride: 1, padding: 0 };
        assert!(im2col(&[0.0; 3], &d).is_err());
        let cols = Tensor::zeros(&[1, 4]);
        let mut img = vec![0.0; 3];
        assert!(col2im(&cols, &mut img, &d).is_err());
    }
}
