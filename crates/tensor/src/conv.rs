//! im2col/col2im helpers used by the convolution layers in `fedsu-nn`.
//!
//! `im2col` unrolls sliding windows of an `NCHW` input into a matrix so that
//! a 2-D convolution becomes a single matrix multiplication; `col2im`
//! scatter-adds a column matrix back into image space (the adjoint of
//! `im2col`, used in the backward pass).
//!
//! Both directions come in slice `_into` forms that write into
//! caller-provided buffers, so per-sample forward/backward loops can reuse
//! one scratch allocation instead of allocating a fresh column matrix per
//! call.

use crate::{simd, Result, Tensor, TensorError};

/// Geometry of a 2-D convolution, shared by forward and backward passes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvDims {
    /// Input channels.
    pub in_channels: usize,
    /// Input height.
    pub in_h: usize,
    /// Input width.
    pub in_w: usize,
    /// Square kernel size.
    pub kernel: usize,
    /// Stride in both dimensions.
    pub stride: usize,
    /// Zero padding in both dimensions.
    pub padding: usize,
}

impl ConvDims {
    /// Output height after convolution.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the geometry is degenerate (kernel larger
    /// than padded input).
    pub fn out_h(&self) -> usize {
        debug_assert!(self.in_h + 2 * self.padding >= self.kernel);
        (self.in_h + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Output width after convolution.
    pub fn out_w(&self) -> usize {
        debug_assert!(self.in_w + 2 * self.padding >= self.kernel);
        (self.in_w + 2 * self.padding - self.kernel) / self.stride + 1
    }

    /// Rows of the im2col matrix: `in_channels * kernel * kernel`.
    pub fn col_rows(&self) -> usize {
        self.in_channels * self.kernel * self.kernel
    }

    /// Columns of the im2col matrix: `out_h * out_w`.
    pub fn col_cols(&self) -> usize {
        self.out_h() * self.out_w()
    }

    fn validate(&self) -> Result<()> {
        if self.kernel == 0 || self.stride == 0 {
            return Err(TensorError::InvalidArgument(
                "conv kernel and stride must be non-zero".to_string(),
            ));
        }
        if self.in_h + 2 * self.padding < self.kernel || self.in_w + 2 * self.padding < self.kernel {
            return Err(TensorError::InvalidArgument(format!(
                "kernel {} larger than padded input {}x{} (+2*{})",
                self.kernel, self.in_h, self.in_w, self.padding
            )));
        }
        Ok(())
    }

    fn check_image_len(&self, len: usize) -> Result<()> {
        let expected = self.in_channels * self.in_h * self.in_w;
        if len != expected {
            return Err(TensorError::LengthMismatch {
                len,
                shape: vec![self.in_channels, self.in_h, self.in_w],
            });
        }
        Ok(())
    }
}

/// Half-open range `lo..hi` of output columns whose input column
/// `ox·stride + kx − padding` lands inside `[0, in_w)` for tap column `kx`.
/// Outside this range a tap reads padding (gather) or writes nothing
/// (scatter), so the per-element bounds checks collapse to one range.
fn tap_col_range(dims: &ConvDims, kx: usize) -> (usize, usize) {
    if dims.in_w == 0 || dims.in_w + dims.padding <= kx {
        return (0, 0);
    }
    let lo = if dims.padding > kx { (dims.padding - kx).div_ceil(dims.stride) } else { 0 };
    let hi = ((dims.in_w - 1 + dims.padding - kx) / dims.stride + 1).min(dims.out_w());
    (lo.min(hi), hi)
}

/// Copies one kernel tap `(ky, kx)` of `chan` into its im2col row:
/// `out_row[oy·out_w + ox] = chan[iy, ix]` for every in-bounds input
/// position, leaving padded positions at their pre-zeroed value.
///
/// The in-bounds column window is computed analytically; at stride 1 it is a
/// contiguous input span, so the copy is a single `copy_from_slice` per
/// output row (pure data movement — trivially bit-identical).
fn gather_tap(chan: &[f32], out_row: &mut [f32], dims: &ConvDims, ky: usize, kx: usize) {
    let out_w = dims.out_w();
    let (lo, hi) = tap_col_range(dims, kx);
    for (oy, orow) in out_row.chunks_exact_mut(out_w).enumerate() {
        let Some(iy) = (oy * dims.stride + ky).checked_sub(dims.padding) else {
            continue;
        };
        if iy >= dims.in_h {
            continue;
        }
        let Some(irow) = chan.get(iy * dims.in_w..(iy + 1) * dims.in_w) else {
            continue;
        };
        let Some(dst) = orow.get_mut(lo..hi) else {
            continue;
        };
        let Some(ix0) = (lo * dims.stride + kx).checked_sub(dims.padding) else {
            continue;
        };
        if dims.stride == 1 {
            if let Some(src) = irow.get(ix0..ix0 + (hi - lo)) {
                dst.copy_from_slice(src);
            }
        } else {
            let src = irow.get(ix0..).unwrap_or(&[]);
            for (o, &v) in dst.iter_mut().zip(src.iter().step_by(dims.stride)) {
                *o = v;
            }
        }
    }
}

/// Scatter-adds one im2col row back onto its kernel tap `(ky, kx)` of
/// `chan`: the adjoint of [`gather_tap`], in the same traversal order.
///
/// At stride 1 the destination span is contiguous, so the inner loop rides
/// the dispatched [`simd::scatter_add_with`] lanes. The NaN-holding scatter
/// add is required (not plain `+=`): one image element accumulates taps
/// across several calls whose vector/remainder split shifts with `kx`, so
/// only an operand-order-independent add keeps every SIMD level bit-exact.
fn scatter_tap(chan: &mut [f32], in_row: &[f32], dims: &ConvDims, ky: usize, kx: usize) {
    let out_w = dims.out_w();
    let (lo, hi) = tap_col_range(dims, kx);
    let level = simd::simd_level();
    for (oy, irow_vals) in in_row.chunks_exact(out_w).enumerate() {
        let Some(iy) = (oy * dims.stride + ky).checked_sub(dims.padding) else {
            continue;
        };
        if iy >= dims.in_h {
            continue;
        }
        let Some(dst_row) = chan.get_mut(iy * dims.in_w..(iy + 1) * dims.in_w) else {
            continue;
        };
        let Some(src) = irow_vals.get(lo..hi) else {
            continue;
        };
        let Some(ix0) = (lo * dims.stride + kx).checked_sub(dims.padding) else {
            continue;
        };
        if dims.stride == 1 {
            if let Some(dst) = dst_row.get_mut(ix0..ix0 + (hi - lo)) {
                simd::scatter_add_with(level, dst, src);
            }
        } else {
            let dst = dst_row.get_mut(ix0..).unwrap_or_default();
            for (d, &v) in dst.iter_mut().step_by(dims.stride).zip(src.iter()) {
                if !d.is_nan() {
                    *d += v;
                }
            }
        }
    }
}

/// Unrolls one image (`[C, H, W]`, flattened) into an im2col matrix of
/// shape `[C*k*k, out_h*out_w]`, written into `out`. The buffer is resized
/// and fully overwritten, so it can be reused across calls to avoid
/// per-forward allocations.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `image.len()` disagrees with
/// the geometry and [`TensorError::InvalidArgument`] for degenerate geometry.
pub fn im2col_into(image: &[f32], dims: &ConvDims, out: &mut Vec<f32>) -> Result<()> {
    dims.validate()?;
    dims.check_image_len(image.len())?;
    let cols = dims.col_cols();
    let rows = dims.col_rows();
    out.clear();
    out.resize(rows * cols, 0.0);
    let plane = dims.in_h * dims.in_w;
    if plane > 0 {
        let mut tap_rows = out.chunks_exact_mut(cols);
        for chan in image.chunks_exact(plane) {
            for ky in 0..dims.kernel {
                for kx in 0..dims.kernel {
                    if let Some(out_row) = tap_rows.next() {
                        gather_tap(chan, out_row, dims, ky, kx);
                    }
                }
            }
        }
    }
    crate::invariant::check_op_output("im2col", &[image], out);
    Ok(())
}

/// Unrolls one image (`[C, H, W]`, flattened) into an im2col matrix of shape
/// `[C*k*k, out_h*out_w]`.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when `image.len()` disagrees with
/// the geometry and [`TensorError::InvalidArgument`] for degenerate geometry.
pub fn im2col(image: &[f32], dims: &ConvDims) -> Result<Tensor> {
    let mut out = Vec::new();
    im2col_into(image, dims, &mut out)?;
    Tensor::from_vec(out, &[dims.col_rows(), dims.col_cols()])
}

/// Scatter-adds an im2col-format matrix (`[C*k*k, out_h*out_w]`, flattened)
/// back into an image buffer of `[C, H, W]`: the slice form of [`col2im`],
/// used by hot loops that keep the column matrix in a reused scratch buffer.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when either buffer length
/// disagrees with the geometry and [`TensorError::InvalidArgument`] for
/// degenerate geometry.
pub fn col2im_into(cols: &[f32], image: &mut [f32], dims: &ConvDims) -> Result<()> {
    dims.validate()?;
    let rows = dims.col_rows();
    let n_cols = dims.col_cols();
    if cols.len() != rows * n_cols {
        return Err(TensorError::LengthMismatch { len: cols.len(), shape: vec![rows, n_cols] });
    }
    dims.check_image_len(image.len())?;
    // `image` is mutated in place, so its pre-state must be classified as an
    // input *before* the scatter-add to keep the finite-kernel guard honest.
    let inputs_finite = crate::invariant::enabled()
        && cols.iter().chain(image.iter()).all(|v| v.is_finite());

    let plane = dims.in_h * dims.in_w;
    if plane > 0 && n_cols > 0 {
        let mut tap_rows = cols.chunks_exact(n_cols);
        for chan in image.chunks_exact_mut(plane) {
            for ky in 0..dims.kernel {
                for kx in 0..dims.kernel {
                    if let Some(in_row) = tap_rows.next() {
                        scatter_tap(chan, in_row, dims, ky, kx);
                    }
                }
            }
        }
    }
    if inputs_finite {
        crate::invariant::check_op_output("col2im", &[], image);
    }
    Ok(())
}

/// Scatter-adds an im2col-format matrix (`[C*k*k, out_h*out_w]`) back into an
/// image buffer of `[C, H, W]`. This is the adjoint of [`im2col`], used to
/// propagate gradients to the convolution input.
///
/// # Errors
///
/// Returns [`TensorError::ShapeMismatch`] when `cols` has the wrong shape and
/// [`TensorError::LengthMismatch`] when `image` has the wrong length.
pub fn col2im(cols: &Tensor, image: &mut [f32], dims: &ConvDims) -> Result<()> {
    dims.validate()?;
    let expected_shape = [dims.col_rows(), dims.col_cols()];
    if cols.shape() != expected_shape {
        return Err(TensorError::ShapeMismatch {
            left: cols.shape().to_vec(),
            right: expected_shape.to_vec(),
            op: "col2im",
        });
    }
    col2im_into(cols.data(), image, dims)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_geometry() {
        let d = ConvDims { in_channels: 3, in_h: 28, in_w: 28, kernel: 5, stride: 1, padding: 2 };
        assert_eq!(d.out_h(), 28);
        assert_eq!(d.out_w(), 28);
        let d2 = ConvDims { in_channels: 1, in_h: 28, in_w: 28, kernel: 2, stride: 2, padding: 0 };
        assert_eq!(d2.out_h(), 14);
    }

    #[test]
    fn im2col_identity_kernel_no_padding() {
        // 1x1 kernel, stride 1, no padding: im2col is the identity layout.
        let d = ConvDims { in_channels: 2, in_h: 2, in_w: 2, kernel: 1, stride: 1, padding: 0 };
        let img: Vec<f32> = (1..=8).map(|v| v as f32).collect();
        let cols = im2col(&img, &d).unwrap();
        assert_eq!(cols.shape(), &[2, 4]);
        assert_eq!(cols.data(), img.as_slice());
    }

    #[test]
    fn im2col_known_values_with_padding() {
        // 1 channel 2x2 image, 3x3 kernel, pad 1, stride 1 -> out 2x2.
        let d = ConvDims { in_channels: 1, in_h: 2, in_w: 2, kernel: 3, stride: 1, padding: 1 };
        let img = [1.0, 2.0, 3.0, 4.0];
        let cols = im2col(&img, &d).unwrap();
        assert_eq!(cols.shape(), &[9, 4]);
        // Center tap (ky=1,kx=1) sees the original pixels.
        let center = &cols.data()[4 * 4..5 * 4];
        assert_eq!(center, &[1.0, 2.0, 3.0, 4.0]);
        // Top-left tap (ky=0,kx=0): for out (0,0) it reads padded zero,
        // for out (1,1) it reads pixel (0,0)=1.
        let tl = &cols.data()[0..4];
        assert_eq!(tl, &[0.0, 0.0, 0.0, 1.0]);
    }

    #[test]
    fn im2col_into_reuses_and_fully_overwrites_the_buffer() {
        let d = ConvDims { in_channels: 1, in_h: 2, in_w: 2, kernel: 1, stride: 1, padding: 0 };
        let mut buf = vec![f32::NAN; 64]; // stale, oversized scratch
        im2col_into(&[1.0, 2.0, 3.0, 4.0], &d, &mut buf).unwrap();
        assert_eq!(buf, vec![1.0, 2.0, 3.0, 4.0]);
        // Same buffer, different geometry: still exactly the fresh result.
        let d2 = ConvDims { in_channels: 1, in_h: 2, in_w: 2, kernel: 3, stride: 1, padding: 1 };
        im2col_into(&[1.0, 2.0, 3.0, 4.0], &d2, &mut buf).unwrap();
        let fresh = im2col(&[1.0, 2.0, 3.0, 4.0], &d2).unwrap();
        assert_eq!(buf.as_slice(), fresh.data());
    }

    #[test]
    fn col2im_is_adjoint_of_im2col() {
        // <im2col(x), y> == <x, col2im(y)> for random-ish x, y.
        let d = ConvDims { in_channels: 2, in_h: 5, in_w: 4, kernel: 3, stride: 2, padding: 1 };
        let x: Vec<f32> = (0..d.in_channels * d.in_h * d.in_w).map(|i| (i as f32 * 0.37).sin()).collect();
        let rows = d.col_rows();
        let cols_n = d.col_cols();
        let y: Vec<f32> = (0..rows * cols_n).map(|i| (i as f32 * 0.11).cos()).collect();

        let cx = im2col(&x, &d).unwrap();
        let lhs: f32 = cx.data().iter().zip(&y).map(|(a, b)| a * b).sum();

        let yt = Tensor::from_vec(y, &[rows, cols_n]).unwrap();
        let mut back = vec![0.0f32; x.len()];
        col2im(&yt, &mut back, &d).unwrap();
        let rhs: f32 = x.iter().zip(&back).map(|(a, b)| a * b).sum();

        assert!((lhs - rhs).abs() < 1e-3, "adjoint mismatch: {lhs} vs {rhs}");
    }

    #[test]
    fn col2im_into_matches_tensor_form() {
        let d = ConvDims { in_channels: 1, in_h: 3, in_w: 3, kernel: 2, stride: 1, padding: 0 };
        let vals: Vec<f32> = (0..d.col_rows() * d.col_cols()).map(|i| i as f32 * 0.5).collect();
        let yt = Tensor::from_vec(vals.clone(), &[d.col_rows(), d.col_cols()]).unwrap();
        let mut via_tensor = vec![0.0f32; 9];
        col2im(&yt, &mut via_tensor, &d).unwrap();
        let mut via_slice = vec![0.0f32; 9];
        col2im_into(&vals, &mut via_slice, &d).unwrap();
        assert_eq!(via_tensor, via_slice);
    }

    /// Brute-force im2col: per-element bounds checks, no range analysis.
    fn im2col_ref(image: &[f32], d: &ConvDims) -> Vec<f32> {
        let (oh, ow) = (d.out_h(), d.out_w());
        let mut out = vec![0.0f32; d.col_rows() * d.col_cols()];
        let mut row = 0usize;
        for c in 0..d.in_channels {
            for ky in 0..d.kernel {
                for kx in 0..d.kernel {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let iy = (oy * d.stride + ky) as isize - d.padding as isize;
                            let ix = (ox * d.stride + kx) as isize - d.padding as isize;
                            if (0..d.in_h as isize).contains(&iy) && (0..d.in_w as isize).contains(&ix) {
                                out[row * d.col_cols() + oy * ow + ox] = image
                                    [c * d.in_h * d.in_w + iy as usize * d.in_w + ix as usize];
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
        out
    }

    /// Brute-force col2im adjoint of [`im2col_ref`].
    fn col2im_ref(cols: &[f32], d: &ConvDims) -> Vec<f32> {
        let (oh, ow) = (d.out_h(), d.out_w());
        let mut img = vec![0.0f32; d.in_channels * d.in_h * d.in_w];
        let mut row = 0usize;
        for c in 0..d.in_channels {
            for ky in 0..d.kernel {
                for kx in 0..d.kernel {
                    for oy in 0..oh {
                        for ox in 0..ow {
                            let iy = (oy * d.stride + ky) as isize - d.padding as isize;
                            let ix = (ox * d.stride + kx) as isize - d.padding as isize;
                            if (0..d.in_h as isize).contains(&iy) && (0..d.in_w as isize).contains(&ix) {
                                let dst = &mut img
                                    [c * d.in_h * d.in_w + iy as usize * d.in_w + ix as usize];
                                // Same NaN-holding rule as the production
                                // scatter (see `scatter_tap`).
                                if !dst.is_nan() {
                                    *dst += cols[row * d.col_cols() + oy * ow + ox];
                                }
                            }
                        }
                    }
                    row += 1;
                }
            }
        }
        img
    }

    #[test]
    fn tap_kernels_bit_identical_to_bruteforce_across_levels() {
        // Geometry sweep covering stride-1 (vector path), strided fallback,
        // padding larger than kernel offsets, and odd widths; inputs plant
        // NaN/±inf/-0.0 so the copies/adds face the full IEEE surface.
        let geoms = [
            ConvDims { in_channels: 2, in_h: 5, in_w: 7, kernel: 3, stride: 1, padding: 1 },
            ConvDims { in_channels: 1, in_h: 9, in_w: 9, kernel: 3, stride: 2, padding: 1 },
            ConvDims { in_channels: 1, in_h: 4, in_w: 4, kernel: 2, stride: 2, padding: 0 },
            ConvDims { in_channels: 3, in_h: 6, in_w: 11, kernel: 5, stride: 1, padding: 2 },
            ConvDims { in_channels: 1, in_h: 3, in_w: 3, kernel: 3, stride: 3, padding: 2 },
            ConvDims { in_channels: 1, in_h: 1, in_w: 17, kernel: 1, stride: 1, padding: 0 },
        ];
        let specials = |i: usize, v: f32| match i % 19 {
            5 => f32::NAN,
            9 => -0.0,
            13 => f32::INFINITY,
            17 => f32::NEG_INFINITY,
            _ => v,
        };
        let prior = crate::simd_level();
        for d in &geoms {
            let img: Vec<f32> = (0..d.in_channels * d.in_h * d.in_w)
                .map(|i| specials(i, (i as f32 * 0.7).sin() * 10.0))
                .collect();
            let want_cols = im2col_ref(&img, d);
            let cols: Vec<f32> = (0..d.col_rows() * d.col_cols())
                .map(|i| specials(i, (i as f32 * 0.3).cos() * 10.0))
                .collect();
            let want_img = col2im_ref(&cols, d);
            use crate::SimdLevel;
            for level in [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2] {
                if level > crate::hardware_simd_level() {
                    continue;
                }
                crate::set_simd_level(level);
                let mut got_cols = Vec::new();
                im2col_into(&img, d, &mut got_cols).unwrap();
                let mut got_img = vec![0.0f32; img.len()];
                col2im_into(&cols, &mut got_img, d).unwrap();
                for (i, (a, b)) in got_cols.iter().zip(&want_cols).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "im2col {level:?} {d:?} idx {i}");
                }
                for (i, (a, b)) in got_img.iter().zip(&want_img).enumerate() {
                    assert_eq!(a.to_bits(), b.to_bits(), "col2im {level:?} {d:?} idx {i}");
                }
            }
        }
        crate::set_simd_level(prior);
    }

    #[test]
    fn invalid_geometry_rejected() {
        let d = ConvDims { in_channels: 1, in_h: 2, in_w: 2, kernel: 5, stride: 1, padding: 0 };
        assert!(im2col(&[0.0; 4], &d).is_err());
        let d0 = ConvDims { in_channels: 1, in_h: 2, in_w: 2, kernel: 0, stride: 1, padding: 0 };
        assert!(im2col(&[0.0; 4], &d0).is_err());
    }

    #[test]
    fn wrong_buffer_lengths_rejected() {
        let d = ConvDims { in_channels: 1, in_h: 2, in_w: 2, kernel: 1, stride: 1, padding: 0 };
        assert!(im2col(&[0.0; 3], &d).is_err());
        let cols = Tensor::zeros(&[1, 4]);
        let mut img = vec![0.0; 3];
        assert!(col2im(&cols, &mut img, &d).is_err());
        assert!(col2im_into(&[0.0; 3], &mut [0.0; 4], &d).is_err());
        assert!(col2im_into(&[0.0; 4], &mut [0.0; 3], &d).is_err());
    }
}
