//! Rank-2 matrix multiplication kernels.
//!
//! Three variants are provided so the NN layers never have to materialize a
//! transposed copy: `C = A·B`, `C = Aᵀ·B`, and `C = A·Bᵀ`. Each comes in a
//! [`Tensor`] form and a slice `_into` form that writes into a
//! caller-provided buffer (so hot loops can reuse scratch storage).
//!
//! ## Execution strategy
//!
//! All variants run cache-blocked micro-kernels over blocks of output rows
//! ([`MC`] rows at a time, with the shared dimension additionally tiled by
//! [`KC`] in the ikj kernel), and dispatch those row blocks across the
//! persistent worker pool in [`crate::par`] when the matrix is large enough
//! to pay for it. Inside each row block the inner loops run on the
//! runtime-selected SIMD lanes from [`crate::simd`], vectorizing across
//! output columns only.
//!
//! ## Determinism contract
//!
//! For every output element `(i, j)` the kernels perform exactly one
//! `c += a·b` accumulation per index `p` of the shared dimension, in
//! ascending `p` order, starting from `+0.0` — the same sequence as the
//! naive serial kernels in [`reference`]. Row blocking, `k`-tiling and
//! row-partitioned parallel dispatch all preserve that per-element order, so
//! outputs are bit-identical to the reference at every thread count
//! (including signed zeros and NaN payloads). No sparsity shortcuts are
//! taken: a zero operand still multiplies, so NaN/inf propagate per
//! IEEE 754 and the `FEDSU_CHECK_INVARIANTS` guards can observe them.

use crate::{par, pool, simd, Result, Tensor, TensorError};
use std::ops::Range;
use std::sync::Arc;

/// Rows of output processed per cache block; also the sub-block size a
/// parallel task iterates internally, so serial and parallel execution tile
/// the output identically.
const MC: usize = 64;

/// Tile length along the shared `k` dimension in the ikj kernel: one tile of
/// `B` (`KC × n` scalars) stays cache-hot across a whole row block.
const KC: usize = 256;

/// Column-strip width in the ikj kernel: the innermost row loop reuses one
/// `KC × NC` window of `B` (64 KiB at `f32`) across the whole row block, so
/// wide outputs stop re-streaming the full `B` tile once per row.
const NC: usize = 64;

/// Minimum multiply-accumulate count before parallel dispatch pays for its
/// input snapshots and scheduling; smaller problems run the serial blocked
/// path. Calibrated so ~64³ matmuls (where dispatch overhead measurably
/// loses) stay serial and ~96³ and up go parallel.
const PAR_MIN_MACS: usize = (1 << 18) + 1;

/// Which of the three kernels a dispatch runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    /// `C = A·B` with `A: [m, k]`, `B: [k, n]`.
    Nn,
    /// `C = Aᵀ·B` with `A: [k, m]`, `B: [k, n]`.
    TransposeA,
    /// `C = A·Bᵀ` with `A: [m, k]`, `B: [n, k]`.
    TransposeB,
}

impl Kind {
    fn op(self) -> &'static str {
        match self {
            Kind::Nn => "matmul",
            Kind::TransposeA => "matmul_transpose_a",
            Kind::TransposeB => "matmul_transpose_b",
        }
    }
}

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    match t.shape() {
        &[rows, cols] => Ok((rows, cols)),
        _ => Err(TensorError::RankMismatch { expected: 2, actual: t.rank(), op }),
    }
}

fn check_len(buf: &[f32], rows: usize, cols: usize) -> Result<()> {
    if buf.len() != rows * cols {
        return Err(TensorError::new_length_mismatch(buf.len(), &[rows, cols]));
    }
    Ok(())
}

/// ikj micro-kernel for `C = A·B` over output rows `rows`: `out` holds
/// exactly those rows (`rows.len() × n`), pre-zeroed by the caller.
///
/// Inside each `k`-tile the columns are additionally walked in [`NC`]-wide
/// strips, innermost over the block's rows, so one narrow window of the `B`
/// tile (`KC × NC` scalars) stays L1-resident across all [`MC`] output rows
/// instead of the whole `KC × n` tile streaming through the cache once per
/// row. Strip order is a pure loop interchange over independent output
/// elements: each `c[i][j]` still receives its `+= a·b` updates in ascending
/// `p` order, so bit-identity with the reference is unaffected.
fn chunk_nn(a: &[f32], b: &[f32], rows: Range<usize>, out: &mut [f32], k: usize, n: usize) {
    if k == 0 || n == 0 || rows.is_empty() {
        return;
    }
    let level = simd::simd_level();
    let a_rows = a.get(rows.start * k..rows.end * k).unwrap_or(&[]);
    for pb in (0..k).step_by(KC) {
        let pe = (pb + KC).min(k);
        let b_tile = b.get(pb * n..pe * n).unwrap_or(&[]);
        for jb in (0..n).step_by(NC) {
            let je = (jb + NC).min(n);
            // Rows go through the strip two at a time so each B load feeds
            // two rows' accumulators. Pairing starts at the block's first
            // row; blocks are always MC-aligned (serial tiling and parallel
            // dispatch both cut at MC, which is even), so an element's
            // paired-vs-single assignment never depends on the thread count.
            let mut a_pairs = a_rows.chunks_exact(2 * k);
            let mut c_pairs = out.chunks_exact_mut(2 * n);
            for (a2, c2) in (&mut a_pairs).zip(&mut c_pairs) {
                let (a_row0, a_row1) = a2.split_at(k);
                let (c_row0, c_row1) = c2.split_at_mut(n);
                simd::nn_tile_cols2_with(
                    level,
                    c_row0.get_mut(jb..je).unwrap_or_default(),
                    c_row1.get_mut(jb..je).unwrap_or_default(),
                    a_row0.get(pb..pe).unwrap_or(&[]),
                    a_row1.get(pb..pe).unwrap_or(&[]),
                    b_tile,
                    n,
                    jb,
                );
            }
            let a_last = a_pairs.remainder().chunks_exact(k);
            let c_last = c_pairs.into_remainder().chunks_exact_mut(n);
            for (a_row, c_row) in a_last.zip(c_last) {
                let a_tile = a_row.get(pb..pe).unwrap_or(&[]);
                let c_cols = c_row.get_mut(jb..je).unwrap_or_default();
                simd::nn_tile_cols_with(level, c_cols, a_tile, b_tile, n, jb);
            }
        }
    }
}

/// pij micro-kernel for `C = Aᵀ·B` over output rows `rows` (columns of the
/// stored `A: [k, m]`); `out` holds exactly those rows, pre-zeroed. The row
/// block is the cache tile: it stays resident while `A` and `B` stream
/// through once in ascending `p` order.
fn chunk_ta(a: &[f32], b: &[f32], rows: Range<usize>, out: &mut [f32], m: usize, n: usize) {
    if m == 0 || n == 0 || rows.is_empty() {
        return;
    }
    let level = simd::simd_level();
    for (a_row, b_row) in a.chunks_exact(m).zip(b.chunks_exact(n)) {
        let a_seg = a_row.get(rows.clone()).unwrap_or(&[]);
        for (&av, c_row) in a_seg.iter().zip(out.chunks_exact_mut(n)) {
            simd::axpy_with(level, c_row, av, b_row);
        }
    }
}

/// Dot-product micro-kernel for `C = A·Bᵀ` over output rows `rows`; each
/// element is one sequential dot in ascending `p` order. The row block keeps
/// a small set of `A` rows hot while `B` streams through once per row.
fn chunk_tb(a: &[f32], b: &[f32], rows: Range<usize>, out: &mut [f32], k: usize, n: usize) {
    if n == 0 || rows.is_empty() {
        return;
    }
    if k == 0 {
        // Every dot product is empty; the pre-zeroed output is the answer.
        return;
    }
    let level = simd::simd_level();
    let a_rows = a.get(rows.start * k..rows.end * k).unwrap_or(&[]);
    for (a_row, c_row) in a_rows.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
        simd::tb_row_with(level, c_row, a_row, b, k);
    }
}

fn run_chunk(kind: Kind, a: &[f32], b: &[f32], rows: Range<usize>, out: &mut [f32], m: usize, k: usize, n: usize) {
    match kind {
        Kind::Nn => chunk_nn(a, b, rows, out, k, n),
        Kind::TransposeA => {
            let _ = k;
            chunk_ta(a, b, rows, out, m, n);
        }
        Kind::TransposeB => chunk_tb(a, b, rows, out, k, n),
    }
}

/// Runs the blocked kernel over output rows `rows`, tiling them in [`MC`]
/// blocks; `out` holds exactly those rows (`rows.len() × n`), pre-zeroed.
fn run_range(kind: Kind, a: &[f32], b: &[f32], rows: Range<usize>, out: &mut [f32], m: usize, k: usize, n: usize) {
    if out.is_empty() {
        return;
    }
    for (ci, sub) in out.chunks_mut(MC * n).enumerate() {
        let start = rows.start + ci * MC;
        let end = rows.end.min(start + MC);
        run_chunk(kind, a, b, start..end, sub, m, k, n);
    }
}

/// Full-output driver: serial blocked execution, or row-partitioned
/// dispatch on the persistent pool when the problem is large enough and the
/// configured thread count allows it. `out` must be `m × n`, pre-zeroed.
fn run_rows(kind: Kind, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    let threads = par::kernel_threads();
    let macs = m.saturating_mul(k).saturating_mul(n);
    if threads <= 1 || macs < PAR_MIN_MACS || m < 2 || n == 0 {
        run_range(kind, a, b, 0..m, out, m, k, n);
        return;
    }
    // 'static jobs for the persistent pool: snapshot the operands once and
    // share them across every chunk (an O(mk + kn) copy against O(mkn)
    // compute; the threshold above keeps tiny problems off this path).
    let a_shared: Arc<[f32]> = Arc::from(a);
    let b_shared: Arc<[f32]> = Arc::from(b);
    // Chunks are MC-aligned so every dispatch (and the serial path) tiles
    // the output rows identically: the ikj kernel pairs rows within each MC
    // block, and alignment keeps that pairing — hence the compiled kernel
    // instance each element runs through — independent of the thread count.
    let rows_per = MC * m.div_ceil(MC * threads);
    let chunk_count = m.div_ceil(rows_per);
    let mut jobs: Vec<par::ChunkJob> = Vec::with_capacity(chunk_count);
    for idx in 0..chunk_count {
        let rows = (idx * rows_per)..((idx + 1) * rows_per).min(m);
        let a = Arc::clone(&a_shared);
        let b = Arc::clone(&b_shared);
        // Dispatcher-owned pooled chunk: checked out of this thread's
        // shard here, filled on a worker, and returned below — workers
        // never touch the pool, so kernels cannot contend on a shard.
        let mut chunk = pool::take_f32_buf(rows.len() * n);
        let job: par::ChunkJob = Box::new(move || {
            run_range(kind, &a, &b, rows, &mut chunk, m, k, n);
            (idx, chunk)
        });
        jobs.push(job);
    }
    let results = par::run_chunks(jobs);
    for (idx, slot) in results.into_iter().enumerate() {
        let start = idx * rows_per;
        let end = (start + rows_per).min(m);
        let Some(out_chunk) = out.get_mut(start * n..end * n) else { continue };
        match slot {
            Some(chunk) => {
                out_chunk.copy_from_slice(&chunk);
                pool::give_f32_buf(chunk);
            }
            // The chunk's worker died mid-job (its pooled buffer died with
            // it): recompute inline so a degraded pool can never change
            // results or hang the caller.
            None => run_range(kind, a, b, start..end, out_chunk, m, k, n),
        }
    }
}

fn run_into(kind: Kind, a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) {
    out.fill(0.0);
    run_rows(kind, a, b, out, m, k, n);
    crate::invariant::check_op_output(kind.op(), &[a, b], out);
}

/// Computes `C = A · B` on raw row-major slices, `A: [m, k]`, `B: [k, n]`,
/// overwriting `out: [m, n]`. Bit-identical to [`reference::matmul`] at
/// every thread count.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when a buffer length disagrees
/// with its stated shape.
pub fn matmul_into(a: &[f32], b: &[f32], out: &mut [f32], m: usize, k: usize, n: usize) -> Result<()> {
    check_len(a, m, k)?;
    check_len(b, k, n)?;
    check_len(out, m, n)?;
    run_into(Kind::Nn, a, b, out, m, k, n);
    Ok(())
}

/// Computes `C = Aᵀ · B` on raw row-major slices, `A: [k, m]`, `B: [k, n]`,
/// overwriting `out: [m, n]`. Bit-identical to
/// [`reference::matmul_transpose_a`] at every thread count.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when a buffer length disagrees
/// with its stated shape.
pub fn matmul_transpose_a_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    k: usize,
    m: usize,
    n: usize,
) -> Result<()> {
    check_len(a, k, m)?;
    check_len(b, k, n)?;
    check_len(out, m, n)?;
    run_into(Kind::TransposeA, a, b, out, m, k, n);
    Ok(())
}

/// Computes `C = A · Bᵀ` on raw row-major slices, `A: [m, k]`, `B: [n, k]`,
/// overwriting `out: [m, n]`. Bit-identical to
/// [`reference::matmul_transpose_b`] at every thread count.
///
/// # Errors
///
/// Returns [`TensorError::LengthMismatch`] when a buffer length disagrees
/// with its stated shape.
pub fn matmul_transpose_b_into(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
) -> Result<()> {
    check_len(a, m, k)?;
    check_len(b, n, k)?;
    check_len(out, m, n)?;
    run_into(Kind::TransposeB, a, b, out, m, k, n);
    Ok(())
}

/// Computes `C = A · B` for rank-2 tensors, `A: [m, k]`, `B: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 inputs and
/// [`TensorError::ShapeMismatch`] when inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a, "matmul")?;
    let (kb, n) = check_rank2(b, "matmul")?;
    if ka != kb {
        return Err(TensorError::new_shape_mismatch(a.shape(), b.shape(), "matmul"));
    }
    let mut out = pool::pooled_zeros(&[m, n]);
    matmul_into(a.data(), b.data(), out.data_mut(), m, ka, n)?;
    Ok(out)
}

/// Computes `C = Aᵀ · B`, with `A: [k, m]`, `B: [k, n]`, producing `[m, n]`.
///
/// # Errors
///
/// Same error conditions as [`matmul`].
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = check_rank2(a, "matmul_transpose_a")?;
    let (kb, n) = check_rank2(b, "matmul_transpose_a")?;
    if ka != kb {
        return Err(TensorError::new_shape_mismatch(a.shape(), b.shape(), "matmul_transpose_a"));
    }
    let mut out = pool::pooled_zeros(&[m, n]);
    matmul_transpose_a_into(a.data(), b.data(), out.data_mut(), ka, m, n)?;
    Ok(out)
}

/// Computes `C = A · Bᵀ`, with `A: [m, k]`, `B: [n, k]`, producing `[m, n]`.
///
/// # Errors
///
/// Same error conditions as [`matmul`].
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a, "matmul_transpose_b")?;
    let (n, kb) = check_rank2(b, "matmul_transpose_b")?;
    if ka != kb {
        return Err(TensorError::new_shape_mismatch(a.shape(), b.shape(), "matmul_transpose_b"));
    }
    let mut out = pool::pooled_zeros(&[m, n]);
    matmul_transpose_b_into(a.data(), b.data(), out.data_mut(), m, ka, n)?;
    Ok(out)
}

/// Naive single-threaded reference kernels: the semantic ground truth the
/// blocked/parallel kernels must match bit-for-bit. Used by the
/// bit-identity tests and the kernel benchmark harness; never by the
/// runtime.
///
/// Buffer lengths must agree with the stated shapes; short buffers simply
/// truncate the iteration (the production entry points validate lengths
/// before ever reaching a kernel).
pub mod reference {
    /// `C = A·B` with `A: [m, k]`, `B: [k, n]`, in the canonical ikj order:
    /// each element accumulates `a[i][p] * b[p][j]` for ascending `p` from
    /// `+0.0`.
    pub fn matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        if k == 0 || n == 0 {
            return out;
        }
        for (a_row, c_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
            for (&av, b_row) in a_row.iter().zip(b.chunks_exact(n)) {
                for (c, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *c += av * bv;
                }
            }
        }
        out
    }

    /// `C = Aᵀ·B` with `A: [k, m]`, `B: [k, n]`: each element accumulates
    /// `a[p][i] * b[p][j]` for ascending `p` from `+0.0`.
    pub fn matmul_transpose_a(a: &[f32], b: &[f32], k: usize, m: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        if m == 0 || n == 0 || k == 0 {
            return out;
        }
        for (a_row, b_row) in a.chunks_exact(m).zip(b.chunks_exact(n)) {
            for (&av, c_row) in a_row.iter().zip(out.chunks_exact_mut(n)) {
                for (c, &bv) in c_row.iter_mut().zip(b_row.iter()) {
                    *c += av * bv;
                }
            }
        }
        out
    }

    /// `C = A·Bᵀ` with `A: [m, k]`, `B: [n, k]`: each element is one
    /// sequential dot product in ascending `p` order from `+0.0`.
    pub fn matmul_transpose_b(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
        let mut out = vec![0.0f32; m * n];
        if k == 0 || n == 0 {
            return out;
        }
        for (a_row, c_row) in a.chunks_exact(k).zip(out.chunks_exact_mut(n)) {
            for (c, b_row) in c_row.iter_mut().zip(b.chunks_exact(k)) {
                let mut acc = 0.0f32;
                for (&av, &bv) in a_row.iter().zip(b_row.iter()) {
                    acc += av * bv;
                }
                *c = acc;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn matmul_small_known_values() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_variants_match_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]); // 2x3
        let b = t(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], &[2, 3]); // 2x3

        // Aᵀ(3x2) · B(2x3) -> 3x3
        let c1 = matmul_transpose_a(&a, &b).unwrap();
        assert_eq!(c1.shape(), &[3, 3]);
        // hand transpose
        let at = t(&[1.0, 4.0, 2.0, 5.0, 3.0, 6.0], &[3, 2]);
        let c1_ref = matmul(&at, &b).unwrap();
        assert_eq!(c1.data(), c1_ref.data());

        // A(2x3) · Bᵀ(3x2) -> 2x2
        let c2 = matmul_transpose_b(&a, &b).unwrap();
        let bt = t(&[1.0, 2.0, 0.5, 0.0, -1.0, 3.0], &[3, 2]);
        let c2_ref = matmul(&a, &bt).unwrap();
        assert_eq!(c2.data(), c2_ref.data());
    }

    #[test]
    fn mismatched_inner_dims_error() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_transpose_a(&a, &b).is_err());
        let b2 = Tensor::zeros(&[2, 4]);
        assert!(matmul_transpose_b(&a, &b2).is_err());
    }

    #[test]
    fn rank_checked() {
        let a = Tensor::zeros(&[6]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(matmul(&a, &b), Err(crate::TensorError::RankMismatch { .. })));
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &i).unwrap().data(), a.data());
        assert_eq!(matmul(&i, &a).unwrap().data(), a.data());
    }

    #[test]
    fn into_variants_validate_lengths() {
        let mut out = vec![0.0f32; 4];
        assert!(matmul_into(&[0.0; 3], &[0.0; 4], &mut out, 2, 2, 2).is_err());
        assert!(matmul_into(&[0.0; 4], &[0.0; 3], &mut out, 2, 2, 2).is_err());
        let mut short = vec![0.0f32; 3];
        assert!(matmul_into(&[0.0; 4], &[0.0; 4], &mut short, 2, 2, 2).is_err());
        assert!(matmul_transpose_a_into(&[0.0; 3], &[0.0; 4], &mut out, 2, 2, 2).is_err());
        assert!(matmul_transpose_b_into(&[0.0; 3], &[0.0; 4], &mut out, 2, 2, 2).is_err());
    }

    #[test]
    fn into_variants_overwrite_stale_output() {
        let a = [1.0f32, 0.0, 0.0, 1.0];
        let b = [3.0f32, 4.0, 5.0, 6.0];
        let mut out = vec![f32::NAN; 4];
        matmul_into(&a, &b, &mut out, 2, 2, 2).unwrap();
        assert_eq!(out, b);
    }

    /// The NaN-propagation regression: the old kernels skipped `av == 0.0`
    /// multiplications as a sparsity shortcut, which silently suppressed
    /// IEEE propagation — a zero row in `A` masked a NaN planted in `B`.
    /// IEEE 754 requires `0.0 × NaN = NaN`.
    #[test]
    fn zero_row_in_a_does_not_mask_nan_in_b() {
        // Row 0 of A is all zeros; B carries a NaN in row 0.
        let a = t(&[0.0, 0.0, 1.0, 1.0], &[2, 2]);
        let b = t(&[f32::NAN, 5.0, 6.0, 7.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        let got = c.data().first().copied().unwrap_or(0.0);
        assert!(got.is_nan(), "0·NaN must propagate, got {got}");
        // The unaffected column keeps its ordinary value: 0·5 + 0·7 = 0.
        assert_eq!(c.data().get(1).copied(), Some(0.0));
    }

    #[test]
    fn zero_column_in_a_does_not_mask_nan_in_b_transpose_a() {
        // Column 0 of A (= row 0 of Aᵀ) is all zeros; B carries a NaN.
        let a = t(&[0.0, 1.0, 0.0, 1.0], &[2, 2]); // A: [k=2, m=2]
        let b = t(&[f32::NAN, 5.0, 6.0, 7.0], &[2, 2]);
        let c = matmul_transpose_a(&a, &b).unwrap();
        let got = c.data().first().copied().unwrap_or(0.0);
        assert!(got.is_nan(), "0·NaN must propagate through Aᵀ·B, got {got}");
    }

    #[test]
    fn zero_times_infinity_is_nan_not_zero() {
        let a = t(&[0.0, 0.0], &[1, 2]);
        let b = t(&[f32::INFINITY, 1.0], &[2, 1]);
        let c = matmul(&a, &b).unwrap();
        let got = c.data().first().copied().unwrap_or(0.0);
        assert!(got.is_nan(), "0·inf must yield NaN, got {got}");
    }
}
