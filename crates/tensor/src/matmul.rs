//! Rank-2 matrix multiplication kernels.
//!
//! Three variants are provided so the NN layers never have to materialize a
//! transposed copy: `C = A·B`, `C = Aᵀ·B`, and `C = A·Bᵀ`. All use a simple
//! ikj loop order, which keeps the innermost loop contiguous in both `B` and
//! `C` and lets the compiler auto-vectorize.

use crate::{Result, Tensor, TensorError};

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.rank() != 2 {
        return Err(TensorError::RankMismatch { expected: 2, actual: t.rank(), op });
    }
    Ok((t.shape()[0], t.shape()[1]))
}

/// Computes `C = A · B` for rank-2 tensors, `A: [m, k]`, `B: [k, n]`.
///
/// # Errors
///
/// Returns [`TensorError::RankMismatch`] for non-rank-2 inputs and
/// [`TensorError::ShapeMismatch`] when inner dimensions disagree.
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a, "matmul")?;
    let (kb, n) = check_rank2(b, "matmul")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * ka..(i + 1) * ka];
        let c_row = &mut out[i * n..(i + 1) * n];
        for (p, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let b_row = &bd[p * n..(p + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += av * bv;
            }
        }
    }
    crate::invariant::check_op_output("matmul", &[ad, bd], &out);
    Tensor::from_vec(out, &[m, n])
}

/// Computes `C = Aᵀ · B`, with `A: [k, m]`, `B: [k, n]`, producing `[m, n]`.
///
/// # Errors
///
/// Same error conditions as [`matmul`].
pub fn matmul_transpose_a(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (ka, m) = check_rank2(a, "matmul_transpose_a")?;
    let (kb, n) = check_rank2(b, "matmul_transpose_a")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_transpose_a",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for p in 0..ka {
        let a_row = &ad[p * m..(p + 1) * m];
        let b_row = &bd[p * n..(p + 1) * n];
        for (i, &av) in a_row.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let c_row = &mut out[i * n..(i + 1) * n];
            for (c, &bv) in c_row.iter_mut().zip(b_row) {
                *c += av * bv;
            }
        }
    }
    crate::invariant::check_op_output("matmul_transpose_a", &[ad, bd], &out);
    Tensor::from_vec(out, &[m, n])
}

/// Computes `C = A · Bᵀ`, with `A: [m, k]`, `B: [n, k]`, producing `[m, n]`.
///
/// # Errors
///
/// Same error conditions as [`matmul`].
pub fn matmul_transpose_b(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, ka) = check_rank2(a, "matmul_transpose_b")?;
    let (n, kb) = check_rank2(b, "matmul_transpose_b")?;
    if ka != kb {
        return Err(TensorError::ShapeMismatch {
            left: a.shape().to_vec(),
            right: b.shape().to_vec(),
            op: "matmul_transpose_b",
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let a_row = &ad[i * ka..(i + 1) * ka];
        for j in 0..n {
            let b_row = &bd[j * kb..(j + 1) * kb];
            let mut acc = 0.0f32;
            for (&av, &bv) in a_row.iter().zip(b_row) {
                acc += av * bv;
            }
            out[i * n + j] = acc;
        }
    }
    crate::invariant::check_op_output("matmul_transpose_b", &[ad, bd], &out);
    Tensor::from_vec(out, &[m, n])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(data: &[f32], shape: &[usize]) -> Tensor {
        Tensor::from_vec(data.to_vec(), shape).unwrap()
    }

    #[test]
    fn matmul_small_known_values() {
        // [[1,2],[3,4]] * [[5,6],[7,8]] = [[19,22],[43,50]]
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = t(&[5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]);
        let b = t(&[7.0, 8.0, 9.0, 10.0, 11.0, 12.0], &[3, 2]);
        let c = matmul(&a, &b).unwrap();
        assert_eq!(c.shape(), &[2, 2]);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_variants_match_explicit_transpose() {
        let a = t(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]); // 2x3
        let b = t(&[1.0, 0.5, -1.0, 2.0, 0.0, 3.0], &[2, 3]); // 2x3

        // Aᵀ(3x2) · B(2x3) -> 3x3
        let c1 = matmul_transpose_a(&a, &b).unwrap();
        assert_eq!(c1.shape(), &[3, 3]);
        // hand transpose
        let at = t(&[1.0, 4.0, 2.0, 5.0, 3.0, 6.0], &[3, 2]);
        let c1_ref = matmul(&at, &b).unwrap();
        assert_eq!(c1.data(), c1_ref.data());

        // A(2x3) · Bᵀ(3x2) -> 2x2
        let c2 = matmul_transpose_b(&a, &b).unwrap();
        let bt = t(&[1.0, 2.0, 0.5, 0.0, -1.0, 3.0], &[3, 2]);
        let c2_ref = matmul(&a, &bt).unwrap();
        assert_eq!(c2.data(), c2_ref.data());
    }

    #[test]
    fn mismatched_inner_dims_error() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        assert!(matmul_transpose_a(&a, &b).is_err());
        let b2 = Tensor::zeros(&[2, 4]);
        assert!(matmul_transpose_b(&a, &b2).is_err());
    }

    #[test]
    fn rank_checked() {
        let a = Tensor::zeros(&[6]);
        let b = Tensor::zeros(&[2, 3]);
        assert!(matches!(matmul(&a, &b), Err(crate::TensorError::RankMismatch { .. })));
    }

    #[test]
    fn identity_is_neutral() {
        let a = t(&[1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let i = t(&[1.0, 0.0, 0.0, 1.0], &[2, 2]);
        assert_eq!(matmul(&a, &i).unwrap().data(), a.data());
        assert_eq!(matmul(&i, &a).unwrap().data(), a.data());
    }
}
