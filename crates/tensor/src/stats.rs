//! Small numeric helpers over `f32` slices used by sync strategies and
//! metrics (norms, dot products).

/// Euclidean (L2) norm of a slice.
pub fn l2_norm(v: &[f32]) -> f32 {
    v.iter().map(|x| (*x as f64).powi(2)).sum::<f64>().sqrt() as f32
}

/// Dot product of two slices.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot: length mismatch");
    a.iter().zip(b).map(|(x, y)| (*x as f64) * (*y as f64)).sum::<f64>() as f32
}

/// Maximum absolute value of a slice (0.0 for an empty slice).
pub fn max_abs(v: &[f32]) -> f32 {
    v.iter().fold(0.0f32, |m, x| m.max(x.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_norm_known() {
        assert!((l2_norm(&[3.0, 4.0]) - 5.0).abs() < 1e-6);
        assert_eq!(l2_norm(&[]), 0.0);
    }

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn max_abs_handles_negatives_and_empty() {
        assert_eq!(max_abs(&[-7.0, 3.0]), 7.0);
        assert_eq!(max_abs(&[]), 0.0);
    }

    #[test]
    fn l2_uses_f64_accumulation() {
        // Many small values: naive f32 accumulation would lose precision.
        let v = vec![1e-4f32; 1_000_000];
        let n = l2_norm(&v);
        assert!((n - 0.1).abs() < 1e-4, "norm {n}");
    }
}
