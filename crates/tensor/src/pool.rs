//! Size-classed, sharded buffer pool backing the steady round loop.
//!
//! The FedSU round loop used to re-allocate its tensors, masks, and
//! staging buffers every round (see `crates/xtask/alloc-budget.toml`).
//! This module is the fix: a process-wide [`BufferPool`] of reusable
//! `f32`/`usize`/byte buffers, organised as power-of-two size classes
//! inside independently locked shards. Hot paths check a buffer out,
//! use it, and return it; after warm-up the loop runs on recycled
//! capacity instead of fresh allocations.
//!
//! ## Invariants
//!
//! * **Zero-on-checkout.** Every buffer handed out is zero-filled to the
//!   requested length before the caller sees it, so a pooled buffer is
//!   observationally identical to a fresh `vec![0.0; len]` and every
//!   bit-for-bit determinism contract (kernel thread-count identity,
//!   zero-fault `RoundRecord`s, wire parity) holds with the pool on.
//! * **Per-worker ownership.** Kernel-pool workers pin themselves to a
//!   dedicated shard via [`pin_shard`] (one shard per worker slot);
//!   other threads are spread round-robin over a separate shard range.
//!   Parallel kernels therefore never contend on a shard lock, and a
//!   buffer recycled by a thread is the first one it gets back.
//! * **No poisoning.** Shard locks recover from poisoning with
//!   [`std::sync::Mutex::into_inner`]-style recovery (a panicking job
//!   can never wedge the pool), and the RAII [`PoolBuf`] guard returns
//!   its buffer during unwinding, so `catch_unwind` boundaries leak
//!   nothing.
//! * **Bounded retention.** Each size class keeps at most a handful of
//!   free buffers per shard; surplus returns fall through to the
//!   allocator, so the pool's high-water memory is bounded.
//!
//! Buffers that die inside a panicking closure (a plain `Vec` checked
//! out with [`take_f32_buf`] and moved into a job) are simply freed by
//! the normal `Vec` drop; the pool forgets them and the
//! [`outstanding`] balance reflects that the checkout was never
//! returned. Use [`checkout`]/[`PoolBuf`] where unwind-safety matters.

use crate::tensor::{from_parts, Tensor};
use std::cell::Cell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Shards reserved for kernel-pool workers (one per worker slot; keep in
/// sync with the worker cap in `par.rs`).
pub const WORKER_SHARDS: usize = 16;

/// Extra shards shared round-robin by every non-worker thread.
const EXTRA_SHARDS: usize = 8;

/// Total shard count.
const NUM_SHARDS: usize = WORKER_SHARDS + EXTRA_SHARDS;

/// Power-of-two size classes per shard (class `c` holds buffers of
/// capacity up to `2^c` elements); requests beyond the last class bypass
/// the pool entirely.
const NUM_CLASSES: usize = 32;

/// Free buffers retained per (shard, class, type); surplus returns are
/// dropped so pool memory stays bounded.
const PER_CLASS_CAP: usize = 4;

/// Free lists for one shard. Buffers are binned by the size class of
/// their *capacity*, so a recycled buffer can serve any request in its
/// class (growing in place at most once, after which the capacity
/// sticks).
struct Shard {
    f32s: [Vec<Vec<f32>>; NUM_CLASSES],
    usizes: [Vec<Vec<usize>>; NUM_CLASSES],
    u8s: [Vec<Vec<u8>>; NUM_CLASSES],
}

/// The process-wide sharded buffer pool. Obtain it via [`global`].
pub struct BufferPool {
    shards: Vec<Mutex<Shard>>,
    /// Wrapping balance of checkouts minus returns (all element types).
    balance: AtomicU64,
}

static POOL: OnceLock<BufferPool> = OnceLock::new();

/// Round-robin cursor assigning non-worker threads to the extra shards.
static NEXT_SHARD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// This thread's shard index; `usize::MAX` means "not assigned yet".
    static SHARD: Cell<usize> = const { Cell::new(usize::MAX) };
}

/// One-time construction of the pool (runs on first use).
fn new_pool() -> BufferPool {
    let mut shards = Vec::with_capacity(NUM_SHARDS);
    for _ in 0..NUM_SHARDS {
        shards.push(Mutex::new(Shard {
            f32s: std::array::from_fn(|_| Vec::new()),
            usizes: std::array::from_fn(|_| Vec::new()),
            u8s: std::array::from_fn(|_| Vec::new()),
        }));
    }
    BufferPool { shards, balance: AtomicU64::new(0) }
}

/// The process-wide pool.
pub fn global() -> &'static BufferPool {
    POOL.get_or_init(new_pool)
}

/// Pins the calling thread to worker shard `idx` (modulo the worker
/// range). Kernel-pool workers call this once at startup so each owns a
/// private sub-pool and parallel kernels never contend on a shard lock.
pub fn pin_shard(idx: usize) {
    SHARD.with(|s| s.set(idx % WORKER_SHARDS));
}

/// The calling thread's shard, assigning a round-robin extra shard on
/// first use for threads that never pinned.
fn my_shard() -> usize {
    SHARD.with(|s| {
        let assigned = s.get();
        if assigned != usize::MAX {
            return assigned;
        }
        let next = NEXT_SHARD.fetch_add(1, Ordering::Relaxed);
        let idx = WORKER_SHARDS + next % EXTRA_SHARDS;
        s.set(idx);
        idx
    })
}

/// Size class for a length/capacity: index of the covering power of two.
fn class_of(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

/// Allocator fallback for an `f32` pool miss (one-time per warm-up).
fn new_f32_storage(len: usize) -> Vec<f32> {
    Vec::with_capacity(len)
}

/// Allocator fallback for a `usize` pool miss.
fn new_usize_storage(len: usize) -> Vec<usize> {
    Vec::with_capacity(len)
}

/// Allocator fallback for a byte pool miss.
fn new_u8_storage(len: usize) -> Vec<u8> {
    Vec::with_capacity(len)
}

impl BufferPool {
    /// Locks shard `idx` (poison-recovering); `None` only for an
    /// out-of-range index, which callers treat as a pool miss.
    fn lock_shard(&self, idx: usize) -> Option<MutexGuard<'_, Shard>> {
        let slot = self.shards.get(idx)?;
        Some(match slot.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        })
    }

    /// Checks out a zero-filled `f32` buffer of exactly `len` elements.
    pub fn take_f32(&self, len: usize) -> Vec<f32> {
        self.balance.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.pop_f32(len);
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    fn pop_f32(&self, len: usize) -> Vec<f32> {
        if let Some(mut shard) = self.lock_shard(my_shard()) {
            if let Some(free) = shard.f32s.get_mut(class_of(len)) {
                if let Some(buf) = free.pop() {
                    return buf;
                }
            }
        }
        new_f32_storage(len)
    }

    /// Returns an `f32` buffer to the calling thread's shard. Buffers
    /// beyond the largest size class, or arriving at a full class, are
    /// dropped.
    pub fn give_f32(&self, buf: Vec<f32>) {
        self.balance.fetch_sub(1, Ordering::Relaxed);
        if let Some(mut shard) = self.lock_shard(my_shard()) {
            if let Some(free) = shard.f32s.get_mut(class_of(buf.capacity())) {
                if free.len() < PER_CLASS_CAP {
                    if free.capacity() < PER_CLASS_CAP {
                        free.reserve_exact(PER_CLASS_CAP);
                    }
                    free.push(buf);
                }
            }
        }
    }

    /// Checks out a zero-filled `usize` buffer of exactly `len` elements.
    pub fn take_usize(&self, len: usize) -> Vec<usize> {
        self.balance.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.pop_usize(len);
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    fn pop_usize(&self, len: usize) -> Vec<usize> {
        if let Some(mut shard) = self.lock_shard(my_shard()) {
            if let Some(free) = shard.usizes.get_mut(class_of(len)) {
                if let Some(buf) = free.pop() {
                    return buf;
                }
            }
        }
        new_usize_storage(len)
    }

    /// Returns a `usize` buffer to the calling thread's shard.
    pub fn give_usize(&self, buf: Vec<usize>) {
        self.balance.fetch_sub(1, Ordering::Relaxed);
        if let Some(mut shard) = self.lock_shard(my_shard()) {
            if let Some(free) = shard.usizes.get_mut(class_of(buf.capacity())) {
                if free.len() < PER_CLASS_CAP {
                    if free.capacity() < PER_CLASS_CAP {
                        free.reserve_exact(PER_CLASS_CAP);
                    }
                    free.push(buf);
                }
            }
        }
    }

    /// Checks out a zero-filled byte buffer of exactly `len` elements.
    pub fn take_u8(&self, len: usize) -> Vec<u8> {
        self.balance.fetch_add(1, Ordering::Relaxed);
        let mut buf = self.pop_u8(len);
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    fn pop_u8(&self, len: usize) -> Vec<u8> {
        if let Some(mut shard) = self.lock_shard(my_shard()) {
            if let Some(free) = shard.u8s.get_mut(class_of(len)) {
                if let Some(buf) = free.pop() {
                    return buf;
                }
            }
        }
        new_u8_storage(len)
    }

    /// Returns a byte buffer to the calling thread's shard.
    pub fn give_u8(&self, buf: Vec<u8>) {
        self.balance.fetch_sub(1, Ordering::Relaxed);
        if let Some(mut shard) = self.lock_shard(my_shard()) {
            if let Some(free) = shard.u8s.get_mut(class_of(buf.capacity())) {
                if free.len() < PER_CLASS_CAP {
                    if free.capacity() < PER_CLASS_CAP {
                        free.reserve_exact(PER_CLASS_CAP);
                    }
                    free.push(buf);
                }
            }
        }
    }

    /// Wrapping balance of checkouts minus returns across all buffer
    /// types. Balanced code leaves this unchanged; tests use it to prove
    /// no checkout leaks across a `catch_unwind` boundary.
    pub fn outstanding(&self) -> u64 {
        self.balance.load(Ordering::Relaxed)
    }
}

/// RAII guard over a pooled `f32` buffer: derefs to `[f32]` and returns
/// the buffer to the pool on drop — including during unwinding, so a
/// panicking job leaks nothing and poisons nothing.
pub struct PoolBuf {
    data: Vec<f32>,
}

impl PoolBuf {
    /// Consumes the guard, keeping the buffer (the checkout stays
    /// outstanding until the caller hands the buffer back with
    /// [`give_f32_buf`]).
    pub fn into_vec(mut self) -> Vec<f32> {
        let data = std::mem::take(&mut self.data);
        std::mem::forget(self);
        data
    }
}

impl Deref for PoolBuf {
    type Target = [f32];
    fn deref(&self) -> &[f32] {
        &self.data
    }
}

impl DerefMut for PoolBuf {
    fn deref_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }
}

impl Drop for PoolBuf {
    fn drop(&mut self) {
        global().give_f32(std::mem::take(&mut self.data));
    }
}

/// Checks out a zero-filled RAII buffer of `len` elements from the
/// global pool.
pub fn checkout(len: usize) -> PoolBuf {
    PoolBuf { data: global().take_f32(len) }
}

/// Checks out a zero-filled `f32` buffer from the global pool.
pub fn take_f32_buf(len: usize) -> Vec<f32> {
    global().take_f32(len)
}

/// Returns an `f32` buffer to the global pool.
pub fn give_f32_buf(buf: Vec<f32>) {
    global().give_f32(buf);
}

/// Checks out a zero-filled `usize` buffer from the global pool.
pub fn take_usize_buf(len: usize) -> Vec<usize> {
    global().take_usize(len)
}

/// Returns a `usize` buffer to the global pool.
pub fn give_usize_buf(buf: Vec<usize>) {
    global().give_usize(buf);
}

/// Checks out a zero-filled byte buffer from the global pool.
pub fn take_u8_buf(len: usize) -> Vec<u8> {
    global().take_u8(len)
}

/// Returns a byte buffer to the global pool.
pub fn give_u8_buf(buf: Vec<u8>) {
    global().give_u8(buf);
}

/// A zero-filled tensor of `shape` whose data and shape buffers both come
/// from the global pool — the pooled equivalent of `Tensor::zeros`.
pub fn pooled_zeros(shape: &[usize]) -> Tensor {
    let pool = global();
    let mut len = 1usize;
    for &d in shape {
        len = len.saturating_mul(d);
    }
    let data = pool.take_f32(len);
    let mut dims = pool.take_usize(shape.len());
    dims.copy_from_slice(shape);
    from_parts(data, dims)
}

/// A zero-filled pooled tensor with the same shape as `t`.
pub fn pooled_like(t: &Tensor) -> Tensor {
    pooled_zeros(t.shape())
}

/// Recycles a tensor: both its data and shape buffers go back to the
/// pool. Works for any tensor, pooled or not.
pub fn recycle(t: Tensor) {
    let (data, dims) = t.into_parts();
    let pool = global();
    pool.give_f32(data);
    pool.give_usize(dims);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_of_covers_boundaries() {
        assert_eq!(class_of(0), 0);
        assert_eq!(class_of(1), 0);
        assert_eq!(class_of(2), 1);
        assert_eq!(class_of(3), 2);
        assert_eq!(class_of(4), 2);
        assert_eq!(class_of(5), 3);
        assert_eq!(class_of(1024), 10);
    }

    #[test]
    fn checkout_is_zero_filled_even_after_dirty_return() {
        let pool = global();
        let mut buf = pool.take_f32(16);
        for v in &mut buf {
            *v = 7.25;
        }
        pool.give_f32(buf);
        // Same thread, same shard, same class: we get the dirty buffer
        // back, and it must come back zeroed.
        let again = pool.take_f32(16);
        assert_eq!(again.len(), 16);
        assert!(again.iter().all(|&v| v == 0.0));
        pool.give_f32(again);
    }

    #[test]
    fn different_lengths_share_a_class_and_stay_exact() {
        let pool = global();
        let a = pool.take_f32(100);
        pool.give_f32(a);
        let b = pool.take_f32(120); // same class (128), longer request
        assert_eq!(b.len(), 120);
        assert!(b.iter().all(|&v| v == 0.0));
        pool.give_f32(b);
    }

    #[test]
    fn outstanding_tracks_balance() {
        let pool = global();
        let before = pool.outstanding();
        let a = pool.take_f32(8);
        let b = pool.take_usize(4);
        assert_eq!(pool.outstanding(), before.wrapping_add(2));
        pool.give_f32(a);
        pool.give_usize(b);
        assert_eq!(pool.outstanding(), before);
    }

    #[test]
    fn pooled_zeros_matches_tensor_zeros() {
        let p = pooled_zeros(&[3, 4]);
        let z = Tensor::zeros(&[3, 4]);
        assert_eq!(p, z);
        recycle(p);
    }

    #[test]
    fn recycle_then_pooled_like_reuses_capacity() {
        let t = pooled_zeros(&[8, 8]);
        let cap_probe = pooled_like(&t);
        recycle(t);
        recycle(cap_probe);
        let u = pooled_zeros(&[8, 8]);
        assert_eq!(u.len(), 64);
        assert!(u.data().iter().all(|&v| v == 0.0));
        recycle(u);
    }

    #[test]
    fn poolbuf_returns_on_drop_and_under_unwind() {
        let pool = global();
        let before = pool.outstanding();
        {
            let mut guard = checkout(32);
            guard.fill(3.0);
        }
        assert_eq!(pool.outstanding(), before);
        let result = std::panic::catch_unwind(|| {
            let _guard = checkout(32);
            panic!("injected");
        });
        assert!(result.is_err());
        assert_eq!(pool.outstanding(), before, "unwind must return the buffer");
        // The pool must still hand out clean buffers afterwards.
        let clean = pool.take_f32(32);
        assert!(clean.iter().all(|&v| v == 0.0));
        pool.give_f32(clean);
    }

    #[test]
    fn oversized_returns_are_dropped_not_hoarded() {
        let pool = global();
        // Fill a class beyond its cap; the pool must not grow unboundedly
        // (we can only observe that gives still balance and takes work).
        let before = pool.outstanding();
        let mut held = Vec::with_capacity(PER_CLASS_CAP + 3);
        for _ in 0..PER_CLASS_CAP + 3 {
            held.push(pool.take_f32(64));
        }
        for buf in held {
            pool.give_f32(buf);
        }
        assert_eq!(pool.outstanding(), before);
    }
}
