//! # fedsu-tensor
//!
//! A deliberately small, dependency-light CPU tensor library backing the
//! FedSU reproduction. It provides exactly what the neural-network substrate
//! (`fedsu-nn`) needs: owned `f32` n-d arrays, elementwise arithmetic,
//! reductions, 2-D matrix multiplication, im2col-based convolution helpers,
//! and Kaiming/Xavier initializers.
//!
//! The library favours explicitness over cleverness: every operation
//! validates shapes and returns a [`TensorError`] on mismatch (or provides a
//! `_unchecked`-free panicking convenience documented as such).
//!
//! ```
//! use fedsu_tensor::Tensor;
//!
//! # fn main() -> Result<(), fedsu_tensor::TensorError> {
//! let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2])?;
//! let b = Tensor::full(&[2, 2], 0.5);
//! let c = a.add(&b)?;
//! assert_eq!(c.data(), &[1.5, 2.5, 3.5, 4.5]);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod alloc_stats;
mod conv;
mod error;
mod init;
pub mod invariant;
mod matmul;
pub mod par;
pub mod pool;
pub mod simd;
mod stats;
mod tensor;

pub use conv::{col2im, col2im_into, im2col, im2col_into, ConvDims};
pub use error::TensorError;
pub use init::{kaiming_uniform, xavier_uniform};
pub use matmul::{
    matmul, matmul_into, matmul_transpose_a, matmul_transpose_a_into, matmul_transpose_b,
    matmul_transpose_b_into, reference,
};
pub use par::{kernel_threads, kernel_threads_setting, set_kernel_threads};
pub use simd::{hardware_simd_level, set_simd_level, simd_level, SimdLevel};
pub use pool::{BufferPool, PoolBuf};
pub use stats::{dot, l2_norm, max_abs};
pub use tensor::Tensor;

/// Result alias used across the crate.
pub type Result<T> = std::result::Result<T, TensorError>;
