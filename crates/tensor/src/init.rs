//! Weight initializers.
//!
//! Both initializers return tensors whose entries are drawn uniformly from
//! `[-bound, bound]` with the bound chosen per the standard schemes:
//! Kaiming (He) for ReLU networks and Xavier (Glorot) for linear/softmax
//! layers.

use crate::Tensor;
use rand::Rng;

/// Kaiming-uniform initialization: `bound = sqrt(6 / fan_in)`.
///
/// `fan_in` is the number of input connections per output unit (for a conv
/// layer, `in_channels * kernel * kernel`).
///
/// # Panics
///
/// Panics if `fan_in == 0`.
pub fn kaiming_uniform<R: Rng + ?Sized>(shape: &[usize], fan_in: usize, rng: &mut R) -> Tensor {
    assert!(fan_in > 0, "fan_in must be positive");
    let bound = (6.0f32 / fan_in as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

/// Xavier-uniform initialization: `bound = sqrt(6 / (fan_in + fan_out))`.
///
/// # Panics
///
/// Panics if `fan_in + fan_out == 0`.
pub fn xavier_uniform<R: Rng + ?Sized>(
    shape: &[usize],
    fan_in: usize,
    fan_out: usize,
    rng: &mut R,
) -> Tensor {
    assert!(fan_in + fan_out > 0, "fan_in + fan_out must be positive");
    let bound = (6.0f32 / (fan_in + fan_out) as f32).sqrt();
    Tensor::rand_uniform(shape, -bound, bound, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn kaiming_bound_respected() {
        let mut rng = StdRng::seed_from_u64(1);
        let fan_in = 64;
        let bound = (6.0f32 / fan_in as f32).sqrt();
        let t = kaiming_uniform(&[32, 64], fan_in, &mut rng);
        assert!(t.data().iter().all(|&v| v.abs() <= bound));
        // Sanity: values are not all tiny (spread over the range).
        assert!(t.data().iter().any(|&v| v.abs() > bound * 0.5));
    }

    #[test]
    fn xavier_bound_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let t = xavier_uniform(&[10, 20], 20, 10, &mut rng);
        let bound = (6.0f32 / 30.0).sqrt();
        assert!(t.data().iter().all(|&v| v.abs() <= bound));
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        let ta = kaiming_uniform(&[8, 8], 8, &mut a);
        let tb = kaiming_uniform(&[8, 8], 8, &mut b);
        assert_eq!(ta.data(), tb.data());
    }
}
