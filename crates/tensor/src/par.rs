//! Persistent worker pool and kernel thread-count control.
//!
//! The matmul kernels in this crate can split their output rows across a
//! process-wide pool of worker threads. The pool is spawned once, on first
//! parallel dispatch, and reused for every subsequent kernel call — no
//! per-call thread spawning, no dependencies beyond `std`.
//!
//! ## Determinism contract
//!
//! Parallel dispatch partitions *output rows*: every output element is
//! computed by exactly one task, with exactly the same accumulation order as
//! the serial kernel. Results are therefore bit-identical at every thread
//! count, so the setting below is a pure performance knob — it can never
//! change what an experiment computes.
//!
//! ## Thread-count policy
//!
//! [`set_kernel_threads`] installs the policy (`0` = auto, `1` = serial,
//! `n` = split across up to `n` tasks). When nothing has been set
//! explicitly, the `FEDSU_KERNEL_THREADS` environment variable is consulted
//! once, on first use. The federated runtime composes this with its own
//! client-level parallelism: `fedsu-fl` forces the kernel setting to `1`
//! while it is already training clients on separate threads, so the two
//! layers never oversubscribe the machine.
//!
//! ## Failure policy
//!
//! A panicking job must not hang or poison the pool: workers run jobs under
//! `catch_unwind`, and [`run_chunks`] reports lost chunks back to the caller
//! as `None` so the dispatching kernel can recompute them inline. A degraded
//! pool can cost throughput, never correctness.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::channel;
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A pool job: computes one output chunk and returns it with its index.
pub(crate) type ChunkJob = Box<dyn FnOnce() -> (usize, Vec<f32>) + Send + 'static>;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Sentinel meaning "no explicit setting yet": the environment is consulted
/// on first use.
const UNSET: usize = usize::MAX;

/// Upper bound on both the worker count and the thread setting; far above
/// any sensible CPU count, it only exists to keep the partition arithmetic
/// comfortable.
const MAX_THREADS: usize = 256;

/// Workers spawned into the persistent pool (bounded by the hardware).
const MAX_WORKERS: usize = 16;

static SETTING: AtomicUsize = AtomicUsize::new(UNSET);

/// The dispatch queue the pool shares with its workers: a plain deque under
/// a mutex, with a condvar to park idle workers. Unlike the previous
/// mpsc-under-mutex design, no guard is ever held across a blocking channel
/// operation — workers release the queue lock while parked (`Condvar::wait`
/// does so atomically), and dispatchers enqueue fully-built jobs under a
/// brief lock and notify after releasing it.
struct JobQueue {
    queue: Mutex<VecDeque<Job>>,
    ready: Condvar,
}

struct Pool {
    shared: Arc<JobQueue>,
    workers: usize,
}

static POOL: OnceLock<Pool> = OnceLock::new();

fn hardware_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

/// Parses a `FEDSU_KERNEL_THREADS` value; anything unparsable means auto.
fn resolve_env(value: Option<&str>) -> usize {
    value.and_then(|v| v.trim().parse::<usize>().ok()).unwrap_or(0).min(MAX_THREADS)
}

fn setting() -> usize {
    let raw = SETTING.load(Ordering::SeqCst);
    if raw != UNSET {
        return raw;
    }
    let from_env = resolve_env(std::env::var("FEDSU_KERNEL_THREADS").ok().as_deref());
    // First resolution wins; racing threads agree because the environment
    // cannot change between their reads.
    let _ = SETTING.compare_exchange(UNSET, from_env, Ordering::SeqCst, Ordering::SeqCst);
    SETTING.load(Ordering::SeqCst)
}

/// Installs the kernel thread-count policy: `0` = auto (one task per
/// hardware thread), `1` = serial, `n` = split across up to `n` tasks.
///
/// Because parallel kernels are bit-identical to serial ones, changing this
/// at any point is always safe — it affects speed only.
pub fn set_kernel_threads(n: usize) {
    SETTING.store(n.min(MAX_THREADS), Ordering::SeqCst);
}

/// The raw configured policy (`0` = auto), after environment resolution.
/// Used by callers that need to save and restore the setting.
pub fn kernel_threads_setting() -> usize {
    setting()
}

/// The effective number of kernel-level tasks a parallel dispatch will use.
/// Resolves `0` (auto) to the hardware thread count, capped at the pool
/// size.
pub fn kernel_threads() -> usize {
    match setting() {
        0 => hardware_threads().min(MAX_WORKERS).max(1),
        n => n,
    }
}

fn worker_loop(idx: usize, shared: &Arc<JobQueue>) {
    // Each worker owns a private buffer-pool shard: anything it checks out
    // or recycles stays thread-local, so kernels never contend on a shard.
    crate::pool::pin_shard(idx);
    loop {
        let job = {
            let mut guard = match shared.queue.lock() {
                Ok(guard) => guard,
                Err(poisoned) => poisoned.into_inner(),
            };
            loop {
                if let Some(job) = guard.pop_front() {
                    break job;
                }
                // Parking releases the queue lock atomically; a spurious
                // wake-up just re-checks the deque.
                guard = match shared.ready.wait(guard) {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
            }
        };
        // A panicking job must not take the worker down with it; the
        // dispatcher notices the missing chunk and recomputes it inline.
        drop(catch_unwind(AssertUnwindSafe(job)));
    }
}

/// One-time pool construction (runs on first parallel dispatch).
fn new_worker_pool() -> Pool {
    let target = hardware_threads().min(MAX_WORKERS).max(1);
    let shared = Arc::new(JobQueue {
        queue: Mutex::new(VecDeque::new()),
        ready: Condvar::new(),
    });
    let mut spawned = 0usize;
    for idx in 0..target {
        let shared = Arc::clone(&shared);
        let builder = std::thread::Builder::new().name(format!("fedsu-kernel-{idx}"));
        if builder.spawn(move || worker_loop(idx, &shared)).is_ok() {
            spawned += 1;
        }
    }
    Pool { shared, workers: spawned }
}

fn pool() -> &'static Pool {
    POOL.get_or_init(new_worker_pool)
}

/// Runs `jobs` on the worker pool, collecting each chunk under the index the
/// job reports. Chunks whose job was lost (worker panic, failed scheduling)
/// come back as `None`; the caller recomputes those inline, so pool failures
/// degrade throughput, never correctness. Jobs must not dispatch nested pool
/// work (the kernels never do), or a full pool could deadlock on itself.
pub(crate) fn run_chunks(jobs: Vec<ChunkJob>) -> Vec<Option<Vec<f32>>> {
    let mut slots: Vec<Option<Vec<f32>>> = Vec::new();
    slots.resize_with(jobs.len(), || None);
    if jobs.is_empty() {
        return slots;
    }
    let pool = pool();
    if pool.workers == 0 {
        // No worker could ever be spawned: run everything inline.
        for job in jobs {
            let (idx, chunk) = job();
            if let Some(slot) = slots.get_mut(idx) {
                *slot = Some(chunk);
            }
        }
        return slots;
    }
    let (tx, rx) = channel::<(usize, Vec<f32>)>();
    // Wrap every job before touching the queue: the lock below protects only
    // the `push`es, and the result sends happen on worker threads with no
    // dispatcher lock in sight.
    let wrapped: Vec<Job> = jobs
        .into_iter()
        .map(|job| {
            let tx = tx.clone();
            let wrapped: Job = Box::new(move || {
                let (idx, chunk) = job();
                // A send can only fail if the dispatcher stopped listening;
                // the chunk then stays `None` and the caller recomputes it.
                let _ = tx.send((idx, chunk));
            });
            wrapped
        })
        .collect();
    {
        let mut queue = match pool.shared.queue.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        };
        queue.extend(wrapped);
    }
    // Notify with the lock released so woken workers can take it immediately.
    pool.shared.ready.notify_all();
    // Once the local sender is dropped, `recv` ends as soon as every job has
    // either reported or been dropped by a panicking worker — no hangs.
    drop(tx);
    while let Ok((idx, chunk)) = rx.recv() {
        if let Some(slot) = slots.get_mut(idx) {
            *slot = Some(chunk);
        }
    }
    slots
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn env_resolution_rules() {
        assert_eq!(resolve_env(None), 0);
        assert_eq!(resolve_env(Some("")), 0);
        assert_eq!(resolve_env(Some("garbage")), 0);
        assert_eq!(resolve_env(Some("4")), 4);
        assert_eq!(resolve_env(Some(" 8 ")), 8);
        assert_eq!(resolve_env(Some("999999")), MAX_THREADS);
    }

    #[test]
    fn setting_roundtrip_and_effective_count() {
        let prior = kernel_threads_setting();
        set_kernel_threads(3);
        assert_eq!(kernel_threads_setting(), 3);
        assert_eq!(kernel_threads(), 3);
        set_kernel_threads(0);
        assert!(kernel_threads() >= 1);
        set_kernel_threads(prior);
    }

    #[test]
    fn run_chunks_returns_every_chunk() {
        let jobs: Vec<ChunkJob> = (0..8)
            .map(|idx| {
                let job: ChunkJob = Box::new(move || (idx, vec![idx as f32; 3]));
                job
            })
            .collect();
        let out = run_chunks(jobs);
        assert_eq!(out.len(), 8);
        for (idx, slot) in out.into_iter().enumerate() {
            assert_eq!(slot, Some(vec![idx as f32; 3]));
        }
    }

    #[test]
    fn run_chunks_survives_a_panicking_job() {
        let jobs: Vec<ChunkJob> = (0..3)
            .map(|idx| {
                let job: ChunkJob = Box::new(move || {
                    assert!(idx != 1, "injected job failure");
                    (idx, vec![1.0])
                });
                job
            })
            .collect();
        let out = run_chunks(jobs);
        assert_eq!(out.len(), 3);
        assert!(out.first().is_some_and(Option::is_some));
        assert!(out.get(1).is_some_and(Option::is_none), "lost chunk must surface as None");
        assert!(out.get(2).is_some_and(Option::is_some));
        // The pool must still be serviceable after the panic.
        let jobs: Vec<ChunkJob> = vec![Box::new(|| (0, vec![2.0]))];
        assert_eq!(run_chunks(jobs), vec![Some(vec![2.0])]);
    }

    #[test]
    fn oversubscribed_dispatch_wakes_parked_workers_every_round() {
        // Regression for the mpsc-under-mutex dispatch this queue replaced:
        // a worker could park inside `recv()` while holding the shared
        // receiver lock, so every wake-up serialized through that mutex and
        // a lost notification could wedge dispatch. Repeated rounds with
        // more jobs than workers exercise the full park/notify cycle; every
        // chunk must come back on every round.
        for round in 0..32usize {
            let jobs: Vec<ChunkJob> = (0..MAX_WORKERS + 3)
                .map(|idx| {
                    let job: ChunkJob = Box::new(move || (idx, vec![(round * idx) as f32]));
                    job
                })
                .collect();
            let out = run_chunks(jobs);
            assert_eq!(out.len(), MAX_WORKERS + 3);
            for (idx, slot) in out.into_iter().enumerate() {
                assert_eq!(slot, Some(vec![(round * idx) as f32]), "round {round} chunk {idx}");
            }
        }
    }

    #[test]
    fn concurrent_dispatches_do_not_interfere() {
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    let jobs: Vec<ChunkJob> = (0..4)
                        .map(|idx| {
                            let job: ChunkJob = Box::new(move || (idx, vec![idx as f32]));
                            job
                        })
                        .collect();
                    let out = run_chunks(jobs);
                    for (idx, slot) in out.into_iter().enumerate() {
                        assert_eq!(slot, Some(vec![idx as f32]));
                    }
                });
            }
        });
    }
}
