//! Opt-in runtime invariant checks.
//!
//! The FedSU reproduction's claims rest on numeric soundness; this module is
//! the runtime backstop behind the static gates (the `fedsu-xtask` lint pass
//! and the workspace clippy table). Checks are off by default and cost one
//! relaxed atomic load; setting `FEDSU_CHECK_INVARIANTS=1` (or calling
//! [`set_enabled`]) turns every guard in the workspace into a hard panic
//! with a diagnostic naming the violated invariant. CI runs the full test
//! suite once in this mode.
//!
//! Downstream crates gate their own guards on [`enabled`] — sim-time
//! monotonicity and wire-byte conservation in `fedsu-fl`, mask/no-check
//! period consistency in `fedsu-core` — so one switch arms them all.

use std::sync::atomic::{AtomicU8, Ordering};

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// `true` when invariant checking is armed, either via the
/// `FEDSU_CHECK_INVARIANTS` environment variable (`1` or `true`) or a prior
/// [`set_enabled`] call. The environment is consulted once and cached.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => {
            let on = std::env::var("FEDSU_CHECK_INVARIANTS")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces invariant checking on or off, overriding the environment.
///
/// Exists so tests can arm the guards deterministically instead of mutating
/// process-global environment variables under a multithreaded test runner.
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// Verifies that an operation with finite inputs produced a finite output
/// buffer.
///
/// Non-finite *inputs* are deliberately tolerated: fault-injection scenarios
/// feed NaN/Inf through the stack on purpose, and propagating garbage is the
/// caller's story. The invariant guarded here is that the kernels themselves
/// never *manufacture* a non-finite value (overflow in accumulation, bad
/// indexing reading uninitialized memory, and similar).
///
/// # Panics
///
/// Panics when checking is [`enabled`], every input is finite, and `output`
/// contains a NaN or infinity.
pub fn check_op_output(op: &str, inputs: &[&[f32]], output: &[f32]) {
    if !enabled() {
        return;
    }
    if inputs.iter().any(|buf| buf.iter().any(|v| !v.is_finite())) {
        return;
    }
    if let Some(i) = output.iter().position(|v| !v.is_finite()) {
        panic!(
            "invariant violation [finite-kernel]: `{op}` produced non-finite value {} at \
             flat index {i} from finite inputs (set FEDSU_CHECK_INVARIANTS=0 to disable)",
            output[i]
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not three: the switch is process-global, so the phases must
    // run in a fixed order rather than race across test threads.
    #[test]
    fn switch_gates_the_check_and_inputs_excuse_outputs() {
        set_enabled(false);
        // Disabled: a NaN output is ignored.
        check_op_output("noop", &[&[1.0]], &[f32::NAN]);

        set_enabled(true);
        // Armed, but a non-finite input excuses the output (GIGO).
        check_op_output("gigo", &[&[f32::NAN]], &[f32::INFINITY]);
        // Armed with finite inputs and a non-finite output: must panic.
        let violation = std::panic::catch_unwind(|| {
            check_op_output("bad-kernel", &[&[1.0, 2.0]], &[1.0, f32::NAN]);
        });
        set_enabled(false);
        let err = violation.expect_err("finite inputs + NaN output must panic when armed");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "non-string panic payload".to_string());
        assert!(msg.contains("finite-kernel"), "unexpected panic message: {msg}");
        assert!(msg.contains("bad-kernel"), "panic must name the op: {msg}");
    }
}
