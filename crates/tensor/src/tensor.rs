use crate::{Result, TensorError};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An owned, contiguous, row-major `f32` n-dimensional array.
///
/// `Tensor` is the single data container used throughout the FedSU
/// reproduction. Convolutional activations use the `NCHW` layout.
///
/// ```
/// use fedsu_tensor::Tensor;
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Vec<usize>,
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::zeros(&[0])
    }
}

impl Tensor {
    /// Creates a tensor of the given shape filled with zeros.
    pub fn zeros(shape: &[usize]) -> Self {
        let len = shape.iter().product();
        Tensor { data: vec![0.0; len], shape: shape.to_vec() }
    }

    /// Creates a tensor of the given shape filled with ones.
    pub fn ones(shape: &[usize]) -> Self {
        Tensor::full(shape, 1.0)
    }

    /// Creates a tensor of the given shape filled with `value`.
    pub fn full(shape: &[usize], value: f32) -> Self {
        let len = shape.iter().product();
        Tensor { data: vec![value; len], shape: shape.to_vec() }
    }

    /// Creates a tensor from an existing buffer.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if `data.len()` does not equal
    /// the product of `shape`.
    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Result<Self> {
        let expected: usize = shape.iter().product();
        if data.len() != expected {
            return Err(TensorError::LengthMismatch { len: data.len(), shape: shape.to_vec() });
        }
        Ok(Tensor { data, shape: shape.to_vec() })
    }

    /// Creates a rank-1 tensor from a slice.
    pub fn from_slice(data: &[f32]) -> Self {
        Tensor { data: data.to_vec(), shape: vec![data.len()] }
    }

    /// Creates a tensor with entries drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform<R: Rng + ?Sized>(shape: &[usize], lo: f32, hi: f32, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let data = (0..len).map(|_| rng.gen_range(lo..hi)).collect();
        Tensor { data, shape: shape.to_vec() }
    }

    /// Creates a tensor with entries drawn from a standard normal
    /// distribution scaled by `std`, using a Box–Muller transform so only
    /// `rand`'s uniform sampling is required.
    pub fn randn<R: Rng + ?Sized>(shape: &[usize], std: f32, rng: &mut R) -> Self {
        let len: usize = shape.iter().product();
        let mut data = Vec::with_capacity(len);
        while data.len() < len {
            let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
            let u2: f32 = rng.gen_range(0.0..1.0);
            let r = (-2.0 * u1.ln()).sqrt();
            let theta = 2.0 * std::f32::consts::PI * u2;
            data.push(r * theta.cos() * std);
            if data.len() < len {
                data.push(r * theta.sin() * std);
            }
        }
        Tensor { data, shape: shape.to_vec() }
    }

    /// The tensor's shape.
    pub fn shape(&self) -> &[usize] {
        &self.shape
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Rank (number of dimensions).
    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Read-only view of the underlying buffer (row-major).
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Mutable view of the underlying buffer (row-major).
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Consumes the tensor, returning its data and shape buffers so both
    /// allocations can be recycled (see [`crate::pool::recycle`]).
    pub fn into_parts(self) -> (Vec<f32>, Vec<usize>) {
        (self.data, self.shape)
    }

    /// Like [`Tensor::zeros`], but drawing the data and shape buffers
    /// from `pool` instead of the allocator.
    pub fn zeros_in(shape: &[usize], pool: &crate::pool::BufferPool) -> Tensor {
        let mut len = 1usize;
        for &d in shape {
            len = len.saturating_mul(d);
        }
        let data = pool.take_f32(len);
        let mut dims = pool.take_usize(shape.len());
        dims.copy_from_slice(shape);
        Tensor { data, shape: dims }
    }

    /// Wraps a pooled RAII buffer into a tensor, consuming the guard (the
    /// checkout stays outstanding until the tensor is recycled).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] if the buffer's length does
    /// not equal the product of `shape`.
    pub fn from_pool(buf: crate::pool::PoolBuf, shape: &[usize]) -> Result<Tensor> {
        let expected: usize = shape.iter().product();
        if buf.len() != expected {
            return Err(TensorError::new_length_mismatch(buf.len(), shape));
        }
        let mut dims = crate::pool::take_usize_buf(shape.len());
        dims.copy_from_slice(shape);
        Ok(Tensor { data: buf.into_vec(), shape: dims })
    }

    /// Returns the element at a flat (row-major) index.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::IndexOutOfBounds`] when `index >= len`.
    pub fn get(&self, index: usize) -> Result<f32> {
        self.data
            .get(index)
            .copied()
            .ok_or(TensorError::IndexOutOfBounds { index, len: self.data.len() })
    }

    /// Reinterprets the tensor with a new shape of identical element count.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the element counts differ.
    pub fn reshape(&self, shape: &[usize]) -> Result<Tensor> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::new_length_mismatch(self.data.len(), shape));
        }
        Ok(Tensor { data: self.data.clone(), shape: shape.to_vec() })
    }

    /// Consuming reshape: reuses both the data and the shape allocation,
    /// where [`Tensor::reshape`] clones the full buffer. Prefer this when
    /// the caller owns the tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the element counts
    /// differ (the tensor is consumed either way).
    pub fn into_reshaped(self, shape: &[usize]) -> Result<Tensor> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::new_length_mismatch(self.data.len(), shape));
        }
        let Tensor { data, shape: mut dims } = self;
        dims.clear();
        dims.extend_from_slice(shape);
        Ok(Tensor { data, shape: dims })
    }

    /// In-place reshape (no copy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::LengthMismatch`] when the element counts differ.
    pub fn reshape_in_place(&mut self, shape: &[usize]) -> Result<()> {
        let expected: usize = shape.iter().product();
        if expected != self.data.len() {
            return Err(TensorError::LengthMismatch { len: self.data.len(), shape: shape.to_vec() });
        }
        self.shape = shape.to_vec();
        Ok(())
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::new_shape_mismatch(&self.shape, &other.shape, op));
        }
        Ok(())
    }

    /// Elementwise addition.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "add")?;
        let mut out = crate::pool::pooled_like(self);
        for ((o, a), b) in out.data.iter_mut().zip(&self.data).zip(&other.data) {
            *o = a + b;
        }
        Ok(out)
    }

    /// Elementwise subtraction `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "sub")?;
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a - b).collect();
        Ok(Tensor { data, shape: self.shape.clone() })
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.check_same_shape(other, "mul")?;
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Ok(Tensor { data, shape: self.shape.clone() })
    }

    /// In-place `self += other`.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (axpy).
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::ShapeMismatch`] when shapes differ.
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Returns `self * scalar`.
    pub fn scale(&self, scalar: f32) -> Tensor {
        let data = self.data.iter().map(|a| a * scalar).collect();
        Tensor { data, shape: self.shape.clone() }
    }

    /// In-place scalar multiplication.
    pub fn scale_in_place(&mut self, scalar: f32) {
        for a in &mut self.data {
            *a *= scalar;
        }
    }

    /// Fills the tensor with a constant.
    pub fn fill(&mut self, value: f32) {
        for a in &mut self.data {
            *a = value;
        }
    }

    /// Applies a function to every element, returning a new tensor (drawn
    /// from the buffer pool).
    pub fn map<F: Fn(f32) -> f32>(&self, f: F) -> Tensor {
        let mut out = crate::pool::pooled_like(self);
        for (o, &a) in out.data.iter_mut().zip(&self.data) {
            *o = f(a);
        }
        out
    }

    /// Applies a function to every element in place.
    pub fn map_in_place<F: Fn(f32) -> f32>(&mut self, f: F) {
        for a in &mut self.data {
            *a = f(*a);
        }
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0.0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Index of the maximum element (first on ties).
    ///
    /// # Panics
    ///
    /// Panics if the tensor is empty.
    pub fn argmax(&self) -> usize {
        assert!(!self.data.is_empty(), "argmax of empty tensor");
        let mut best = 0;
        for (i, &v) in self.data.iter().enumerate() {
            if v > self.data[best] {
                best = i;
            }
        }
        best
    }

    /// Whether any element is NaN or infinite.
    pub fn has_non_finite(&self) -> bool {
        self.data.iter().any(|v| !v.is_finite())
    }

    /// Row `i` of a rank-2 tensor, as a slice.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 tensors and
    /// [`TensorError::IndexOutOfBounds`] when the row is out of range.
    pub fn row(&self, i: usize) -> Result<&[f32]> {
        if self.shape.len() != 2 {
            return Err(TensorError::RankMismatch { expected: 2, actual: self.shape.len(), op: "row" });
        }
        let (rows, cols) = (self.shape[0], self.shape[1]);
        if i >= rows {
            return Err(TensorError::IndexOutOfBounds { index: i, len: rows });
        }
        Ok(&self.data[i * cols..(i + 1) * cols])
    }
}

/// Crate-internal constructor gluing recycled buffers into a tensor; the
/// caller guarantees `data.len()` equals the product of `shape`.
pub(crate) fn from_parts(data: Vec<f32>, shape: Vec<usize>) -> Tensor {
    debug_assert_eq!(data.len(), shape.iter().product::<usize>());
    Tensor { data, shape }
}

impl From<Vec<f32>> for Tensor {
    fn from(data: Vec<f32>) -> Self {
        let len = data.len();
        Tensor { data, shape: vec![len] }
    }
}

impl AsRef<[f32]> for Tensor {
    fn as_ref(&self) -> &[f32] {
        &self.data
    }
}

impl FromIterator<f32> for Tensor {
    fn from_iter<I: IntoIterator<Item = f32>>(iter: I) -> Self {
        let data: Vec<f32> = iter.into_iter().collect();
        Tensor::from(data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn zeros_ones_full() {
        let z = Tensor::zeros(&[2, 3]);
        assert_eq!(z.len(), 6);
        assert!(z.data().iter().all(|&v| v == 0.0));
        let o = Tensor::ones(&[4]);
        assert!(o.data().iter().all(|&v| v == 1.0));
        let f = Tensor::full(&[2, 2], 7.5);
        assert!(f.data().iter().all(|&v| v == 7.5));
    }

    #[test]
    fn from_vec_validates_length() {
        assert!(Tensor::from_vec(vec![1.0, 2.0], &[3]).is_err());
        assert!(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).is_ok());
    }

    #[test]
    fn elementwise_arithmetic() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0], &[3]).unwrap();
        let b = Tensor::from_vec(vec![4.0, 5.0, 6.0], &[3]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[5.0, 7.0, 9.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[3.0, 3.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[4.0, 10.0, 18.0]);
        assert_eq!(a.scale(2.0).data(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn shape_mismatch_is_an_error() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[3, 2]);
        assert!(matches!(a.add(&b), Err(TensorError::ShapeMismatch { .. })));
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Tensor::from_vec(vec![1.0, 1.0], &[2]).unwrap();
        let g = Tensor::from_vec(vec![2.0, 4.0], &[2]).unwrap();
        a.axpy(-0.5, &g).unwrap();
        assert_eq!(a.data(), &[0.0, -1.0]);
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[4]).unwrap();
        let b = a.reshape(&[2, 2]).unwrap();
        assert_eq!(b.shape(), &[2, 2]);
        assert_eq!(b.data(), a.data());
        assert!(a.reshape(&[3, 2]).is_err());
    }

    #[test]
    fn reductions() {
        let a = Tensor::from_vec(vec![1.0, -2.0, 3.0], &[3]).unwrap();
        assert_eq!(a.sum(), 2.0);
        assert!((a.mean() - 2.0 / 3.0).abs() < 1e-6);
        assert_eq!(a.argmax(), 2);
    }

    #[test]
    fn argmax_takes_first_on_ties() {
        let a = Tensor::from_vec(vec![5.0, 5.0, 1.0], &[3]).unwrap();
        assert_eq!(a.argmax(), 0);
    }

    #[test]
    fn randn_has_reasonable_moments() {
        let mut rng = StdRng::seed_from_u64(42);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.data().iter().map(|v| (v - mean).powi(2)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn rand_uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = Tensor::rand_uniform(&[1000], -0.5, 0.5, &mut rng);
        assert!(t.data().iter().all(|&v| (-0.5..0.5).contains(&v)));
    }

    #[test]
    fn row_access() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        assert_eq!(a.row(1).unwrap(), &[4.0, 5.0, 6.0]);
        assert!(a.row(2).is_err());
        let v = Tensor::from_slice(&[1.0]);
        assert!(v.row(0).is_err());
    }

    #[test]
    fn non_finite_detection() {
        let mut a = Tensor::zeros(&[3]);
        assert!(!a.has_non_finite());
        a.data_mut()[1] = f32::NAN;
        assert!(a.has_non_finite());
    }

    #[test]
    fn map_and_fill() {
        let mut a = Tensor::from_vec(vec![-1.0, 2.0], &[2]).unwrap();
        let relu = a.map(|v| v.max(0.0));
        assert_eq!(relu.data(), &[0.0, 2.0]);
        a.fill(3.0);
        assert_eq!(a.data(), &[3.0, 3.0]);
    }

    #[test]
    fn conversions() {
        let t: Tensor = vec![1.0f32, 2.0].into();
        assert_eq!(t.shape(), &[2]);
        let s: &[f32] = t.as_ref();
        assert_eq!(s, &[1.0, 2.0]);
        let c: Tensor = [1.0f32, 2.0, 3.0].into_iter().collect();
        assert_eq!(c.len(), 3);
        assert_eq!(c.into_vec(), vec![1.0, 2.0, 3.0]);
    }
}

impl Tensor {
    /// Transpose of a rank-2 tensor.
    ///
    /// # Errors
    ///
    /// Returns [`TensorError::RankMismatch`] for non-rank-2 tensors.
    pub fn transpose(&self) -> Result<Tensor> {
        if self.shape.len() != 2 {
            return Err(TensorError::RankMismatch {
                expected: 2,
                actual: self.shape.len(),
                op: "transpose",
            });
        }
        let (rows, cols) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; self.data.len()];
        for r in 0..rows {
            for c in 0..cols {
                out[c * rows + r] = self.data[r * cols + c];
            }
        }
        Ok(Tensor { data: out, shape: vec![cols, rows] })
    }

    /// Clamps every element into `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn clamp(&self, lo: f32, hi: f32) -> Tensor {
        assert!(lo <= hi, "clamp bounds out of order");
        self.map(|v| v.clamp(lo, hi))
    }

    /// Minimum element (`None` for an empty tensor).
    pub fn min(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::min)
    }

    /// Maximum element (`None` for an empty tensor).
    pub fn max(&self) -> Option<f32> {
        self.data.iter().copied().reduce(f32::max)
    }

    /// Euclidean norm of the whole tensor.
    pub fn l2_norm(&self) -> f32 {
        crate::stats::l2_norm(&self.data)
    }
}

#[cfg(test)]
mod extra_op_tests {
    use super::*;

    #[test]
    fn transpose_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[2, 3]).unwrap();
        let t = a.transpose().unwrap();
        assert_eq!(t.shape(), &[3, 2]);
        assert_eq!(t.data(), &[1.0, 4.0, 2.0, 5.0, 3.0, 6.0]);
        // Double transpose is the identity.
        assert_eq!(t.transpose().unwrap(), a);
    }

    #[test]
    fn transpose_requires_rank2() {
        assert!(Tensor::zeros(&[4]).transpose().is_err());
    }

    #[test]
    fn clamp_bounds_values() {
        let a = Tensor::from_slice(&[-2.0, 0.5, 3.0]);
        assert_eq!(a.clamp(-1.0, 1.0).data(), &[-1.0, 0.5, 1.0]);
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn clamp_bad_bounds_panics() {
        Tensor::zeros(&[1]).clamp(1.0, -1.0);
    }

    #[test]
    fn min_max_and_norm() {
        let a = Tensor::from_slice(&[3.0, -4.0]);
        assert_eq!(a.min(), Some(-4.0));
        assert_eq!(a.max(), Some(3.0));
        assert!((a.l2_norm() - 5.0).abs() < 1e-6);
        assert_eq!(Tensor::zeros(&[0]).min(), None);
    }
}
