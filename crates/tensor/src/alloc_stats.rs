//! Opt-in allocation accounting for the steady-state round loop.
//!
//! ROADMAP item 4 wants the round loop allocation-free; the `fedsu-xtask`
//! `hot-alloc` lint maps the allocations statically, and this module is the
//! runtime cross-check that the static map corresponds to real allocator
//! traffic. It has two independent switches:
//!
//! * the **`alloc-stats` cargo feature** compiles in a counting
//!   [`#[global_allocator]`](std::alloc::GlobalAlloc) that forwards to
//!   [`System`](std::alloc::System) and bumps two relaxed atomics per
//!   allocation. Off by default; without it every counter stays at zero and
//!   [`counting_compiled`] reports `false` so tests can skip themselves.
//! * the **`FEDSU_ALLOC_STATS` environment variable** (or [`set_enabled`])
//!   arms per-round *reporting*: the `fedsu-fl` experiment loop marks a round
//!   boundary after each `RoundRecord` and the deltas land in a process-global
//!   log readable via [`rounds`].
//!
//! The allocator itself never consults the environment — reading an
//! environment variable allocates, and doing that inside `alloc` would
//! recurse. Counting is unconditional once compiled in; only the round
//! bookkeeping is gated.

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Mutex;

/// Total allocation calls since process start (feature-gated; else 0).
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Total bytes requested since process start (feature-gated; else 0).
static BYTES: AtomicU64 = AtomicU64::new(0);

const UNINIT: u8 = 0;
const OFF: u8 = 1;
const ON: u8 = 2;

static STATE: AtomicU8 = AtomicU8::new(UNINIT);

/// Per-round log: the snapshot at the last mark plus the recorded deltas.
static ROUND_LOG: Mutex<RoundLog> = Mutex::new(RoundLog { mark: AllocSnapshot { allocs: 0, bytes: 0 }, rounds: Vec::new() });

struct RoundLog {
    mark: AllocSnapshot,
    rounds: Vec<RoundAlloc>,
}

/// `true` when per-round allocation reporting is armed, either via the
/// `FEDSU_ALLOC_STATS` environment variable (`1` or `true`) or a prior
/// [`set_enabled`] call. The environment is consulted once and cached.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        ON => true,
        OFF => false,
        _ => {
            let on = std::env::var("FEDSU_ALLOC_STATS")
                .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
                .unwrap_or(false);
            STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
            on
        }
    }
}

/// Forces per-round reporting on or off, overriding the environment.
///
/// Exists so tests can arm the bookkeeping deterministically instead of
/// mutating process-global environment variables under a multithreaded
/// test runner.
pub fn set_enabled(on: bool) {
    STATE.store(if on { ON } else { OFF }, Ordering::Relaxed);
}

/// `true` when the crate was built with the `alloc-stats` feature, i.e. the
/// counting global allocator is actually installed and [`snapshot`] moves.
/// Tests that assert on allocator traffic should skip when this is `false`.
pub const fn counting_compiled() -> bool {
    cfg!(feature = "alloc-stats")
}

/// A point-in-time reading of the process-wide allocation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocSnapshot {
    /// Allocation calls observed so far (alloc, alloc_zeroed, realloc).
    pub allocs: u64,
    /// Bytes requested by those calls.
    pub bytes: u64,
}

impl AllocSnapshot {
    /// Delta relative to an `earlier` snapshot, saturating at zero so a
    /// misordered pair never wraps.
    pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
        AllocSnapshot {
            allocs: self.allocs.saturating_sub(earlier.allocs),
            bytes: self.bytes.saturating_sub(earlier.bytes),
        }
    }
}

/// Reads the current process-wide counters. Always zero unless the
/// `alloc-stats` feature is enabled (see [`counting_compiled`]).
pub fn snapshot() -> AllocSnapshot {
    AllocSnapshot {
        allocs: ALLOCS.load(Ordering::Relaxed),
        bytes: BYTES.load(Ordering::Relaxed),
    }
}

/// Allocation delta attributed to one experiment round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoundAlloc {
    /// Round index as reported by the experiment loop.
    pub round: usize,
    /// Allocation calls between the two surrounding round marks.
    pub allocs: u64,
    /// Bytes requested between the two surrounding round marks.
    pub bytes: u64,
}

/// Clears the round log and re-bases the mark at the current counters.
///
/// Call once immediately before a run whose rounds should be attributed;
/// `capacity_hint` pre-reserves the log so steady-state marks do not grow it.
pub fn begin_run(capacity_hint: usize) {
    let mut log = ROUND_LOG.lock().unwrap_or_else(|p| p.into_inner());
    log.rounds.clear();
    log.rounds.reserve(capacity_hint);
    log.mark = snapshot();
}

/// Records the allocation delta since the previous mark (or [`begin_run`])
/// as belonging to `round`, re-bases the mark, and returns the delta.
///
/// The log append itself happens *after* the delta is read, so the (at most
/// one, usually zero thanks to the `begin_run` reservation) bookkeeping
/// allocation is charged to the following round, never the reported one.
pub fn mark_round(round: usize) -> RoundAlloc {
    let now = snapshot();
    let mut log = ROUND_LOG.lock().unwrap_or_else(|p| p.into_inner());
    let delta = now.since(&log.mark);
    let rec = RoundAlloc { round, allocs: delta.allocs, bytes: delta.bytes };
    log.rounds.push(rec);
    log.mark = snapshot();
    rec
}

/// Returns a copy of the per-round deltas recorded since [`begin_run`].
pub fn rounds() -> Vec<RoundAlloc> {
    ROUND_LOG.lock().unwrap_or_else(|p| p.into_inner()).rounds.clone()
}

#[cfg(feature = "alloc-stats")]
mod counting {
    use super::{ALLOCS, BYTES, Ordering};
    use std::alloc::{GlobalAlloc, Layout, System};

    /// Panic-free widening of an allocation size for the byte tally (usize
    /// is at most 64 bits on every supported target; saturate if not).
    fn widen(n: usize) -> u64 {
        u64::try_from(n).unwrap_or(u64::MAX)
    }

    /// [`System`] wrapper that tallies every allocation into relaxed atomics.
    struct CountingAllocator;

    // Reviewed opt-out from the workspace `unsafe_code = "deny"` lint:
    // `GlobalAlloc` is an inherently unsafe trait and this impl adds no
    // pointer manipulation of its own — every method forwards verbatim to
    // `System` and only touches two atomics on the side, preserving the
    // safety contract the caller already upholds for `System`.
    #[allow(unsafe_code)]
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(widen(layout.size()), Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(widen(layout.size()), Ordering::Relaxed);
            System.alloc_zeroed(layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            // A grow-or-shrink counts as one fresh allocation of the new
            // size: that is what an arena refactor would have to absorb.
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            BYTES.fetch_add(widen(new_size), Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout);
        }
    }

    #[allow(unsafe_code)] // the attribute expansion references the unsafe trait impl
    #[global_allocator]
    static GLOBAL: CountingAllocator = CountingAllocator;
}

#[cfg(test)]
mod tests {
    use super::*;

    // One test, not several: the round log and the reporting switch are
    // process-global, so phases must run in a fixed order rather than race
    // across test threads (same discipline as `invariant::tests`).
    #[test]
    fn marks_partition_the_counter_stream() {
        set_enabled(true);
        assert!(enabled());
        begin_run(4);

        // Charge some traffic to round 0; with the feature off the counters
        // stay at zero and the delta is the (still valid) zero record.
        let before = snapshot();
        let v: Vec<u64> = (0..1024).collect();
        assert_eq!(v.len(), 1024);
        let after = snapshot();
        let traffic = after.since(&before);

        let r0 = mark_round(0);
        assert_eq!(r0.round, 0);
        assert!(r0.allocs >= traffic.allocs, "round delta must cover observed traffic");
        assert!(r0.bytes >= traffic.bytes);
        if counting_compiled() {
            assert!(traffic.allocs >= 1, "a Vec collect must hit the counting allocator");
            assert!(traffic.bytes >= 1024 * 8);
        } else {
            assert_eq!(traffic, AllocSnapshot::default());
        }

        let r1 = mark_round(1);
        assert_eq!(r1.round, 1);
        let log = rounds();
        assert_eq!(log.len(), 2);
        assert_eq!(log.first().copied(), Some(r0));
        assert_eq!(log.get(1).copied(), Some(r1));

        // since() saturates instead of wrapping on misordered snapshots.
        assert_eq!(before.since(&after), AllocSnapshot::default());

        begin_run(0);
        assert!(rounds().is_empty(), "begin_run clears the log");
        set_enabled(false);
        assert!(!enabled());
    }
}
