//! Integration tests for the buffer pool: pooled scratch must be invisible
//! in kernel results at every thread count, and checkout/return must stay
//! balanced even when a pooled job panics mid-flight.

use fedsu_tensor::{matmul_into, pool, reference, set_kernel_threads};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Mutex;

/// Serializes the tests in this binary: they share the global kernel-thread
/// setting and the global pool's balance counter.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Deterministic pseudo-random data (splitmix64 bits mapped into [-1, 1)).
fn data(n: usize, mut seed: u64) -> Vec<f32> {
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        out.push(((z >> 40) as f32) / ((1u64 << 24) as f32) * 2.0 - 1.0);
    }
    out
}

#[test]
fn pooled_kernel_results_are_bit_identical_across_thread_counts() {
    let _g = gate();
    let (m, k, n) = (33, 47, 29);
    let a = data(m * k, 1);
    let b = data(k * n, 2);
    let expect = reference::matmul(&a, &b, m, k, n);
    for threads in [1usize, 2, 4, 8] {
        set_kernel_threads(threads);
        let mut fresh = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut fresh, m, k, n).unwrap();
        // Two passes: the second one runs on a recycled buffer that held
        // the first pass's results, proving zero-on-checkout works.
        for pass in 0..2 {
            let mut pooled = pool::checkout(m * n);
            matmul_into(&a, &b, &mut pooled, m, k, n).unwrap();
            for (i, (p, e)) in pooled.iter().zip(&expect).enumerate() {
                assert_eq!(
                    p.to_bits(),
                    e.to_bits(),
                    "pooled output diverged: threads {threads} pass {pass} elem {i}"
                );
            }
        }
        for (i, (f, e)) in fresh.iter().zip(&expect).enumerate() {
            assert_eq!(f.to_bits(), e.to_bits(), "fresh output diverged: threads {threads} elem {i}");
        }
    }
    set_kernel_threads(1);
}

#[test]
fn checkouts_balance_even_when_a_pooled_job_panics() {
    let _g = gate();
    let before = pool::global().outstanding();

    // Normal RAII path: the guard returns its buffer on scope exit.
    {
        let mut buf = pool::checkout(1024);
        buf[0] = 1.0;
    }
    assert_eq!(pool::global().outstanding(), before, "RAII return must balance the checkout");

    // Manual take/give pair.
    let raw = pool::take_f32_buf(256);
    pool::give_f32_buf(raw);
    assert_eq!(pool::global().outstanding(), before, "manual give must balance the take");

    // Panicking path: the guard unwinds, the buffer still comes home.
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut buf = pool::checkout(512);
        buf[1] = 2.0;
        panic!("pooled job dies");
    }));
    assert!(result.is_err(), "the job must actually panic");
    assert_eq!(
        pool::global().outstanding(),
        before,
        "a panicking checkout must still return its buffer"
    );

    // The pool survives the unwind unpoisoned and still hands out zeroed
    // buffers (the recycled one carried a stale 2.0 before zeroing).
    let buf = pool::checkout(512);
    assert!(buf.iter().all(|v| v.to_bits() == 0), "checkout must zero recycled storage");
}
