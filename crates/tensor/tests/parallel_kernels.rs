//! Bit-identity contract for the blocked/parallel matmul kernels.
//!
//! Every kernel in `fedsu_tensor` must produce bit-identical output to the
//! naive serial reference at every thread-count setting — that is the
//! determinism contract that makes `--kernel-threads` a pure performance
//! knob. These tests sweep thread counts {1, 2, 4, 8} and shapes from
//! degenerate (empty, 1×k, k×1) through sizes large enough to cross the
//! parallel-dispatch threshold, with ±0.0, NaN, and ±inf planted in the
//! operands.
//!
//! Tests deliberately never assert *which* execution path ran (the global
//! thread setting is process-wide and tests run concurrently); they assert
//! only bit-equality against the reference, which must hold at any setting.

use fedsu_tensor::{
    matmul, matmul_into, matmul_transpose_a_into, matmul_transpose_b_into, reference,
    set_kernel_threads, Tensor,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// (m, k, n) shapes: degenerate, small, awkward odd sizes, and sizes big
/// enough to trigger parallel dispatch (m·k·n above the internal threshold).
const SHAPES: [(usize, usize, usize); 9] = [
    (0, 3, 2),
    (3, 0, 2),
    (3, 4, 0),
    (1, 5, 1),
    (5, 1, 3),
    (3, 4, 5),
    (17, 9, 13),
    (64, 64, 64),
    (33, 129, 65),
];

struct XorShift(u64);

impl XorShift {
    fn next_f32(&mut self) -> f32 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        // Map to roughly [-4, 4) so products stay comfortably finite.
        ((self.0 >> 40) as f32) / (1u32 << 21) as f32 - 4.0
    }
}

/// Deterministic matrix fill with IEEE special values sprinkled in.
fn filled(len: usize, seed: u64, specials: bool) -> Vec<f32> {
    let mut rng = XorShift(seed | 1);
    let mut v: Vec<f32> = (0..len).map(|_| rng.next_f32()).collect();
    if specials {
        for (i, x) in v.iter_mut().enumerate() {
            match i % 97 {
                13 => *x = 0.0,
                29 => *x = -0.0,
                53 => *x = f32::NAN,
                71 => *x = f32::INFINITY,
                89 => *x = f32::NEG_INFINITY,
                _ => {}
            }
        }
    }
    v
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs: {g:?} (bits {:#010x}) vs reference {w:?} (bits {:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

fn sweep(specials: bool) {
    for &(m, k, n) in &SHAPES {
        let a = filled(m * k, 0x9E37_79B9 ^ (m as u64) << 32 | k as u64, specials);
        let b = filled(k * n, 0xDEAD_BEEF ^ (k as u64) << 32 | n as u64, specials);
        let want_nn = reference::matmul(&a, &b, m, k, n);
        // For the transpose kernels, reinterpret the same buffers under the
        // transposed shapes: A:[k,m] for ᵀA, B:[n,k] for ᵀB.
        let a_t = filled(k * m, 0x1234_5678 ^ (m as u64) << 32 | k as u64, specials);
        let want_ta = reference::matmul_transpose_a(&a_t, &b, k, m, n);
        let b_t = filled(n * k, 0x0F0F_F0F0 ^ (n as u64) << 32 | k as u64, specials);
        let want_tb = reference::matmul_transpose_b(&a, &b_t, m, k, n);

        for &threads in &THREAD_COUNTS {
            set_kernel_threads(threads);
            let mut out = vec![f32::NAN; m * n]; // stale garbage must be overwritten
            matmul_into(&a, &b, &mut out, m, k, n).expect("matmul_into");
            assert_bits_eq(&out, &want_nn, &format!("matmul {m}x{k}x{n} t={threads}"));

            let mut out = vec![f32::NAN; m * n];
            matmul_transpose_a_into(&a_t, &b, &mut out, k, m, n).expect("matmul_transpose_a_into");
            assert_bits_eq(&out, &want_ta, &format!("matmul_ta {m}x{k}x{n} t={threads}"));

            let mut out = vec![f32::NAN; m * n];
            matmul_transpose_b_into(&a, &b_t, &mut out, m, k, n).expect("matmul_transpose_b_into");
            assert_bits_eq(&out, &want_tb, &format!("matmul_tb {m}x{k}x{n} t={threads}"));
        }
    }
    set_kernel_threads(0);
}

#[test]
fn kernels_bit_identical_to_reference_across_thread_counts() {
    sweep(false);
}

#[test]
fn kernels_bit_identical_with_ieee_specials_planted() {
    sweep(true);
}

#[test]
fn tensor_wrappers_match_reference_across_thread_counts() {
    let (m, k, n) = (37, 23, 29);
    let a = Tensor::from_vec(filled(m * k, 7, true), &[m, k]).expect("a");
    let b = Tensor::from_vec(filled(k * n, 11, true), &[k, n]).expect("b");
    let want = reference::matmul(a.data(), b.data(), m, k, n);
    for &threads in &THREAD_COUNTS {
        set_kernel_threads(threads);
        let c = matmul(&a, &b).expect("matmul");
        assert_bits_eq(c.data(), &want, &format!("tensor matmul t={threads}"));
    }
    set_kernel_threads(0);
}

#[test]
fn nan_in_b_behind_zero_row_of_a_propagates_at_every_thread_count() {
    // Regression for the removed `av == 0.0` sparsity shortcut: a zero row in
    // A must NOT mask a NaN in B (IEEE 754: 0.0 * NaN = NaN). Use a shape big
    // enough that the parallel path is exercised at multi-thread settings.
    let (m, k, n) = (96, 64, 64);
    let mut a = filled(m * k, 42, false);
    for v in a.iter_mut().take(k) {
        *v = 0.0; // first row of A entirely zero
    }
    let mut b = filled(k * n, 43, false);
    b[0] = f32::NAN; // B[0,0]
    for &threads in &THREAD_COUNTS {
        set_kernel_threads(threads);
        let mut out = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut out, m, k, n).expect("matmul_into");
        assert!(
            out[0].is_nan(),
            "t={threads}: zero row in A masked a NaN in B: got {}",
            out[0]
        );
        // The rest of row 0 multiplies the zero row against finite columns.
        assert!(out[1..n].iter().all(|v| *v == 0.0), "t={threads}: row 0 tail not zero");
    }
    set_kernel_threads(0);
}

#[test]
fn signed_zero_semantics_match_reference() {
    // (-0.0) * x accumulated from +0.0 keeps IEEE signed-zero behaviour
    // identical between reference and blocked/parallel kernels.
    let (m, k, n) = (4, 3, 4);
    let a = vec![-0.0f32; m * k];
    let b = filled(k * n, 99, false);
    let want = reference::matmul(&a, &b, m, k, n);
    for &threads in &THREAD_COUNTS {
        set_kernel_threads(threads);
        let mut out = vec![f32::NAN; m * n];
        matmul_into(&a, &b, &mut out, m, k, n).expect("matmul_into");
        assert_bits_eq(&out, &want, &format!("signed zero t={threads}"));
    }
    set_kernel_threads(0);
}
