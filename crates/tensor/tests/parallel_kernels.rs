//! Bit-identity contract for the blocked/parallel matmul kernels.
//!
//! Every kernel in `fedsu_tensor` must produce bit-identical output to the
//! naive serial reference at every thread-count setting — that is the
//! determinism contract that makes `--kernel-threads` a pure performance
//! knob. These tests sweep thread counts {1, 2, 4, 8} and shapes from
//! degenerate (empty, 1×k, k×1) through sizes large enough to cross the
//! parallel-dispatch threshold, with ±0.0, NaN, and ±inf planted in the
//! operands.
//!
//! Tests deliberately never assert *which* execution path ran (the global
//! thread and SIMD-level settings are process-wide and tests run
//! concurrently); they assert only bit-equality, which must hold at any
//! setting.
//!
//! Two comparison strengths (DESIGN.md §10.1):
//!
//! * **strict** — kernel vs kernel across SIMD levels and thread counts:
//!   every bit, including NaN payloads, must match, because every path
//!   routes each element's accumulation chain through the same compiled
//!   primitives.
//! * **modulo NaN payload** — kernel vs the independently-compiled naive
//!   `reference` loops: when an add meets *two* NaN operands with distinct
//!   payloads (a planted NaN and an `inf·0` indefinite, say), IEEE 754
//!   leaves the surviving payload to the implementation and LLVM picks the
//!   operand order per compiled loop, so payload equality across separately
//!   compiled loops is not a meaningful contract. NaN-ness itself still is.

use fedsu_tensor::{
    col2im_into, hardware_simd_level, im2col_into, matmul, matmul_into, matmul_transpose_a_into,
    matmul_transpose_b_into, reference, set_kernel_threads, set_simd_level, simd, simd_level,
    ConvDims, SimdLevel, Tensor,
};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// (m, k, n) shapes: degenerate, small, awkward odd sizes, and sizes big
/// enough to trigger parallel dispatch (m·k·n above the internal threshold).
const SHAPES: [(usize, usize, usize); 9] = [
    (0, 3, 2),
    (3, 0, 2),
    (3, 4, 0),
    (1, 5, 1),
    (5, 1, 3),
    (3, 4, 5),
    (17, 9, 13),
    (64, 64, 64),
    (33, 129, 65),
];

struct XorShift(u64);

impl XorShift {
    fn next_f32(&mut self) -> f32 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        // Map to roughly [-4, 4) so products stay comfortably finite.
        ((self.0 >> 40) as f32) / (1u32 << 21) as f32 - 4.0
    }
}

/// Deterministic matrix fill with IEEE special values sprinkled in.
fn filled(len: usize, seed: u64, specials: bool) -> Vec<f32> {
    let mut rng = XorShift(seed | 1);
    let mut v: Vec<f32> = (0..len).map(|_| rng.next_f32()).collect();
    if specials {
        for (i, x) in v.iter_mut().enumerate() {
            match i % 97 {
                13 => *x = 0.0,
                29 => *x = -0.0,
                53 => *x = f32::NAN,
                71 => *x = f32::INFINITY,
                89 => *x = f32::NEG_INFINITY,
                _ => {}
            }
        }
    }
    v
}

fn assert_bits_eq(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs: {g:?} (bits {:#010x}) vs reference {w:?} (bits {:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

/// Bit equality modulo NaN payload: any NaN matches any NaN. Used only
/// against the separately-compiled naive reference, where double-NaN adds
/// have implementation-chosen payloads (see module docs).
fn assert_bits_eq_mod_nan(got: &[f32], want: &[f32], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        if g.is_nan() && w.is_nan() {
            continue;
        }
        assert_eq!(
            g.to_bits(),
            w.to_bits(),
            "{what}: element {i} differs: {g:?} (bits {:#010x}) vs reference {w:?} (bits {:#010x})",
            g.to_bits(),
            w.to_bits()
        );
    }
}

fn sweep(specials: bool) {
    for &(m, k, n) in &SHAPES {
        let a = filled(m * k, 0x9E37_79B9 ^ (m as u64) << 32 | k as u64, specials);
        let b = filled(k * n, 0xDEAD_BEEF ^ (k as u64) << 32 | n as u64, specials);
        let want_nn = reference::matmul(&a, &b, m, k, n);
        // For the transpose kernels, reinterpret the same buffers under the
        // transposed shapes: A:[k,m] for ᵀA, B:[n,k] for ᵀB.
        let a_t = filled(k * m, 0x1234_5678 ^ (m as u64) << 32 | k as u64, specials);
        let want_ta = reference::matmul_transpose_a(&a_t, &b, k, m, n);
        let b_t = filled(n * k, 0x0F0F_F0F0 ^ (n as u64) << 32 | k as u64, specials);
        let want_tb = reference::matmul_transpose_b(&a, &b_t, m, k, n);

        for &threads in &THREAD_COUNTS {
            set_kernel_threads(threads);
            let mut out = vec![f32::NAN; m * n]; // stale garbage must be overwritten
            matmul_into(&a, &b, &mut out, m, k, n).expect("matmul_into");
            assert_bits_eq_mod_nan(&out, &want_nn, &format!("matmul {m}x{k}x{n} t={threads}"));

            let mut out = vec![f32::NAN; m * n];
            matmul_transpose_a_into(&a_t, &b, &mut out, k, m, n).expect("matmul_transpose_a_into");
            assert_bits_eq_mod_nan(&out, &want_ta, &format!("matmul_ta {m}x{k}x{n} t={threads}"));

            let mut out = vec![f32::NAN; m * n];
            matmul_transpose_b_into(&a, &b_t, &mut out, m, k, n).expect("matmul_transpose_b_into");
            assert_bits_eq_mod_nan(&out, &want_tb, &format!("matmul_tb {m}x{k}x{n} t={threads}"));
        }
    }
    set_kernel_threads(0);
}

#[test]
fn kernels_bit_identical_to_reference_across_thread_counts() {
    sweep(false);
}

#[test]
fn kernels_bit_identical_with_ieee_specials_planted() {
    sweep(true);
}

#[test]
fn tensor_wrappers_match_reference_across_thread_counts() {
    let (m, k, n) = (37, 23, 29);
    let a = Tensor::from_vec(filled(m * k, 7, true), &[m, k]).expect("a");
    let b = Tensor::from_vec(filled(k * n, 11, true), &[k, n]).expect("b");
    let want = reference::matmul(a.data(), b.data(), m, k, n);
    for &threads in &THREAD_COUNTS {
        set_kernel_threads(threads);
        let c = matmul(&a, &b).expect("matmul");
        assert_bits_eq_mod_nan(c.data(), &want, &format!("tensor matmul t={threads}"));
    }
    set_kernel_threads(0);
}

#[test]
fn nan_in_b_behind_zero_row_of_a_propagates_at_every_thread_count() {
    // Regression for the removed `av == 0.0` sparsity shortcut: a zero row in
    // A must NOT mask a NaN in B (IEEE 754: 0.0 * NaN = NaN). Use a shape big
    // enough that the parallel path is exercised at multi-thread settings.
    let (m, k, n) = (96, 64, 64);
    let mut a = filled(m * k, 42, false);
    for v in a.iter_mut().take(k) {
        *v = 0.0; // first row of A entirely zero
    }
    let mut b = filled(k * n, 43, false);
    b[0] = f32::NAN; // B[0,0]
    for &threads in &THREAD_COUNTS {
        set_kernel_threads(threads);
        let mut out = vec![0.0f32; m * n];
        matmul_into(&a, &b, &mut out, m, k, n).expect("matmul_into");
        assert!(
            out[0].is_nan(),
            "t={threads}: zero row in A masked a NaN in B: got {}",
            out[0]
        );
        // The rest of row 0 multiplies the zero row against finite columns.
        assert!(out[1..n].iter().all(|v| *v == 0.0), "t={threads}: row 0 tail not zero");
    }
    set_kernel_threads(0);
}

/// Every SIMD level the running hardware can execute, scalar first.
fn supported_levels() -> Vec<SimdLevel> {
    let hw = hardware_simd_level();
    [SimdLevel::Scalar, SimdLevel::Sse2, SimdLevel::Avx2]
        .into_iter()
        .filter(|&l| l <= hw)
        .collect()
}

/// Value correctness at every SIMD level: the full shape sweep against the
/// naive reference (modulo NaN payload), repeated with each level forced.
#[test]
fn reference_sweep_holds_at_every_simd_level() {
    let prior = simd_level();
    for level in supported_levels() {
        set_simd_level(level);
        sweep(true);
        sweep(false);
    }
    set_simd_level(prior);
}

/// The tentpole contract, strict form: at each SIMD level, every thread
/// count is bit-for-bit identical — NaN payloads included — to that level's
/// serial run, because threads partition output rows and never split an
/// element's accumulation chain. Across levels the comparison is modulo NaN
/// payload: a double-NaN add resolves to whichever operand's payload the
/// level's compiled primitive propagates, which is deterministic per level
/// but not portable between them (DESIGN.md §10.1).
#[test]
fn kernels_bit_identical_across_simd_levels_and_thread_counts() {
    let prior = simd_level();
    for &(m, k, n) in &SHAPES {
        let a = filled(m * k, 0x9E37_79B9 ^ (m as u64) << 32 | k as u64, true);
        let b = filled(k * n, 0xDEAD_BEEF ^ (k as u64) << 32 | n as u64, true);
        let a_t = filled(k * m, 0x1234_5678 ^ (m as u64) << 32 | k as u64, true);
        let b_t = filled(n * k, 0x0F0F_F0F0 ^ (n as u64) << 32 | k as u64, true);

        // Cross-level baseline: scalar level, serial.
        set_simd_level(SimdLevel::Scalar);
        set_kernel_threads(1);
        let mut scalar_nn = vec![f32::NAN; m * n];
        matmul_into(&a, &b, &mut scalar_nn, m, k, n).expect("scalar matmul");
        let mut scalar_ta = vec![f32::NAN; m * n];
        matmul_transpose_a_into(&a_t, &b, &mut scalar_ta, k, m, n).expect("scalar ta");
        let mut scalar_tb = vec![f32::NAN; m * n];
        matmul_transpose_b_into(&a, &b_t, &mut scalar_tb, m, k, n).expect("scalar tb");

        for level in supported_levels() {
            // Per-level baseline: this level, serial.
            set_simd_level(level);
            set_kernel_threads(1);
            let mut want_nn = vec![f32::NAN; m * n];
            matmul_into(&a, &b, &mut want_nn, m, k, n).expect("baseline matmul");
            let mut want_ta = vec![f32::NAN; m * n];
            matmul_transpose_a_into(&a_t, &b, &mut want_ta, k, m, n).expect("baseline ta");
            let mut want_tb = vec![f32::NAN; m * n];
            matmul_transpose_b_into(&a, &b_t, &mut want_tb, m, k, n).expect("baseline tb");

            let lvl = format!("{m}x{k}x{n} {level:?}");
            assert_bits_eq_mod_nan(&want_nn, &scalar_nn, &format!("level nn {lvl}"));
            assert_bits_eq_mod_nan(&want_ta, &scalar_ta, &format!("level ta {lvl}"));
            assert_bits_eq_mod_nan(&want_tb, &scalar_tb, &format!("level tb {lvl}"));

            for &threads in &THREAD_COUNTS {
                set_kernel_threads(threads);
                let mut out = vec![f32::NAN; m * n];
                matmul_into(&a, &b, &mut out, m, k, n).expect("matmul_into");
                assert_bits_eq(&out, &want_nn, &format!("strict nn {lvl} t={threads}"));

                let mut out = vec![f32::NAN; m * n];
                matmul_transpose_a_into(&a_t, &b, &mut out, k, m, n).expect("ta");
                assert_bits_eq(&out, &want_ta, &format!("strict ta {lvl} t={threads}"));

                let mut out = vec![f32::NAN; m * n];
                matmul_transpose_b_into(&a, &b_t, &mut out, m, k, n).expect("tb");
                assert_bits_eq(&out, &want_tb, &format!("strict tb {lvl} t={threads}"));
            }
        }
    }
    set_simd_level(prior);
    set_kernel_threads(0);
}

/// im2col / col2im at every SIMD level × thread count, odd geometries,
/// specials planted — compared against a fixed scalar-at-Scalar-level run.
#[test]
fn conv_lowering_bit_identical_across_simd_levels_and_thread_counts() {
    let geometries = [
        ConvDims { in_channels: 2, in_h: 7, in_w: 9, kernel: 3, stride: 1, padding: 1 },
        ConvDims { in_channels: 3, in_h: 6, in_w: 11, kernel: 5, stride: 2, padding: 3 },
        ConvDims { in_channels: 1, in_h: 1, in_w: 17, kernel: 3, stride: 3, padding: 2 },
    ];
    let prior = simd_level();
    for dims in geometries {
        let image = filled(dims.in_channels * dims.in_h * dims.in_w, 0xC0FF_EE, true);
        let cols = filled(dims.col_rows() * dims.col_cols(), 0xFEED, true);

        // Ground truth: scalar level, serial.
        set_simd_level(SimdLevel::Scalar);
        set_kernel_threads(1);
        let mut want_cols = Vec::new();
        im2col_into(&image, &dims, &mut want_cols).expect("reference im2col");
        let mut want_img = filled(image.len(), 0xBAD_5EED, true);
        let img_seed = want_img.clone();
        col2im_into(&cols, &mut want_img, &dims).expect("reference col2im");

        for level in supported_levels() {
            set_simd_level(level);
            for &threads in &THREAD_COUNTS {
                set_kernel_threads(threads);
                let mut got = Vec::new();
                im2col_into(&image, &dims, &mut got).expect("im2col");
                assert_bits_eq(&got, &want_cols, &format!("im2col {dims:?} {level:?} t={threads}"));
                let mut img = img_seed.clone();
                col2im_into(&cols, &mut img, &dims).expect("col2im");
                assert_bits_eq(&img, &want_img, &format!("col2im {dims:?} {level:?} t={threads}"));
            }
        }
    }
    set_simd_level(prior);
    set_kernel_threads(0);
}

/// Elementwise lanes (axpy, activations, SGD steps) at every level against
/// the scalar level, on odd/remainder lengths with specials. Uses the
/// level-pinned `_with` dispatchers, so this test needs no global state.
#[test]
fn elementwise_lanes_bit_identical_across_simd_levels() {
    for len in [0usize, 1, 7, 8, 9, 31, 33, 1023] {
        let x = filled(len, 0xA11CE ^ len as u64, true);
        let y0 = filled(len, 0xB0B ^ (len as u64) << 8, true);

        let mut want_axpy = y0.clone();
        simd::axpy_with(SimdLevel::Scalar, &mut want_axpy, 0.75, &x);
        let mut want_relu = vec![0.0f32; len];
        simd::relu_fwd_with(SimdLevel::Scalar, &x, &mut want_relu);
        let mut want_sgd = y0.clone();
        let mut want_grad = x.clone();
        simd::sgd_step_with(SimdLevel::Scalar, &mut want_sgd, &mut want_grad, 0.1, 0.01);

        for level in supported_levels() {
            let mut got = y0.clone();
            simd::axpy_with(level, &mut got, 0.75, &x);
            assert_bits_eq(&got, &want_axpy, &format!("axpy len={len} {level:?}"));
            let mut got = vec![0.0f32; len];
            simd::relu_fwd_with(level, &x, &mut got);
            assert_bits_eq(&got, &want_relu, &format!("relu_fwd len={len} {level:?}"));
            let mut got = y0.clone();
            let mut grad = x.clone();
            simd::sgd_step_with(level, &mut got, &mut grad, 0.1, 0.01);
            assert_bits_eq(&got, &want_sgd, &format!("sgd_step len={len} {level:?}"));
            assert_bits_eq(&grad, &want_grad, &format!("sgd_step grad len={len} {level:?}"));
        }
    }
}

#[test]
fn signed_zero_semantics_match_reference() {
    // (-0.0) * x accumulated from +0.0 keeps IEEE signed-zero behaviour
    // identical between reference and blocked/parallel kernels.
    let (m, k, n) = (4, 3, 4);
    let a = vec![-0.0f32; m * k];
    let b = filled(k * n, 99, false);
    let want = reference::matmul(&a, &b, m, k, n);
    for &threads in &THREAD_COUNTS {
        set_kernel_threads(threads);
        let mut out = vec![f32::NAN; m * n];
        matmul_into(&a, &b, &mut out, m, k, n).expect("matmul_into");
        assert_bits_eq(&out, &want, &format!("signed zero t={threads}"));
    }
    set_kernel_threads(0);
}
