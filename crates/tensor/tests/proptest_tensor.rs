//! Property-based tests for tensor algebra and the convolution helpers.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_tensor::{col2im, im2col, matmul, matmul_transpose_a, matmul_transpose_b, ConvDims, Tensor};
use proptest::prelude::*;

fn small_vec(len: usize) -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(-10.0f32..10.0, len..=len)
}

proptest! {
    #[test]
    fn add_commutes(len in 1usize..64, seed_a in proptest::collection::vec(-5.0f32..5.0, 64), seed_b in proptest::collection::vec(-5.0f32..5.0, 64)) {
        let a = Tensor::from_slice(&seed_a[..len]);
        let b = Tensor::from_slice(&seed_b[..len]);
        let ab = a.add(&b).unwrap();
        let ba = b.add(&a).unwrap();
        prop_assert_eq!(ab.data(), ba.data());
    }

    #[test]
    fn sub_then_add_roundtrips(len in 1usize..64, seed_a in proptest::collection::vec(-5.0f32..5.0, 64), seed_b in proptest::collection::vec(-5.0f32..5.0, 64)) {
        let a = Tensor::from_slice(&seed_a[..len]);
        let b = Tensor::from_slice(&seed_b[..len]);
        let round = a.sub(&b).unwrap().add(&b).unwrap();
        for (x, y) in round.data().iter().zip(a.data()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    #[test]
    fn scale_is_linear(len in 1usize..64, k in -3.0f32..3.0, seed in proptest::collection::vec(-5.0f32..5.0, 64)) {
        let a = Tensor::from_slice(&seed[..len]);
        let lhs = a.scale(k).sum();
        let rhs = k * a.sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + rhs.abs()));
    }

    #[test]
    fn matmul_distributes_over_addition(m in 1usize..6, k in 1usize..6, n in 1usize..6,
                                        a in small_vec(36), b in small_vec(36), c in small_vec(36)) {
        let a = Tensor::from_vec(a[..m*k].to_vec(), &[m, k]).unwrap();
        let b = Tensor::from_vec(b[..k*n].to_vec(), &[k, n]).unwrap();
        let c = Tensor::from_vec(c[..k*n].to_vec(), &[k, n]).unwrap();
        let lhs = matmul(&a, &b.add(&c).unwrap()).unwrap();
        let rhs = matmul(&a, &b).unwrap().add(&matmul(&a, &c).unwrap()).unwrap();
        for (x, y) in lhs.data().iter().zip(rhs.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn transpose_kernels_agree_with_plain_matmul(m in 1usize..5, k in 1usize..5, n in 1usize..5,
                                                 a in small_vec(25), b in small_vec(25)) {
        // Build A [m,k] and B [k,n]; verify Aᵀ kernel on Aᵀ stored data and Bᵀ kernel likewise.
        let a_mat = Tensor::from_vec(a[..m*k].to_vec(), &[m, k]).unwrap();
        let b_mat = Tensor::from_vec(b[..k*n].to_vec(), &[k, n]).unwrap();
        let reference = matmul(&a_mat, &b_mat).unwrap();

        // Store A transposed ([k,m]) and use matmul_transpose_a.
        let mut at = vec![0.0f32; m * k];
        for i in 0..m { for j in 0..k { at[j * m + i] = a_mat.data()[i * k + j]; } }
        let at = Tensor::from_vec(at, &[k, m]).unwrap();
        let via_ta = matmul_transpose_a(&at, &b_mat).unwrap();
        for (x, y) in via_ta.data().iter().zip(reference.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }

        // Store B transposed ([n,k]) and use matmul_transpose_b.
        let mut bt = vec![0.0f32; k * n];
        for i in 0..k { for j in 0..n { bt[j * k + i] = b_mat.data()[i * n + j]; } }
        let bt = Tensor::from_vec(bt, &[n, k]).unwrap();
        let via_tb = matmul_transpose_b(&a_mat, &bt).unwrap();
        for (x, y) in via_tb.data().iter().zip(reference.data()) {
            prop_assert!((x - y).abs() < 1e-3);
        }
    }

    #[test]
    fn im2col_col2im_adjoint(c in 1usize..3, h in 3usize..8, w in 3usize..8,
                             kernel in 1usize..4, stride in 1usize..3, padding in 0usize..2,
                             xs in small_vec(192), ys in small_vec(1024)) {
        prop_assume!(h + 2 * padding >= kernel && w + 2 * padding >= kernel);
        let dims = ConvDims { in_channels: c, in_h: h, in_w: w, kernel, stride, padding };
        let x = &xs[..c * h * w];
        let cols = im2col(x, &dims).unwrap();
        let nyz = dims.col_rows() * dims.col_cols();
        prop_assume!(nyz <= ys.len());
        let y = Tensor::from_vec(ys[..nyz].to_vec(), &[dims.col_rows(), dims.col_cols()]).unwrap();

        let lhs: f64 = cols.data().iter().zip(y.data()).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        let mut back = vec![0.0f32; x.len()];
        col2im(&y, &mut back, &dims).unwrap();
        let rhs: f64 = x.iter().zip(&back).map(|(a, b)| (*a as f64) * (*b as f64)).sum();
        prop_assert!((lhs - rhs).abs() < 1e-2 * (1.0 + rhs.abs()), "{} vs {}", lhs, rhs);
    }

    #[test]
    fn reshape_preserves_sum(len in 1usize..64, seed in proptest::collection::vec(-5.0f32..5.0, 64)) {
        let a = Tensor::from_slice(&seed[..len]);
        let b = a.reshape(&[len, 1]).unwrap();
        prop_assert_eq!(a.sum(), b.sum());
    }
}
