//! Property-based tests of the oscillation-ratio diagnosis (Eq. 2).

use fedsu_core::{EmaPair, OscillationDiagnostic};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ratio_always_in_unit_interval(values in proptest::collection::vec(-100.0f32..100.0, 0..64),
                                     theta in 0.5f32..0.99) {
        let mut e = EmaPair::default();
        for v in values {
            e.observe(v, theta);
            let r = e.ratio();
            prop_assert!((0.0..=1.0).contains(&r), "ratio {r}");
        }
    }

    #[test]
    fn constant_sign_signal_has_ratio_one(magnitudes in proptest::collection::vec(0.01f32..10.0, 3..32),
                                          theta in 0.5f32..0.99) {
        // All-positive observations: |EMA| equals EMA of magnitudes.
        let mut e = EmaPair::default();
        for m in &magnitudes {
            e.observe(*m, theta);
        }
        prop_assert!((e.ratio() - 1.0).abs() < 1e-5, "ratio {}", e.ratio());
    }

    #[test]
    fn scaling_a_signal_leaves_the_ratio_invariant(values in proptest::collection::vec(-10.0f32..10.0, 3..32),
                                                   scale in 0.01f32..100.0) {
        let mut a = EmaPair::default();
        let mut b = EmaPair::default();
        for v in &values {
            a.observe(*v, 0.9);
            b.observe(*v * scale, 0.9);
        }
        prop_assert!((a.ratio() - b.ratio()).abs() < 1e-3, "{} vs {}", a.ratio(), b.ratio());
    }

    #[test]
    fn affine_trajectories_always_diagnose_linear(slope in -5.0f32..5.0, intercept in -5.0f32..5.0,
                                                  horizon in 5usize..40) {
        let mut d = OscillationDiagnostic::new(1, 0.9);
        for k in 0..horizon {
            d.observe_params(&[intercept + slope * k as f32]);
        }
        prop_assert!(d.is_linear(0, 0.01), "ratio {}", d.ratio(0));
    }

    #[test]
    fn diagnosis_is_per_scalar_independent(slope in 0.01f32..1.0, horizon in 8usize..32) {
        // Scalar 0 linear, scalar 1 with alternating curvature; adding the
        // second must not change the first's ratio.
        let mut solo = OscillationDiagnostic::new(1, 0.9);
        let mut pair = OscillationDiagnostic::new(2, 0.9);
        for k in 0..horizon {
            let lin = -slope * k as f32;
            let curved = if k % 2 == 0 { 1.0 } else { -1.0 };
            solo.observe_params(&[lin]);
            pair.observe_params(&[lin, curved]);
        }
        prop_assert!((solo.ratio(0) - pair.ratio(0)).abs() < 1e-9);
    }
}
