//! Regression-free linearity diagnosis (Sec. IV-A).
//!
//! A parameter updating linearly has a stable first-order difference
//! (gradient), so its *second-order* difference `g′_k = g_k − g_{k−1}`
//! oscillates around zero. Rather than fitting a regression over a history
//! window, FedSU smooths `g′` and `|g′|` with exponential moving averages
//! and tests the **second-order oscillation ratio**
//!
//! ```text
//! R = |⟨g′⟩_θ| / ⟨|g′|⟩_θ            (Eq. 2)
//! ```
//!
//! `R ≈ 0` when the signed second differences cancel (oscillation around 0,
//! i.e. linear updating) and `R ≈ 1` when they consistently point one way
//! (curvature). Memory cost is two floats per scalar — no history window.

use serde::{Deserialize, Serialize};

/// Paired EMAs of a signal and of its absolute value.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct EmaPair {
    /// EMA of the signed signal, `⟨g′⟩_θ`.
    pub signed: f32,
    /// EMA of the magnitude, `⟨|g′|⟩_θ`.
    pub magnitude: f32,
}

impl EmaPair {
    /// Folds one observation in with decay `theta`
    /// (`⟨x⟩ ← θ·⟨x⟩ + (1−θ)·x`).
    pub fn observe(&mut self, value: f32, theta: f32) {
        self.signed = theta * self.signed + (1.0 - theta) * value;
        self.magnitude = theta * self.magnitude + (1.0 - theta) * value.abs();
    }

    /// The oscillation ratio `|⟨g′⟩| / ⟨|g′|⟩ ∈ [0, 1]`.
    ///
    /// When the magnitude EMA is (numerically) zero the signal has been
    /// identically zero — a perfectly stable gradient — so the ratio is 0
    /// (maximal linearity; the stagnating pattern is the special case the
    /// paper generalizes from).
    pub fn ratio(&self) -> f64 {
        if self.magnitude <= f32::EPSILON {
            0.0
        } else {
            (f64::from(self.signed.abs()) / f64::from(self.magnitude)).min(1.0)
        }
    }

    /// Resets both EMAs to zero (used when a parameter re-enters regular
    /// updating and its history is stale).
    pub fn reset(&mut self) {
        *self = EmaPair::default();
    }
}

/// Per-scalar oscillation-ratio diagnostic over a whole parameter vector.
///
/// Feed it the global parameter vector once per synchronized round via
/// [`observe_params`](OscillationDiagnostic::observe_params); it maintains
/// the first/second-order differences internally and exposes each scalar's
/// current ratio. This standalone form is used by the motivation figures
/// (Fig. 1/2) and by offline analysis; the FedSU manager embeds the same
/// arithmetic in its round loop.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OscillationDiagnostic {
    theta: f32,
    prev_value: Vec<f32>,
    prev_update: Vec<f32>,
    ema: Vec<EmaPair>,
    observations: usize,
}

impl OscillationDiagnostic {
    /// Creates a diagnostic for `n` scalars with EMA decay `theta`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < theta < 1`.
    pub fn new(n: usize, theta: f32) -> Self {
        assert!(theta > 0.0 && theta < 1.0, "theta must be in (0, 1)");
        OscillationDiagnostic {
            theta,
            prev_value: vec![0.0; n],
            prev_update: vec![0.0; n],
            ema: vec![EmaPair::default(); n],
            observations: 0,
        }
    }

    /// Number of parameter vectors observed so far.
    pub fn observations(&self) -> usize {
        self.observations
    }

    /// Observes a new (post-synchronization) parameter vector.
    ///
    /// The first observation seeds values, the second seeds first-order
    /// differences; ratios become meaningful from the third onward.
    ///
    /// # Panics
    ///
    /// Panics if `params.len()` differs from the diagnostic's size.
    pub fn observe_params(&mut self, params: &[f32]) {
        assert_eq!(params.len(), self.prev_value.len(), "parameter count changed");
        match self.observations {
            0 => self.prev_value.copy_from_slice(params),
            1 => {
                for j in 0..params.len() {
                    self.prev_update[j] = params[j] - self.prev_value[j];
                }
                self.prev_value.copy_from_slice(params);
            }
            _ => {
                for j in 0..params.len() {
                    let g = params[j] - self.prev_value[j];
                    let g2 = g - self.prev_update[j];
                    self.ema[j].observe(g2, self.theta);
                    self.prev_update[j] = g;
                }
                self.prev_value.copy_from_slice(params);
            }
        }
        self.observations += 1;
    }

    /// Current oscillation ratio of scalar `j`.
    ///
    /// When the second-difference magnitude is negligible *relative to the
    /// gradient itself* (below `1e-3·|g|`), the trajectory is linear to
    /// within numerical noise and the ratio is 0 — otherwise float rounding
    /// on an exactly-linear trajectory would produce an arbitrary ratio.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn ratio(&self, j: usize) -> f64 {
        if self.ema[j].magnitude <= 1e-3 * self.prev_update[j].abs() {
            0.0
        } else {
            self.ema[j].ratio()
        }
    }

    /// All ratios (allocates), with the same relative-magnitude guard as
    /// [`ratio`](OscillationDiagnostic::ratio).
    pub fn ratios(&self) -> Vec<f64> {
        (0..self.ema.len()).map(|j| self.ratio(j)).collect()
    }

    /// Whether scalar `j` currently diagnoses as linear under threshold
    /// `t_r`, requiring at least 3 observations.
    pub fn is_linear(&self, j: usize, t_r: f64) -> bool {
        self.observations >= 3 && self.ratio(j) < t_r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ema_pair_tracks_signal() {
        let mut e = EmaPair::default();
        for _ in 0..100 {
            e.observe(1.0, 0.9);
        }
        assert!((e.signed - 1.0).abs() < 0.01);
        assert!((e.magnitude - 1.0).abs() < 0.01);
        assert!((e.ratio() - 1.0).abs() < 1e-6);
    }

    #[test]
    fn oscillating_signal_has_small_ratio() {
        let mut e = EmaPair::default();
        for k in 0..200 {
            e.observe(if k % 2 == 0 { 0.1 } else { -0.1 }, 0.95);
        }
        assert!(e.ratio() < 0.05, "ratio {}", e.ratio());
    }

    #[test]
    fn zero_signal_is_maximally_linear() {
        let mut e = EmaPair::default();
        e.observe(0.0, 0.9);
        assert_eq!(e.ratio(), 0.0);
    }

    #[test]
    fn empty_window_ratio_is_zero_not_nan() {
        // Before any observation both EMA terms are zero: the raw ratio is
        // 0/0 and the documented sentinel is 0.0, never NaN.
        let e = EmaPair::default();
        assert_eq!(e.ratio(), 0.0);
        assert!(!e.ratio().is_nan());

        let d = OscillationDiagnostic::new(3, 0.9);
        for j in 0..3 {
            assert_eq!(d.ratio(j), 0.0, "scalar {j}");
            assert!(!d.ratio(j).is_nan(), "scalar {j}");
        }
        assert!(d.ratios().iter().all(|r| r.is_finite()));
        assert!(!d.is_linear(0, 0.5), "needs >= 3 observations");
    }

    #[test]
    fn ratio_is_bounded() {
        let mut e = EmaPair::default();
        for v in [-1.0f32, 5.0, -0.1, 2.0, -7.0] {
            e.observe(v, 0.9);
            let r = e.ratio();
            assert!((0.0..=1.0).contains(&r));
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut e = EmaPair::default();
        e.observe(3.0, 0.9);
        e.reset();
        assert_eq!(e, EmaPair::default());
    }

    #[test]
    fn linear_trajectory_diagnoses_linear() {
        // x_k = 0.5 - 0.01k: perfectly linear.
        let mut d = OscillationDiagnostic::new(1, 0.9);
        for k in 0..20 {
            d.observe_params(&[0.5 - 0.01 * k as f32]);
        }
        assert!(d.is_linear(0, 0.01), "ratio {}", d.ratio(0));
    }

    #[test]
    fn quadratic_trajectory_diagnoses_nonlinear() {
        // x_k = k²·1e-3: constant positive curvature, g' constant ≠ 0.
        let mut d = OscillationDiagnostic::new(1, 0.9);
        for k in 0..20 {
            let k = k as f32;
            d.observe_params(&[k * k * 1e-3]);
        }
        assert!(d.ratio(0) > 0.9, "ratio {}", d.ratio(0));
        assert!(!d.is_linear(0, 0.01));
    }

    #[test]
    fn noisy_linear_beats_noisy_quadratic() {
        // With identical noise, the linear trajectory must diagnose more
        // linear than the quadratic one.
        let noise = |k: usize| ((k as f32 * 12.9898).sin() * 43758.547).fract() * 0.002 - 0.001;
        let mut lin = OscillationDiagnostic::new(1, 0.9);
        let mut quad = OscillationDiagnostic::new(1, 0.9);
        for k in 0..60 {
            lin.observe_params(&[-0.01 * k as f32 + noise(k)]);
            let kf = k as f32;
            quad.observe_params(&[kf * kf * 5e-4 + noise(k)]);
        }
        assert!(lin.ratio(0) < quad.ratio(0), "lin {} quad {}", lin.ratio(0), quad.ratio(0));
    }

    #[test]
    fn needs_three_observations() {
        let mut d = OscillationDiagnostic::new(1, 0.9);
        d.observe_params(&[0.0]);
        d.observe_params(&[0.1]);
        assert!(!d.is_linear(0, 1.0));
        d.observe_params(&[0.2]);
        assert!(d.is_linear(0, 1.0));
        assert_eq!(d.observations(), 3);
    }

    #[test]
    fn per_scalar_independence() {
        let mut d = OscillationDiagnostic::new(2, 0.9);
        for k in 0..20 {
            let kf = k as f32;
            d.observe_params(&[-0.01 * kf, kf * kf * 1e-3]);
        }
        assert!(d.ratio(0) < 0.01);
        assert!(d.ratio(1) > 0.9);
        let rs = d.ratios();
        assert_eq!(rs.len(), 2);
    }

    #[test]
    #[should_panic(expected = "theta must be in")]
    fn bad_theta_panics() {
        OscillationDiagnostic::new(1, 1.0);
    }

    #[test]
    #[should_panic(expected = "parameter count changed")]
    fn size_change_panics() {
        let mut d = OscillationDiagnostic::new(2, 0.9);
        d.observe_params(&[0.0]);
    }
}
