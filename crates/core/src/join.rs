//! The replicated-state snapshot a newly-joining client downloads
//! (Sec. V, "Handling system dynamicity"): besides the latest model, a
//! joiner needs the predictability mask and the no-checking bookkeeping so
//! its local `FedSU_Manager` replica makes the same decisions as everyone
//! else's.
//!
//! The snapshot has a compact little-endian wire encoding (built with the
//! `bytes` crate) so the runtime can account for its download cost exactly.

use crate::diagnosis::EmaPair;
use bytes::{Buf, BufMut, BytesMut};
use serde::{Deserialize, Serialize};
use std::fmt;

/// Magic header guarding the wire format.
const MAGIC: u32 = 0xFED5_0001;

/// Decoding errors for [`JoinState::from_bytes`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JoinStateError {
    /// The buffer is shorter than the declared contents.
    Truncated,
    /// The magic header did not match (wrong or corrupt payload).
    BadMagic(u32),
}

impl fmt::Display for JoinStateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JoinStateError::Truncated => write!(f, "join state payload truncated"),
            JoinStateError::BadMagic(m) => write!(f, "bad join state magic {m:#x}"),
        }
    }
}

impl std::error::Error for JoinStateError {}

/// Everything a joining client needs to replicate the FedSU manager state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinState {
    /// Predictability mask.
    pub predictable: Vec<bool>,
    /// Profiled per-round update for speculative scalars.
    pub slope: Vec<f32>,
    /// Current no-checking period length per scalar.
    pub no_check_len: Vec<u16>,
    /// Rounds remaining in the current no-checking period.
    pub no_check_remaining: Vec<u16>,
    /// Last observed global update per scalar.
    pub prev_update: Vec<f32>,
    /// Second-order EMA pair per scalar.
    pub ema: Vec<EmaPair>,
    /// Update observations per scalar (diagnosis warmup counter).
    pub obs: Vec<u16>,
    /// Rounds the donor manager has seen.
    pub rounds_seen: u64,
}

impl JoinState {
    /// Number of scalar parameters covered.
    pub fn len(&self) -> usize {
        self.predictable.len()
    }

    /// Whether the snapshot covers zero scalars.
    pub fn is_empty(&self) -> bool {
        self.predictable.is_empty()
    }

    /// Serializes to the compact wire format.
    ///
    /// Layout: magic `u32` | count `u32` | rounds_seen `u64` | bit-packed
    /// mask | per-scalar `slope, prev_update, ema.signed, ema.magnitude`
    /// (f32) | `no_check_len, no_check_remaining, obs` (u16).
    pub fn to_bytes(&self) -> Vec<u8> {
        let n = self.predictable.len();
        let mut buf = BytesMut::with_capacity(16 + n.div_ceil(8) + n * (16 + 6));
        buf.put_u32_le(MAGIC);
        buf.put_u32_le(n as u32);
        buf.put_u64_le(self.rounds_seen);
        // Bit-packed predictability mask.
        let mut byte = 0u8;
        for (i, &p) in self.predictable.iter().enumerate() {
            if p {
                byte |= 1 << (i % 8);
            }
            if i % 8 == 7 {
                buf.put_u8(byte);
                byte = 0;
            }
        }
        if n % 8 != 0 {
            buf.put_u8(byte);
        }
        for j in 0..n {
            buf.put_f32_le(self.slope[j]);
            buf.put_f32_le(self.prev_update[j]);
            buf.put_f32_le(self.ema[j].signed);
            buf.put_f32_le(self.ema[j].magnitude);
        }
        for j in 0..n {
            buf.put_u16_le(self.no_check_len[j]);
            buf.put_u16_le(self.no_check_remaining[j]);
            buf.put_u16_le(self.obs[j]);
        }
        buf.to_vec()
    }

    /// Parses the wire format produced by [`JoinState::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`JoinStateError`] on truncation or a bad header.
    pub fn from_bytes(mut data: &[u8]) -> Result<Self, JoinStateError> {
        if data.remaining() < 16 {
            return Err(JoinStateError::Truncated);
        }
        let magic = data.get_u32_le();
        if magic != MAGIC {
            return Err(JoinStateError::BadMagic(magic));
        }
        let n = data.get_u32_le() as usize;
        let rounds_seen = data.get_u64_le();
        let mask_bytes = n.div_ceil(8);
        // Checked math: `n` comes off the wire, so an adversarial or corrupt
        // count must surface as Truncated, not as a usize overflow panic (or
        // a silent wrap admitting an undersized payload on 32-bit targets).
        let needed_bytes = n
            .checked_mul(16 + 6)
            .and_then(|per_client| per_client.checked_add(mask_bytes))
            .ok_or(JoinStateError::Truncated)?;
        if data.remaining() < needed_bytes {
            return Err(JoinStateError::Truncated);
        }
        let mut predictable = Vec::with_capacity(n);
        for i in 0..mask_bytes {
            let byte = data.get_u8();
            for bit in 0..8 {
                let idx = i * 8 + bit;
                if idx < n {
                    predictable.push(byte & (1 << bit) != 0);
                }
            }
        }
        let mut slope = Vec::with_capacity(n);
        let mut prev_update = Vec::with_capacity(n);
        let mut ema = Vec::with_capacity(n);
        for _ in 0..n {
            slope.push(data.get_f32_le());
            prev_update.push(data.get_f32_le());
            let signed = data.get_f32_le();
            let magnitude = data.get_f32_le();
            ema.push(EmaPair { signed, magnitude });
        }
        let mut no_check_len = Vec::with_capacity(n);
        let mut no_check_remaining = Vec::with_capacity(n);
        let mut obs = Vec::with_capacity(n);
        for _ in 0..n {
            no_check_len.push(data.get_u16_le());
            no_check_remaining.push(data.get_u16_le());
            obs.push(data.get_u16_le());
        }
        Ok(JoinState {
            predictable,
            slope,
            no_check_len,
            no_check_remaining,
            prev_update,
            ema,
            obs,
            rounds_seen,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(n: usize) -> JoinState {
        JoinState {
            predictable: (0..n).map(|i| i % 3 == 0).collect(),
            slope: (0..n).map(|i| i as f32 * 0.1).collect(),
            no_check_len: (0..n).map(|i| (i % 7) as u16).collect(),
            no_check_remaining: (0..n).map(|i| (i % 5) as u16).collect(),
            prev_update: (0..n).map(|i| -(i as f32) * 0.01).collect(),
            ema: (0..n).map(|i| EmaPair { signed: i as f32, magnitude: i as f32 + 1.0 }).collect(),
            obs: (0..n).map(|i| (i % 11) as u16).collect(),
            rounds_seen: 42,
        }
    }

    #[test]
    fn roundtrip_various_sizes() {
        for n in [0usize, 1, 7, 8, 9, 64, 100] {
            let s = sample(n);
            let decoded = JoinState::from_bytes(&s.to_bytes()).unwrap();
            assert_eq!(s, decoded, "size {n}");
        }
    }

    #[test]
    fn truncated_rejected() {
        let bytes = sample(10).to_bytes();
        assert_eq!(JoinState::from_bytes(&bytes[..bytes.len() - 1]), Err(JoinStateError::Truncated));
        assert_eq!(JoinState::from_bytes(&bytes[..4]), Err(JoinStateError::Truncated));
        assert_eq!(JoinState::from_bytes(&[]), Err(JoinStateError::Truncated));
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = sample(3).to_bytes();
        bytes[0] ^= 0xFF;
        assert!(matches!(JoinState::from_bytes(&bytes), Err(JoinStateError::BadMagic(_))));
    }

    #[test]
    fn wire_size_is_compact() {
        // The mask is bit-packed: 1000 scalars cost 125 mask bytes, not 1000.
        let s = sample(1000);
        let bytes = s.to_bytes();
        assert_eq!(bytes.len(), 16 + 125 + 1000 * (16 + 6));
    }

    #[test]
    fn len_and_is_empty() {
        assert!(sample(0).is_empty());
        assert_eq!(sample(5).len(), 5);
    }
}
