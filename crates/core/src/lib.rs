//! # fedsu-core
//!
//! The paper's primary contribution: **Federated Learning with Speculative
//! Updating** (FedSU, ICDCS 2025).
//!
//! FedSU observes that during federated training most scalar parameters
//! spend long stretches evolving *linearly* — their per-round update is
//! nearly constant. Borrowing the idea of speculative execution from CPU
//! design, FedSU stops synchronizing such parameters and instead refines
//! them with the *predicted* (last profiled) per-round update, falling back
//! to regular synchronization as soon as reality diverges from the
//! prediction.
//!
//! The three mechanisms (Sec. IV of the paper), each implemented here:
//!
//! 1. **Linearity diagnosis** ([`diagnosis`]): the *second-order
//!    oscillation ratio* `R = |⟨g′⟩_θ| / ⟨|g′|⟩_θ` (Eq. 2), an EMA-smoothed,
//!    regression-free test of whether the second-order parameter difference
//!    oscillates around zero. `R < T_R` ⇒ the parameter updates linearly.
//! 2. **Speculative updating** ([`manager`]): parameters flagged in the
//!    *predictability mask* skip synchronization; after local training
//!    their value is replaced by the predicted one (masked replacement).
//! 3. **Error feedback** ([`manager`]): each client accumulates the local
//!    prediction error; when a parameter's *no-checking period* expires the
//!    errors are aggregated and the feedback signal `S = |Σe| / |g|`
//!    (Eq. 3) either extends the period by one round (`S < T_S`) or demotes
//!    the parameter to regular updating.
//!
//! The ablation variants of Sec. VI-D are configuration points of the same
//! manager: [`FedSu::variant_v1`] (linearity diagnosis, fixed speculation
//! period, no error feedback) and [`FedSu::variant_v2`] (random speculation
//! entry, no diagnosis, no feedback).
//!
//! ```
//! use fedsu_core::{FedSu, FedSuConfig};
//! use fedsu_fl::SyncStrategy;
//!
//! let mut fedsu = FedSu::new(FedSuConfig::default());
//! // Drive it like the FL runtime would: two clients, a 3-scalar model.
//! let locals = vec![vec![1.0, 2.0, 3.0], vec![1.2, 2.2, 3.2]];
//! let mut global = vec![0.0, 0.0, 0.0];
//! fedsu.prepare_uploads(0, &locals, &global);
//! let out = fedsu.aggregate(0, &locals, &[0, 1], &[true, true], &mut global);
//! assert_eq!(out.total_scalars, 3);
//! assert_eq!(global, vec![1.1, 2.1, 3.1]); // plain averaging until linearity appears
//! ```

#![warn(missing_docs)]

pub mod analysis;
pub mod coarse;
pub mod diagnosis;
pub mod join;
pub mod manager;

pub use analysis::{theorem1_bound, ConvergenceBound, ProblemConstants};
pub use coarse::FedSuCoarse;
pub use diagnosis::{EmaPair, OscillationDiagnostic};
pub use join::JoinState;
pub use manager::{FedSu, FedSuConfig, MaskEvent, MaskEventKind, RoundStats};
