//! Convergence analysis (Theorem 1).
//!
//! The paper proves that under β-smoothness (Assumption 1) and bounded
//! gradients (Assumption 2), FedSU's averaged squared gradient norm is
//! bounded by
//!
//! ```text
//!   4(F(x₀) − F(x*)) / Ση_k
//! + 4σ²β²T_S² · Ση_k³ / Ση_k
//! + 2σ²β    · Ση_k²  / Ση_k            (Eq. 4)
//! ```
//!
//! This module evaluates the bound for a learning-rate schedule so tests
//! (and users picking `T_S`) can check the convergence conditions of Eq. 13
//! numerically: the bound must vanish as `T → ∞` for admissible schedules,
//! and the middle term makes the `T_S`-dependence explicit — the knob the
//! paper's Fig. 10 shows breaking accuracy when loosened too far.

use fedsu_fl::LrSchedule;
use serde::{Deserialize, Serialize};

/// Problem constants of Assumptions 1-2 plus the initial optimality gap.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProblemConstants {
    /// Smoothness constant β.
    pub beta: f64,
    /// Gradient bound σ (‖g‖ ≤ σ).
    pub sigma: f64,
    /// Initial gap `F(x₀) − F(x*)`.
    pub initial_gap: f64,
}

impl Default for ProblemConstants {
    fn default() -> Self {
        ProblemConstants { beta: 1.0, sigma: 1.0, initial_gap: 1.0 }
    }
}

/// The three terms of Eq. 4, separated so their relative magnitudes can be
/// inspected.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConvergenceBound {
    /// Optimization term `4(F(x₀)−F(x*)) / Ση_k`.
    pub optimization_term: f64,
    /// Speculation-error term `4σ²β²T_S² Ση_k³ / Ση_k`.
    pub speculation_term: f64,
    /// Stochastic-gradient term `2σ²β Ση_k² / Ση_k`.
    pub noise_term: f64,
}

impl ConvergenceBound {
    /// The full right-hand side of Eq. 4.
    pub fn total(&self) -> f64 {
        self.optimization_term + self.speculation_term + self.noise_term
    }
}

/// Evaluates Theorem 1's bound after `t` rounds of the given schedule with
/// error-feedback threshold `t_s`.
///
/// # Panics
///
/// Panics if `t == 0` or `base_lr <= 0`.
pub fn theorem1_bound(
    constants: &ProblemConstants,
    schedule: LrSchedule,
    base_lr: f32,
    t: usize,
    t_s: f64,
) -> ConvergenceBound {
    assert!(t > 0, "need at least one round");
    assert!(base_lr > 0.0, "learning rate must be positive");
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut sum_cube = 0.0f64;
    for k in 0..t {
        let lr = f64::from(schedule.lr_at(base_lr, k));
        sum += lr;
        sum_sq += lr * lr;
        sum_cube += lr * lr * lr;
    }
    let sigma_sq = constants.sigma * constants.sigma;
    let beta = constants.beta;
    ConvergenceBound {
        optimization_term: 4.0 * constants.initial_gap / sum,
        speculation_term: 4.0 * sigma_sq * beta * beta * t_s * t_s * sum_cube / sum,
        noise_term: 2.0 * sigma_sq * beta * sum_sq / sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const C: ProblemConstants = ProblemConstants { beta: 1.0, sigma: 1.0, initial_gap: 1.0 };

    #[test]
    fn bound_vanishes_under_inv_sqrt_schedule() {
        // Eq. 13 admissible schedule: every term must shrink with T.
        let short = theorem1_bound(&C, LrSchedule::InvSqrt, 0.1, 100, 1.0);
        let long = theorem1_bound(&C, LrSchedule::InvSqrt, 0.1, 100_000, 1.0);
        assert!(long.total() < short.total(), "{} vs {}", long.total(), short.total());
        assert!(long.noise_term < short.noise_term);
        assert!(long.optimization_term < short.optimization_term);
    }

    #[test]
    fn constant_schedule_keeps_a_noise_floor() {
        // With constant lr the noise term converges to 2σ²βη, not to 0.
        let b = theorem1_bound(&C, LrSchedule::Constant, 0.1, 1_000_000, 1.0);
        assert!((b.noise_term - 2.0 * 0.1).abs() < 1e-6);
        assert!(b.optimization_term < 1e-4);
    }

    #[test]
    fn speculation_term_scales_quadratically_with_ts() {
        let b1 = theorem1_bound(&C, LrSchedule::InvSqrt, 0.1, 1000, 1.0);
        let b10 = theorem1_bound(&C, LrSchedule::InvSqrt, 0.1, 1000, 10.0);
        let ratio = b10.speculation_term / b1.speculation_term;
        assert!((ratio - 100.0).abs() < 1e-6, "ratio {ratio}");
    }

    #[test]
    fn tighter_ts_never_worsens_the_bound() {
        for t_s in [0.1, 1.0, 10.0, 100.0] {
            let loose = theorem1_bound(&C, LrSchedule::InvSqrt, 0.1, 500, t_s * 2.0);
            let tight = theorem1_bound(&C, LrSchedule::InvSqrt, 0.1, 500, t_s);
            assert!(tight.total() <= loose.total());
        }
    }

    #[test]
    fn harder_problems_have_larger_bounds() {
        let easy = theorem1_bound(&C, LrSchedule::InvSqrt, 0.1, 500, 1.0);
        let hard = theorem1_bound(
            &ProblemConstants { beta: 4.0, sigma: 2.0, initial_gap: 10.0 },
            LrSchedule::InvSqrt,
            0.1,
            500,
            1.0,
        );
        assert!(hard.total() > easy.total());
    }

    #[test]
    #[should_panic(expected = "at least one round")]
    fn zero_rounds_panics() {
        theorem1_bound(&C, LrSchedule::Constant, 0.1, 0, 1.0);
    }
}
