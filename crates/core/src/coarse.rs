//! Chunk-granular FedSU (extension ablation).
//!
//! Sec. III-A of the paper observes that linearity periods differ across
//! scalars even within one model and concludes that sparsification
//! decisions "shall be made in a fine-grained manner — independently for
//! each parameter". This module quantifies that design argument: the same
//! speculative machinery applied at *chunk* granularity (one mask bit per
//! block of scalars, diagnosis on chunk-aggregate statistics). With chunk
//! size 1 it degenerates to per-scalar FedSU; larger chunks model per-layer
//! or per-tensor masking, which the `ablation_granularity` bench compares.

use crate::diagnosis::EmaPair;
use fedsu_fl::{AggregateOutcome, SyncStrategy};

/// FedSU with one predictability decision per fixed-size chunk of scalars.
#[derive(Debug, Clone)]
pub struct FedSuCoarse {
    chunk: usize,
    t_r: f64,
    t_s: f64,
    theta: f32,
    warmup_updates: u16,
    max_no_check: u16,

    // Per-chunk replicated state.
    predictable: Vec<bool>,
    no_check_len: Vec<u16>,
    no_check_remaining: Vec<u16>,
    ema: Vec<EmaPair>,
    obs: Vec<u16>,
    // Per-scalar slopes (prediction is still per-scalar; only the *decision*
    // is coarse).
    slope: Vec<f32>,
    prev_update: Vec<f32>,
    // Per-client, per-chunk accumulated mean errors.
    errors: Vec<Vec<f32>>,
    predictable_rounds: Vec<u64>,
    rounds_seen: usize,
    n_params: usize,
}

impl FedSuCoarse {
    /// Creates a chunk-granular FedSU with the given chunk size and the
    /// quick-profile thresholds (`T_R`, `T_S`).
    ///
    /// # Panics
    ///
    /// Panics if `chunk == 0` or a threshold is non-positive.
    pub fn new(chunk: usize, t_r: f64, t_s: f64) -> Self {
        assert!(chunk > 0, "chunk size must be positive");
        assert!(t_r > 0.0 && t_s > 0.0, "thresholds must be positive");
        FedSuCoarse {
            chunk,
            t_r,
            t_s,
            theta: 0.9,
            warmup_updates: 4,
            max_no_check: 1024,
            predictable: Vec::new(),
            no_check_len: Vec::new(),
            no_check_remaining: Vec::new(),
            ema: Vec::new(),
            obs: Vec::new(),
            slope: Vec::new(),
            prev_update: Vec::new(),
            errors: Vec::new(),
            predictable_rounds: Vec::new(),
            rounds_seen: 0,
            n_params: 0,
        }
    }

    /// The configured chunk size.
    pub fn chunk_size(&self) -> usize {
        self.chunk
    }

    fn n_chunks(&self) -> usize {
        self.n_params.div_ceil(self.chunk)
    }

    fn chunk_range(&self, c: usize) -> std::ops::Range<usize> {
        c * self.chunk..((c + 1) * self.chunk).min(self.n_params)
    }

    fn ensure_capacity(&mut self, n_params: usize, n_clients: usize) {
        if self.n_params != n_params {
            self.n_params = n_params;
            let chunks = self.n_chunks();
            // Resize in place: steady rounds with a stable model never
            // reallocate, and a size change reuses whatever capacity the
            // old vectors already held.
            self.predictable.clear();
            self.predictable.resize(chunks, false);
            self.no_check_len.clear();
            self.no_check_len.resize(chunks, 0);
            self.no_check_remaining.clear();
            self.no_check_remaining.resize(chunks, 0);
            self.ema.clear();
            self.ema.resize_with(chunks, EmaPair::default);
            self.obs.clear();
            self.obs.resize(chunks, 0);
            self.predictable_rounds.clear();
            self.predictable_rounds.resize(chunks, 0);
            self.slope.clear();
            self.slope.resize(n_params, 0.0);
            self.prev_update.clear();
            self.prev_update.resize(n_params, 0.0);
        }
        let chunks = self.n_chunks();
        if self.errors.len() != n_clients || self.errors.first().is_some_and(|e| e.len() != chunks) {
            self.errors.resize_with(n_clients, Vec::new);
            for e in &mut self.errors {
                e.clear();
                e.resize(chunks, 0.0);
            }
        }
    }
}

impl SyncStrategy for FedSuCoarse {
    fn name(&self) -> &str {
        "fedsu-coarse"
    }

    fn prepare_uploads_into(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        global: &[f32],
        out: &mut Vec<u64>,
    ) {
        self.ensure_capacity(global.len(), locals.len());
        let mut scalars = 0u64;
        for (c, (&pred, &remaining)) in
            self.predictable.iter().zip(&self.no_check_remaining).enumerate()
        {
            if !pred {
                scalars += self.chunk_range(c).len() as u64;
            } else if remaining == 1 {
                scalars += 1; // one aggregated error value per checked chunk
            }
        }
        out.clear();
        out.resize(locals.len(), scalars);
    }

    fn aggregate(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome {
        self.ensure_capacity(global.len(), locals.len());
        let inv = 1.0 / selected.len().max(1) as f32;
        let mut synced = 0usize;
        let mut checked = 0usize;

        for c in 0..self.n_chunks() {
            let range = self.chunk_range(c);
            if self.predictable[c] {
                self.predictable_rounds[c] += 1;
                // Speculative update per scalar; error accumulated as the
                // chunk-mean deviation per client.
                let chunk_len = range.len() as f32;
                for (i, &act) in active.iter().enumerate() {
                    if !act {
                        continue;
                    }
                    let mut mean_err = 0.0f32;
                    for j in range.clone() {
                        let predicted = global[j] + self.slope[j];
                        mean_err += (locals[i][j] - predicted) / chunk_len;
                    }
                    self.errors[i][c] += mean_err;
                }
                let mut mean_abs_slope = 0.0f32;
                for j in range.clone() {
                    global[j] += self.slope[j];
                    mean_abs_slope += self.slope[j].abs() / chunk_len;
                }

                self.no_check_remaining[c] = self.no_check_remaining[c].saturating_sub(1);
                if self.no_check_remaining[c] == 0 {
                    checked += 1;
                    let e_mean: f32 = selected.iter().map(|&k| self.errors[k][c]).sum::<f32>() * inv;
                    let s = f64::from(e_mean.abs()) / f64::from(mean_abs_slope.max(f32::EPSILON));
                    if s < self.t_s {
                        self.no_check_len[c] = self.no_check_len[c].saturating_add(1).min(self.max_no_check);
                        self.no_check_remaining[c] = self.no_check_len[c];
                    } else {
                        self.predictable[c] = false;
                        self.obs[c] = 0;
                        self.ema[c].reset();
                        for e in &mut self.errors {
                            e[c] = 0.0;
                        }
                    }
                }
            } else {
                synced += range.len();
                // Regular sync + chunk-aggregate diagnosis.
                let chunk_len = range.len() as f32;
                let mut mean_g2 = 0.0f32;
                for j in range.clone() {
                    let old = global[j];
                    let mut avg = 0.0f32;
                    for &k in selected {
                        avg += locals[k][j];
                    }
                    avg *= inv;
                    global[j] = avg;
                    let g = avg - old;
                    mean_g2 += (g - self.prev_update[j]) / chunk_len;
                    self.prev_update[j] = g;
                }
                if self.obs[c] == 0 {
                    self.obs[c] = 1; // prev_update seeded this round
                } else {
                    self.ema[c].observe(mean_g2, self.theta);
                    self.obs[c] = self.obs[c].saturating_add(1);
                    if self.obs[c] >= self.warmup_updates && self.ema[c].ratio() < self.t_r {
                        self.predictable[c] = true;
                        for j in range.clone() {
                            self.slope[j] = self.prev_update[j];
                        }
                        self.no_check_len[c] = 1;
                        self.no_check_remaining[c] = 1;
                        for e in &mut self.errors {
                            e[c] = 0.0;
                        }
                    }
                }
            }
        }
        self.rounds_seen += 1;
        AggregateOutcome {
            broadcast_scalars: synced + checked,
            synced_scalars: synced + checked,
            total_scalars: self.n_params,
        }
    }

    fn state_bytes(&self) -> usize {
        let chunks = self.n_chunks();
        self.n_params * 8 // slope + prev_update
            + chunks * (1 + 2 * 2 + 8 + 2) // mask, periods, ema, obs
            + self.errors.len() * chunks * 4
    }

    fn skip_fractions(&self) -> Option<Vec<f64>> {
        if self.rounds_seen == 0 {
            return None;
        }
        // Expand chunk fractions back to per-scalar for comparability.
        let mut out = Vec::with_capacity(self.n_params);
        for c in 0..self.n_chunks() {
            let frac = self.predictable_rounds[c] as f64 / self.rounds_seen as f64;
            for _ in self.chunk_range(c) {
                out.push(frac);
            }
        }
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(coarse: &mut FedSuCoarse, global: &mut Vec<f32>, updates: &[f32], round: usize) -> AggregateOutcome {
        let locals = vec![global.iter().zip(updates).map(|(g, u)| g + u).collect::<Vec<f32>>()];
        coarse.prepare_uploads(round, &locals, global);
        coarse.aggregate(round, &locals, &[0], &[true], global)
    }

    #[test]
    fn chunk_one_behaves_like_per_scalar_fedsu() {
        let mut f = FedSuCoarse::new(1, 0.1, 10.0);
        let mut global = vec![0.0f32; 2];
        for round in 0..8 {
            drive(&mut f, &mut global, &[-0.01, -0.02], round);
        }
        assert_eq!(f.predictable.len(), 2);
        assert!(f.predictable.iter().all(|&p| p), "both linear scalars speculate");
    }

    #[test]
    fn coarse_chunk_corrupts_mixed_content() {
        // One linear scalar and one strongly alternating scalar share a
        // chunk. The chunk-mean diagnosis sees the alternation average out,
        // admits the pair, and then freezes a *wrong* slope onto the
        // alternating scalar — whose trajectory drifts away from the truth.
        // Per-scalar granularity (chunk = 1) never speculates that scalar.
        // This is exactly Sec. III-A's argument for fine-grained decisions:
        // coarseness costs accuracy, not just opportunity.
        let horizon = 30;
        let mut fine = FedSuCoarse::new(1, 0.1, 10.0);
        let mut coarse = FedSuCoarse::new(2, 0.1, 10.0);
        let mut gf = vec![0.0f32; 2];
        let mut gc = vec![0.0f32; 2];
        for round in 0..horizon {
            let flip = if round % 2 == 0 { 0.05 } else { -0.05 };
            drive(&mut fine, &mut gf, &[-0.01, flip], round);
            drive(&mut coarse, &mut gc, &[-0.01, flip], round);
        }
        // Ground truth for the alternating scalar stays within one step of 0.
        assert!(gf[1].abs() <= 0.0501, "fine tracks the alternation: {}", gf[1]);
        assert!(
            gc[1].abs() > gf[1].abs() + 0.05,
            "coarse speculation must have corrupted the alternating scalar: {} vs {}",
            gc[1],
            gf[1]
        );
    }

    #[test]
    fn uniform_linear_chunks_speculate_and_track() {
        let mut f = FedSuCoarse::new(4, 0.1, 10.0);
        let mut global = vec![0.0f32; 8];
        let updates = vec![-0.01f32; 8];
        for round in 0..20 {
            drive(&mut f, &mut global, &updates, round);
        }
        assert!(f.predictable.iter().all(|&p| p));
        for (j, v) in global.iter().enumerate() {
            assert!((v - (-0.01 * 20.0)).abs() < 1e-4, "scalar {j} drifted: {v}");
        }
        let skips = f.skip_fractions().unwrap();
        assert_eq!(skips.len(), 8);
        assert!(skips[0] > 0.3);
    }

    #[test]
    fn ragged_final_chunk_is_handled() {
        let mut f = FedSuCoarse::new(3, 0.1, 10.0);
        let mut global = vec![0.0f32; 7]; // chunks of 3, 3, 1
        let updates = vec![-0.01f32; 7];
        for round in 0..10 {
            let out = drive(&mut f, &mut global, &updates, round);
            assert_eq!(out.total_scalars, 7);
        }
        assert_eq!(f.n_chunks(), 3);
    }

    #[test]
    #[should_panic(expected = "chunk size must be positive")]
    fn zero_chunk_panics() {
        FedSuCoarse::new(0, 0.1, 1.0);
    }
}
