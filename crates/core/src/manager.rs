//! The FedSU manager: predictability mask, speculative updating and error
//! feedback, implemented as a [`SyncStrategy`] (the Rust analogue of the
//! paper's `FedSU_Manager` Python module, Algorithm 1).

use crate::diagnosis::EmaPair;
use crate::join::JoinState;
use fedsu_fl::{AggregateOutcome, SyncStrategy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// FedSU hyper-parameters (Sec. VI-A defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FedSuConfig {
    /// Predictability threshold `T_R` on the oscillation ratio (paper: 0.01).
    pub t_r: f64,
    /// Error-feedback threshold `T_S` (paper: 1.0).
    pub t_s: f64,
    /// EMA decay `θ` for the second-order statistics (close to 1).
    pub theta: f32,
    /// Length of the first no-checking period, in rounds.
    pub initial_no_check: u16,
    /// Cap on the no-checking period.
    pub max_no_check: u16,
    /// Global updates a scalar must be observed for before it may enter
    /// speculation (the diagnosis needs a few second-order samples).
    pub warmup_updates: u16,
    /// Extension beyond the paper: apply the aggregated error as a
    /// correction when a parameter exits speculation (the aggregate is
    /// already paid for). Off by default for paper fidelity; the ablation
    /// bench measures its effect.
    pub correct_on_exit: bool,
    /// RNG seed (used only by the random-entry ablation variant).
    pub seed: u64,
}

impl Default for FedSuConfig {
    fn default() -> Self {
        FedSuConfig {
            t_r: 0.01,
            t_s: 1.0,
            theta: 0.9,
            initial_no_check: 1,
            max_no_check: 1024,
            warmup_updates: 4,
            correct_on_exit: false,
            seed: 0xFED5,
        }
    }
}

/// How parameters enter speculation.
#[derive(Debug, Clone, Copy, PartialEq)]
enum EntryPolicy {
    /// Oscillation-ratio linearity diagnosis (standard FedSU).
    Oscillation,
    /// Random entry with a preset probability (ablation variant v2).
    Random {
        probability: f64,
    },
}

/// How speculation ends.
#[derive(Debug, Clone, Copy, PartialEq)]
enum ExitPolicy {
    /// Error-feedback no-checking periods (standard FedSU).
    ErrorFeedback,
    /// A fixed speculation length with no feedback (ablation v1/v2).
    FixedPeriod(u16),
}

/// What happened to a tracked parameter's mask.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum MaskEventKind {
    /// The parameter entered speculative updating with the given slope.
    Enter {
        /// Profiled per-round update used for prediction.
        slope: f32,
    },
    /// The parameter returned to regular updating.
    Exit {
        /// Feedback signal `S` at exit (`None` for fixed-period exits).
        feedback: Option<f64>,
    },
}

/// A mask transition of one tracked parameter (drives Fig. 6's markers).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MaskEvent {
    /// Round in which the transition happened.
    pub round: usize,
    /// Scalar parameter index.
    pub param: usize,
    /// Transition kind.
    pub kind: MaskEventKind,
}

/// Per-round aggregate statistics of the manager (instrumentation for the
/// microscopic figures and for monitoring deployments).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RoundStats {
    /// Round index.
    #[serde(default)]
    pub round: usize,
    /// Scalars in speculative mode during the round.
    #[serde(default)]
    pub predictable: usize,
    /// Error checks performed (scalar aggregations paid).
    #[serde(default)]
    pub checks: usize,
    /// Parameters that entered speculation this round.
    #[serde(default)]
    pub enters: usize,
    /// Parameters demoted to regular updating this round.
    #[serde(default)]
    pub exits: usize,
}

/// Federated Learning with Speculative Updating.
///
/// See the crate docs for the algorithm summary and
/// [`FedSuConfig`] for tunables.
#[derive(Debug, Clone)]
pub struct FedSu {
    config: FedSuConfig,
    entry: EntryPolicy,
    exit: ExitPolicy,
    variant_name: &'static str,

    // Replicated (identical-across-clients) per-scalar state.
    predictable: Vec<bool>,
    slope: Vec<f32>,
    no_check_len: Vec<u16>,
    no_check_remaining: Vec<u16>,
    prev_update: Vec<f32>,
    ema: Vec<EmaPair>,
    obs: Vec<u16>,

    // Genuinely per-client state: accumulated local prediction errors.
    errors: Vec<Vec<f32>>,
    // Activity mask of the previous aggregation, to detect rejoining
    // clients whose error accumulators must be re-synchronized.
    prev_active: Vec<bool>,

    // Statistics.
    predictable_rounds: Vec<u64>,
    rounds_seen: usize,
    rng: StdRng,
    tracked: Vec<usize>,
    events: Vec<MaskEvent>,
    last_upload_scalars: u64,
    total_enters: u64,
    total_exits: u64,
    history: Vec<RoundStats>,
}

impl FedSu {
    /// Standard FedSU: oscillation-ratio diagnosis + error feedback.
    pub fn new(config: FedSuConfig) -> Self {
        Self::build(config, EntryPolicy::Oscillation, ExitPolicy::ErrorFeedback, "fedsu")
    }

    /// Ablation variant v1 (Sec. VI-D): linearity diagnosis but a *fixed*
    /// speculation period of `period` rounds and no error feedback.
    pub fn variant_v1(config: FedSuConfig, period: u16) -> Self {
        Self::build(config, EntryPolicy::Oscillation, ExitPolicy::FixedPeriod(period), "fedsu-v1")
    }

    /// Ablation variant v2 (Sec. VI-D): parameters enter speculation at
    /// random with `probability` per round, for a fixed `period`, with
    /// neither diagnosis nor feedback.
    pub fn variant_v2(config: FedSuConfig, probability: f64, period: u16) -> Self {
        Self::build(
            config,
            EntryPolicy::Random { probability },
            ExitPolicy::FixedPeriod(period),
            "fedsu-v2",
        )
    }

    fn build(config: FedSuConfig, entry: EntryPolicy, exit: ExitPolicy, name: &'static str) -> Self {
        assert!(config.t_r > 0.0, "T_R must be positive");
        assert!(config.t_s > 0.0, "T_S must be positive");
        assert!(config.theta > 0.0 && config.theta < 1.0, "theta must be in (0, 1)");
        assert!(config.initial_no_check >= 1, "initial no-check period must be >= 1");
        let rng = StdRng::seed_from_u64(config.seed);
        FedSu {
            config,
            entry,
            exit,
            variant_name: name,
            predictable: Vec::new(),
            slope: Vec::new(),
            no_check_len: Vec::new(),
            no_check_remaining: Vec::new(),
            prev_update: Vec::new(),
            ema: Vec::new(),
            obs: Vec::new(),
            errors: Vec::new(),
            prev_active: Vec::new(),
            predictable_rounds: Vec::new(),
            rounds_seen: 0,
            rng,
            tracked: Vec::new(),
            events: Vec::new(),
            last_upload_scalars: 0,
            total_enters: 0,
            total_exits: 0,
            history: Vec::new(),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FedSuConfig {
        &self.config
    }

    /// Records mask transitions for the given scalar indices (Fig. 6).
    pub fn track_params(&mut self, indices: &[usize]) {
        self.tracked = indices.to_vec();
    }

    /// Mask-transition events of tracked parameters, in round order.
    pub fn events(&self) -> &[MaskEvent] {
        &self.events
    }

    /// Per-round aggregate statistics since construction.
    pub fn history(&self) -> &[RoundStats] {
        &self.history
    }

    /// Total speculation entries across all scalars and rounds.
    pub fn total_enters(&self) -> u64 {
        self.total_enters
    }

    /// Total speculation exits across all scalars and rounds.
    pub fn total_exits(&self) -> u64 {
        self.total_exits
    }

    /// Mean length (rounds) of the speculative periods observed so far:
    /// total speculative rounds over total entries. The paper measures this
    /// to parameterize its fixed-period ablation variants (Sec. VI-D).
    ///
    /// Before any scalar has entered speculation the statistic is undefined
    /// (0/0); this returns the documented sentinel `0.0` — never NaN — so
    /// downstream reports and ablation parameterization stay finite.
    pub fn mean_speculation_period(&self) -> f64 {
        if self.total_enters == 0 {
            0.0
        } else {
            self.predictable_rounds.iter().sum::<u64>() as f64 / self.total_enters as f64
        }
    }

    /// Empirical per-round, per-scalar speculation-entry probability: total
    /// entries over (scalars × rounds). Parameterizes the random-entry
    /// ablation variant v2, as the paper measured it.
    ///
    /// With zero scalars or before the first observed round the denominator
    /// is zero and the bare division would yield NaN; this returns the
    /// documented sentinel `0.0` — never NaN — instead.
    pub fn empirical_entry_probability(&self) -> f64 {
        let denom = (self.predictable.len() * self.rounds_seen) as f64;
        if denom == 0.0 {
            0.0
        } else {
            self.total_enters as f64 / denom
        }
    }

    /// The current predictability mask.
    pub fn predictable_mask(&self) -> &[bool] {
        &self.predictable
    }

    /// Number of currently-speculative scalars.
    pub fn predictable_count(&self) -> usize {
        self.predictable.iter().filter(|&&p| p).count()
    }

    /// Current oscillation ratio of scalar `j`.
    ///
    /// With an empty observation window (before any update has been
    /// absorbed) the EMA magnitudes are both zero and the raw ratio would be
    /// 0/0; the estimator returns its documented sentinel `0.0` — never NaN
    /// (see `EmaPair::ratio`).
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range; use [`Self::try_oscillation_ratio`]
    /// for a non-panicking variant.
    pub fn oscillation_ratio(&self, j: usize) -> f64 {
        self.try_oscillation_ratio(j)
            .expect("scalar index within model parameter count")
    }

    /// Non-panicking [`Self::oscillation_ratio`]: `None` when `j` is out of
    /// range, otherwise the same documented-sentinel semantics.
    pub fn try_oscillation_ratio(&self, j: usize) -> Option<f64> {
        self.ema.get(j).map(EmaPair::ratio)
    }

    /// Bytes of FedSU state resident on *one* client: the predictability
    /// mask and no-checking bookkeeping, the EMA pair, the profiled slope,
    /// and the local error accumulator (Table II's memory inflation).
    pub fn per_client_state_bytes(&self) -> usize {
        let n = self.predictable.len();
        n * (1 // predictable mask bit (stored as byte)
            + std::mem::size_of::<f32>() // slope
            + 2 * std::mem::size_of::<u16>() // no-check bookkeeping
            + std::mem::size_of::<f32>() // prev update
            + 2 * std::mem::size_of::<f32>() // EMA pair
            + std::mem::size_of::<u16>() // observation counter
            + std::mem::size_of::<f32>()) // local error accumulator
    }

    /// Exports the replicated state a joining client must download
    /// (Sec. V's dynamicity protocol).
    pub fn export_join_state(&self) -> JoinState {
        JoinState {
            predictable: self.predictable.clone(),
            slope: self.slope.clone(),
            no_check_len: self.no_check_len.clone(),
            no_check_remaining: self.no_check_remaining.clone(),
            prev_update: self.prev_update.clone(),
            ema: self.ema.clone(),
            obs: self.obs.clone(),
            rounds_seen: self.rounds_seen as u64,
        }
    }

    /// Restores replicated state from a join snapshot (what a fresh client
    /// applies after downloading it).
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's size disagrees with the manager's (a model
    /// mismatch).
    pub fn apply_join_state(&mut self, state: &JoinState) {
        if !self.predictable.is_empty() {
            assert_eq!(state.predictable.len(), self.predictable.len(), "join state size mismatch");
        }
        self.predictable = state.predictable.clone();
        self.slope = state.slope.clone();
        self.no_check_len = state.no_check_len.clone();
        self.no_check_remaining = state.no_check_remaining.clone();
        self.prev_update = state.prev_update.clone();
        self.ema = state.ema.clone();
        self.obs = state.obs.clone();
        self.rounds_seen = state.rounds_seen as usize;
        let n = self.predictable.len();
        if self.predictable_rounds.len() != n {
            self.predictable_rounds = vec![0; n];
        }
    }

    fn ensure_capacity(&mut self, n_params: usize, n_clients: usize) {
        if self.predictable.len() != n_params {
            // Resize in place: steady rounds with a stable model never
            // reallocate, and a size change reuses existing capacity.
            self.predictable.clear();
            self.predictable.resize(n_params, false);
            self.slope.clear();
            self.slope.resize(n_params, 0.0);
            self.no_check_len.clear();
            self.no_check_len.resize(n_params, 0);
            self.no_check_remaining.clear();
            self.no_check_remaining.resize(n_params, 0);
            self.prev_update.clear();
            self.prev_update.resize(n_params, 0.0);
            self.ema.clear();
            self.ema.resize_with(n_params, EmaPair::default);
            self.obs.clear();
            self.obs.resize(n_params, 0);
            self.predictable_rounds.clear();
            self.predictable_rounds.resize(n_params, 0);
        }
        if self.errors.len() != n_clients || self.errors.first().is_some_and(|e| e.len() != n_params) {
            self.errors.resize_with(n_clients, Vec::new);
            for e in &mut self.errors {
                e.clear();
                e.resize(n_params, 0.0);
            }
            self.prev_active.clear();
            self.prev_active.resize(n_clients, false);
        }
    }

    /// Re-synchronizes per-client state for clients that were absent at the
    /// previous aggregation and are active again now (Sec. V's rejoin path):
    /// a rejoiner downloads fresh replicated state, so its stale local error
    /// accumulator must not poison the feedback signal `S`.
    fn resync_rejoiners(&mut self, active: &[bool]) {
        if self.prev_active.len() != active.len() {
            self.prev_active.clear();
            self.prev_active.resize(active.len(), false);
        }
        // `prev_active` was just resized to `active.len()` and `errors` is
        // one accumulator per client, so the zip walks all clients.
        for ((errs, &act), &prev) in self.errors.iter_mut().zip(active).zip(&self.prev_active) {
            if act && !prev {
                errs.fill(0.0);
            }
        }
        self.prev_active.copy_from_slice(active);
    }

    fn promote(&mut self, j: usize, slope: f32, round: usize) {
        self.total_enters += 1;
        // Every caller passes `j < n` (the aggregate loop index) and all the
        // per-scalar arrays are length `n`, so these lookups cannot miss;
        // `get_mut` keeps the round loop free of panic branches.
        if let Some(p) = self.predictable.get_mut(j) {
            *p = true;
        }
        if let Some(s) = self.slope.get_mut(j) {
            *s = slope;
        }
        let period = match self.exit {
            ExitPolicy::ErrorFeedback => self.config.initial_no_check,
            ExitPolicy::FixedPeriod(p) => p.max(1),
        };
        if let Some(l) = self.no_check_len.get_mut(j) {
            *l = period;
        }
        if let Some(r) = self.no_check_remaining.get_mut(j) {
            *r = period;
        }
        for e in &mut self.errors {
            if let Some(v) = e.get_mut(j) {
                *v = 0.0;
            }
        }
        if self.tracked.contains(&j) {
            self.events.push(MaskEvent { round, param: j, kind: MaskEventKind::Enter { slope } });
        }
    }

    fn demote(&mut self, j: usize, feedback: Option<f64>, round: usize) {
        self.total_exits += 1;
        // Same bounds argument as `promote`: `j` is an aggregate-loop index
        // into length-`n` arrays, so none of these lookups can miss.
        if let Some(p) = self.predictable.get_mut(j) {
            *p = false;
        }
        if let Some(l) = self.no_check_len.get_mut(j) {
            *l = 0;
        }
        if let Some(r) = self.no_check_remaining.get_mut(j) {
            *r = 0;
        }
        if let Some(o) = self.obs.get_mut(j) {
            *o = 0;
        }
        if let Some(e) = self.ema.get_mut(j) {
            e.reset();
        }
        for e in &mut self.errors {
            if let Some(v) = e.get_mut(j) {
                *v = 0.0;
            }
        }
        if self.tracked.contains(&j) {
            self.events.push(MaskEvent { round, param: j, kind: MaskEventKind::Exit { feedback } });
        }
    }

    /// Verifies the mask/no-check-period coupling after a round (armed by
    /// `FEDSU_CHECK_INVARIANTS=1`): a speculative scalar always has a live
    /// no-checking period `1 ≤ remaining ≤ len`, and a regular scalar has
    /// none at all. [`promote`]/[`demote`]/period-extension are the only
    /// writers, so any divergence means the state machine itself broke.
    ///
    /// [`promote`]: FedSu::promote
    /// [`demote`]: FedSu::demote
    fn check_mask_invariants(&self, round: usize) {
        if !fedsu_tensor::invariant::enabled() {
            return;
        }
        // The three per-scalar arrays share length `n`, so the zip covers
        // every scalar.
        for (j, ((&p, &len), &remaining)) in self
            .predictable
            .iter()
            .zip(&self.no_check_len)
            .zip(&self.no_check_remaining)
            .enumerate()
        {
            if p {
                assert!(
                    (1..=len).contains(&remaining),
                    "invariant violation [fedsu-mask]: round {round}, scalar {j}: \
                     predictable but no-check period is remaining={remaining} of \
                     len={len} (expected 1 <= remaining <= len)"
                );
            } else {
                assert!(
                    len == 0 && remaining == 0,
                    "invariant violation [fedsu-mask]: round {round}, scalar {j}: \
                     regular-updating scalar carries a no-check period \
                     (len={len}, remaining={remaining})"
                );
            }
        }
    }
}

impl Default for FedSu {
    fn default() -> Self {
        FedSu::new(FedSuConfig::default())
    }
}

impl SyncStrategy for FedSu {
    fn name(&self) -> &str {
        self.variant_name
    }

    fn prepare_uploads_into(
        &mut self,
        _round: usize,
        locals: &[Vec<f32>],
        global: &[f32],
        out: &mut Vec<u64>,
    ) {
        self.ensure_capacity(global.len(), locals.len());
        let unpredictable = self.predictable.iter().filter(|&&p| !p).count() as u64;
        let check_due = if matches!(self.exit, ExitPolicy::ErrorFeedback) {
            self.predictable
                .iter()
                .zip(&self.no_check_remaining)
                .filter(|&(&p, &r)| p && r == 1)
                .count() as u64
        } else {
            0
        };
        self.last_upload_scalars = unpredictable + check_due;
        out.clear();
        out.resize(locals.len(), self.last_upload_scalars);
    }

    fn aggregate(
        &mut self,
        round: usize,
        locals: &[Vec<f32>],
        selected: &[usize],
        active: &[bool],
        global: &mut [f32],
    ) -> AggregateOutcome {
        self.ensure_capacity(global.len(), locals.len());
        self.resync_rejoiners(active);
        let n = global.len();
        if selected.is_empty() {
            // Nothing usable arrived (every upload dropped, lost, or
            // quarantined): hold all values and all mask/feedback state.
            // Consuming a no-checking round here would silently skip error
            // checks that no client ever got to vote on.
            self.rounds_seen += 1;
            self.history.push(RoundStats {
                round,
                predictable: self.predictable_count(),
                checks: 0,
                enters: 0,
                exits: 0,
            });
            return AggregateOutcome { broadcast_scalars: 0, synced_scalars: 0, total_scalars: n };
        }
        let inv = 1.0 / selected.len().max(1) as f32;
        let accumulate_errors = matches!(self.exit, ExitPolicy::ErrorFeedback);
        let mut synced = 0usize;
        let mut checked = 0usize;
        let enters_before = self.total_enters;
        let exits_before = self.total_exits;

        for j in 0..n {
            if self.predictable[j] {
                // Speculative update: masked replacement with the predicted
                // value; no synchronization for this scalar.
                self.predictable_rounds[j] += 1;
                let predicted = global[j] + self.slope[j];
                if accumulate_errors {
                    for (i, &act) in active.iter().enumerate() {
                        if act {
                            self.errors[i][j] += locals[i][j] - predicted;
                        }
                    }
                }
                global[j] = predicted;

                self.no_check_remaining[j] = self.no_check_remaining[j].saturating_sub(1);
                if self.no_check_remaining[j] == 0 {
                    match self.exit {
                        ExitPolicy::ErrorFeedback => {
                            // The no-checking period expired: aggregate the
                            // accumulated errors (this costs one scalar of
                            // communication) and evaluate Eq. 3.
                            checked += 1;
                            let e_mean: f32 =
                                selected.iter().map(|&c| self.errors[c][j]).sum::<f32>() * inv;
                            let s = f64::from(e_mean.abs())
                                / f64::from(self.slope[j].abs().max(f32::EPSILON));
                            if s < self.config.t_s {
                                // Linearity persists: extend by one round.
                                self.no_check_len[j] =
                                    self.no_check_len[j].saturating_add(1).min(self.config.max_no_check);
                                self.no_check_remaining[j] = self.no_check_len[j];
                            } else {
                                if self.config.correct_on_exit {
                                    global[j] += e_mean;
                                }
                                self.demote(j, Some(s), round);
                            }
                        }
                        ExitPolicy::FixedPeriod(_) => {
                            self.demote(j, None, round);
                        }
                    }
                }
            } else {
                // Regular synchronization: average the selected clients.
                synced += 1;
                let old = global[j];
                let mut avg = 0.0f32;
                for &c in selected {
                    avg += locals[c][j];
                }
                avg *= inv;
                global[j] = avg;
                let g = avg - old;

                if self.obs[j] == 0 {
                    // (Re)seed the first-order difference.
                    self.prev_update[j] = g;
                    self.obs[j] = 1;
                } else {
                    let g2 = g - self.prev_update[j];
                    self.ema[j].observe(g2, self.config.theta);
                    self.prev_update[j] = g;
                    self.obs[j] = self.obs[j].saturating_add(1);

                    if self.obs[j] >= self.config.warmup_updates {
                        let enter = match self.entry {
                            EntryPolicy::Oscillation => {
                                // Second differences negligible relative to
                                // the gradient are numerical noise on a
                                // linear trajectory (cf. diagnosis::ratio).
                                let negligible =
                                    self.ema[j].magnitude <= 1e-3 * self.prev_update[j].abs();
                                negligible || self.ema[j].ratio() < self.config.t_r
                            }
                            EntryPolicy::Random { probability } => self.rng.gen_bool(probability),
                        };
                        if enter {
                            self.promote(j, g, round);
                        }
                    }
                }
            }
        }
        self.rounds_seen += 1;
        self.history.push(RoundStats {
            round,
            predictable: n - synced,
            checks: checked,
            enters: (self.total_enters - enters_before) as usize,
            exits: (self.total_exits - exits_before) as usize,
        });
        self.check_mask_invariants(round);
        AggregateOutcome {
            broadcast_scalars: synced + checked,
            synced_scalars: synced + checked,
            total_scalars: n,
        }
    }

    fn state_bytes(&self) -> usize {
        // Per-client replicated state, times the number of client replicas
        // the emulation is standing in for.
        self.per_client_state_bytes()
            .checked_mul(self.errors.len().max(1))
            .expect("replicated state total fits in usize: per-client state is a few KB")
    }

    fn join_state(&self) -> Option<Vec<u8>> {
        if self.predictable.is_empty() {
            None
        } else {
            Some(self.export_join_state().to_bytes())
        }
    }

    fn skip_fractions(&self) -> Option<Vec<f64>> {
        if self.rounds_seen == 0 {
            return None;
        }
        Some(
            self.predictable_rounds
                .iter()
                .map(|&p| p as f64 / self.rounds_seen as f64)
                .collect(),
        )
    }

    fn as_any(&self) -> Option<&dyn std::any::Any> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drives one synthetic round: every client reports `global + update_i`.
    fn drive_round(
        fedsu: &mut FedSu,
        global: &mut Vec<f32>,
        per_client_updates: &[Vec<f32>],
        round: usize,
    ) -> AggregateOutcome {
        let locals: Vec<Vec<f32>> = per_client_updates
            .iter()
            .map(|u| global.iter().zip(u).map(|(g, d)| g + d).collect())
            .collect();
        let selected: Vec<usize> = (0..locals.len()).collect();
        let active = vec![true; locals.len()];
        fedsu.prepare_uploads(round, &locals, global);
        fedsu.aggregate(round, &locals, &selected, &active, global)
    }

    fn quick_config() -> FedSuConfig {
        FedSuConfig { warmup_updates: 3, ..FedSuConfig::default() }
    }

    #[test]
    fn empty_window_statistics_return_finite_sentinels() {
        // A fresh manager has seen nothing: every statistic's denominator is
        // zero and the bare division would be NaN. The documented sentinel
        // is 0.0.
        let f = FedSu::new(quick_config());
        assert_eq!(f.mean_speculation_period(), 0.0);
        assert_eq!(f.empirical_entry_probability(), 0.0);
        assert!(f.try_oscillation_ratio(0).is_none(), "no scalars allocated yet");
    }

    #[test]
    fn oscillation_ratio_is_zero_not_nan_before_any_signal() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0, 0.0];
        // Identically-zero updates keep both EMA terms at zero (raw 0/0).
        drive_round(&mut f, &mut global, &[vec![0.0, 0.0]], 0);
        for j in 0..2 {
            let r = f.oscillation_ratio(j);
            assert_eq!(r, 0.0, "scalar {j}");
            assert!(!r.is_nan(), "scalar {j}");
            assert_eq!(f.try_oscillation_ratio(j), Some(r));
        }
        assert!(f.try_oscillation_ratio(2).is_none(), "out of range is None, not a panic");
        assert!(f.mean_speculation_period().is_finite());
        assert!(f.empirical_entry_probability().is_finite());
    }

    #[test]
    fn first_rounds_are_fully_synchronized() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0, 0.0];
        let out = drive_round(&mut f, &mut global, &[vec![0.1, 0.2]], 0);
        assert_eq!(out.synced_scalars, 2);
        assert_eq!(out.total_scalars, 2);
        assert!((global[0] - 0.1).abs() < 1e-6);
    }

    #[test]
    fn linear_parameter_enters_speculation() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0];
        // Constant per-round update -> linear trajectory.
        for round in 0..6 {
            drive_round(&mut f, &mut global, &[vec![-0.01]], round);
        }
        assert_eq!(f.predictable_count(), 1, "ratio {}", f.oscillation_ratio(0));
    }

    #[test]
    fn speculative_parameter_skips_synchronization() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0];
        for round in 0..6 {
            drive_round(&mut f, &mut global, &[vec![-0.01]], round);
        }
        assert!(f.predictable_mask()[0]);
        let before = global[0];
        // Client reports something, but the speculative value wins.
        let out = drive_round(&mut f, &mut global, &[vec![-0.01]], 6);
        assert!((global[0] - (before - 0.01)).abs() < 1e-6, "speculative step");
        // Either fully skipped or the error-check scalar was transmitted.
        assert!(out.synced_scalars <= 1);
    }

    #[test]
    fn speculation_tracks_true_linear_trajectory() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0];
        let mut reference = 0.0f32;
        for round in 0..40 {
            drive_round(&mut f, &mut global, &[vec![-0.01]], round);
            reference -= 0.01;
            assert!((global[0] - reference).abs() < 1e-4, "round {round}: {} vs {reference}", global[0]);
        }
        // Long linear stretch: most rounds skipped.
        let skip = f.skip_fractions().unwrap()[0];
        assert!(skip > 0.5, "skip fraction {skip}");
    }

    #[test]
    fn no_check_period_grows_on_successful_checks() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0];
        for round in 0..40 {
            drive_round(&mut f, &mut global, &[vec![-0.01]], round);
        }
        assert!(f.predictable_mask()[0]);
        // After many successful checks the no-check period exceeds its
        // initial value of 1.
        assert!(f.no_check_len[0] > 1, "period {}", f.no_check_len[0]);
    }

    #[test]
    fn broken_linearity_triggers_exit_via_error_feedback() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0];
        let mut round = 0;
        for _ in 0..8 {
            drive_round(&mut f, &mut global, &[vec![-0.01]], round);
            round += 1;
        }
        assert!(f.predictable_mask()[0]);
        // The true dynamics flip to a strong opposite drift: the local
        // errors skew and the next check must demote the parameter.
        for _ in 0..10 {
            drive_round(&mut f, &mut global, &[vec![0.05]], round);
            round += 1;
            if !f.predictable_mask()[0] {
                break;
            }
        }
        assert!(!f.predictable_mask()[0], "parameter should have exited speculation");
    }

    #[test]
    fn oscillating_errors_do_not_trigger_exit() {
        // Mini-batch-style noise that cancels around the profiled slope
        // keeps the parameter speculative (Σe stays bounded, Eq. 3).
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0];
        // Noise-free warmup so the profiled slope is exact.
        let mut round = 0;
        while !f.predictable_mask().first().copied().unwrap_or(false) {
            drive_round(&mut f, &mut global, &[vec![-0.01]], round);
            round += 1;
            assert!(round < 10, "should promote within warmup");
        }
        for _ in 0..30 {
            let noise = if round % 2 == 0 { 0.002 } else { -0.002 };
            drive_round(&mut f, &mut global, &[vec![-0.01 + noise]], round);
            round += 1;
        }
        assert!(f.predictable_mask()[0], "cancelling noise should not break speculation");
    }

    #[test]
    fn biased_slope_profile_is_caught_by_error_feedback() {
        // If the profiled slope bakes in one round's noise, the systematic
        // bias accumulates in Σe and the check eventually demotes the
        // parameter — exactly the safety property Sec. IV-C claims.
        let mut f = FedSu::new(quick_config());
        f.track_params(&[0]);
        let mut global = vec![0.0];
        // Promote with a biased observation (-0.013), then feed the true
        // trend (-0.01): per-round error +0.003 accumulates.
        let mut round = 0;
        while !f.predictable_mask().first().copied().unwrap_or(false) {
            drive_round(&mut f, &mut global, &[vec![-0.013]], round);
            round += 1;
            assert!(round < 10);
        }
        for _ in 0..40 {
            drive_round(&mut f, &mut global, &[vec![-0.01]], round);
            round += 1;
        }
        assert!(
            f.events().iter().any(|e| matches!(e.kind, MaskEventKind::Exit { .. })),
            "accumulated bias should trigger an exit"
        );
    }

    #[test]
    fn upload_counts_reflect_mask_and_checks() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0, 0.0];
        // Scalar 0 linear; scalar 1 alternates curvature (stays regular).
        for round in 0..6 {
            let w = if round % 2 == 0 { 0.03 } else { -0.01 };
            drive_round(&mut f, &mut global, &[vec![-0.01, w]], round);
        }
        assert!(f.predictable_mask()[0]);
        assert!(!f.predictable_mask()[1]);
        let locals = vec![global.clone()];
        let up = f.prepare_uploads(99, &locals, &global);
        // Scalar 1 always uploads; scalar 0 uploads only at check rounds.
        assert!(up[0] == 1 || up[0] == 2);
    }

    #[test]
    fn v1_exits_after_fixed_period_without_checks() {
        let period = 3u16;
        let mut f = FedSu::variant_v1(quick_config(), period);
        f.track_params(&[0]);
        let mut global = vec![0.0];
        let mut round = 0;
        // Promote.
        while !f.predictable_mask().first().copied().unwrap_or(false) {
            drive_round(&mut f, &mut global, &[vec![-0.01]], round);
            round += 1;
            assert!(round < 10, "should promote within warmup");
        }
        // While speculative, uploads never include check scalars under v1.
        let locals = vec![global.clone()];
        assert_eq!(f.prepare_uploads(round, &locals, &global), vec![0]);
        // The parameter must exit exactly after `period` speculative rounds,
        // with no communication (fixed period, no feedback).
        for _ in 0..period {
            assert!(f.predictable_mask()[0]);
            drive_round(&mut f, &mut global, &[vec![-0.01]], round);
            round += 1;
        }
        assert!(!f.predictable_mask()[0], "v1 must exit after its fixed period");
        let exits: Vec<_> = f
            .events()
            .iter()
            .filter(|e| matches!(e.kind, MaskEventKind::Exit { feedback: None }))
            .collect();
        assert_eq!(exits.len(), 1, "fixed-period exit carries no feedback signal");
        assert_eq!(f.name(), "fedsu-v1");
    }

    #[test]
    fn v2_enters_randomly_without_linearity() {
        // Wildly curving parameter: oscillation diagnosis would never admit
        // it, but v2 enters by probability alone.
        let mut f = FedSu::variant_v2(quick_config(), 0.5, 2);
        let mut global = vec![0.0];
        let mut entered = false;
        for round in 0..30 {
            let w = if round % 2 == 0 { 0.05 } else { -0.05 };
            drive_round(&mut f, &mut global, &[vec![w]], round);
            entered |= f.predictable_count() > 0;
        }
        assert!(entered, "v2 should enter speculation by chance");
        assert_eq!(f.name(), "fedsu-v2");
    }

    #[test]
    fn mask_events_recorded_for_tracked_params() {
        let mut f = FedSu::new(quick_config());
        f.track_params(&[0]);
        let mut global = vec![0.0];
        let mut round = 0;
        for _ in 0..8 {
            drive_round(&mut f, &mut global, &[vec![-0.01]], round);
            round += 1;
        }
        for _ in 0..10 {
            drive_round(&mut f, &mut global, &[vec![0.08]], round);
            round += 1;
        }
        let events = f.events();
        assert!(events.iter().any(|e| matches!(e.kind, MaskEventKind::Enter { .. })));
        assert!(events.iter().any(|e| matches!(e.kind, MaskEventKind::Exit { .. })));
        // Events alternate enter/exit for a single tracked scalar.
        for w in events.windows(2) {
            if let (MaskEventKind::Enter { .. }, MaskEventKind::Enter { .. }) = (w[0].kind, w[1].kind) {
                panic!("double enter without exit");
            }
        }
    }

    #[test]
    fn join_state_roundtrip_preserves_decisions() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0, 0.0];
        for round in 0..8 {
            let w = if round % 2 == 0 { 0.03 } else { -0.01 };
            drive_round(&mut f, &mut global, &[vec![-0.01, w]], round);
        }
        let state = f.export_join_state();
        let bytes = state.to_bytes();
        let decoded = JoinState::from_bytes(&bytes).unwrap();
        assert_eq!(state, decoded);

        // A fresh manager applying the snapshot makes identical decisions.
        let mut joiner = FedSu::new(quick_config());
        joiner.ensure_capacity(2, 1);
        joiner.apply_join_state(&decoded);
        assert_eq!(joiner.predictable_mask(), f.predictable_mask());
        let locals = vec![global.clone()];
        let up_orig = f.prepare_uploads(9, &locals, &global);
        let up_join = joiner.prepare_uploads(9, &locals, &global);
        assert_eq!(up_orig, up_join);
    }

    #[test]
    fn state_bytes_scale_with_model_and_clients() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0; 10];
        drive_round(&mut f, &mut global, &[vec![0.0; 10], vec![0.0; 10]], 0);
        let per_client = f.per_client_state_bytes();
        assert!(per_client >= 10 * 20, "per-client {per_client}");
        assert_eq!(f.state_bytes(), per_client * 2);
    }

    #[test]
    fn stagnating_parameter_is_a_linear_special_case() {
        // Zero updates: the stagnating pattern APF exploits must also be
        // caught by FedSU (slope 0).
        let mut f = FedSu::new(quick_config());
        let mut global = vec![1.0];
        for round in 0..6 {
            drive_round(&mut f, &mut global, &[vec![0.0]], round);
        }
        assert!(f.predictable_mask()[0]);
        assert_eq!(f.slope[0], 0.0);
        assert!((global[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn inactive_clients_do_not_accumulate_errors() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.0];
        // Promote with both clients active.
        for round in 0..6 {
            let locals = vec![vec![global[0] - 0.01], vec![global[0] - 0.01]];
            f.prepare_uploads(round, &locals, &global);
            f.aggregate(round, &locals, &[0, 1], &[true, true], &mut global);
        }
        assert!(f.predictable_mask()[0]);
        // Client 1 goes inactive; its stale local would poison the errors.
        let poisoned = vec![vec![global[0] - 0.01], vec![999.0]];
        f.prepare_uploads(6, &poisoned, &global);
        f.aggregate(6, &poisoned, &[0], &[true, false], &mut global);
        assert_eq!(f.errors[1][0], 0.0, "inactive client error must stay untouched");
    }

    #[test]
    fn rejoining_client_errors_are_resynced() {
        let mut f = FedSu::new(FedSuConfig { warmup_updates: 3, t_s: 10.0, ..FedSuConfig::default() });
        let mut global = vec![0.0f32];
        let mut round = 0;
        while !f.predictable_mask().first().copied().unwrap_or(false) {
            let locals = vec![vec![global[0] - 0.01], vec![global[0] - 0.01]];
            f.prepare_uploads(round, &locals, &global);
            f.aggregate(round, &locals, &[0, 1], &[true, true], &mut global);
            round += 1;
            assert!(round < 10, "should promote within warmup");
        }
        // Speculative rounds with a slight mismatch: both clients accumulate
        // prediction error.
        for _ in 0..2 {
            let locals = vec![vec![global[0] - 0.02], vec![global[0] - 0.02]];
            f.prepare_uploads(round, &locals, &global);
            f.aggregate(round, &locals, &[0, 1], &[true, true], &mut global);
            round += 1;
        }
        assert!(f.predictable_mask()[0], "should still be speculative");
        assert_ne!(f.errors[1][0], 0.0, "client 1 accumulated error before leaving");
        // Client 1 leaves for a round...
        let locals = vec![vec![global[0] - 0.02], vec![0.0]];
        f.prepare_uploads(round, &locals, &global);
        f.aggregate(round, &locals, &[0], &[true, false], &mut global);
        round += 1;
        // ...and rejoins reporting exactly the predicted value: its stale
        // error must have been cleared, leaving only this round's zero
        // residual.
        assert!(f.predictable_mask()[0]);
        let predicted = global[0] + f.slope[0];
        let locals = vec![vec![global[0] - 0.02], vec![predicted]];
        f.prepare_uploads(round, &locals, &global);
        f.aggregate(round, &locals, &[0], &[true, true], &mut global);
        assert_eq!(f.errors[1][0], 0.0, "rejoiner's stale error must be resynced");
    }

    #[test]
    fn empty_selection_holds_global_and_state() {
        let mut f = FedSu::new(quick_config());
        let mut global = vec![0.5f32, -0.25];
        let locals = vec![vec![9.0, 9.0]];
        f.prepare_uploads(0, &locals, &global);
        let out = f.aggregate(0, &locals, &[], &[false], &mut global);
        assert_eq!(global, vec![0.5, -0.25], "a barren round must hold all values");
        assert_eq!(out.synced_scalars, 0);
        assert_eq!(out.broadcast_scalars, 0);
        assert_eq!(out.total_scalars, 2);
        assert_eq!(f.history().len(), 1);
        assert_eq!(f.history()[0].checks, 0);
    }

    #[test]
    #[should_panic(expected = "T_R must be positive")]
    fn invalid_config_panics() {
        FedSu::new(FedSuConfig { t_r: 0.0, ..FedSuConfig::default() });
    }

    #[test]
    fn default_config_matches_paper() {
        let c = FedSuConfig::default();
        assert_eq!(c.t_r, 0.01);
        assert_eq!(c.t_s, 1.0);
        assert!(!c.correct_on_exit);
    }
}

#[cfg(test)]
mod history_tests {
    use super::*;

    #[test]
    fn history_tracks_rounds_and_balances() {
        let mut f = FedSu::new(FedSuConfig { warmup_updates: 3, ..FedSuConfig::default() });
        let mut global = vec![0.0f32; 2];
        for round in 0..10 {
            let locals = vec![vec![global[0] - 0.01, global[1] - 0.02]];
            f.prepare_uploads(round, &locals, &global);
            f.aggregate(round, &locals, &[0], &[true], &mut global);
        }
        let h = f.history();
        assert_eq!(h.len(), 10);
        assert!(h.iter().enumerate().all(|(i, s)| s.round == i));
        // Cumulative enters/exits from history match the counters.
        let enters: usize = h.iter().map(|s| s.enters).sum();
        let exits: usize = h.iter().map(|s| s.exits).sum();
        assert_eq!(enters as u64, f.total_enters());
        assert_eq!(exits as u64, f.total_exits());
        // Both scalars are linear: eventually both speculative.
        assert_eq!(h.last().unwrap().predictable, 2);
    }
}
