//! Fig. 8 — ablation: FedSU vs FedSU-v1 (diagnosis, fixed period, no error
//! feedback) vs FedSU-v2 (random entry, fixed period, no diagnosis or
//! feedback), on CNN and DenseNet.
//!
//! As in the paper, the fixed period and entry probability of the variants
//! are set from measurements of the standard FedSU run (the paper measured
//! 43/58 rounds and 0.53%/0.81% on its testbed).

use fedsu_bench::{ablation_models, fedsu_of, print_series, summary_line, Scale};
use fedsu_core::{FedSu, FedSuConfig};
use fedsu_repro::scenario::StrategyKind;

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 8: ablation — FedSU vs v1 (no feedback) vs v2 (no diagnosis) ==\n");

    for workload in ablation_models(scale) {
        println!("---- model: {} ----", workload.model.name());

        // Standard FedSU, measuring the variant parameters from it.
        let mut experiment = workload.scenario().build(StrategyKind::FedSuCalibrated).expect("build");
        let fedsu_result = experiment.run(None).expect("run");
        let (period, probability) = {
            let f = fedsu_of(&experiment).expect("fedsu");
            (
                f.mean_speculation_period().round().max(1.0) as u16,
                f.empirical_entry_probability().max(1e-4),
            )
        };
        println!(
            "measured from FedSU: mean speculation period = {period} rounds, entry probability = {:.3}%\n",
            probability * 100.0
        );
        print_series(&fedsu_result, 5);
        println!();

        // v1: same diagnosis, fixed period, no feedback.
        let cfg = FedSuConfig { t_r: 0.1, t_s: 10.0, ..FedSuConfig::default() };
        let mut v1 = workload
            .scenario()
            .build_with(Box::new(FedSu::variant_v1(cfg, period)))
            .expect("build");
        let v1_result = v1.run(None).expect("run");
        print_series(&v1_result, 5);
        println!();

        // v2: random entry, fixed period.
        let mut v2 = workload
            .scenario()
            .build_with(Box::new(FedSu::variant_v2(cfg, probability, period)))
            .expect("build");
        let v2_result = v2.run(None).expect("run");
        print_series(&v2_result, 5);
        println!();

        println!("summary ({}):", workload.model.name());
        for r in [&fedsu_result, &v1_result, &v2_result] {
            println!("  {}", summary_line(r));
        }
        println!();
    }
    println!("Expectation (paper): v1 sparsifies remarkably less than FedSU (its\nfixed periods are conservative and unguided); v2's accuracy degrades\nand fluctuates because speculation is applied to non-linear parameters.");
}
