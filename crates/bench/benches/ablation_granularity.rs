//! Granularity ablation (extension): FedSU's per-scalar masking vs the
//! same machinery at chunk granularity (per-block / per-layer style
//! decisions). Quantifies Sec. III-A's argument that sparsification
//! decisions must be made independently per parameter.

use fedsu_bench::{summary_line, Scale, Workload};
use fedsu_core::FedSuCoarse;
use fedsu_repro::scenario::ModelKind;

fn main() {
    let scale = Scale::from_env();
    println!("== Ablation (extension): decision granularity ==\n");

    let workload = Workload::for_model(ModelKind::Cnn, scale);
    for chunk in [1usize, 16, 256, 4096] {
        let strategy = FedSuCoarse::new(chunk, 0.1, 10.0);
        let mut experiment = workload.scenario().build_with(Box::new(strategy)).expect("build");
        let result = experiment.run(None).expect("run");
        println!("  chunk={chunk:<5} {}", summary_line(&result));
    }
    println!();
    println!("Reading: chunk=1 is per-scalar FedSU. Coarser chunks either stop");
    println!("finding linear blocks (lower sparsification) or admit mixed blocks");
    println!("and corrupt their non-linear members (lower accuracy) — the paper's");
    println!("case for fine-grained masks.");
}
