//! Fig. 7 — CDF over parameters of the fraction of training time each
//! parameter spends diagnosed-as-linear (predictable) under FedSU, for the
//! three models.
//!
//! The paper's claim: more than 80% of parameters are linear for more than
//! half the training time in its smooth regime; at laptop scale the CDF
//! shifts left but retains the same heavy-predictability shape late in
//! training.

use fedsu_bench::{e2e_models, Scale};
use fedsu_metrics::Cdf;
use fedsu_repro::scenario::StrategyKind;

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 7: CDF of per-parameter predictable-time fraction ==\n");

    for workload in e2e_models(scale) {
        let mut experiment = workload.scenario().build(StrategyKind::FedSuCalibrated).expect("build");
        let result = experiment.run(None).expect("run");
        let skips = experiment.strategy().skip_fractions().expect("fedsu tracks skip fractions");
        let cdf = Cdf::from_samples(skips.iter().copied());

        println!("model={} (mean sparsification {:.1}%)", workload.model.name(), result.mean_sparsification() * 100.0);
        println!("  predictable-fraction CDF:");
        for (value, frac) in cdf.points(10) {
            println!("    <= {value:.3}: {frac:.2}");
        }
        println!(
            "  parameters predictable > 25% of time: {:.1}%   > 50%: {:.1}%\n",
            (1.0 - cdf.fraction_below(0.25)) * 100.0,
            (1.0 - cdf.fraction_below(0.50)) * 100.0,
        );
    }
    println!("Expectation (paper): a large share of parameters spends a large\nfraction of training in the predictable (linear) state.");
}
