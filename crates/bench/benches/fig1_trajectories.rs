//! Fig. 1 — evolution trajectories of randomly-selected parameters when
//! training CNN and DenseNet, annotated with least-squares linearity (R²)
//! over sliding segments. The paper's claim: trajectories exhibit strong
//! linearity for large portions of training.

use fedsu_bench::{Scale, Workload};
use fedsu_metrics::{linear_fit, TrajectoryRecorder};
use fedsu_repro::fl::RoundRecord;
use fedsu_repro::scenario::{ModelKind, StrategyKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 1: parameter evolution trajectories (linearity) ==\n");

    for model in [ModelKind::Cnn, ModelKind::DenseNet] {
        let workload = Workload::for_model(model, scale);
        let mut experiment = workload.scenario().build(StrategyKind::FedAvg).expect("build");
        let n = experiment.param_count();

        // Two randomly-selected scalar parameters, as in the paper.
        let mut rng = StdRng::seed_from_u64(7);
        let indices = [rng.gen_range(0..n), rng.gen_range(0..n)];
        let mut recorder = TrajectoryRecorder::new(&indices);
        let mut hook = |_r: &RoundRecord, g: &[f32]| recorder.observe(g);
        experiment.run(Some(&mut hook)).expect("run");

        println!("model={} params={} tracked={:?}", model.name(), n, indices);
        for k in 0..indices.len() {
            let traj = recorder.trajectory(k);
            print!("param{k}:");
            for v in traj {
                print!(" {v:.5}");
            }
            println!();
            // Segment-level linearity: R² of halves of the trajectory
            // (the paper marks linear periods with dashed lines).
            let half = traj.len() / 2;
            let (first, second) = (linear_fit(&traj[..half]), linear_fit(&traj[half..]));
            if let (Some(a), Some(b)) = (first, second) {
                println!(
                    "param{k} linearity: first-half r2={:.4} slope={:+.2e}; second-half r2={:.4} slope={:+.2e}",
                    a.r_squared, a.slope, b.r_squared, b.slope
                );
            }
        }
        println!();
    }
    println!("Expectation (paper): high r2 (> ~0.9) over long segments, i.e.\nwidespread training periods with strong trajectory linearity.");
}
