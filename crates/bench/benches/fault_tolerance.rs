//! Robustness extension (not a paper figure) — fault-rate sweep comparing
//! FedAvg and FedSU under client dropout, upload loss and corruption, with
//! the server-side defenses enabled.
//!
//! The question it answers: does FedSU's speculative updating stay stable
//! when a realistic fraction of clients misbehaves, and what do the faults
//! cost in accuracy, wall-clock and bytes relative to FedAvg?

use fedsu_bench::{fault_summary_line, summary_line, Scale, Workload};
use fedsu_fl::FaultConfig;
use fedsu_repro::scenario::{ModelKind, StrategyKind};

fn main() {
    let scale = Scale::from_env();
    println!("== Fault tolerance: FedAvg vs FedSU under client faults ==\n");

    let workload = Workload::for_model(ModelKind::Mlp, scale);
    for strategy in [StrategyKind::FedAvg, StrategyKind::FedSuCalibrated] {
        println!("---- strategy: {} ----", strategy.name());
        for dropout in [0.0, 0.1, 0.2, 0.3] {
            let scenario = if dropout > 0.0 {
                workload.faulty_scenario(FaultConfig {
                    dropout_prob: dropout,
                    upload_loss_prob: 0.05,
                    corrupt_prob: 0.02,
                    ..FaultConfig::default()
                })
            } else {
                workload.scenario()
            };
            let mut experiment = scenario.build(strategy).expect("build");
            let result = experiment.run(None).expect("run");
            println!(
                "  dropout={dropout:<4} {}\n               {}",
                summary_line(&result),
                fault_summary_line(&result)
            );
        }
        println!();
    }
    println!(
        "Expectation: both schemes finish every round at every fault rate; accuracy\n\
         degrades gracefully and FedSU keeps its communication advantage."
    );
}
