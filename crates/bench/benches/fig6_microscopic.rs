//! Fig. 6 — microscopic parameter trajectories: a sampled parameter under
//! FedSU versus the same parameter under regular synchronization (FedAvg),
//! with the start/end rounds of FedSU's speculative periods marked.
//!
//! The paper's claim: the FedSU trajectory closely approximates the vanilla
//! one, entering speculation during linear periods and exiting promptly
//! when they end.

use fedsu_bench::{fedsu_of, Scale, Workload};
use fedsu_core::{FedSu, FedSuConfig, MaskEventKind};
use fedsu_metrics::TrajectoryRecorder;
use fedsu_repro::fl::RoundRecord;
use fedsu_repro::scenario::{ModelKind, StrategyKind};

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 6: microscopic trajectory, FedSU vs regular sync ==\n");

    let workload = Workload::for_model(ModelKind::Cnn, scale);

    // Pick a parameter that actually speculates: probe with a short FedSU
    // run, then track the scalar with the largest skip fraction.
    let probe_target = {
        let mut probe = workload.scenario().build(StrategyKind::FedSuCalibrated).expect("build");
        probe.run(None).expect("run");
        let skips = probe.strategy().skip_fractions().expect("fedsu tracks skips");
        skips
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)
            .unwrap_or(0)
    };
    println!("tracking scalar #{probe_target}\n");

    // FedSU run with event tracking.
    let mut fedsu = FedSu::new(FedSuConfig { t_r: 0.1, t_s: 10.0, ..FedSuConfig::default() });
    fedsu.track_params(&[probe_target]);
    let mut experiment = workload.scenario().build_with(Box::new(fedsu)).expect("build");
    let mut rec_fedsu = TrajectoryRecorder::new(&[probe_target]);
    let mut hook = |_r: &RoundRecord, g: &[f32]| rec_fedsu.observe(g);
    experiment.run(Some(&mut hook)).expect("run");
    let events = fedsu_of(&experiment).expect("fedsu strategy").events().to_vec();

    // Reference run under FedAvg (identical seeds => identical data/model).
    let mut reference = workload.scenario().build(StrategyKind::FedAvg).expect("build");
    let mut rec_ref = TrajectoryRecorder::new(&[probe_target]);
    let mut hook = |_r: &RoundRecord, g: &[f32]| rec_ref.observe(g);
    reference.run(Some(&mut hook)).expect("run");

    println!("round,fedsu_value,fedavg_value");
    let n = rec_fedsu.rounds().min(rec_ref.rounds());
    for r in 0..n {
        println!("{r},{:.6},{:.6}", rec_fedsu.trajectory(0)[r], rec_ref.trajectory(0)[r]);
    }

    println!("\nspeculative periods (green dot = start, red cross = end):");
    for e in &events {
        match e.kind {
            MaskEventKind::Enter { slope } => println!("  round {:3}: ENTER (slope {slope:+.3e})", e.round),
            MaskEventKind::Exit { feedback } => {
                println!("  round {:3}: EXIT  (S = {:?})", e.round, feedback.map(|s| (s * 100.0).round() / 100.0))
            }
        }
    }

    // Quantify trajectory agreement.
    let mut max_gap = 0.0f32;
    for r in 0..n {
        max_gap = max_gap.max((rec_fedsu.trajectory(0)[r] - rec_ref.trajectory(0)[r]).abs());
    }
    let scale_ref: f32 = rec_ref.trajectory(0).iter().fold(0.0f32, |m, v| m.max(v.abs())).max(1e-6);
    println!("\nmax |FedSU - FedAvg| = {max_gap:.5} ({:.1}% of the parameter's magnitude)", max_gap / scale_ref * 100.0);
    println!("Expectation (paper): the two trajectories nearly coincide.");
}
