//! Fig. 9 — sensitivity to the linearity-diagnosis threshold `T_R`, on CNN
//! and DenseNet.
//!
//! The paper sweeps 0.1 → 0.0001 and finds: looser `T_R` ⇒ larger
//! communication reduction, with only the loosest setting slightly
//! degrading accuracy (error feedback protects the rest). We sweep a grid
//! spanning both the paper's values and the laptop-scale noise floor
//! (EXPERIMENTS.md explains the floor).

use fedsu_bench::{ablation_models, summary_line, Scale};
use fedsu_repro::scenario::StrategyKind;

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 9: sensitivity to T_R (linearity threshold) ==\n");

    // Paper grid {0.1, 0.01, 0.001, 0.0001} plus 0.2 to show the loose end
    // above this emulation's noise floor.
    let grid = [0.2, 0.1, 0.01, 0.001, 0.0001];

    for workload in ablation_models(scale) {
        println!("---- model: {} ----", workload.model.name());
        for t_r in grid {
            let mut experiment = workload
                .scenario()
                .build(StrategyKind::FedSuWith { t_r, t_s: 10.0 })
                .expect("build");
            let result = experiment.run(None).expect("run");
            println!("  T_R={t_r:<7} {}", summary_line(&result));
        }
        println!();
    }
    println!("Expectation (paper): sparsification (and hence time savings) grows\nmonotonically with T_R; accuracy stays flat except at the loosest end.");
}
