//! Fig. 2 — normalized difference of consecutive per-round global updates:
//! (a) the instantaneous series for CNN and (b) its CDF for CNN and
//! DenseNet. The paper reports >90% of per-round updates below 0.005 at
//! round granularity in its (much smoother, 90-client × 50-iteration)
//! regime; at laptop scale the distribution shifts right but stays
//! concentrated at small values.

use fedsu_bench::{Scale, Workload};
use fedsu_metrics::{sparkline, Cdf, NormalizedDifference};
use fedsu_repro::fl::RoundRecord;
use fedsu_repro::scenario::{ModelKind, StrategyKind};

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 2: normalized difference of consecutive round updates ==\n");

    for (i, model) in [ModelKind::Cnn, ModelKind::DenseNet].into_iter().enumerate() {
        let workload = Workload::for_model(model, scale);
        let mut experiment = workload.scenario().build(StrategyKind::FedAvg).expect("build");
        let mut nd = NormalizedDifference::new();
        let mut hook = |_r: &RoundRecord, g: &[f32]| nd.observe(g);
        experiment.run(Some(&mut hook)).expect("run");

        if i == 0 {
            println!("(a) instantaneous normalized difference, {}:", model.name());
            print!("series:");
            for v in nd.values() {
                print!(" {v:.4}");
            }
            println!();
            println!("shape:  {}\n", sparkline(nd.values()));
        }
        println!("(b) CDF, {}:", model.name());
        let cdf = Cdf::from_samples(nd.values().iter().copied());
        for (value, frac) in cdf.points(10) {
            println!("  <= {value:.4}: {frac:.2}");
        }
        println!(
            "  fraction below 0.05: {:.3}   below 0.5: {:.3}   below 1.0: {:.3}\n",
            nd.fraction_below(0.05),
            nd.fraction_below(0.5),
            nd.fraction_below(1.0),
        );
    }
    println!("Expectation (paper): the mass concentrates at small values —\nconsecutive per-round updates are highly similar.");
}
