//! Table I — time to reach the target accuracy per model, with the mean
//! per-round time and the number of rounds required.
//!
//! Absolute accuracies differ from the paper (synthetic datasets), so the
//! target for each model is set relative to what FedAvg achieves (90% of
//! FedAvg's best accuracy), mirroring the paper's "near-optimal accuracy
//! target" methodology. The paper's shape: FedSU needs roughly as many
//! rounds as FedAvg but far less time per round, for a 28-46% total-time
//! win over the second-best scheme.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_bench::{e2e_models, Scale};
use fedsu_metrics::Table;
use fedsu_repro::fl::ExperimentResult;
use fedsu_repro::scenario::StrategyKind;

fn main() {
    let scale = Scale::from_env();
    println!("== Table I: time to target accuracy ==\n");

    let mut table = Table::new(&[
        "Model (target)",
        "Scheme",
        "Per-round time (s)",
        "# of rounds",
        "Total time (s)",
    ]);

    for workload in e2e_models(scale) {
        // Establish the target from FedAvg's achievable accuracy.
        let mut results: Vec<ExperimentResult> = Vec::new();
        for strategy in [
            StrategyKind::FedSuCalibrated,
            StrategyKind::ApfCalibrated,
            StrategyKind::Cmfl,
            StrategyKind::FedAvg,
        ] {
            let mut experiment = workload.scenario().build(strategy).expect("build");
            results.push(experiment.run(None).expect("run"));
            eprintln!("done: {} / {}", workload.model.name(), results.last().unwrap().strategy);
        }
        let fedavg_best = results
            .iter()
            .find(|r| r.strategy == "fedavg")
            .map(|r| r.best_accuracy())
            .unwrap_or(0.0);
        let target = fedavg_best * 0.9;
        let label = format!("{} ({target:.2})", workload.model.name());

        for r in &results {
            let (rounds, total) = match (r.rounds_to_accuracy(target), r.time_to_accuracy(target)) {
                (Some(n), Some(t)) => (n.to_string(), format!("{t:.0}")),
                _ => ("never".to_string(), "-".to_string()),
            };
            table.row(&[
                &label,
                &r.strategy,
                &format!("{:.2}", r.mean_round_secs()),
                &rounds,
                &total,
            ]);
        }
    }
    println!("{table}");
    println!("Expectation (paper): FedSU's round count is close to FedAvg's while\nits per-round (and hence total) time is the smallest of all schemes.");
}
