//! Design-choice ablation beyond the paper: when a parameter fails its
//! error check and exits speculation, the aggregated error `ē` is already
//! on the server — applying it as a correction (`x += ē`) costs no extra
//! communication. Algorithm 1 does not apply it; this bench measures what
//! the correction buys (or doesn't) on CNN and DenseNet.

use fedsu_bench::{ablation_models, summary_line, Scale};
use fedsu_core::{FedSu, FedSuConfig};

fn main() {
    let scale = Scale::from_env();
    println!("== Ablation (extension): correct-on-exit error application ==\n");

    for workload in ablation_models(scale) {
        println!("---- model: {} ----", workload.model.name());
        for correct in [false, true] {
            let cfg = FedSuConfig { t_r: 0.1, t_s: 10.0, correct_on_exit: correct, ..FedSuConfig::default() };
            let mut experiment =
                workload.scenario().build_with(Box::new(FedSu::new(cfg))).expect("build");
            let result = experiment.run(None).expect("run");
            println!(
                "  correct_on_exit={correct:<5} {}",
                summary_line(&result)
            );
        }
        println!();
    }
    println!("Reading: the correction is free communication-wise; any accuracy\ndelta quantifies how much residual speculation error the paper's\nvanilla exit path leaves in the model.");
}
