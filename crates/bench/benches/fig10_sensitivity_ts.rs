//! Fig. 10 — sensitivity to the error-feedback threshold `T_S`, on CNN and
//! DenseNet.
//!
//! The paper sweeps 0.1 → 100 and finds the same looser-is-faster trend as
//! `T_R`, but with *significant accuracy degradation* at the top end
//! (`T_S = 100` loses over 20% accuracy), because `T_S` directly bounds the
//! accumulated prediction error. We sweep the paper's grid scaled by the
//! laptop-profile factor (×10; see EXPERIMENTS.md).

use fedsu_bench::{ablation_models, summary_line, Scale};
use fedsu_repro::scenario::StrategyKind;

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 10: sensitivity to T_S (error-feedback threshold) ==\n");

    // Paper grid {0.1, 1, 10, 100} scaled by the quick-profile factor 10.
    let grid = [1.0, 10.0, 100.0, 1000.0];

    for workload in ablation_models(scale) {
        println!("---- model: {} ----", workload.model.name());
        for t_s in grid {
            let mut experiment = workload
                .scenario()
                .build(StrategyKind::FedSuWith { t_r: 0.1, t_s })
                .expect("build");
            let result = experiment.run(None).expect("run");
            println!("  T_S={t_s:<7} {}", summary_line(&result));
        }
        println!();
    }
    println!("Expectation (paper): sparsification grows with T_S, but an over-loose\nthreshold lets prediction error accumulate and accuracy deteriorates\nsignificantly at the top of the grid.");
}
