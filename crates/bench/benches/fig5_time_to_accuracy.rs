//! Fig. 5 — end-to-end time-to-accuracy curves for CNN, DenseNet and
//! ResNet-18 under FedAvg, CMFL, APF and FedSU, with the instantaneous
//! sparsification ratios of APF and FedSU.
//!
//! The paper's shape: FedSU makes the fastest accuracy progress and attains
//! a much higher sparsification ratio than APF (71.7% vs 21.3% on ResNet).

use fedsu_bench::{e2e_models, print_series, summary_line, Scale};
use fedsu_metrics::{sparkline, AsciiPlot};
use fedsu_repro::scenario::StrategyKind;

fn main() {
    let scale = Scale::from_env();
    println!("== Fig. 5: time-to-accuracy under FedAvg / CMFL / APF / FedSU ==\n");

    let schemes = [
        (StrategyKind::FedAvg, 'a'),
        (StrategyKind::Cmfl, 'c'),
        (StrategyKind::ApfCalibrated, 'p'),
        (StrategyKind::FedSuCalibrated, 'F'),
    ];

    for workload in e2e_models(scale) {
        println!("---- model: {} ----", workload.model.name());
        let mut summaries = Vec::new();
        let mut plot = AsciiPlot::new(72, 16).labels("emulated time (s)", "test accuracy");
        for (strategy, marker) in schemes {
            let mut experiment = workload.scenario().build(strategy).expect("build");
            let result = experiment.run(None).expect("run");
            print_series(&result, 5);
            let curve: Vec<(f64, f64)> = result
                .rounds
                .iter()
                .filter_map(|r| r.accuracy.map(|a| (r.sim_time_secs, f64::from(a))))
                .collect();
            plot.series(marker, &curve);
            let spars: Vec<f64> = result.rounds.iter().map(|r| r.sparsification_ratio).collect();
            println!("sparsification over rounds: {}", sparkline(&spars));
            summaries.push(summary_line(&result));
            println!();
        }
        println!("{}", plot.render());
        println!("markers: a=fedavg c=cmfl p=apf F=fedsu");
        println!("summary ({}):", workload.model.name());
        for s in &summaries {
            println!("  {s}");
        }
        println!();
    }
    println!("Expectation (paper): FedSU reaches any accuracy level in the least\nemulated time; its sparsification ratio greatly exceeds APF's.");
}
