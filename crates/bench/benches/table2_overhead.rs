//! Table II — computation and memory overhead of FedSU.
//!
//! Criterion micro-benchmarks the per-round synchronization step (FedAvg's
//! plain averaging vs FedSU's diagnosis + speculative update + feedback) on
//! model-sized parameter vectors, and the harness prints the memory
//! inflation of FedSU's per-client state relative to the model itself.
//!
//! The paper reports ≤ 2.15% computation-time inflation and ≤ 10% memory
//! inflation; the relevant comparison here is the sync-step delta against
//! the emulated per-round compute time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fedsu_core::{FedSu, FedSuConfig};
use fedsu_fl::SyncStrategy;
use fedsu_metrics::Table;
use fedsu_repro::scenario::ModelKind;
use fedsu_strategies::FedAvg;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLIENTS: usize = 8;

struct SyncFixture {
    locals: Vec<Vec<f32>>,
    global: Vec<f32>,
    selected: Vec<usize>,
    active: Vec<bool>,
    round: usize,
}

impl SyncFixture {
    fn new(n_params: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let global: Vec<f32> = (0..n_params).map(|_| rng.gen_range(-0.5..0.5)).collect();
        let locals = (0..CLIENTS)
            .map(|_| global.iter().map(|g| g - 0.01 + rng.gen_range(-0.002..0.002)).collect())
            .collect();
        SyncFixture {
            locals,
            global,
            selected: (0..CLIENTS).collect(),
            active: vec![true; CLIENTS],
            round: 0,
        }
    }

    /// One full sync step; advances the fixture like a real round would.
    fn step(&mut self, strategy: &mut dyn SyncStrategy) {
        strategy.prepare_uploads(self.round, &self.locals, &self.global);
        strategy.aggregate(self.round, &self.locals, &self.selected, &self.active, &mut self.global);
        self.round += 1;
        // Keep locals tracking the (moving) global so FedSU sees realistic
        // linear dynamics rather than divergence.
        for local in &mut self.locals {
            for (l, g) in local.iter_mut().zip(&self.global) {
                *l = *g - 0.01;
            }
        }
    }
}

fn bench_sync_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("table2_sync_step");
    for &(name, n_params) in &[("cnn_40k", 40_314usize), ("resnet_45k", 44_850), ("densenet_6k", 5_767)] {
        group.bench_with_input(BenchmarkId::new("fedavg", name), &n_params, |b, &n| {
            let mut fixture = SyncFixture::new(n, 1);
            let mut strat = FedAvg::new();
            b.iter(|| fixture.step(&mut strat));
        });
        group.bench_with_input(BenchmarkId::new("fedsu", name), &n_params, |b, &n| {
            let mut fixture = SyncFixture::new(n, 1);
            let mut strat = FedSu::new(FedSuConfig { t_r: 0.1, t_s: 10.0, ..FedSuConfig::default() });
            b.iter(|| fixture.step(&mut strat));
        });
    }
    group.finish();
}

fn print_memory_table() {
    println!("\n== Table II (memory): FedSU per-client state vs model size ==\n");
    let mut table = Table::new(&["Model", "Model params", "Model MB", "FedSU state MB", "Memory inflation"]);
    for (model, n_params) in [
        (ModelKind::Cnn, 40_314usize),
        (ModelKind::DenseNet, 5_767),
        (ModelKind::ResNet18, 44_850),
    ] {
        let mut fixture = SyncFixture::new(n_params, 2);
        let mut fedsu = FedSu::new(FedSuConfig::default());
        fixture.step(&mut fedsu);
        let state = fedsu.per_client_state_bytes();
        // Training-time footprint of the model on a client: parameters +
        // gradients + activations; the paper's denominator is total client
        // memory, dominated by data/activations — we report against a 4x
        // params footprint as a conservative stand-in.
        let model_bytes = n_params * 4 * 4;
        table.row(&[
            model.name(),
            &n_params.to_string(),
            &format!("{:.2}", model_bytes as f64 / 1e6),
            &format!("{:.2}", state as f64 / 1e6),
            &format!("{:.1}%", state as f64 / model_bytes as f64 * 100.0),
        ]);
    }
    println!("{table}");
    println!("Expectation (paper): memory inflation below ~10%, computation\ninflation (sync-step delta vs per-round compute) around 1-2%.");
}

fn overhead(c: &mut Criterion) {
    print_memory_table();
    bench_sync_step(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = overhead
}
criterion_main!(benches);
