//! Tensor-kernel performance harness: serial reference vs blocked-scalar vs
//! SIMD vs SIMD+parallel matmul, with bit-identity verification.
//!
//! Emits `BENCH_kernels.json` (override the path with `FEDSU_BENCH_OUT`)
//! recording wall time and GFLOP/s for each configuration, so the repo has
//! a perf trajectory across commits (`cargo run -p fedsu-xtask --
//! bench-check` ratchets against the checked-in copy). The harness **fails
//! (non-zero exit)** if any blocked/SIMD/parallel output diverges bit-wise
//! from the serial reference — the determinism contract is enforced here as
//! well as in the test suite, on bench-sized shapes. Bench inputs are
//! finite (no NaNs), so exact bit equality holds across SIMD levels; the
//! NaN-payload carve-out in DESIGN.md §10.1 never applies here.
//!
//! Per size the rows are:
//!
//! * `serial_reference` — naive triple loop (`reference::matmul`);
//! * `blocked_scalar`   — the blocked/tiled kernel pinned to
//!   [`SimdLevel::Scalar`], one thread (the pre-SIMD baseline);
//! * `simd_serial`      — the same blocked kernel at the active SIMD level
//!   (hardware-detected, or `FEDSU_SIMD` override), one thread;
//! * `simd_parallel_tN` — active SIMD level with N worker threads.
//!
//! Scales via `FEDSU_SCALE`: `smoke` (tiny shapes, CI), `quick` (default,
//! includes the 512×512 acceptance point **and** the smoke shapes so a
//! quick-scale baseline can ratchet a smoke-scale CI run), `full` (adds
//! 1024).

use fedsu_bench::Scale;
use fedsu_tensor::{
    hardware_simd_level, matmul_into, matmul_transpose_a_into, matmul_transpose_b_into, reference,
    set_kernel_threads, set_simd_level, simd_level, SimdLevel,
};
use std::time::Instant;

/// Thread settings exercised for the parallel rows (beyond serial `1`).
const PARALLEL_THREADS: [usize; 3] = [2, 4, 8];

/// Minimum measured wall time per configuration; repeat runs until reached.
const MIN_MEASURE_SECS: f64 = 0.05;

struct XorShift(u64);

impl XorShift {
    fn next_f32(&mut self) -> f32 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        ((self.0 >> 40) as f32) / (1u32 << 23) as f32 - 1.0
    }
}

fn filled(len: usize, seed: u64) -> Vec<f32> {
    let mut rng = XorShift(seed | 1);
    (0..len).map(|_| rng.next_f32()).collect()
}

fn bits_equal(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn level_name(level: SimdLevel) -> &'static str {
    match level {
        SimdLevel::Scalar => "scalar",
        SimdLevel::Sse2 => "sse2",
        SimdLevel::Avx2 => "avx2",
    }
}

/// Times `body` with enough repetitions to cover [`MIN_MEASURE_SECS`];
/// returns the best per-run wall time in seconds.
fn time_best<F: FnMut()>(mut body: F) -> f64 {
    let mut best = f64::INFINITY;
    let mut spent = 0.0;
    let mut runs = 0usize;
    while spent < MIN_MEASURE_SECS || runs < 3 {
        let t0 = Instant::now();
        body();
        let dt = t0.elapsed().as_secs_f64();
        best = best.min(dt);
        spent += dt;
        runs += 1;
        if runs > 10_000 {
            break;
        }
    }
    best
}

struct Row {
    label: String,
    threads: usize,
    simd: SimdLevel,
    wall_secs: f64,
    gflops: f64,
    bit_identical: bool,
}

/// Benches one square size; returns the per-configuration rows and whether
/// every configuration matched the reference bit-for-bit.
fn bench_size(n: usize, active: SimdLevel) -> (Vec<Row>, bool) {
    let (m, k) = (n, n);
    let a = filled(m * k, 0xA11C_E5ED ^ n as u64);
    let b = filled(k * n, 0xB0B5_1ED5 ^ n as u64);
    let flops = 2.0 * (m as f64) * (k as f64) * (n as f64);

    // Ground truth (timed as the serial-reference row).
    let mut want = Vec::new();
    let t_ref = time_best(|| want = reference::matmul(&a, &b, m, k, n));

    let mut rows = vec![Row {
        label: "serial_reference".to_string(),
        threads: 1,
        simd: SimdLevel::Scalar,
        wall_secs: t_ref,
        gflops: flops / t_ref / 1e9,
        bit_identical: true,
    }];
    let mut all_identical = true;

    // (label, simd level, threads). `blocked_scalar` is the pre-SIMD
    // blocked kernel; the `simd_*` rows run at the active level, which may
    // itself be Scalar if `FEDSU_SIMD=off` — the rows still exist so the
    // scalar-fallback CI run produces a comparable file.
    let mut configs = vec![("blocked_scalar", SimdLevel::Scalar, 1_usize), ("simd_serial", active, 1)];
    for &t in &PARALLEL_THREADS {
        configs.push(("simd_parallel", active, t));
    }

    let mut out = vec![0.0f32; m * n];
    for (label, level, threads) in configs {
        set_simd_level(level);
        set_kernel_threads(threads);
        let t = time_best(|| {
            matmul_into(&a, &b, &mut out, m, k, n).expect("matmul_into on bench shapes");
        });
        let ok = bits_equal(&out, &want);
        all_identical &= ok;
        let label = if threads == 1 { label.to_string() } else { format!("{label}_t{threads}") };
        rows.push(Row {
            label,
            threads,
            simd: level,
            wall_secs: t,
            gflops: flops / t / 1e9,
            bit_identical: ok,
        });
    }

    // Verify (not time) the transpose kernels at this size too: the
    // determinism contract covers all three kernels, at both the scalar
    // and the active SIMD level.
    let want_ta = reference::matmul_transpose_a(&a, &b, k, m, n);
    let want_tb = reference::matmul_transpose_b(&a, &b, m, k, n);
    for level in [SimdLevel::Scalar, active] {
        set_simd_level(level);
        for &threads in &[1usize, 4] {
            set_kernel_threads(threads);
            matmul_transpose_a_into(&a, &b, &mut out, k, m, n).expect("ta on bench shapes");
            all_identical &= bits_equal(&out, &want_ta);
            matmul_transpose_b_into(&a, &b, &mut out, m, k, n).expect("tb on bench shapes");
            all_identical &= bits_equal(&out, &want_tb);
        }
    }
    set_kernel_threads(0);
    set_simd_level(active);

    (rows, all_identical)
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn main() {
    let scale = Scale::from_env();
    let sizes: &[usize] = match scale {
        Scale::Smoke => &[32, 64],
        Scale::Quick => &[32, 64, 128, 256, 512],
        Scale::Full => &[32, 64, 128, 256, 512, 1024],
    };
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let active = simd_level();
    eprintln!(
        "kernel bench: scale {scale:?}, sizes {sizes:?}, {hw} hardware threads, \
         simd {} (hardware supports {})",
        level_name(active),
        level_name(hardware_simd_level())
    );

    let mut size_blocks = Vec::new();
    let mut all_ok = true;
    for &n in sizes {
        let (rows, ok) = bench_size(n, active);
        all_ok &= ok;
        let gflops_of = |name: &str| {
            rows.iter().find(|r| r.label == name).map_or(0.0, |r| r.gflops)
        };
        let serial = rows
            .iter()
            .find(|r| r.label == "serial_reference")
            .map_or(f64::INFINITY, |r| r.wall_secs);
        let best_parallel = rows
            .iter()
            .filter(|r| r.label.starts_with("simd_parallel"))
            .map(|r| r.wall_secs)
            .fold(f64::INFINITY, f64::min);
        let speedup = if best_parallel > 0.0 { serial / best_parallel } else { 0.0 };
        let blocked = gflops_of("blocked_scalar");
        let simd_speedup = if blocked > 0.0 { gflops_of("simd_serial") / blocked } else { 0.0 };

        println!("{n}x{n}x{n}:");
        for r in &rows {
            println!(
                "  {:<18} t={:<2} simd={:<6} {:>9.2} ms {:>8.2} GFLOP/s  bit-identical: {}",
                r.label,
                r.threads,
                level_name(r.simd),
                r.wall_secs * 1e3,
                r.gflops,
                r.bit_identical
            );
        }
        println!("  simd_serial vs blocked_scalar: {simd_speedup:.2}x");
        println!("  best parallel speedup vs serial reference: {speedup:.2}x");

        let row_json: Vec<String> = rows
            .iter()
            .map(|r| {
                format!(
                    "{{\"label\":\"{}\",\"threads\":{},\"simd\":\"{}\",\"wall_secs\":{:.9},\
                     \"gflops\":{:.4},\"bit_identical\":{}}}",
                    json_escape(&r.label),
                    r.threads,
                    level_name(r.simd),
                    r.wall_secs,
                    r.gflops,
                    r.bit_identical
                )
            })
            .collect();
        size_blocks.push(format!(
            "{{\"m\":{n},\"k\":{n},\"n\":{n},\"simd_speedup\":{:.4},\
             \"best_parallel_speedup\":{:.4},\"rows\":[{}]}}",
            simd_speedup,
            speedup,
            row_json.join(",")
        ));
    }

    let json = format!(
        "{{\"bench\":\"kernels\",\"scale\":\"{scale:?}\",\"hardware_threads\":{hw},\
         \"simd_level\":\"{}\",\"all_bit_identical\":{all_ok},\"sizes\":[{}]}}\n",
        level_name(active),
        size_blocks.join(",")
    );
    // Cargo runs bench binaries with the package dir (crates/bench) as CWD,
    // so resolve relative output paths against the workspace root — that is
    // where the checked-in baseline lives and where CI's bench-check looks.
    let out_path = std::path::PathBuf::from(
        std::env::var("FEDSU_BENCH_OUT").unwrap_or_else(|_| "BENCH_kernels.json".to_string()),
    );
    let out_path = if out_path.is_absolute() {
        out_path
    } else {
        option_env!("CARGO_MANIFEST_DIR")
            .map(|m| std::path::Path::new(m).join("../.."))
            .unwrap_or_default()
            .join(out_path)
    };
    match std::fs::write(&out_path, &json) {
        Ok(()) => eprintln!("wrote {}", out_path.display()),
        Err(e) => {
            eprintln!("error: could not write {}: {e}", out_path.display());
            std::process::exit(1);
        }
    }
    if !all_ok {
        eprintln!("error: blocked/SIMD/parallel kernel output diverged bit-wise from reference");
        std::process::exit(1);
    }
}
