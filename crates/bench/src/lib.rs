//! # fedsu-bench
//!
//! Shared infrastructure for the per-table/figure benchmark targets in
//! `benches/`. Each bench regenerates one piece of the paper's evaluation
//! (Sec. VI): it runs the corresponding emulated experiment(s) and prints
//! the same rows/series the paper reports.
//!
//! ## Scale profiles
//!
//! Set `FEDSU_SCALE` to choose the workload size:
//!
//! * `smoke` — seconds-long sanity runs (CI);
//! * `quick` — the default; laptop-scale runs whose *shape* (who wins, by
//!   roughly what factor, where crossovers fall) mirrors the paper;
//! * `full` — larger clusters and horizons, closer to the paper's setup
//!   (hours of CPU time).

#![warn(missing_docs)]

use fedsu_core::{FedSu, MaskEvent};
use fedsu_fl::{Experiment, ExperimentResult, FaultConfig};
use fedsu_nn::models::ModelPreset;
use fedsu_repro::scenario::{ModelKind, Scenario};

/// Workload size profile, selected via the `FEDSU_SCALE` env var.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Seconds-long sanity runs.
    Smoke,
    /// Default laptop-scale profile.
    Quick,
    /// Larger, slower profile closer to the paper's setup.
    Full,
}

impl Scale {
    /// Reads `FEDSU_SCALE` (`smoke` / `quick` / `full`), defaulting to
    /// `quick`. Unknown values fall back to `quick` with a warning.
    pub fn from_env() -> Scale {
        match std::env::var("FEDSU_SCALE").unwrap_or_default().to_lowercase().as_str() {
            "smoke" => Scale::Smoke,
            "full" => Scale::Full,
            "" | "quick" => Scale::Quick,
            other => {
                eprintln!("warning: unknown FEDSU_SCALE `{other}`, using quick");
                Scale::Quick
            }
        }
    }
}

/// A sized workload: model plus the experiment dimensions for the active
/// scale.
#[derive(Debug, Clone, Copy)]
pub struct Workload {
    /// Architecture/dataset pair.
    pub model: ModelKind,
    /// Rounds to run.
    pub rounds: usize,
    /// Cluster size.
    pub clients: usize,
    /// Architecture width preset.
    pub preset: ModelPreset,
    /// Training samples per class.
    pub samples_per_class: usize,
}

impl Workload {
    /// The paper-calibrated workload for `model` at `scale`.
    pub fn for_model(model: ModelKind, scale: Scale) -> Workload {
        let (rounds, clients, preset, samples) = match scale {
            Scale::Smoke => (6, 3, ModelPreset::Tiny, 12),
            Scale::Quick => match model {
                ModelKind::Cnn => (50, 8, ModelPreset::Small, 40),
                ModelKind::ResNet18 => (24, 8, ModelPreset::Small, 40),
                ModelKind::DenseNet => (40, 8, ModelPreset::Tiny, 40),
                ModelKind::Mlp => (40, 8, ModelPreset::Small, 40),
            },
            Scale::Full => match model {
                ModelKind::Cnn => (200, 16, ModelPreset::Small, 80),
                ModelKind::ResNet18 => (120, 16, ModelPreset::Small, 80),
                ModelKind::DenseNet => (120, 16, ModelPreset::Small, 80),
                ModelKind::Mlp => (120, 16, ModelPreset::Small, 80),
            },
        };
        Workload { model, rounds, clients, preset, samples_per_class: samples }
    }

    /// Builds the scenario for this workload.
    pub fn scenario(&self) -> Scenario {
        Scenario::new(self.model)
            .preset(self.preset)
            .clients(self.clients)
            .rounds(self.rounds)
            .samples_per_class(self.samples_per_class)
    }

    /// Builds the scenario with a fault plan injected (defenses are
    /// auto-enabled by the scenario when the plan is non-zero).
    pub fn faulty_scenario(&self, faults: FaultConfig) -> Scenario {
        self.scenario().faults(faults)
    }
}

/// The two models the paper's ablation/sensitivity sections focus on
/// (footnote 5: CNN and DenseNet).
pub fn ablation_models(scale: Scale) -> Vec<Workload> {
    vec![
        Workload::for_model(ModelKind::Cnn, scale),
        Workload::for_model(ModelKind::DenseNet, scale),
    ]
}

/// The three models of the end-to-end evaluation.
pub fn e2e_models(scale: Scale) -> Vec<Workload> {
    vec![
        Workload::for_model(ModelKind::Cnn, scale),
        Workload::for_model(ModelKind::DenseNet, scale),
        Workload::for_model(ModelKind::ResNet18, scale),
    ]
}

/// Downcasts a finished experiment's strategy to FedSU (for event logs,
/// masks and skip statistics beyond the trait surface).
pub fn fedsu_of(experiment: &Experiment) -> Option<&FedSu> {
    experiment.strategy().as_any()?.downcast_ref::<FedSu>()
}

/// Mask-transition events of a finished FedSU experiment.
pub fn fedsu_events(experiment: &Experiment) -> Vec<MaskEvent> {
    fedsu_of(experiment).map(|f| f.events().to_vec()).unwrap_or_default()
}

/// Prints a time-to-accuracy series the way the paper's figures report it:
/// one row per evaluation round with emulated time, accuracy and the
/// sparsification ratio.
pub fn print_series(result: &ExperimentResult, every: usize) {
    println!("# {} / {}", result.model, result.strategy);
    println!("round,sim_time_s,accuracy,sparsification,train_loss");
    for r in result.rounds.iter().filter(|r| r.round % every == 0 || r.accuracy.is_some()) {
        if let Some(acc) = r.accuracy {
            println!(
                "{},{:.1},{:.4},{:.3},{:.4}",
                r.round, r.sim_time_secs, acc, r.sparsification_ratio, r.train_loss
            );
        }
    }
}

/// A one-line summary of a run (used by several benches).
pub fn summary_line(result: &ExperimentResult) -> String {
    format!(
        "{:10} best_acc={:.3} mean_sparsification={:5.1}% total_MB={:.2} sim_time={:.0}s",
        result.strategy,
        result.best_accuracy(),
        result.mean_sparsification() * 100.0,
        result.total_bytes() as f64 / 1e6,
        result.rounds.last().map_or(0.0, |r| r.sim_time_secs),
    )
}

/// A one-line fault-accounting summary of a run (all zeros on clean runs).
pub fn fault_summary_line(result: &ExperimentResult) -> String {
    format!(
        "dropped={} quarantined={} retransmitted_KB={:.1} rollbacks={}",
        result.total_dropped(),
        result.total_quarantined(),
        result.total_retransmitted_bytes() as f64 / 1e3,
        result.total_rollbacks(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_from_env_defaults_to_quick() {
        // Note: don't mutate the env in tests (they run in parallel);
        // just exercise the default path.
        assert!(matches!(Scale::from_env(), Scale::Quick | Scale::Smoke | Scale::Full));
    }

    #[test]
    fn workloads_cover_all_models() {
        for m in [ModelKind::Cnn, ModelKind::ResNet18, ModelKind::DenseNet, ModelKind::Mlp] {
            let w = Workload::for_model(m, Scale::Smoke);
            assert!(w.rounds > 0 && w.clients > 0);
        }
        assert_eq!(e2e_models(Scale::Quick).len(), 3);
        assert_eq!(ablation_models(Scale::Quick).len(), 2);
    }

    #[test]
    fn smoke_workload_runs_and_downcasts() {
        use fedsu_repro::scenario::StrategyKind;
        let w = Workload::for_model(ModelKind::Mlp, Scale::Smoke);
        let mut e = w.scenario().build(StrategyKind::FedSuCalibrated).unwrap();
        let r = e.run(None).unwrap();
        assert_eq!(r.rounds.len(), w.rounds);
        assert!(fedsu_of(&e).is_some());
        let _ = fedsu_events(&e);
        assert!(summary_line(&r).contains("fedsu"));
    }

    #[test]
    fn faulty_smoke_workload_reports_fault_accounting() {
        use fedsu_repro::scenario::StrategyKind;
        let w = Workload::for_model(ModelKind::Mlp, Scale::Smoke);
        let mut e = w
            .faulty_scenario(FaultConfig { dropout_prob: 0.3, ..FaultConfig::default() })
            .build(StrategyKind::FedAvg)
            .unwrap();
        let r = e.run(None).unwrap();
        assert_eq!(r.rounds.len(), w.rounds);
        assert!(fault_summary_line(&r).contains("dropped="));
    }
}
