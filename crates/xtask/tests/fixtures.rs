//! End-to-end tests of the lint rules against the seeded fixture files in
//! `crates/xtask/fixtures/`: each rule fires exactly once on its fixture
//! (at the exact file:line the fixture documents), the adversarial lexer
//! fixtures yield zero diagnostics, and a `lint-allow.toml` entry
//! suppresses seeded findings.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_xtask::workspace::SourceKind;
use fedsu_xtask::{allowlist, lint_source, rules::Diagnostic};
use std::path::PathBuf;

/// Reads a fixture's text from disk.
fn fixture_text(name: &str) -> String {
    let dir = option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/xtask");
    let path = PathBuf::from(dir).join("fixtures").join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} must be readable: {e}", path.display()))
}

/// Lints a fixture under an arbitrary workspace-relative path — the
/// `panic-path` and `float-determinism` rules key off the path (hot-path
/// roots, scoped crates), so their fixtures are linted as if they lived at
/// the path whose policy they exercise.
fn lint_fixture_as(name: &str, rel: &str) -> Vec<Diagnostic> {
    lint_source(rel, SourceKind::Library, &fixture_text(name))
}

/// Reads a fixture and lints it as library code (fixtures model `src/`
/// files; their location under `fixtures/` is irrelevant to most rules).
fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    lint_fixture_as(name, &format!("crates/xtask/fixtures/{name}"))
}

/// Asserts the fixture yields exactly one diagnostic, of the expected rule.
fn assert_fires_once(name: &str, rule: &str) -> Diagnostic {
    let diags = lint_fixture(name);
    assert_eq!(
        diags.len(),
        1,
        "{name}: expected exactly one finding, got {:?}",
        diags.iter().map(|d| (d.rule, d.line)).collect::<Vec<_>>()
    );
    assert_eq!(diags[0].rule, rule, "{name}: wrong rule: {:?}", diags[0]);
    diags[0].clone()
}

#[test]
fn hash_collections_fires_exactly_once() {
    let d = assert_fires_once("hash_collections.rs", "hash-collections");
    assert!(d.snippet.contains("HashMap"), "should point at the signature: {d:?}");
}

#[test]
fn wall_clock_fires_exactly_once() {
    let d = assert_fires_once("wall_clock.rs", "wall-clock");
    assert!(d.snippet.contains("Instant::now"), "should point at the clock read: {d:?}");
}

#[test]
fn truncating_cast_fires_exactly_once() {
    let d = assert_fires_once("truncating_cast.rs", "truncating-cast");
    assert!(d.snippet.contains("as u32"), "should point at the cast: {d:?}");
}

#[test]
fn no_unwrap_fires_exactly_once_outside_tests() {
    let d = assert_fires_once("no_unwrap.rs", "no-unwrap");
    assert!(d.snippet.contains(".unwrap()"), "should point at the unwrap: {d:?}");
}

#[test]
fn serde_default_fires_exactly_once() {
    let d = assert_fires_once("serde_default.rs", "serde-default");
    assert!(d.message.contains("wire_total"), "should name the uncovered field: {d:?}");
}

#[test]
fn allow_entry_suppresses_the_seeded_violation() {
    for (name, rule) in [
        ("hash_collections.rs", "hash-collections"),
        ("wall_clock.rs", "wall-clock"),
        ("truncating_cast.rs", "truncating-cast"),
        ("no_unwrap.rs", "no-unwrap"),
        ("serde_default.rs", "serde-default"),
    ] {
        let diags = lint_fixture(name);
        let allow_text = format!(
            "[[allow]]\nrule = \"{rule}\"\npath = \"crates/xtask/fixtures/{name}\"\nreason = \"seeded fixture violation, waived for the suppression test\"\n"
        );
        let entries = allowlist::parse(&allow_text).expect("generated allow text is well-formed");
        let (kept, suppressed, unused) = allowlist::apply(diags, &entries);
        assert!(kept.is_empty(), "{name}: entry should suppress the finding: {kept:?}");
        assert_eq!(suppressed.len(), 1, "{name}");
        assert!(unused.is_empty(), "{name}: the entry matched, it must not be stale");
    }
}

#[test]
fn non_matching_allow_entry_is_reported_stale() {
    let diags = lint_fixture("wall_clock.rs");
    let allow_text = "[[allow]]\nrule = \"wall-clock\"\npath = \"crates/other/file.rs\"\nreason = \"points at the wrong file on purpose\"\n";
    let entries = allowlist::parse(allow_text).expect("allow text is well-formed");
    let (kept, suppressed, unused) = allowlist::apply(diags, &entries);
    assert_eq!(kept.len(), 1, "violation must survive a non-matching entry");
    assert!(suppressed.is_empty());
    assert_eq!(unused.len(), 1, "the non-matching entry must be flagged stale");
}

#[test]
fn raw_strings_hide_hazard_text_from_every_rule() {
    let diags = lint_fixture("lexer_raw_string.rs");
    assert!(diags.is_empty(), "hazards inside raw strings are data, not code: {diags:?}");
}

#[test]
fn nested_block_comments_hide_hazard_text_from_every_rule() {
    let diags = lint_fixture("lexer_nested_comment.rs");
    assert!(diags.is_empty(), "hazards inside nested comments are prose, not code: {diags:?}");
}

#[test]
fn doc_comments_hide_hazard_text_from_every_rule() {
    let diags = lint_fixture("lexer_doc_comment.rs");
    assert!(diags.is_empty(), "hazards inside doc comments are prose, not code: {diags:?}");
}

#[test]
fn cfg_test_spans_are_exempt_in_library_files() {
    let diags = lint_fixture("lexer_cfg_test.rs");
    assert!(diags.is_empty(), "test-gated code follows the test policy: {diags:?}");
}

#[test]
fn use_alias_is_resolved_to_the_hazardous_type() {
    let diags = lint_fixture("use_alias.rs");
    let got: Vec<(&str, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(
        got,
        vec![("hash-collections", 5), ("hash-collections", 7)],
        "both the renamed import and the aliased usage must fire: {diags:?}"
    );
    assert!(
        diags[1].message.contains("via alias `Map`"),
        "the usage finding should explain the alias hop: {:?}",
        diags[1]
    );
}

#[test]
fn panic_path_fires_only_on_functions_reachable_from_a_root() {
    // Linted as the real hot-path root file so `run` seeds reachability.
    let diags = lint_fixture_as("panic_path.rs", "crates/fl/src/experiment.rs");
    let got: Vec<(&str, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(
        got,
        vec![("panic-path", 17)],
        "only the indexing two hops below `run` may fire: {diags:?}"
    );
    assert!(
        diags[0].message.contains("train_one"),
        "the finding should name the hot function: {:?}",
        diags[0]
    );
}

#[test]
fn panic_path_is_silent_when_no_root_is_in_the_linted_set() {
    // Same text under a non-root path: no roots, so no hot functions.
    let diags = lint_fixture("panic_path.rs");
    assert!(diags.is_empty(), "no root in scope means no panic-path findings: {diags:?}");
}

#[test]
fn unchecked_arith_fires_exactly_once_on_the_bare_accumulation() {
    let diags = lint_fixture("unchecked_arith.rs");
    let got: Vec<(&str, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(
        got,
        vec![("unchecked-arith", 8)],
        "only the bare `+=` over `*_bytes` may fire: {diags:?}"
    );
    assert!(
        diags[0].snippet.contains("total_bytes += retry_bytes"),
        "should point at the accumulation: {:?}",
        diags[0]
    );
}

#[test]
fn float_determinism_fires_exactly_once_inside_scoped_crates() {
    // Linted as an nn source file so the rule's crate scope applies.
    let diags = lint_fixture_as("float_determinism.rs", "crates/nn/src/float_determinism.rs");
    let got: Vec<(&str, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    assert_eq!(
        got,
        vec![("float-determinism", 9)],
        "only the float sum over `.values()` may fire: {diags:?}"
    );
}

#[test]
fn float_determinism_is_silent_outside_scoped_crates() {
    let diags = lint_fixture("float_determinism.rs");
    assert!(diags.is_empty(), "the rule is scoped to numeric crates: {diags:?}");
}

/// The fixture's diagnostics as `(rule, line)` pairs, sorted so tests
/// don't depend on rule-execution order.
fn sorted_findings(diags: &[Diagnostic]) -> Vec<(&str, usize)> {
    let mut got: Vec<(&str, usize)> = diags.iter().map(|d| (d.rule, d.line)).collect();
    got.sort_unstable();
    got
}

#[test]
fn lock_order_cycle_fires_on_both_inner_acquisitions() {
    let diags = lint_fixture("lock_order_cycle.rs");
    assert_eq!(
        sorted_findings(&diags),
        vec![("lock-order", 9), ("lock-order", 15)],
        "the ABBA pair must fire once per inner acquisition, and the \
         consistent-order `audit` must stay silent: {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.message.contains("cyclic lock order")),
        "both findings come from the cycle family: {diags:?}"
    );
}

#[test]
fn lock_order_fires_when_the_outer_guard_spans_a_send() {
    let diags = lint_fixture("lock_guard_across_channel.rs");
    assert_eq!(
        sorted_findings(&diags),
        vec![("lock-order", 13)],
        "only the send under the still-live OUTER guard may fire: {diags:?}"
    );
    assert!(
        diags[0].message.contains("guard `state` of lock `outer`"),
        "the finding must name the outer guard, not the dead inner one: {:?}",
        diags[0]
    );
}

#[test]
fn lock_order_fires_on_catch_unwind_under_a_guard() {
    let diags = lint_fixture("lock_catch_unwind.rs");
    assert_eq!(sorted_findings(&diags), vec![("lock-order", 8)], "{diags:?}");
    assert!(
        diags[0].message.contains("catch_unwind"),
        "the finding should explain the poison-leak hazard: {:?}",
        diags[0]
    );
}

#[test]
fn lock_order_is_silent_on_dropped_and_shadowed_guards() {
    let diags = lint_fixture("lock_order_negative.rs");
    assert!(
        diags.is_empty(),
        "drop() and shadowing end guard liveness before the sends: {diags:?}"
    );
}

#[test]
fn channel_discipline_fires_on_blocking_recv_reachable_from_a_worker() {
    // Linted as the real pool file so `worker_loop` seeds the worker set.
    let diags = lint_fixture_as("channel_worker_recv.rs", "crates/tensor/src/par.rs");
    assert_eq!(
        sorted_findings(&diags),
        vec![("channel-discipline", 15)],
        "only the recv one hop below `worker_loop` may fire; the identical \
         shape in `offline_poll` is not worker-reachable: {diags:?}"
    );
    assert!(
        diags[0].message.contains("fetch_job"),
        "the finding should name the worker-reachable function: {:?}",
        diags[0]
    );
}

#[test]
fn channel_discipline_fires_on_send_after_close() {
    let diags = lint_fixture("channel_send_after_close.rs");
    assert_eq!(
        sorted_findings(&diags),
        vec![("channel-discipline", 9)],
        "dropping a DIFFERENT endpoint (`handoff`) must not fire: {diags:?}"
    );
    assert!(
        diags[0].message.contains("drop(tx)"),
        "the finding should point at the closed endpoint: {:?}",
        diags[0]
    );
}

#[test]
fn channel_discipline_fires_on_an_unbounded_send_loop() {
    let diags = lint_fixture("channel_unbounded_loop.rs");
    assert_eq!(sorted_findings(&diags), vec![("channel-discipline", 9)], "{diags:?}");
    assert!(
        diags[0].message.contains("grow without bound"),
        "the finding should explain the growth hazard: {:?}",
        diags[0]
    );
}

#[test]
fn channel_discipline_is_silent_on_disciplined_shapes() {
    // Linted as the pool file: try_recv drains, a same-named #[cfg(test)]
    // double, a draining relay loop, and a bounded `for` broadcast are all
    // within discipline.
    let diags = lint_fixture_as("channel_negative.rs", "crates/tensor/src/par.rs");
    assert!(diags.is_empty(), "no disciplined shape may fire: {diags:?}");
}

#[test]
fn taint_flows_from_hash_iteration_into_a_record_field() {
    let diags = lint_fixture("taint_record_sink.rs");
    assert_eq!(
        sorted_findings(&diags),
        vec![("hash-collections", 9), ("nondeterminism-taint", 14)],
        "the HashMap signature and the tainted `train_loss` field: {diags:?}"
    );
    let taint = diags.iter().find(|d| d.rule == "nondeterminism-taint").unwrap();
    assert!(
        taint.message.contains("train_loss") && taint.message.contains("RoundRecord"),
        "the finding should name the record field sink: {taint:?}"
    );
}

#[test]
fn taint_survives_tuple_destructuring_into_a_wire_payload() {
    let diags = lint_fixture("taint_tuple.rs");
    assert_eq!(
        sorted_findings(&diags),
        vec![("hash-collections", 8), ("nondeterminism-taint", 12)],
        "the tuple-bound payload must carry taint into `send_bytes`: {diags:?}"
    );
    let taint = diags.iter().find(|d| d.rule == "nondeterminism-taint").unwrap();
    assert!(
        taint.message.contains("wire payload"),
        "the finding should name the wire sink: {taint:?}"
    );
}

#[test]
fn taint_is_silent_on_ordered_sources_and_sink_free_flows() {
    let diags = lint_fixture("taint_negative.rs");
    assert!(
        diags.is_empty(),
        "BTreeMap iteration is ordered and a sink-free thread-count flow is \
         benign: {diags:?}"
    );
}

#[test]
fn taint_is_silent_on_the_ordered_matmul_accumulation_shape() {
    // Linted as the real kernel file so float-accumulator sinks are in
    // scope — the ascending-index accumulation must still be clean.
    let diags = lint_fixture_as("taint_matmul_negative.rs", "crates/tensor/src/matmul.rs");
    assert!(
        diags.is_empty(),
        "slice-ordered `acc += x * y` is deterministic and must not fire: {diags:?}"
    );
}

#[test]
fn hot_alloc_fires_on_the_steady_path_and_skips_setup() {
    // Linted as the real hot-path root file so `run` seeds the steady
    // closure.
    let diags = lint_fixture_as("hot_alloc.rs", "crates/fl/src/experiment.rs");
    assert_eq!(
        sorted_findings(&diags),
        vec![("hot-alloc", 10), ("hot-alloc", 18)],
        "the `vec!` in `run` and the `.collect()` one hop below it; the \
         setup-named `build_model` and the cold `debug_dump` stay silent: {diags:?}"
    );
    assert!(
        diags[0].message.contains("runs every round"),
        "the finding should explain the steady-state hazard: {:?}",
        diags[0]
    );
    assert!(
        diags[1].message.contains("step"),
        "the transitive finding should name the hot callee: {:?}",
        diags[1]
    );
}

#[test]
fn hot_alloc_is_silent_without_a_round_loop_root() {
    // Same text under a non-root path: no roots, no steady-hot functions.
    let diags = lint_fixture("hot_alloc.rs");
    assert!(diags.is_empty(), "no root in scope means no hot-alloc findings: {diags:?}");
}

#[test]
fn loop_realloc_fires_only_on_unreserved_growth() {
    let diags = lint_fixture("loop_realloc.rs");
    assert_eq!(
        sorted_findings(&diags),
        vec![("loop-realloc", 10), ("loop-realloc", 18)],
        "only the unreserved `push` and `extend` may fire; the reserved, \
         sized-vec, and BTreeMap shapes are all within discipline: {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.message.contains("capacity reservation")),
        "both findings should point at the missing reservation: {diags:?}"
    );
}

#[test]
fn redundant_clone_fires_only_on_dead_sources() {
    let diags = lint_fixture("redundant_clone.rs");
    assert_eq!(
        sorted_findings(&diags),
        vec![("redundant-clone", 9), ("redundant-clone", 14)],
        "only the dead `payload` clone and dead `history.to_vec()` may \
         fire; the loop-carried and still-read bindings stay silent: {diags:?}"
    );
    assert!(
        diags.iter().all(|d| d.message.contains("never read again")),
        "both findings should explain the dead source: {diags:?}"
    );
}

#[test]
fn every_registered_rule_explains_itself() {
    for rule in fedsu_xtask::rules::RULE_IDS {
        let text = fedsu_xtask::explain::explain(rule)
            .unwrap_or_else(|| panic!("rule `{rule}` has no --explain text"));
        assert!(
            text.contains(rule),
            "`--explain {rule}` should restate the rule id:\n{text}"
        );
        for section in ["why", "example", "waiver policy"] {
            assert!(
                text.contains(section),
                "`--explain {rule}` is missing its `{section}` section:\n{text}"
            );
        }
    }
    assert!(
        fedsu_xtask::explain::explain("no-such-rule").is_none(),
        "unknown rules must be rejected, not given empty text"
    );
}

#[test]
fn checked_in_allow_file_parses_and_is_empty() {
    let dir = option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/xtask");
    let path = PathBuf::from(dir).join("lint-allow.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must exist: {e}", path.display()));
    let entries = allowlist::parse(&text).expect("checked-in allow file must parse");
    assert!(
        entries.is_empty(),
        "the workspace should need zero waivers; justify any addition in review"
    );
}

#[test]
fn checked_in_baseline_parses_and_is_canonically_ordered() {
    let dir = option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/xtask");
    let path = PathBuf::from(dir).join("lint-baseline.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must exist: {e}", path.display()));
    let entries = fedsu_xtask::baseline::parse(&text).expect("checked-in baseline must parse");
    assert!(!entries.is_empty(), "the ratchet starts from the seeded findings");
    let mut sorted = entries.clone();
    sorted.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.snippet).cmp(&(&b.path, b.line, &b.rule, &b.snippet))
    });
    assert_eq!(entries, sorted, "regenerate with `cargo run -p fedsu-xtask -- lint --fix-baseline`");
}

#[test]
fn checked_in_alloc_budget_parses_and_is_canonically_ordered() {
    let dir = option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/xtask");
    let path = PathBuf::from(dir).join("alloc-budget.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must exist: {e}", path.display()));
    let budget = fedsu_xtask::budget::parse(&text).expect("checked-in budget must parse");
    assert!(
        budget.runtime.max_round_allocs > 0 && budget.runtime.max_round_bytes > 0,
        "the [runtime] ceilings must be real limits, not zero"
    );
    assert!(!budget.entries.is_empty(), "the alloc ratchet starts from the seeded findings");
    let mut sorted = budget.entries.clone();
    sorted.sort_by(|a, b| {
        (&a.path, a.line, &a.rule, &a.snippet).cmp(&(&b.path, b.line, &b.rule, &b.snippet))
    });
    assert_eq!(
        budget.entries, sorted,
        "regenerate with `cargo run -p fedsu-xtask -- lint --fix-budget`"
    );
}
