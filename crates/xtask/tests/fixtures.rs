//! End-to-end tests of the lint rules against the seeded fixture files in
//! `crates/xtask/fixtures/`: each rule fires exactly once on its fixture,
//! and a `lint-allow.toml` entry suppresses it.

// Tests and benches may unwrap: a panic here IS the failure report
// (mirrors allow-unwrap-in-tests in clippy.toml for non-#[test] helpers).
#![allow(clippy::unwrap_used)]

use fedsu_xtask::workspace::SourceKind;
use fedsu_xtask::{allowlist, lint_source, rules::Diagnostic};
use std::path::PathBuf;

/// Reads a fixture and lints it as library code (fixtures model `src/`
/// files; their location under `fixtures/` is irrelevant to the rules).
fn lint_fixture(name: &str) -> Vec<Diagnostic> {
    let dir = option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/xtask");
    let path = PathBuf::from(dir).join("fixtures").join(name);
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} must be readable: {e}", path.display()));
    let rel = format!("crates/xtask/fixtures/{name}");
    lint_source(&rel, SourceKind::Library, &text)
}

/// Asserts the fixture yields exactly one diagnostic, of the expected rule.
fn assert_fires_once(name: &str, rule: &str) -> Diagnostic {
    let diags = lint_fixture(name);
    assert_eq!(
        diags.len(),
        1,
        "{name}: expected exactly one finding, got {:?}",
        diags.iter().map(|d| (d.rule, d.line)).collect::<Vec<_>>()
    );
    assert_eq!(diags[0].rule, rule, "{name}: wrong rule: {:?}", diags[0]);
    diags[0].clone()
}

#[test]
fn hash_collections_fires_exactly_once() {
    let d = assert_fires_once("hash_collections.rs", "hash-collections");
    assert!(d.snippet.contains("HashMap"), "should point at the signature: {d:?}");
}

#[test]
fn wall_clock_fires_exactly_once() {
    let d = assert_fires_once("wall_clock.rs", "wall-clock");
    assert!(d.snippet.contains("Instant::now"), "should point at the clock read: {d:?}");
}

#[test]
fn truncating_cast_fires_exactly_once() {
    let d = assert_fires_once("truncating_cast.rs", "truncating-cast");
    assert!(d.snippet.contains("as u32"), "should point at the cast: {d:?}");
}

#[test]
fn no_unwrap_fires_exactly_once_outside_tests() {
    let d = assert_fires_once("no_unwrap.rs", "no-unwrap");
    assert!(d.snippet.contains(".unwrap()"), "should point at the unwrap: {d:?}");
}

#[test]
fn serde_default_fires_exactly_once() {
    let d = assert_fires_once("serde_default.rs", "serde-default");
    assert!(d.message.contains("wire_total"), "should name the uncovered field: {d:?}");
}

#[test]
fn allow_entry_suppresses_the_seeded_violation() {
    for (name, rule) in [
        ("hash_collections.rs", "hash-collections"),
        ("wall_clock.rs", "wall-clock"),
        ("truncating_cast.rs", "truncating-cast"),
        ("no_unwrap.rs", "no-unwrap"),
        ("serde_default.rs", "serde-default"),
    ] {
        let diags = lint_fixture(name);
        let allow_text = format!(
            "[[allow]]\nrule = \"{rule}\"\npath = \"crates/xtask/fixtures/{name}\"\nreason = \"seeded fixture violation, waived for the suppression test\"\n"
        );
        let entries = allowlist::parse(&allow_text).expect("generated allow text is well-formed");
        let (kept, suppressed, unused) = allowlist::apply(diags, &entries);
        assert!(kept.is_empty(), "{name}: entry should suppress the finding: {kept:?}");
        assert_eq!(suppressed.len(), 1, "{name}");
        assert!(unused.is_empty(), "{name}: the entry matched, it must not be stale");
    }
}

#[test]
fn non_matching_allow_entry_is_reported_stale() {
    let diags = lint_fixture("wall_clock.rs");
    let allow_text = "[[allow]]\nrule = \"wall-clock\"\npath = \"crates/other/file.rs\"\nreason = \"points at the wrong file on purpose\"\n";
    let entries = allowlist::parse(allow_text).expect("allow text is well-formed");
    let (kept, suppressed, unused) = allowlist::apply(diags, &entries);
    assert_eq!(kept.len(), 1, "violation must survive a non-matching entry");
    assert!(suppressed.is_empty());
    assert_eq!(unused.len(), 1, "the non-matching entry must be flagged stale");
}

#[test]
fn checked_in_allow_file_parses_and_is_empty() {
    let dir = option_env!("CARGO_MANIFEST_DIR").unwrap_or("crates/xtask");
    let path = PathBuf::from(dir).join("lint-allow.toml");
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("{} must exist: {e}", path.display()));
    let entries = allowlist::parse(&text).expect("checked-in allow file must parse");
    assert!(
        entries.is_empty(),
        "the workspace should need zero waivers; justify any addition in review"
    );
}
