//! The lint rules: each scans a [`PreparedSource`] token stream and reports
//! reproducibility or safety hazards with `file:line` positions.
//!
//! All rules skip test code (`#[cfg(test)]` items, `#[test]` functions)
//! because the hazards they guard against — nondeterministic iteration
//! order, wall-clock reads, silently-truncating or wrapping arithmetic,
//! panicking accessors, and non-evolvable record schemas — only threaten the
//! *emulation and its persisted results*, not assertions inside tests.
//!
//! Rules operate on tokens, never on raw text: a `HashMap` inside a string
//! literal or comment does not exist at this layer, and `use … as` aliases
//! are resolved through the per-file [`crate::resolve::SymbolTable`].

use crate::callgraph::CallGraph;
use crate::dataflow::{self, WorkspaceFlow};
use crate::lexer::{Token, TokenKind};
use crate::resolve::TypeHint;
use crate::scan::PreparedSource;
use std::collections::BTreeSet;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (used by `lint-allow.toml` and the baseline).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line (trimmed), for allow/baseline matching.
    pub snippet: String,
}

impl Diagnostic {
    pub(crate) fn at(
        src: &PreparedSource,
        path: &str,
        line: usize,
        rule: &'static str,
        message: String,
    ) -> Self {
        Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message,
            snippet: src.snippet(line).to_string(),
        }
    }
}

/// Stable identifiers of every rule, in reporting order.
pub const RULE_IDS: [&str; 14] = [
    "hash-collections",
    "wall-clock",
    "truncating-cast",
    "no-unwrap",
    "serde-default",
    "panic-path",
    "unchecked-arith",
    "float-determinism",
    "lock-order",
    "channel-discipline",
    "nondeterminism-taint",
    "hot-alloc",
    "loop-realloc",
    "redundant-clone",
];

/// The allocation-flow rule families: these ratchet through
/// `alloc-budget.toml` (see [`crate::budget`]) instead of the baseline.
pub const ALLOC_RULES: [&str; 3] = ["hot-alloc", "loop-realloc", "redundant-clone"];

/// Runs every rule over one prepared source file. `graph` supplies hot-path
/// and worker reachability; `flow` supplies the cross-file lock-acquisition
/// graph and the tainted/drain function-name sets (both built over all files
/// in the run).
pub fn check_all(
    path: &str,
    src: &PreparedSource,
    graph: &CallGraph,
    flow: &WorkspaceFlow,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(check_hash_collections(path, src));
    out.extend(check_wall_clock(path, src));
    out.extend(check_truncating_cast(path, src));
    out.extend(check_no_unwrap(path, src));
    out.extend(check_serde_default(path, src));
    out.extend(check_panic_path(path, src, graph));
    out.extend(check_unchecked_arith(path, src));
    out.extend(check_float_determinism(path, src));
    out.extend(check_lock_order(path, src, graph, flow));
    out.extend(check_channel_discipline(path, src, graph, flow));
    out.extend(check_nondet_taint(path, src, flow));
    out.extend(crate::allocflow::check_hot_alloc(path, src, graph));
    out.extend(crate::allocflow::check_loop_realloc(path, src));
    out.extend(crate::allocflow::check_redundant_clone(path, src));
    out.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    out
}

/// Rule `hash-collections`: `HashMap`/`HashSet` (under any `use … as` alias)
/// in library code. Their iteration order is randomized per process, so any
/// aggregation, selection, or serialization driven by it silently breaks
/// run-to-run reproducibility. Use `BTreeMap`/`BTreeSet`, or dense-id
/// indexing.
fn check_hash_collections(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut fired_lines = BTreeSet::new();
    for (i, t) in src.file.tokens.iter().enumerate() {
        if src.tok_in_test(i) || t.kind != TokenKind::Ident {
            continue;
        }
        let canon = src.symbols.canonical(&t.text);
        if (canon == "HashMap" || canon == "HashSet") && fired_lines.insert(t.line) {
            let via = if t.text == canon {
                String::new()
            } else {
                format!(" (via alias `{}`)", t.text)
            };
            out.push(Diagnostic::at(
                src,
                path,
                t.line,
                "hash-collections",
                format!(
                    "{canon}{via} has nondeterministic iteration order; use \
                     BTreeMap/BTreeSet or dense-id indexing so emulation results \
                     stay reproducible"
                ),
            ));
        }
    }
    out
}

/// Rule `wall-clock`: `Instant::now`/`SystemTime` (under any alias) in
/// library code. The emulator owns its own clock (`sim_time_secs`); reading
/// the host clock in a sim path couples results to machine speed and
/// scheduling.
fn check_wall_clock(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    let mut fired_lines = BTreeSet::new();
    for (i, t) in toks.iter().enumerate() {
        if src.tok_in_test(i) || t.kind != TokenKind::Ident {
            continue;
        }
        let canon = src.symbols.canonical(&t.text);
        let hit = canon == "SystemTime"
            || (canon == "Instant"
                && toks.get(i + 1).is_some_and(|n| n.is_punct("::"))
                && toks.get(i + 2).is_some_and(|n| n.is_ident("now")));
        if hit && fired_lines.insert(t.line) {
            out.push(Diagnostic::at(
                src,
                path,
                t.line,
                "wall-clock",
                "wall-clock read in emulation code; sim paths must derive every \
                 duration from the deterministic sim clock"
                    .to_string(),
            ));
        }
    }
    out
}

/// Identifier fragments that mark a statement as byte/time-accounting code.
const ACCOUNTING_MARKERS: [&str; 8] =
    ["byte", "secs", "duration", "latency", "millis", "deadline", "elapsed", "bandwidth"];

/// Integer cast targets that can truncate.
const INT_TARGETS: [&str; 10] =
    ["u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize"];

/// Token range of the statement containing token `i`: bounded by the nearest
/// `;`/`{`/`}` on each side (exclusive). Coarse, but statements in this
/// workspace don't nest blocks inside accounting expressions.
pub(crate) fn statement_span(toks: &[Token], i: usize) -> (usize, usize) {
    let mut s = i;
    while s > 0 && !matches!(toks[s - 1].text.as_str(), ";" | "{" | "}") {
        s -= 1;
    }
    let mut e = i;
    while e + 1 < toks.len() && !matches!(toks[e + 1].text.as_str(), ";" | "{" | "}") {
        e += 1;
    }
    (s, e)
}

/// `true` when any identifier in `[s, e]` contains an accounting marker.
fn span_has_marker(toks: &[Token], s: usize, e: usize) -> bool {
    toks[s..=e].iter().any(|t| {
        t.kind == TokenKind::Ident && {
            let lower = t.text.to_lowercase();
            ACCOUNTING_MARKERS.iter().any(|m| lower.contains(m))
        }
    })
}

/// Rule `truncating-cast`: `as <integer>` casts inside byte/time-accounting
/// statements. `as` silently truncates and wraps; traffic totals and
/// emulated clocks must use `u64::from`/`try_from` (or widen the
/// accumulator) so a unit bug becomes a loud error instead of a wrong paper
/// figure. Statement-scoped, so multi-line accounting expressions are seen.
fn check_truncating_cast(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if src.tok_in_test(i) || !toks[i].is_ident("as") {
            continue;
        }
        let Some(target) = toks.get(i + 1) else { continue };
        if target.kind != TokenKind::Ident || !INT_TARGETS.contains(&target.text.as_str()) {
            continue;
        }
        // Casting a bare literal (e.g. `0 as u64`) can't truncate anything
        // that matters; skip it.
        if i > 0 && matches!(toks[i - 1].kind, TokenKind::Int | TokenKind::Float) {
            continue;
        }
        let (s, e) = statement_span(toks, i);
        if !span_has_marker(toks, s, e) {
            continue;
        }
        out.push(Diagnostic::at(
            src,
            path,
            toks[i].line,
            "truncating-cast",
            format!(
                "`as {}` on a byte/time-accounting statement silently truncates; \
                 use `u64::from`/`try_from` or widen the accumulator",
                target.text
            ),
        ));
    }
    out
}

/// Minimum `.expect("...")` message length that counts as documented.
const MIN_EXPECT_MESSAGE: usize = 10;

/// Rule `no-unwrap`: `.unwrap()` (always) and `.expect()` with an empty or
/// trivially short literal message in library code. Panics inside the
/// emulation abort whole multi-hour sweeps; fallible paths must return
/// `Result`, and the remaining panics must document the invariant that makes
/// them unreachable.
fn check_no_unwrap(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if src.tok_in_test(i) || !toks[i].is_punct(".") {
            continue;
        }
        let Some(name) = toks.get(i + 1) else { continue };
        if !toks.get(i + 2).is_some_and(|t| t.is_punct("(")) {
            continue;
        }
        if name.is_ident("unwrap") && toks.get(i + 3).is_some_and(|t| t.is_punct(")")) {
            out.push(Diagnostic::at(
                src,
                path,
                name.line,
                "no-unwrap",
                "`.unwrap()` in library code; return a Result or use `.expect(...)` \
                 with a message documenting why failure is impossible"
                    .to_string(),
            ));
        } else if name.is_ident("expect") {
            // Only literal messages are measurable; dynamic messages
            // (format!, variables) count as documented.
            let Some(arg) = toks.get(i + 3) else { continue };
            if matches!(arg.kind, TokenKind::Str | TokenKind::RawStr)
                && arg
                    .str_content()
                    .is_some_and(|msg| msg.chars().count() < MIN_EXPECT_MESSAGE)
            {
                out.push(Diagnostic::at(
                    src,
                    path,
                    name.line,
                    "no-unwrap",
                    format!(
                        "`.expect()` message shorter than {MIN_EXPECT_MESSAGE} chars does \
                         not document the invariant; explain why failure is impossible"
                    ),
                ));
            }
        }
    }
    out
}

/// Struct-name suffixes that mark persisted experiment records.
const RECORD_SUFFIXES: [&str; 3] = ["Record", "Result", "Stats"];

/// `true` when an attribute text (tokens joined by spaces) is a
/// `#[serde(default…)]`-style container/field default.
fn attr_is_serde_default(attr: &str) -> bool {
    let t = attr.trim_start();
    t.starts_with("serde") && t.contains("default")
}

/// Rule `serde-default`: persisted record structs (`*Record`, `*Result`,
/// `*Stats` deriving `Deserialize`) must mark every field `#[serde(default)]`
/// (or carry a container-level default). Records written by an older binary
/// must stay loadable after fields are added — PR 1's fault columns were
/// exactly such an evolution.
fn check_serde_default(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for s in &src.file.structs {
        if s.in_test || !s.braced {
            continue;
        }
        if !RECORD_SUFFIXES.iter().any(|suf| s.name.ends_with(suf)) {
            continue;
        }
        if !s.attrs.iter().any(|a| a.contains("Deserialize")) {
            continue;
        }
        if s.attrs.iter().any(|a| attr_is_serde_default(a)) {
            continue; // container-level default covers every field
        }
        for f in &s.fields {
            if f.attrs.iter().any(|a| attr_is_serde_default(a)) {
                continue;
            }
            out.push(Diagnostic::at(
                src,
                path,
                f.line,
                "serde-default",
                format!(
                    "field `{}` of record struct `{}` lacks #[serde(default)]; \
                     persisted records from older binaries must stay loadable \
                     when fields are added",
                    f.name, s.name
                ),
            ));
        }
    }
    out
}

/// Rule `panic-path`: `panic!`/`unreachable!`, slice/array indexing, and
/// `.expect(…)` inside functions transitively reachable (by the name-based
/// call-graph approximation) from `fl::experiment::run` or the
/// `core::manager` hot loops. A panic on these paths aborts a whole
/// multi-hour sweep; hot code must use `get()`/`get_mut()` or propagate
/// `FlError`, and any remaining panic needs a baseline entry reviewed in PR.
fn check_panic_path(path: &str, src: &PreparedSource, graph: &CallGraph) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    let mut fired_lines = BTreeSet::new();
    for (ni, f) in src.file.fns.iter().enumerate() {
        if f.in_test || !graph.is_hot(path, ni) {
            continue;
        }
        let Some((bs, be)) = f.body else { continue };
        for i in bs..=be.min(toks.len().saturating_sub(1)) {
            if src.tok_in_test(i) {
                continue;
            }
            let t = &toks[i];
            let what: Option<&str> = if t.kind == TokenKind::Ident
                && matches!(t.text.as_str(), "panic" | "unreachable")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("!"))
            {
                Some("explicit panic")
            } else if t.is_punct("[")
                && i > bs
                && (matches!(toks[i - 1].kind, TokenKind::Ident)
                    || toks[i - 1].is_punct(")")
                    || toks[i - 1].is_punct("]"))
            {
                Some("slice indexing")
            } else if t.is_punct(".")
                && toks.get(i + 1).is_some_and(|n| n.is_ident("expect"))
                && toks.get(i + 2).is_some_and(|n| n.is_punct("("))
            {
                Some("`.expect()`")
            } else {
                None
            };
            if let Some(what) = what {
                if fired_lines.insert(t.line) {
                    out.push(Diagnostic::at(
                        src,
                        path,
                        t.line,
                        "panic-path",
                        format!(
                            "{what} in `{}`, which is reachable from the experiment \
                             round loop; a panic here aborts the whole sweep — use \
                             get()/checked ops or propagate the error",
                            f.name
                        ),
                    ));
                }
            }
        }
    }
    out
}

/// `true` when `name` matches the wire-byte / sim-time naming contract.
fn matches_accounting_contract(name: &str) -> bool {
    name == "bytes"
        || name.ends_with("_bytes")
        || name.ends_with("_ms")
        || name.starts_with("sim_time")
}

/// Skips backward over one balanced `(…)`/`[…]` group ending at `j`
/// (which holds a `)` or `]`), returning the opener's index.
fn skip_group_back(toks: &[Token], j: usize, open: &str, close: &str) -> usize {
    let mut depth = 0usize;
    let mut k = j;
    loop {
        if toks[k].is_punct(close) {
            depth += 1;
        } else if toks[k].is_punct(open) {
            depth -= 1;
            if depth == 0 {
                return k;
            }
        }
        if k == 0 {
            return 0;
        }
        k -= 1;
    }
}

/// Identifiers in the operand chain immediately left of token `i`.
pub(crate) fn left_chain_idents(toks: &[Token], i: usize, stop: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = i;
    while j > stop {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(")") {
            j = skip_group_back(toks, j, "(", ")");
        } else if t.is_punct("]") {
            j = skip_group_back(toks, j, "[", "]");
        } else if t.kind == TokenKind::Ident {
            out.push(t.text.clone());
        } else if !(t.is_punct(".") || t.is_punct("::") || matches!(t.kind, TokenKind::Int)) {
            break;
        }
    }
    out
}

/// Identifiers in the operand chain immediately right of token `i`.
fn right_chain_idents(toks: &[Token], i: usize, stop: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut j = i + 1;
    while j <= stop && j < toks.len() {
        let t = &toks[j];
        if t.is_punct("(") {
            let mut depth = 0usize;
            while j <= stop && j < toks.len() {
                if toks[j].is_punct("(") {
                    depth += 1;
                } else if toks[j].is_punct(")") {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j += 1;
            }
        } else if t.kind == TokenKind::Ident {
            out.push(t.text.clone());
        } else if !(t.is_punct(".") || t.is_punct("::") || matches!(t.kind, TokenKind::Int)) {
            break;
        }
        j += 1;
    }
    out
}

/// `true` when token `i` sits inside the argument list of a
/// `checked_*`/`saturating_*`/`wrapping_*` call within the statement.
fn inside_checked_call(toks: &[Token], stmt_start: usize, i: usize) -> bool {
    let mut depth = 0usize;
    let mut j = i;
    while j > stmt_start {
        j -= 1;
        let t = &toks[j];
        if t.is_punct(")") {
            depth += 1;
        } else if t.is_punct("(") {
            if depth == 0 {
                if j > 0 && toks[j - 1].kind == TokenKind::Ident {
                    let n = toks[j - 1].text.as_str();
                    if n.starts_with("checked_")
                        || n.starts_with("saturating_")
                        || n.starts_with("wrapping_")
                        || n.starts_with("overflowing_")
                    {
                        return true;
                    }
                }
            } else {
                depth -= 1;
            }
        }
    }
    false
}

/// `true` when a float literal or `f32`/`f64` appears within `window` tokens
/// of `i` — the statement is float arithmetic, where wrapping overflow does
/// not exist and the rule must stay silent.
fn float_context(toks: &[Token], i: usize, window: usize) -> bool {
    let lo = i.saturating_sub(window);
    let hi = (i + window).min(toks.len().saturating_sub(1));
    toks[lo..=hi].iter().any(|t| {
        t.kind == TokenKind::Float || t.is_ident("f32") || t.is_ident("f64")
    })
}

/// Rule `unchecked-arith`: bare `+`/`+=`/`*`/`*=` whose operand chain
/// touches an identifier matching the wire-byte/sim-time naming contract
/// (`bytes`, `*_bytes`, `*_ms`, `sim_time*`) outside a
/// `checked_`/`saturating_` call and outside float arithmetic. Wire-byte
/// conservation is a paper-level invariant (PR 1/2); overflow must be loud.
fn check_unchecked_arith(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    let mut fired_lines = BTreeSet::new();
    for i in 0..toks.len() {
        if src.tok_in_test(i) {
            continue;
        }
        let t = &toks[i];
        let op = t.text.as_str();
        if t.kind != TokenKind::Punct || !matches!(op, "+" | "+=" | "*" | "*=") {
            continue;
        }
        // `+`/`*` must be binary: something value-like on the left.
        if matches!(op, "+" | "*")
            && !(i > 0
                && (matches!(toks[i - 1].kind, TokenKind::Ident | TokenKind::Int | TokenKind::Float)
                    || toks[i - 1].is_punct(")")
                    || toks[i - 1].is_punct("]")))
        {
            continue;
        }
        let (s, e) = statement_span(toks, i);
        let mut operands = left_chain_idents(toks, i, s.saturating_sub(1));
        operands.extend(right_chain_idents(toks, i, e));
        let hits: Vec<&String> =
            operands.iter().filter(|n| matches_accounting_contract(n)).collect();
        if hits.is_empty() {
            continue;
        }
        if inside_checked_call(toks, s.saturating_sub(1), i) {
            continue;
        }
        if float_context(toks, i, 6)
            || hits.iter().any(|n| src.symbols.hint(n) == Some(TypeHint::Float))
        {
            continue;
        }
        if fired_lines.insert(t.line) {
            out.push(Diagnostic::at(
                src,
                path,
                t.line,
                "unchecked-arith",
                format!(
                    "bare `{op}` on accounting value `{}` can wrap silently; use \
                     `checked_add`/`checked_mul` (with an invariant-documenting \
                     expect) or `saturating_*` so wire-byte totals stay exact",
                    hits[0]
                ),
            ));
        }
    }
    out
}

/// Crate path prefixes where float accumulation order matters for the paper's
/// numeric claims.
const FLOAT_DET_SCOPE: [&str; 3] = ["crates/tensor/", "crates/nn/", "crates/strategies/"];

/// Iterator sources whose order is nondeterministic (or at least
/// insertion-order-dependent) when the underlying collection is a map/set.
const UNORDERED_SOURCES: [&str; 5] = ["values", "keys", "into_values", "into_keys", "par_iter"];

/// Rule `float-determinism`: `f32`/`f64` accumulation (`.sum::<fN>()`,
/// `.product::<fN>()`, float-seeded `.fold(…)`) over an iterator whose order
/// is not deterministic — map/set `values()`/`keys()` chains or `par_iter`.
/// Float addition is not associative; summing in a nondeterministic order
/// changes the aggregate bit pattern between runs, which breaks the
/// bit-for-bit reproducibility the evaluation claims rest on. Scoped to
/// `tensor`, `nn`, and `strategies`, the crates that feed model numerics.
fn check_float_determinism(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    if !FLOAT_DET_SCOPE.iter().any(|p| path.starts_with(p)) {
        return Vec::new();
    }
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if src.tok_in_test(i) || !toks[i].is_punct(".") {
            continue;
        }
        let Some(name) = toks.get(i + 1) else { continue };
        let is_float_agg = if name.is_ident("sum") || name.is_ident("product") {
            // Require a float turbofish: `.sum::<f64>()`.
            toks.get(i + 2).is_some_and(|t| t.is_punct("::"))
                && toks.get(i + 3).is_some_and(|t| t.is_punct("<"))
                && toks.get(i + 4).is_some_and(|t| t.is_ident("f32") || t.is_ident("f64"))
        } else if name.is_ident("fold") {
            // `.fold(0.0, …)` — float seed (optionally negated).
            toks.get(i + 2).is_some_and(|t| t.is_punct("("))
                && (toks.get(i + 3).is_some_and(|t| t.kind == TokenKind::Float)
                    || (toks.get(i + 3).is_some_and(|t| t.is_punct("-"))
                        && toks.get(i + 4).is_some_and(|t| t.kind == TokenKind::Float)))
        } else {
            false
        };
        if !is_float_agg {
            continue;
        }
        let (s, _) = statement_span(toks, i);
        let chain = left_chain_idents(toks, i, s.saturating_sub(1));
        let unordered = chain.iter().any(|n| UNORDERED_SOURCES.contains(&n.as_str()))
            || chain.iter().any(|n| {
                matches!(
                    src.symbols.hint(n),
                    Some(TypeHint::MapLike | TypeHint::UnorderedMap)
                )
            });
        if unordered {
            out.push(Diagnostic::at(
                src,
                path,
                name.line,
                "float-determinism",
                format!(
                    "float `.{}` over an iteration whose order is nondeterministic; \
                     collect into a Vec sorted by a stable key (or iterate a \
                     BTreeMap) before accumulating so results stay bit-for-bit \
                     reproducible",
                    name.text
                ),
            ));
        }
    }
    out
}

/// Rule `lock-order`: guard-discipline hazards found by the dataflow pass —
/// a lock guard held across an `mpsc` send/recv, across a call that can
/// reach the worker-pool dispatch path (`run_chunks`), or across a
/// `catch_unwind` (a swallowed panic leaves the lock poisoned for every
/// later acquirer); plus acquisition sites on a *cyclic* lock-order edge in
/// the cross-function acquisition graph. Any of these can deadlock the pool
/// or wedge the emulator mid-sweep.
fn check_lock_order(
    path: &str,
    src: &PreparedSource,
    graph: &CallGraph,
    flow: &WorkspaceFlow,
) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    let mut fired_lines = BTreeSet::new();
    for f in &src.file.fns {
        if f.in_test {
            continue;
        }
        let Some(body) = f.body else { continue };
        let guards = dataflow::fn_guards(toks, &src.symbols, body);
        if guards.is_empty() {
            continue;
        }
        let (bs, be) = (body.0, body.1.min(toks.len().saturating_sub(1)));
        for i in bs..=be {
            if src.tok_in_test(i) {
                continue;
            }
            let live: Vec<&dataflow::Guard> =
                guards.iter().filter(|g| i > g.start && i <= g.end).collect();
            if live.is_empty() {
                continue;
            }
            let t = &toks[i];
            let hazard: Option<String> =
                if let Some((_, method)) = dataflow::channel_op_at(toks, i) {
                    Some(format!("channel `.{method}(…)`"))
                } else if t.is_ident("catch_unwind")
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                {
                    Some("`catch_unwind`, which can swallow a panic and leak the lock poisoned".to_string())
                } else if t.kind == TokenKind::Ident
                    && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
                    && t.text != f.name
                    && graph.reaches_dispatch(&t.text)
                {
                    Some(format!(
                        "`{}(…)`, which can reach the worker-pool dispatch path",
                        t.text
                    ))
                } else {
                    None
                };
            if let Some(hazard) = hazard {
                if fired_lines.insert(t.line) {
                    let g = live[0];
                    out.push(Diagnostic::at(
                        src,
                        path,
                        t.line,
                        "lock-order",
                        format!(
                            "guard `{}` of lock `{}` (acquired line {}) is held across \
                             {hazard}; shrink the critical section (collect under the \
                             lock, act after `drop`)",
                            g.name, g.lock, g.line
                        ),
                    ));
                }
            }
        }
    }
    for e in &flow.cycle_edges {
        if e.path == path && fired_lines.insert(e.line) {
            out.push(Diagnostic::at(
                src,
                path,
                e.line,
                "lock-order",
                format!(
                    "acquiring `{}` while holding `{}` is part of a cyclic lock order \
                     across the workspace; pick one global acquisition order",
                    e.acquired, e.held
                ),
            ));
        }
    }
    out
}

/// Names a dropped sender/receiver binding can go by for the
/// send-after-close check.
fn is_drop_call(toks: &[Token], i: usize) -> Option<String> {
    if toks[i].is_ident("drop")
        && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
        && toks.get(i + 2).is_some_and(|t| t.kind == TokenKind::Ident)
        && toks.get(i + 3).is_some_and(|t| t.is_punct(")"))
    {
        Some(toks[i + 2].text.clone())
    } else {
        None
    }
}

/// Rule `channel-discipline`: mpsc usage patterns that wedge or leak. (a) A
/// blocking `recv`/`recv_timeout` inside a function reachable from a
/// pool-worker body — a worker blocked on an empty channel while holding the
/// pool's attention deadlocks dispatch (use a `Condvar` or `try_recv`
/// drain). (b) `send` on a channel endpoint after an explicit `drop` of that
/// endpoint in the same function — always an error at runtime. (c) `send`
/// inside an unbounded `loop`/`while` whose body never drains (no `recv` and
/// no call to a function that receives): the queue grows without bound.
fn check_channel_discipline(
    path: &str,
    src: &PreparedSource,
    graph: &CallGraph,
    flow: &WorkspaceFlow,
) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    let mut fired_lines = BTreeSet::new();
    for (ni, f) in src.file.fns.iter().enumerate() {
        if f.in_test {
            continue;
        }
        let Some(body) = f.body else { continue };
        let (bs, be) = (body.0, body.1.min(toks.len().saturating_sub(1)));
        let is_worker = graph.is_worker(path, ni);
        let mut dropped: BTreeSet<String> = BTreeSet::new();
        for i in bs..=be {
            if src.tok_in_test(i) {
                continue;
            }
            if let Some(name) = is_drop_call(toks, i) {
                dropped.insert(name);
                continue;
            }
            let Some((kind, method)) = dataflow::channel_op_at(toks, i) else { continue };
            let (s, _) = statement_span(toks, i);
            let chain = left_chain_idents(toks, i, s.saturating_sub(1));
            let receiver = chain.first();
            if kind == "recv" && is_worker && fired_lines.insert(toks[i].line) {
                out.push(Diagnostic::at(
                    src,
                    path,
                    toks[i].line,
                    "channel-discipline",
                    format!(
                        "blocking `.{method}(…)` in `{}`, which runs on a pool-worker \
                         thread; a worker parked on an empty channel wedges dispatch — \
                         use a Condvar-guarded queue or a bounded drain",
                        f.name
                    ),
                ));
            }
            if kind == "send" {
                if let Some(r) = receiver {
                    if dropped.contains(r) && fired_lines.insert(toks[i].line) {
                        out.push(Diagnostic::at(
                            src,
                            path,
                            toks[i].line,
                            "channel-discipline",
                            format!(
                                "`.{method}(…)` on `{r}` after `drop({r})` in `{}`; the \
                                 endpoint is closed and every send errors",
                                f.name
                            ),
                        ));
                    }
                }
            }
        }
        out.extend(unbounded_send_loops(path, src, f, (bs, be), flow));
    }
    out
}

/// The unbounded-growth half of `channel-discipline`: `send` inside a
/// `loop`/`while` block with no drain (`recv*` or a call into a function
/// that receives) anywhere in the same block. `for` loops are bounded by
/// their iterator and are deliberately exempt.
fn unbounded_send_loops(
    path: &str,
    src: &PreparedSource,
    f: &crate::ast::FnItem,
    body: (usize, usize),
    flow: &WorkspaceFlow,
) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    let (bs, be) = body;
    for i in bs..=be {
        if src.tok_in_test(i) || !(toks[i].is_ident("loop") || toks[i].is_ident("while")) {
            continue;
        }
        // Find the loop body's `{ … }`.
        let Some(open) = (i + 1..=be).find(|&j| toks[j].is_punct("{")) else { continue };
        let close = dataflow::block_close(toks, open).min(be);
        let mut send_at: Option<usize> = None;
        let mut drained = false;
        for j in open..=close {
            match dataflow::channel_op_at(toks, j) {
                Some(("send", _)) if send_at.is_none() => send_at = Some(j),
                Some(("recv", _)) => drained = true,
                _ => {}
            }
            if toks[j].kind == TokenKind::Ident
                && toks.get(j + 1).is_some_and(|t| t.is_punct("("))
                && flow.drain_fns.contains(&toks[j].text)
            {
                drained = true;
            }
        }
        if let (Some(j), false) = (send_at, drained) {
            out.push(Diagnostic::at(
                src,
                path,
                toks[j].line,
                "channel-discipline",
                format!(
                    "`send` inside an unbounded `{}` in `{}` with no drain on the same \
                     path; the queue can grow without bound — drain in the loop or \
                     bound the iteration",
                    toks[i].text, f.name
                ),
            ));
        }
    }
    out
}

/// Rule `nondeterminism-taint`: forward taint from nondeterminism sources
/// (unordered-map iteration, thread identity/counts, wall clock) through
/// `let` bindings, tuple destructuring, assignments, and one level of
/// call-graph inlining, into the sinks the reproducibility contract
/// protects: persisted `*Record`/`*Result` fields, wire payload bytes
/// (`send_bytes*`), and float accumulators in the numeric crates.
fn check_nondet_taint(path: &str, src: &PreparedSource, flow: &WorkspaceFlow) -> Vec<Diagnostic> {
    let toks = &src.file.tokens;
    let mut out = Vec::new();
    let mut fired = BTreeSet::new();
    for f in &src.file.fns {
        if f.in_test {
            continue;
        }
        let Some(body) = f.body else { continue };
        for t in dataflow::fn_taint(toks, &src.symbols, &src.file.in_test, body, &flow.tainted_fns)
        {
            if t.float_sink && !FLOAT_DET_SCOPE.iter().any(|p| path.starts_with(p)) {
                continue;
            }
            if fired.insert((t.line, t.message.clone())) {
                out.push(Diagnostic::at(
                    src,
                    path,
                    t.line,
                    "nondeterminism-taint",
                    format!(
                        "{}; emulation outputs must be a pure function of config and \
                         seed — order the iteration (BTreeMap / sorted Vec) or derive \
                         the value from the sim clock",
                        t.message
                    ),
                ));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::scan::prepare;

    fn run_at(rule: &str, path: &str, src: &str) -> Vec<Diagnostic> {
        let p = prepare(src);
        let files = vec![(path.to_string(), &p.file)];
        let g = CallGraph::build(&files);
        let flow = WorkspaceFlow::build(&files);
        check_all(path, &p, &g, &flow).into_iter().filter(|d| d.rule == rule).collect()
    }

    fn run(rule: &str, src: &str) -> Vec<Diagnostic> {
        run_at(rule, "test.rs", src)
    }

    #[test]
    fn hashmap_fires_outside_tests_only() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod t { use std::collections::HashSet; }\n";
        let d = run("hash-collections", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn hashmap_in_string_or_comment_is_ignored() {
        let src = "// a HashMap here\nfn f() { let s = \"HashMap\"; let r = r#\"HashSet too\"#; }\n";
        assert!(run("hash-collections", src).is_empty());
    }

    #[test]
    fn hashmap_alias_is_still_caught() {
        let src = "use std::collections::HashMap as Map;\nfn f() { let m: Map<u32, u32> = Map::new(); }\n";
        let d = run("hash-collections", src);
        assert_eq!(d.len(), 2, "the use line and the usage line: {d:?}");
        assert_eq!(d[0].line, 1);
        assert_eq!(d[1].line, 2);
        assert!(d[1].message.contains("via alias `Map`"));
    }

    #[test]
    fn wall_clock_fires_on_instant_and_system_time() {
        let src = "fn f() { let t0 = std::time::Instant::now(); }\nfn g(st: SystemTime) {}\n";
        assert_eq!(run("wall-clock", src).len(), 2);
    }

    #[test]
    fn instant_without_now_is_quiet_but_alias_read_fires() {
        // A bare `Instant` type mention is not a clock read…
        assert!(run("wall-clock", "fn f(t: Instant) {}").is_empty());
        // …but `Clock::now()` through an alias is.
        let src = "use std::time::Instant as Clock;\nfn f() { let t = Clock::now(); }\n";
        let d = run("wall-clock", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 2);
    }

    #[test]
    fn truncating_cast_needs_accounting_context() {
        // Cast without byte/time identifiers: not flagged.
        assert!(run("truncating-cast", "fn f() { let k = (x * y) as usize; }").is_empty());
        // Same cast feeding byte accounting: flagged.
        let d = run("truncating-cast", "fn f() { let total_bytes = (x * y) as u64; }");
        assert_eq!(d.len(), 1);
        // Float targets never truncate to integers.
        assert!(run("truncating-cast", "fn f() { let secs = total as f64 / rate; }").is_empty());
        // Literal casts are inert.
        assert!(run("truncating-cast", "fn f() { let zero_bytes = 0 as u64; }").is_empty());
    }

    #[test]
    fn truncating_cast_sees_multiline_statements() {
        // The marker is on a different line than the cast — the old
        // line-regex scanner missed exactly this.
        let src = "fn f() {\n    let wire_total_bytes =\n        (scalars * 4)\n        as u32;\n}\n";
        let d = run("truncating-cast", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 4, "diagnostic points at the cast line");
    }

    #[test]
    fn unwrap_flagged_expect_documented_passes() {
        assert_eq!(run("no-unwrap", "fn f() { let x = v.pop().unwrap(); }").len(), 1);
        assert!(run(
            "no-unwrap",
            "fn f() { let x = v.pop().expect(\"ring buffer is never empty\"); }"
        )
        .is_empty());
        assert_eq!(run("no-unwrap", "fn f() { let x = v.pop().expect(\"x\"); }").len(), 1);
        // Dynamic messages count as documented.
        assert!(run("no-unwrap", "fn f() { let x = v.pop().expect(&msg); }").is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { v.pop().unwrap(); }\n}\n";
        assert!(run("no-unwrap", src).is_empty());
    }

    #[test]
    fn unwrap_mentioned_in_comment_or_string_is_fine() {
        let src = "fn f() { // please don't .unwrap() here\n  let s = \"x.unwrap()\"; }\n";
        assert!(run("no-unwrap", src).is_empty());
    }

    #[test]
    fn serde_default_flags_undefaulted_record_field() {
        let src = "#[derive(Serialize, Deserialize)]\npub struct FooRecord {\n    pub a: u64,\n    #[serde(default)]\n    pub b: u64,\n}\n";
        let d = run("serde-default", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`a`"));
    }

    #[test]
    fn serde_default_container_level_is_enough() {
        let src = "#[derive(Serialize, Deserialize)]\n#[serde(default)]\npub struct FooRecord {\n    pub a: u64,\n}\n";
        assert!(run("serde-default", src).is_empty());
    }

    #[test]
    fn serde_default_ignores_non_record_and_non_serde_structs() {
        let src = "#[derive(Serialize, Deserialize)]\npub struct Config {\n    pub a: u64,\n}\npub struct BareStats {\n    pub a: u64,\n}\n";
        assert!(run("serde-default", src).is_empty());
    }

    #[test]
    fn panic_path_fires_only_in_hot_functions() {
        let src = "pub fn run() { helper(); }\n\
                   fn helper() { let x = table[idx]; panic!(\"boom\"); }\n\
                   fn cold() { let y = table[idx]; }\n";
        let d = run_at("panic-path", "crates/fl/src/experiment.rs", src);
        assert_eq!(d.len(), 1, "indexing and panic on line 2 dedup to one: {d:?}");
        assert_eq!(d[0].line, 2);
        // Same file without a root in scope: silent.
        assert!(run_at("panic-path", "crates/nn/src/lib.rs", src).is_empty());
    }

    #[test]
    fn panic_path_flags_expect_even_when_documented() {
        let src = "pub fn run() { v.pop().expect(\"queue seeded with one entry per client\"); }\n";
        let d = run_at("panic-path", "crates/fl/src/experiment.rs", src);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn panic_path_ignores_attrs_and_macro_brackets() {
        let src = "pub fn run() {\n    #[allow(dead_code)]\n    let v = vec![1, 2];\n}\n";
        assert!(run_at("panic-path", "crates/fl/src/experiment.rs", src).is_empty());
    }

    #[test]
    fn unchecked_arith_flags_contract_idents() {
        assert_eq!(run("unchecked-arith", "fn f() { total_bytes += chunk; }").len(), 1);
        assert_eq!(run("unchecked-arith", "fn f() { let t = upload_bytes + download_bytes; }").len(), 1);
        assert_eq!(run("unchecked-arith", "fn f() { let b = bytes * retries; }").len(), 1);
        // Non-contract identifiers: silent.
        assert!(run("unchecked-arith", "fn f() { let t = count + extra; }").is_empty());
    }

    #[test]
    fn unchecked_arith_skips_checked_and_float() {
        assert!(run(
            "unchecked-arith",
            "fn f() { let t = a_bytes.checked_add(b_bytes).expect(\"fits in u64 by construction\"); }"
        )
        .is_empty());
        // Float sim time is accumulated with float ops on purpose.
        assert!(run("unchecked-arith", "fn f() { let mut sim_time = 0.0f64; sim_time += dt; }")
            .is_empty());
        assert!(run("unchecked-arith", "fn f(latency_ms: f64) { let x = latency_ms + 0.5; }")
            .is_empty());
    }

    #[test]
    fn float_determinism_scoped_and_chain_sensitive() {
        let hot = "fn f(m: &BTreeMap<u32, f64>) -> f64 { weights.values().sum::<f64>() }\n";
        // Out of scope: silent even with the hazardous chain.
        assert!(run_at("float-determinism", "crates/fl/src/x.rs", hot).is_empty());
        // In scope with values(): fires. (BTreeMap values are ordered, but
        // order-by-key is still data-dependent for floats; the rule is
        // deliberately conservative about values() chains.)
        let d = run_at("float-determinism", "crates/nn/src/layer.rs", hot);
        assert_eq!(d.len(), 1);
        // Slice iteration is ordered: silent.
        let vec_src = "fn f(w: &[f64]) -> f64 { w.iter().sum::<f64>() }\n";
        assert!(run_at("float-determinism", "crates/nn/src/layer.rs", vec_src).is_empty());
    }

    #[test]
    fn float_determinism_fold_with_float_seed() {
        let src = "fn f() -> f64 { scores.values().fold(0.0, |a, b| a + b) }\n";
        let d = run_at("float-determinism", "crates/strategies/src/x.rs", src);
        assert_eq!(d.len(), 1);
        // Integer fold is not a float hazard.
        let int_src = "fn f() -> u64 { scores.values().fold(0, |a, b| a + b) }\n";
        assert!(run_at("float-determinism", "crates/strategies/src/x.rs", int_src).is_empty());
    }

    #[test]
    fn float_determinism_sees_hash_hinted_chains() {
        // HashMap now hints UnorderedMap, not MapLike — the rule must still
        // fire on `.iter().map(…).sum::<f64>()`-style chains over it.
        let src = "fn f(m: HashMap<u32, f64>) -> f64 { m.values().sum::<f64>() }\n";
        assert_eq!(run_at("float-determinism", "crates/nn/src/x.rs", src).len(), 1);
    }

    #[test]
    fn lock_order_guard_across_send() {
        let src = "fn f() { let g = state.lock(); tx.send(1); }\n";
        let d = run("lock-order", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("`g`"), "{d:?}");
        // Dropping the guard first is clean.
        assert!(run("lock-order", "fn f() { let g = state.lock(); drop(g); tx.send(1); }")
            .is_empty());
    }

    #[test]
    fn lock_order_guard_across_catch_unwind() {
        let src = "fn f() { let g = state.lock(); let r = catch_unwind(job); }\n";
        assert_eq!(run("lock-order", src).len(), 1);
    }

    #[test]
    fn lock_order_cycle_edges_are_reported() {
        let src = "fn ab() { let a = x.lock(); let b = y.lock(); }\n\
                   fn ba() { let b = y.lock(); let a = x.lock(); }\n";
        let d = run("lock-order", src);
        assert_eq!(d.len(), 2, "one per acquisition site on the cycle: {d:?}");
        assert!(d[0].message.contains("cyclic lock order"), "{d:?}");
    }

    #[test]
    fn lock_order_guard_across_dispatch_call() {
        let src = "fn caller() { let g = state.lock(); run_chunks(); }\n";
        // Only fires when `run_chunks` resolves to the real dispatch entry.
        let other = "pub fn run_chunks() {}\n";
        let p1 = prepare(src);
        let p2 = prepare(other);
        let files = vec![
            ("crates/core/src/x.rs".to_string(), &p1.file),
            ("crates/tensor/src/par.rs".to_string(), &p2.file),
        ];
        let g = CallGraph::build(&files);
        let flow = WorkspaceFlow::build(&files);
        let d: Vec<Diagnostic> = check_all("crates/core/src/x.rs", &p1, &g, &flow)
            .into_iter()
            .filter(|d| d.rule == "lock-order")
            .collect();
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("dispatch"), "{d:?}");
    }

    #[test]
    fn channel_worker_blocking_recv() {
        let src = "fn worker_loop() { let job = rx.recv(); }\nfn elsewhere() { let j = rx.recv(); }\n";
        let d = run_at("channel-discipline", "crates/tensor/src/par.rs", src);
        assert_eq!(d.len(), 1, "only the worker body fires: {d:?}");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn channel_send_after_close() {
        let src = "fn f() { drop(tx); tx.send(1); }\n";
        assert_eq!(run("channel-discipline", src).len(), 1);
        // Different endpoint: clean.
        assert!(run("channel-discipline", "fn f() { drop(rx); tx.send(1); }").is_empty());
    }

    #[test]
    fn channel_unbounded_loop_needs_a_drain() {
        let looped = "fn f() { loop { tx.send(next()); } }\n";
        assert_eq!(run("channel-discipline", looped).len(), 1);
        // A recv in the same loop body is a drain.
        let drained = "fn f() { loop { tx.send(next()); let r = rx.recv(); } }\n";
        assert!(run("channel-discipline", drained).is_empty());
        // A call to a function that receives also counts (one call level).
        let via_call = "fn f() { loop { tx.send(next()); pump(); } }\nfn pump() { let r = rx.recv(); }\n";
        assert!(run("channel-discipline", via_call).is_empty());
        // `for` loops are bounded by their iterator.
        let bounded = "fn f() { for c in chunks { tx.send(c); } }\n";
        assert!(run("channel-discipline", bounded).is_empty());
    }

    #[test]
    fn taint_unordered_iteration_into_record_field() {
        let src = "fn f(m: HashMap<u32, f32>, rec: &mut RoundRecord) {\n\
                   let first = m.keys().next();\nrec.chosen = first;\n}\n";
        let d = run("nondeterminism-taint", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("rec.chosen"), "{d:?}");
    }

    #[test]
    fn taint_float_accumulator_is_scoped() {
        let src = "fn f(m: HashMap<u32, f32>) {\nlet mut acc = 0.0f32;\n\
                   for v in m.values() { acc += v; }\n}\n";
        // In the numeric crates: fires.
        assert_eq!(run_at("nondeterminism-taint", "crates/tensor/src/x.rs", src).len(), 1);
        // Elsewhere: the float-accumulator sink is out of scope.
        assert!(run_at("nondeterminism-taint", "crates/fl/src/x.rs", src).is_empty());
    }

    #[test]
    fn taint_wire_payload_sink() {
        let src = "fn f(m: HashMap<u32, Vec<u8>>, bus: &Bus) {\n\
                   let frame = m.values().next();\nbus.send_bytes(frame);\n}\n";
        let d = run("nondeterminism-taint", src);
        assert_eq!(d.len(), 1, "{d:?}");
        assert!(d[0].message.contains("wire payload"), "{d:?}");
    }

    #[test]
    fn taint_ordered_sources_are_clean() {
        let src = "fn f(m: BTreeMap<u32, f32>, rec: &mut RoundRecord) {\n\
                   let first = m.keys().next();\nrec.chosen = first;\n}\n";
        assert!(run("nondeterminism-taint", src).is_empty());
    }
}
