//! The lint rules: each scans a [`PreparedSource`] and reports
//! reproducibility or safety hazards with `file:line` positions.
//!
//! All rules skip test code (`#[cfg(test)]` spans) because the hazards they
//! guard against — nondeterministic iteration order, wall-clock reads,
//! silently-truncating arithmetic, panicking accessors, and
//! non-evolvable record schemas — only threaten the *emulation and its
//! persisted results*, not assertions inside tests.

use crate::scan::PreparedSource;

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Stable rule identifier (used by `lint-allow.toml`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
    /// The offending source line (trimmed), for allow-entry matching.
    pub snippet: String,
}

impl Diagnostic {
    fn new(path: &str, line0: usize, rule: &'static str, message: String, raw: &str) -> Self {
        Diagnostic {
            path: path.to_string(),
            line: line0 + 1,
            rule,
            message,
            snippet: raw.trim().to_string(),
        }
    }
}

/// Stable identifiers of every rule, in reporting order.
pub const RULE_IDS: [&str; 5] =
    ["hash-collections", "wall-clock", "truncating-cast", "no-unwrap", "serde-default"];

/// Runs every rule over one prepared source file.
pub fn check_all(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    out.extend(check_hash_collections(path, src));
    out.extend(check_wall_clock(path, src));
    out.extend(check_truncating_cast(path, src));
    out.extend(check_no_unwrap(path, src));
    out.extend(check_serde_default(path, src));
    out
}

/// `true` when `needle` occurs in `line` as a whole identifier (not as a
/// substring of a longer identifier).
fn contains_word(line: &str, needle: &str) -> bool {
    let mut start = 0usize;
    while let Some(rel) = line[start..].find(needle) {
        let at = start + rel;
        let before_ok = at == 0
            || !line[..at].chars().next_back().is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + needle.len();
        let after_ok = after >= line.len()
            || !line[after..].chars().next().is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Rule `hash-collections`: `std::collections::HashMap`/`HashSet` in library
/// code. Their iteration order is randomized per process, so any aggregation,
/// selection, or serialization driven by it silently breaks run-to-run
/// reproducibility. Use `BTreeMap`/`BTreeSet`, or index by dense ids.
fn check_hash_collections(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in src.code_lines.iter().enumerate() {
        if src.in_test[i] {
            continue;
        }
        for ty in ["HashMap", "HashSet"] {
            if contains_word(line, ty) {
                out.push(Diagnostic::new(
                    path,
                    i,
                    "hash-collections",
                    format!(
                        "{ty} has nondeterministic iteration order; use BTreeMap/BTreeSet \
                         or dense-id indexing so emulation results stay reproducible"
                    ),
                    &src.raw_lines[i],
                ));
                break;
            }
        }
    }
    out
}

/// Rule `wall-clock`: `Instant::now`/`SystemTime` in library code. The
/// emulator owns its own clock (`sim_time_secs`); reading the host clock in a
/// sim path couples results to machine speed and scheduling.
fn check_wall_clock(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in src.code_lines.iter().enumerate() {
        if src.in_test[i] {
            continue;
        }
        if line.contains("Instant::now") || contains_word(line, "SystemTime") {
            out.push(Diagnostic::new(
                path,
                i,
                "wall-clock",
                "wall-clock read in emulation code; sim paths must derive every \
                 duration from the deterministic sim clock"
                    .to_string(),
                &src.raw_lines[i],
            ));
        }
    }
    out
}

/// Identifier fragments that mark a line as byte- or time-accounting code.
const ACCOUNTING_MARKERS: [&str; 8] =
    ["byte", "secs", "duration", "latency", "millis", "deadline", "elapsed", "bandwidth"];

/// Rule `truncating-cast`: `as <integer>` casts on byte/time-accounting
/// lines. `as` silently truncates and wraps; traffic totals and emulated
/// clocks must use `u64::from`/`try_from` (or widen the accumulator) so a
/// unit bug becomes a loud error instead of a wrong paper figure.
fn check_truncating_cast(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    const INT_TARGETS: [&str; 10] =
        ["u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize"];
    let mut out = Vec::new();
    for (i, line) in src.code_lines.iter().enumerate() {
        if src.in_test[i] {
            continue;
        }
        let lower = line.to_lowercase();
        if !ACCOUNTING_MARKERS.iter().any(|m| lower.contains(m)) {
            continue;
        }
        let mut from = 0usize;
        while let Some(rel) = line[from..].find(" as ") {
            let at = from + rel;
            from = at + 4;
            let rest = line[at + 4..].trim_start();
            let target: String =
                rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
            if !INT_TARGETS.contains(&target.as_str()) {
                continue;
            }
            // Casting a bare literal (e.g. `0 as u64`) can't truncate
            // anything that matters; skip it.
            let before = line[..at].trim_end();
            let src_token: String = before
                .chars()
                .rev()
                .take_while(|c| c.is_alphanumeric() || *c == '_' || *c == '.')
                .collect();
            if src_token.chars().last().is_some_and(|c| c.is_ascii_digit())
                && src_token.chars().all(|c| c.is_ascii_digit() || c == '_' || c == '.')
            {
                continue;
            }
            out.push(Diagnostic::new(
                path,
                i,
                "truncating-cast",
                format!(
                    "`as {target}` on a byte/time-accounting line silently truncates; \
                     use `u64::from`/`try_from` or widen the accumulator"
                ),
                &src.raw_lines[i],
            ));
        }
    }
    out
}

/// Minimum `.expect("...")` message length that counts as documented.
const MIN_EXPECT_MESSAGE: usize = 10;

/// Rule `no-unwrap`: `.unwrap()` (always) and `.expect()` with an empty or
/// trivially short literal message in library code. Panics inside the
/// emulation abort whole multi-hour sweeps; fallible paths must return
/// `Result`, and the remaining panics must document the invariant that makes
/// them unreachable.
fn check_no_unwrap(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (i, line) in src.code_lines.iter().enumerate() {
        if src.in_test[i] {
            continue;
        }
        if line.contains(".unwrap()") {
            out.push(Diagnostic::new(
                path,
                i,
                "no-unwrap",
                "`.unwrap()` in library code; return a Result or use `.expect(...)` \
                 with a message documenting why failure is impossible"
                    .to_string(),
                &src.raw_lines[i],
            ));
        }
        let mut from = 0usize;
        while let Some(rel) = line[from..].find(".expect(") {
            let at = from + rel;
            from = at + ".expect(".len();
            let arg = &line[from..];
            // Only literal messages are measurable; dynamic messages
            // (format!, variables) count as documented.
            if let Some(q) = arg.strip_prefix('"') {
                let msg_len = q.find('"').unwrap_or(q.len());
                if msg_len < MIN_EXPECT_MESSAGE {
                    out.push(Diagnostic::new(
                        path,
                        i,
                        "no-unwrap",
                        format!(
                            "`.expect()` message shorter than {MIN_EXPECT_MESSAGE} chars does \
                             not document the invariant; explain why failure is impossible"
                        ),
                        &src.raw_lines[i],
                    ));
                }
            }
        }
    }
    out
}

/// Struct-name suffixes that mark persisted experiment records.
const RECORD_SUFFIXES: [&str; 3] = ["Record", "Result", "Stats"];

/// Rule `serde-default`: persisted record structs (`*Record`, `*Result`,
/// `*Stats` deriving `Deserialize`) must mark every field `#[serde(default)]`
/// (or carry a container-level default). Records written by an older binary
/// must stay loadable after fields are added — PR 1's fault columns were
/// exactly such an evolution.
fn check_serde_default(path: &str, src: &PreparedSource) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let n = src.code_lines.len();
    for i in 0..n {
        if src.in_test[i] {
            continue;
        }
        let line = src.code_lines[i].trim_start();
        let Some(rest) = line.strip_prefix("pub struct ").or_else(|| line.strip_prefix("struct "))
        else {
            continue;
        };
        let name: String =
            rest.chars().take_while(|c| c.is_alphanumeric() || *c == '_').collect();
        if !RECORD_SUFFIXES.iter().any(|s| name.ends_with(s)) {
            continue;
        }
        if !rest[name.len()..].trim_start().starts_with('{') {
            // Tuple/unit structs have no named fields to default.
            continue;
        }
        // Attributes directly above the struct.
        let mut attrs = String::new();
        let mut j = i;
        while j > 0 {
            let prev = src.code_lines[j - 1].trim();
            if prev.starts_with("#[") || prev.starts_with("#!") || prev.ends_with(']') && prev.contains('#') {
                attrs.push_str(prev);
                attrs.push('\n');
                j -= 1;
            } else if prev.is_empty() {
                // Blanked doc comment.
                j -= 1;
            } else {
                break;
            }
        }
        if !attrs.contains("Deserialize") {
            continue;
        }
        if attrs.contains("serde(default") {
            continue; // container-level default covers every field
        }
        // Walk the struct body; depth 1 = field level.
        let mut depth = 0usize;
        let mut field_attrs = String::new();
        let mut k = i;
        'body: while k < n {
            for c in src.code_lines[k].chars() {
                if c == '{' {
                    depth += 1;
                } else if c == '}' {
                    depth -= 1;
                    if depth == 0 {
                        break 'body;
                    }
                }
            }
            if k > i && depth == 1 {
                let t = src.code_lines[k].trim();
                if t.starts_with('#') {
                    field_attrs.push_str(t);
                } else {
                    let field = t.strip_prefix("pub ").unwrap_or(t);
                    let ident: String = field
                        .chars()
                        .take_while(|c| c.is_alphanumeric() || *c == '_')
                        .collect();
                    if !ident.is_empty() && field[ident.len()..].trim_start().starts_with(':') {
                        if !field_attrs.contains("serde(default") {
                            out.push(Diagnostic::new(
                                path,
                                k,
                                "serde-default",
                                format!(
                                    "field `{ident}` of record struct `{name}` lacks \
                                     #[serde(default)]; persisted records from older \
                                     binaries must stay loadable when fields are added"
                                ),
                                &src.raw_lines[k],
                            ));
                        }
                        field_attrs.clear();
                    }
                }
            }
            k += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::prepare;

    fn run(rule: &str, src: &str) -> Vec<Diagnostic> {
        let p = prepare(src);
        check_all("test.rs", &p).into_iter().filter(|d| d.rule == rule).collect()
    }

    #[test]
    fn hashmap_fires_outside_tests_only() {
        let src = "use std::collections::HashMap;\n#[cfg(test)]\nmod t { use std::collections::HashSet; }\n";
        let d = run("hash-collections", src);
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn hashmap_in_string_or_comment_is_ignored() {
        let src = "// a HashMap here\nlet s = \"HashMap\";\n";
        assert!(run("hash-collections", src).is_empty());
    }

    #[test]
    fn wall_clock_fires_on_instant_and_system_time() {
        let src = "let t0 = std::time::Instant::now();\nlet st: SystemTime = x;\n";
        assert_eq!(run("wall-clock", src).len(), 2);
    }

    #[test]
    fn truncating_cast_needs_accounting_context() {
        // Cast without byte/time identifiers: not flagged.
        assert!(run("truncating-cast", "let k = (x * y) as usize;").is_empty());
        // Same cast feeding byte accounting: flagged.
        let d = run("truncating-cast", "let total_bytes = (x * y) as u64;");
        assert_eq!(d.len(), 1);
        // Float targets never truncate to integers.
        assert!(run("truncating-cast", "let secs = bytes as f64 / rate;").is_empty());
        // Literal casts are inert.
        assert!(run("truncating-cast", "let zero_bytes = 0 as u64;").is_empty());
    }

    #[test]
    fn unwrap_flagged_expect_documented_passes() {
        assert_eq!(run("no-unwrap", "let x = v.pop().unwrap();").len(), 1);
        assert!(run("no-unwrap", "let x = v.pop().expect(\"ring buffer is never empty\");")
            .is_empty());
        assert_eq!(run("no-unwrap", "let x = v.pop().expect(\"x\");").len(), 1);
        // Dynamic messages count as documented.
        assert!(run("no-unwrap", "let x = v.pop().expect(&msg);").is_empty());
    }

    #[test]
    fn unwrap_in_cfg_test_module_is_fine() {
        let src = "#[cfg(test)]\nmod tests {\n  fn t() { v.pop().unwrap(); }\n}\n";
        assert!(run("no-unwrap", src).is_empty());
    }

    #[test]
    fn serde_default_flags_undefaulted_record_field() {
        let src = "#[derive(Serialize, Deserialize)]\npub struct FooRecord {\n    pub a: u64,\n    #[serde(default)]\n    pub b: u64,\n}\n";
        let d = run("serde-default", src);
        assert_eq!(d.len(), 1);
        assert!(d[0].message.contains("`a`"));
    }

    #[test]
    fn serde_default_container_level_is_enough() {
        let src = "#[derive(Serialize, Deserialize)]\n#[serde(default)]\npub struct FooRecord {\n    pub a: u64,\n}\n";
        assert!(run("serde-default", src).is_empty());
    }

    #[test]
    fn serde_default_ignores_non_record_and_non_serde_structs() {
        let src = "#[derive(Serialize, Deserialize)]\npub struct Config {\n    pub a: u64,\n}\npub struct BareStats {\n    pub a: u64,\n}\n";
        assert!(run("serde-default", src).is_empty());
    }
}
